//! `jouppi-stat` — trace statistics, footprints, and miss-rate curves.
//! See [`jouppi_cli::stat`] for the option reference.

#![forbid(unsafe_code)]

use std::process::ExitCode;

fn main() -> ExitCode {
    let opts = match jouppi_cli::stat::parse_stat_args(std::env::args().skip(1)) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    match jouppi_cli::stat::run_stat(&opts) {
        Ok(report) => {
            println!("{report}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
