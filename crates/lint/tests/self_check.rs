//! The workspace must pass its own linter modulo the checked-in
//! baseline — the test form of the `jouppi-lint --workspace --baseline
//! lint-baseline.json` gate ci.sh enforces.

use std::path::Path;

use jouppi_lint::baseline::Baseline;
use jouppi_lint::find_root;
use jouppi_serve::json::Json;

fn root_args(extra: &[&str]) -> Vec<String> {
    let root = find_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root");
    let mut args = vec![
        "--root".to_owned(),
        root.to_string_lossy().into_owned(),
        "--workspace".to_owned(),
    ];
    args.extend(extra.iter().map(|s| (*s).to_owned()));
    args
}

#[test]
fn workspace_is_clean_modulo_baseline() {
    let r = jouppi_lint::cli::run(root_args(&["--baseline", "lint-baseline.json"]));
    assert_eq!(
        r.code, 0,
        "jouppi-lint found regressions against lint-baseline.json:\n{}{}",
        r.stdout, r.stderr
    );
    assert!(r.stdout.contains("0 new, 0 stale: ok"), "{}", r.stdout);
}

#[test]
fn workspace_json_report_is_at_baseline_and_covers_the_tree() {
    let r = jouppi_lint::cli::run(root_args(&["--json", "--baseline", "lint-baseline.json"]));
    assert_eq!(r.code, 0, "{}{}", r.stdout, r.stderr);
    let doc = Json::parse(r.stdout.trim()).expect("valid JSON");
    let baseline = doc.get("baseline").expect("baseline section");
    assert_eq!(baseline.get("ok"), Some(&Json::Bool(true)));
    match doc.get("files_scanned") {
        Some(Json::Int(n)) => {
            assert!(*n > 50, "only {n} files scanned — walker regression?");
        }
        other => panic!("files_scanned missing or mistyped: {other:?}"),
    }
}

/// Every finding the unbaselined scan reveals must be grandfathered in
/// `lint-baseline.json` — in particular, `crates/serve` carries no
/// unreviewed debt at all: its true positives were fixed or suppressed
/// with reasons, not baselined away.
#[test]
fn unbaselined_findings_are_exactly_the_grandfathered_set() {
    let root = find_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root");
    let text =
        std::fs::read_to_string(root.join("lint-baseline.json")).expect("read lint-baseline.json");
    let grandfathered = Baseline::parse(&text).expect("parse lint-baseline.json");

    let r = jouppi_lint::cli::run(root_args(&["--json"]));
    let doc = Json::parse(r.stdout.trim()).expect("valid JSON");
    let findings = doc
        .get("findings")
        .and_then(Json::as_arr)
        .expect("findings array");
    for f in findings {
        let file = f.get("file").and_then(Json::as_str).expect("file");
        let lint = f.get("lint").and_then(Json::as_str).expect("lint");
        assert!(
            grandfathered
                .entries
                .contains_key(&(file.to_owned(), lint.to_owned())),
            "unreviewed finding outside the baseline: {file} [{lint}]"
        );
        assert!(
            !file.starts_with("crates/serve/"),
            "crates/serve must carry no grandfathered debt, found {file} [{lint}]"
        );
    }
}
