//! Workspace discovery and the full-tree scan.
//!
//! The scan runs in three phases. Phase one checks each file
//! independently ([`crate::check::check_source_facts`]), collecting
//! findings plus each file's cross-file facts: lock-acquisition edges,
//! calls captured under live guards, the parsed AST, and pending
//! workspace-lint suppressions. Phase two assembles the lock edges into
//! one graph *per crate* (lock identities are textual — `self.inner` in
//! two crates is two different locks) and reports every edge in a cycle.
//! Phase three builds the **workspace call graph** over the retained
//! ASTs ([`crate::callgraph`]) and runs the four interprocedural
//! analyses ([`crate::interproc`]); findings from both phases are routed
//! back to the declaring files, checked against the pending
//! suppressions, and the leftover directives become `unused-suppression`
//! findings.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use crate::analyses::{lock_order_findings, GuardedCall, LockEdge};
use crate::callgraph::{self, GraphFile};
use crate::check::{check_source_facts, suppress_pending, unused_pending};
use crate::interproc;
use crate::lint::{Finding, LintId};
use crate::policy::{classify, lints_for};

/// Directories never descended into. `examples/` and `tests/` are
/// scanned (under the relaxed policy); build output and VCS state are
/// not.
const PRUNED_DIRS: [&str; 3] = ["target", ".git", "node_modules"];

/// Size counters of the workspace call graph, surfaced in the JSON
/// report's `callgraph` section.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CallGraphStats {
    /// Workspace functions (non-test, non-example).
    pub nodes: usize,
    /// Uniquely resolved call edges.
    pub resolved_edges: usize,
    /// Multi-candidate name-match edges (surfaced, never traversed).
    pub ambiguous_edges: usize,
    /// Call sites resolving outside the workspace (std, mostly).
    pub external_calls: usize,
}

/// One scanned file's findings.
#[derive(Clone, Debug)]
pub struct FileReport {
    /// Workspace-relative path with `/` separators.
    pub rel_path: String,
    /// Findings in line order (empty for clean files).
    pub findings: Vec<Finding>,
}

/// The result of scanning a workspace.
#[derive(Clone, Debug, Default)]
pub struct ScanResult {
    /// Per-file reports, sorted by path; clean files are included with
    /// empty findings so `files_scanned` is auditable.
    pub files: Vec<FileReport>,
    /// Aggregate wall-clock cost per analysis stage across all files,
    /// sorted by stage name (for `--timings`).
    pub timings: Vec<(&'static str, Duration)>,
    /// Call-graph size counters (`None` when no file kept an AST — e.g.
    /// a scan of nothing but test files).
    pub callgraph: Option<CallGraphStats>,
}

impl ScanResult {
    /// Number of files lexed and checked.
    pub fn files_scanned(&self) -> usize {
        self.files.len()
    }

    /// All findings, flattened in (path, line) order.
    pub fn findings(&self) -> impl Iterator<Item = (&str, &Finding)> {
        self.files
            .iter()
            .flat_map(|f| f.findings.iter().map(move |x| (f.rel_path.as_str(), x)))
    }

    /// Total number of findings.
    pub fn total_findings(&self) -> usize {
        self.files.iter().map(|f| f.findings.len()).sum()
    }

    /// Whether the scan found nothing.
    pub fn is_clean(&self) -> bool {
        self.total_findings() == 0
    }
}

/// Walks upward from `start` looking for the workspace root (a
/// `Cargo.toml` declaring `[workspace]`).
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Scans the whole workspace under `root`.
///
/// # Errors
///
/// Propagates I/O failures reading directories or files.
pub fn scan_workspace(root: &Path) -> io::Result<ScanResult> {
    let mut rel_paths = Vec::new();
    collect_rs_files(root, root, &mut rel_paths)?;
    rel_paths.sort();
    scan_files(root, &rel_paths)
}

/// Scans an explicit list of workspace-relative files.
///
/// # Errors
///
/// Propagates I/O failures reading the files.
pub fn scan_files(root: &Path, rel_paths: &[String]) -> io::Result<ScanResult> {
    let mut result = ScanResult::default();
    let mut timings: BTreeMap<&'static str, Duration> = BTreeMap::new();
    // Phase one: per-file checks; park each file's cross-file facts.
    // `pendings`, `contexts`, `asts`, `test_ranges`, and `guarded` are
    // parallel to `result.files`; `crate_edges` tags every edge with the
    // index of the file that produced it.
    let mut pendings = Vec::new();
    let mut contexts = Vec::new();
    let mut asts = Vec::new();
    let mut test_ranges = Vec::new();
    let mut guarded = Vec::new();
    let mut crate_edges: BTreeMap<String, Vec<(usize, LockEdge)>> = BTreeMap::new();
    for rel in rel_paths {
        let Some(ctx) = classify(rel) else {
            continue;
        };
        let src = fs::read_to_string(root.join(rel))?;
        let facts = check_source_facts(&ctx, &src);
        let file_index = result.files.len();
        for (stage, d) in facts.timings {
            *timings.entry(stage).or_default() += d;
        }
        crate_edges
            .entry(ctx.crate_name.clone())
            .or_default()
            .extend(facts.lock_edges.into_iter().map(|e| (file_index, e)));
        pendings.push(facts.pending);
        contexts.push(ctx);
        asts.push(facts.ast);
        test_ranges.push(facts.test_ranges);
        guarded.push(facts.guarded_calls);
        result.files.push(FileReport {
            rel_path: rel.clone(),
            findings: facts.findings,
        });
    }
    // Phase two: resolve lock-order per crate.
    let t0 = Instant::now();
    for edges in crate_edges.values() {
        let tagged: Vec<(String, LockEdge)> = edges
            .iter()
            .map(|(i, e)| (result.files[*i].rel_path.clone(), e.clone()))
            .collect();
        for (edge_index, finding) in lock_order_findings(&tagged) {
            let file_index = edges[edge_index].0;
            if !suppress_pending(&mut pendings[file_index], finding.lint, finding.line) {
                result.files[file_index].findings.push(finding);
            }
        }
    }
    *timings.entry("lock-order-resolve").or_default() += t0.elapsed();
    // Phase three: the workspace call graph and the interprocedural
    // analyses, over the ASTs retained in phase one. `to_file` maps a
    // graph-file index back to its `result.files` index.
    let t0 = Instant::now();
    let mut inputs: Vec<GraphFile<'_>> = Vec::new();
    let mut to_file: Vec<usize> = Vec::new();
    for (i, ast) in asts.iter().enumerate() {
        if let Some(ast) = ast {
            inputs.push(GraphFile {
                ctx: &contexts[i],
                ast,
                test_ranges: &test_ranges[i],
            });
            to_file.push(i);
        }
    }
    if !inputs.is_empty() {
        let graph = callgraph::build(&inputs);
        result.callgraph = Some(CallGraphStats {
            nodes: graph.nodes.len(),
            resolved_edges: graph.resolved_edges,
            ambiguous_edges: graph.ambiguous_edges,
            external_calls: graph.external_calls,
        });
        *timings.entry("callgraph-build").or_default() += t0.elapsed();
        let actives: Vec<Vec<LintId>> = to_file.iter().map(|&i| lints_for(&contexts[i])).collect();
        let guarded_g: Vec<Vec<GuardedCall>> = to_file
            .iter()
            .map(|&i| std::mem::take(&mut guarded[i]))
            .collect();
        let interproc_out = interproc::run(&graph, &actives, &guarded_g);
        for (stage, d) in interproc_out.timings {
            *timings.entry(stage).or_default() += d;
        }
        for (gf, finding) in interproc_out.findings {
            let file_index = to_file[gf];
            if !suppress_pending(&mut pendings[file_index], finding.lint, finding.line) {
                result.files[file_index].findings.push(finding);
            }
        }
    } else {
        *timings.entry("callgraph-build").or_default() += t0.elapsed();
    }
    // Settle the pending suppressions: anything still unused is itself a
    // finding.
    for (file_index, pending) in pendings.iter().enumerate() {
        for p in pending {
            if !p.used {
                result.files[file_index].findings.push(unused_pending(p));
            }
        }
        result.files[file_index]
            .findings
            .sort_by_key(|f| (f.line, f.lint.name()));
    }
    result.timings = timings.into_iter().collect();
    Ok(result)
}

/// Recursively collects `.rs` files, pruning build output; entries are
/// visited in sorted order so scans are deterministic.
fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<String>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<io::Result<_>>()?;
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if path.is_dir() {
            if PRUNED_DIRS.contains(&name.as_str()) || name.starts_with('.') {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                let rel = rel
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy())
                    .collect::<Vec<_>>()
                    .join("/");
                out.push(rel);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn find_root_locates_this_workspace() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_root(here).expect("workspace root above crates/lint");
        assert!(root.join("crates").is_dir());
        assert!(root.join("Cargo.toml").is_file());
    }

    #[test]
    fn scan_is_deterministic_and_covers_this_crate() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_root(here).expect("workspace root");
        let a = scan_workspace(&root).expect("first scan");
        let b = scan_workspace(&root).expect("second scan");
        assert!(a.files_scanned() > 20, "scanned {}", a.files_scanned());
        let paths = |r: &ScanResult| {
            r.files
                .iter()
                .map(|f| f.rel_path.clone())
                .collect::<Vec<_>>()
        };
        assert_eq!(paths(&a), paths(&b));
        assert!(paths(&a).contains(&"crates/lint/src/lexer.rs".to_owned()));
        // examples/ are scanned (relaxed policy); target/ is pruned.
        assert!(paths(&a).iter().any(|p| p.starts_with("examples/")));
        assert!(!paths(&a).iter().any(|p| p.starts_with("target/")));
        // The call graph covers every workspace crate.
        let stats = a.callgraph.expect("call graph built");
        assert!(stats.nodes > 100, "nodes: {}", stats.nodes);
        assert!(
            stats.resolved_edges > 100,
            "edges: {}",
            stats.resolved_edges
        );
    }
}
