//! Fixture: the blocking receive happens first; the lock is taken only
//! for the short critical section that needs it.

use std::sync::mpsc::Receiver;
use std::sync::Mutex;

pub fn drain(m: &Mutex<Vec<u64>>, rx: &Receiver<u64>) {
    let v = rx.recv().unwrap_or(0);
    let mut held = m.lock().unwrap_or_else(|e| e.into_inner());
    held.push(v);
}
