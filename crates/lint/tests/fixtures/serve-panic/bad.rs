//! Fixture: panic paths in request handling.

pub fn parse_id(path: &str) -> u64 {
    path.strip_prefix("/v1/jobs/")
        .unwrap()
        .parse()
        .expect("numeric id")
}
