//! The multi-geometry sweep: exact miss counts for a full size ×
//! associativity × replacement-policy grid, one pass per (benchmark,
//! side).
//!
//! This is the sweep the single-pass engines exist for. [`run`] answers
//! all [`grid`] cells under both LRU and FIFO from **two** trace
//! traversals per (benchmark, side) — one [`jouppi_cache::LruSweep`]
//! (whose cost is independent of the number of cells) and one
//! [`jouppi_cache::FifoSweep`] (whose cost scales with misses, not
//! cells). [`run_per_cell`] is the demoted per-cell simulator, kept as
//! the cross-check oracle: one [`jouppi_cache::Cache`] replay per
//! (cell × policy), exactly equal by the
//! `single_pass_equivalence` test suite and `sweep-bench --smoke
//! --mode single_pass`.

use jouppi_cache::{Cache, CacheGeometry, FifoSweep, LruSweep, ReplacementPolicy};
use jouppi_report::{rate, Table};
use jouppi_workloads::Benchmark;

use crate::common::{record_traces, ExperimentConfig, Side};
use crate::sweep;

/// Line size of every grid cell (the paper's 16B baseline).
pub const LINE_SIZE: u64 = 16;

/// Cache sizes swept (bytes).
pub const SIZES: [u64; 8] = [
    1 << 10,
    2 << 10,
    4 << 10,
    8 << 10,
    16 << 10,
    32 << 10,
    64 << 10,
    128 << 10,
];

/// Associativities swept.
pub const ASSOCS: [u64; 5] = [1, 2, 4, 8, 16];

/// The swept geometry grid: every (size, associativity) combination
/// (all are valid — the smallest size holds 64 lines, more than the
/// widest associativity).
pub fn grid() -> Vec<CacheGeometry> {
    let mut cells = Vec::with_capacity(SIZES.len() * ASSOCS.len());
    for &size in &SIZES {
        for &assoc in &ASSOCS {
            cells.push(CacheGeometry::new(size, LINE_SIZE, assoc).expect("grid cell is valid"));
        }
    }
    cells
}

/// One geometry cell's exact miss counts under both policies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GeometryCell {
    /// Cache size in bytes.
    pub size: u64,
    /// Associativity (ways).
    pub associativity: u64,
    /// Exact LRU misses.
    pub lru_misses: u64,
    /// Exact FIFO misses.
    pub fifo_misses: u64,
}

/// One benchmark's grids for both cache sides.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GeometryRow {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// Instruction references replayed.
    pub instr_refs: u64,
    /// Data references replayed.
    pub data_refs: u64,
    /// Instruction-side cells, in [`grid`] order.
    pub instr: Vec<GeometryCell>,
    /// Data-side cells, in [`grid`] order.
    pub data: Vec<GeometryCell>,
}

/// A full multi-geometry sweep.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GeometrySweep {
    /// One row per benchmark.
    pub rows: Vec<GeometryRow>,
}

/// Number of (geometry × policy) cells each (benchmark, side) pass
/// answers.
pub fn cells_per_side() -> u64 {
    (SIZES.len() * ASSOCS.len() * 2) as u64
}

fn side_cells_single_pass(lines: &[jouppi_trace::LineAddr]) -> Vec<GeometryCell> {
    let cells = grid();
    let keys: Vec<(u64, u64)> = cells
        .iter()
        .map(|g| (g.num_sets(), g.associativity()))
        .collect();
    // Bounded backend: no grid cell queries deeper than its own
    // associativity, so each level's MRU arrays cap at the largest
    // way-count sharing that set count.
    let mut lru = LruSweep::bounded(&keys).expect("grid cells are valid");
    let mut fifo = FifoSweep::new(&keys).expect("grid cells are valid");
    for &line in lines {
        lru.observe(line);
        fifo.observe(line);
    }
    sweep::note_single_pass_refs(2 * lines.len() as u64);
    cells
        .iter()
        .map(|g| GeometryCell {
            size: g.size(),
            associativity: g.associativity(),
            lru_misses: lru.misses_for_geometry(g).expect("tracked"),
            fifo_misses: fifo.misses_for_geometry(g).expect("tracked"),
        })
        .collect()
}

fn side_cells_per_cell(lines: &[jouppi_trace::LineAddr]) -> Vec<GeometryCell> {
    let cells = grid();
    crate::common::note_refs_simulated(2 * (cells.len() * lines.len()) as u64);
    cells
        .iter()
        .map(|g| {
            let count = |policy| {
                let mut cache = Cache::with_policy(*g, policy);
                let mut misses = 0u64;
                for &line in lines {
                    if cache.access_line(line).is_miss() {
                        misses += 1;
                    }
                }
                misses
            };
            GeometryCell {
                size: g.size(),
                associativity: g.associativity(),
                lru_misses: count(ReplacementPolicy::Lru),
                fifo_misses: count(ReplacementPolicy::Fifo),
            }
        })
        .collect()
}

fn run_with(
    cfg: &ExperimentConfig,
    side_cells: impl Fn(&[jouppi_trace::LineAddr]) -> Vec<GeometryCell> + Sync,
    refs_factor: u64,
) -> GeometrySweep {
    let traces = record_traces(cfg);
    let jobs = traces.len() * 2;
    let total: u64 = traces.iter().map(|(_, t)| t.len() as u64).sum();
    let per_side = sweep::map_jobs_sized(jobs, total / jobs as u64 * refs_factor, |job| {
        let (_, trace) = &traces[job / 2];
        let side = Side::BOTH[job % 2];
        let lines = side
            .view(trace)
            .lines_for(LINE_SIZE)
            .expect("16B lines are pre-derived for the baseline line size");
        side_cells(lines)
    });
    let rows = traces
        .iter()
        .enumerate()
        .map(|(i, (b, trace))| GeometryRow {
            benchmark: *b,
            instr_refs: Side::Instruction.view(trace).len() as u64,
            data_refs: Side::Data.view(trace).len() as u64,
            instr: per_side[2 * i].clone(),
            data: per_side[2 * i + 1].clone(),
        })
        .collect();
    GeometrySweep { rows }
}

/// Runs the sweep on the single-pass engines (two traversals per side).
pub fn run(cfg: &ExperimentConfig) -> GeometrySweep {
    run_with(cfg, side_cells_single_pass, 2)
}

/// Runs the sweep on the demoted per-cell simulator (one [`Cache`]
/// replay per cell × policy) — the cross-check oracle.
pub fn run_per_cell(cfg: &ExperimentConfig) -> GeometrySweep {
    run_with(cfg, side_cells_per_cell, cells_per_side())
}

impl GeometrySweep {
    /// One benchmark's row.
    pub fn row(&self, b: Benchmark) -> Option<&GeometryRow> {
        self.rows.iter().find(|r| r.benchmark == b)
    }

    /// Average data-side miss rate over benchmarks for one cell.
    pub fn avg_data_miss_rate(&self, size: u64, associativity: u64, fifo: bool) -> f64 {
        let rates: Vec<f64> = self
            .rows
            .iter()
            .filter_map(|r| {
                let cell = r
                    .data
                    .iter()
                    .find(|c| c.size == size && c.associativity == associativity)?;
                let misses = if fifo {
                    cell.fifo_misses
                } else {
                    cell.lru_misses
                };
                Some(if r.data_refs == 0 {
                    0.0
                } else {
                    misses as f64 / r.data_refs as f64
                })
            })
            .collect();
        crate::common::average(&rates)
    }

    /// Renders the averaged data-side miss-rate grid (LRU, with FIFO at
    /// the widest cell as a policy footnote).
    pub fn render(&self) -> String {
        let mut header: Vec<String> = vec!["size \\ ways".into()];
        header.extend(ASSOCS.iter().map(|a| format!("{a}")));
        let mut t = Table::new(header);
        for &size in &SIZES {
            let mut row: Vec<String> = vec![format!("{}KB", size >> 10)];
            row.extend(
                ASSOCS
                    .iter()
                    .map(|&a| rate(self.avg_data_miss_rate(size, a, false))),
            );
            t.row(row);
        }
        format!(
            "Multi-geometry sweep: avg D-cache LRU miss rate, {} cells per side \
             answered in one pass per policy\n{}\n\
             FIFO at 4KB 2-way: {} (LRU: {})\n",
            SIZES.len() * ASSOCS.len(),
            t.render(),
            rate(self.avg_data_miss_rate(4096, 2, true)),
            rate(self.avg_data_miss_rate(4096, 2, false)),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_covers_all_cells_and_rows_are_complete() {
        let cfg = ExperimentConfig::with_scale(8_000);
        let s = run(&cfg);
        assert_eq!(s.rows.len(), 6);
        for r in &s.rows {
            assert_eq!(r.instr.len(), SIZES.len() * ASSOCS.len());
            assert_eq!(r.data.len(), SIZES.len() * ASSOCS.len());
            assert!(r.instr_refs > 0 && r.data_refs > 0);
            for c in r.instr.iter().chain(&r.data) {
                assert!(c.lru_misses <= r.instr_refs.max(r.data_refs));
            }
        }
        assert!(s.row(Benchmark::Ccom).is_some());
        assert!(s.render().contains("4KB"));
    }

    #[test]
    fn lru_miss_counts_obey_mattson_inclusion_per_set_count() {
        // The theorem the engine rests on: at a FIXED set count, LRU
        // misses are non-increasing in associativity (more ways per set
        // never evict earlier). Cells sharing a set count lie on the
        // grid's (size × 2, ways × 2) diagonals.
        let cfg = ExperimentConfig::with_scale(8_000);
        let s = run(&cfg);
        for r in &s.rows {
            for cells in [&r.instr, &r.data] {
                for a in cells.iter() {
                    for b in cells.iter() {
                        let same_sets = a.size / a.associativity == b.size / b.associativity;
                        if same_sets && a.associativity < b.associativity {
                            assert!(
                                b.lru_misses <= a.lru_misses,
                                "{}: inclusion violated between {a:?} and {b:?}",
                                r.benchmark
                            );
                        }
                    }
                }
            }
        }
    }
}
