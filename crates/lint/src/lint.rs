//! The lint catalog: every invariant `jouppi-lint` enforces.

use std::fmt;

/// Identifies one lint in the catalog.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LintId {
    /// Ambient time sources (`Instant`, `SystemTime`, `UNIX_EPOCH`) in
    /// simulation crates.
    AmbientTime,
    /// Non-`jouppi` randomness (`rand::…`, `thread_rng`, `RandomState`,
    /// …) in simulation crates.
    AmbientRng,
    /// Default-hasher `HashMap`/`HashSet` in simulation crates.
    DefaultHasher,
    /// `unwrap`/`expect`/`panic!`/`todo!`/… in `jouppi-serve` request
    /// handling.
    ServePanic,
    /// Crate root missing `#![forbid(unsafe_code)]`.
    ForbidUnsafe,
    /// `dbg!` anywhere, or `println!`-family macros in library code.
    DebugPrint,
    /// `Ordering::Relaxed` in crates whose cross-thread counters feed
    /// reported results.
    RelaxedOrdering,
    /// A cycle in the per-crate graph of nested lock acquisitions
    /// (potential deadlock).
    LockOrder,
    /// A blocking call (`recv`, `join`, `sleep`, socket I/O, …) while a
    /// lock guard is live in scope.
    BlockingUnderLock,
    /// Long-lived server/sweep collection state that only grows —
    /// no eviction, pruning, or capacity path anywhere in the file.
    UnboundedGrowth,
    /// A `Result` discarded with `let _ =` or a bare trailing `.ok()` in
    /// non-test code.
    SwallowedResult,
    /// An `as` cast to a narrower integer type on a computed value
    /// feeding counters or JSON results.
    TruncatingCast,
    /// An undocumented panic site (`panic!`-family macro or bare
    /// `.unwrap()`) transitively reachable from a serve request-handling
    /// entrypoint.
    PanicReachability,
    /// An ambient time/RNG/env/filesystem/default-hasher source
    /// transitively reachable from the cache-keyed simulate path.
    TransitivePurity,
    /// A request-derived integer flowing into `with_capacity`/`reserve`/
    /// `vec![_; n]` without a bounds check, across call edges.
    UntrustedSizeTaint,
    /// A call made while a lock guard is live whose callee (transitively)
    /// blocks.
    LockHeldAcrossCall,
    /// A malformed suppression directive (unknown lint, missing reason).
    BadSuppression,
    /// A suppression directive that matched no finding.
    UnusedSuppression,
}

/// Every catalog entry, in reporting order.
pub const ALL_LINTS: [LintId; 18] = [
    LintId::AmbientTime,
    LintId::AmbientRng,
    LintId::DefaultHasher,
    LintId::ServePanic,
    LintId::ForbidUnsafe,
    LintId::DebugPrint,
    LintId::RelaxedOrdering,
    LintId::LockOrder,
    LintId::BlockingUnderLock,
    LintId::UnboundedGrowth,
    LintId::SwallowedResult,
    LintId::TruncatingCast,
    LintId::PanicReachability,
    LintId::TransitivePurity,
    LintId::UntrustedSizeTaint,
    LintId::LockHeldAcrossCall,
    LintId::BadSuppression,
    LintId::UnusedSuppression,
];

impl LintId {
    /// The kebab-case name used in reports and suppression directives.
    pub fn name(self) -> &'static str {
        match self {
            LintId::AmbientTime => "ambient-time",
            LintId::AmbientRng => "ambient-rng",
            LintId::DefaultHasher => "default-hasher",
            LintId::ServePanic => "serve-panic",
            LintId::ForbidUnsafe => "forbid-unsafe",
            LintId::DebugPrint => "debug-print",
            LintId::RelaxedOrdering => "relaxed-ordering",
            LintId::LockOrder => "lock-order",
            LintId::BlockingUnderLock => "blocking-under-lock",
            LintId::UnboundedGrowth => "unbounded-growth",
            LintId::SwallowedResult => "swallowed-result",
            LintId::TruncatingCast => "truncating-cast",
            LintId::PanicReachability => "panic-reachability",
            LintId::TransitivePurity => "transitive-purity",
            LintId::UntrustedSizeTaint => "untrusted-size-taint",
            LintId::LockHeldAcrossCall => "lock-held-across-call",
            LintId::BadSuppression => "bad-suppression",
            LintId::UnusedSuppression => "unused-suppression",
        }
    }

    /// Parses a directive/report name back into an id.
    pub fn from_name(name: &str) -> Option<LintId> {
        ALL_LINTS.iter().copied().find(|l| l.name() == name)
    }

    /// One-line description for `--list` and the docs.
    pub fn summary(self) -> &'static str {
        match self {
            LintId::AmbientTime => {
                "no ambient time sources (Instant/SystemTime/UNIX_EPOCH) in simulation crates \
                 — results must be a pure function of (trace, config, seed)"
            }
            LintId::AmbientRng => {
                "no ambient randomness (rand::, thread_rng, from_entropy, RandomState, …) in \
                 simulation crates — all randomness flows from the seeded jouppi PRNG"
            }
            LintId::DefaultHasher => {
                "no default-hasher HashMap/HashSet in simulation crates — use the FxHash types \
                 from jouppi_cache::line_hash (deterministic, fast) or a BTree collection"
            }
            LintId::ServePanic => {
                "no unwrap/expect/panic!/todo!/unreachable!/unimplemented! in jouppi-serve \
                 — request handling returns 4xx/5xx documents, never panics"
            }
            LintId::ForbidUnsafe => {
                "every crate root (lib.rs, main.rs, src/bin/*.rs) carries \
                 #![forbid(unsafe_code)]"
            }
            LintId::DebugPrint => {
                "no dbg! anywhere and no println!/print!/eprintln!/eprint! in library code \
                 — libraries return strings; binaries do the printing"
            }
            LintId::RelaxedOrdering => {
                "Ordering::Relaxed on counters that feed reported results needs a written \
                 justification (fetch_add totals are exact, cross-variable ordering is not)"
            }
            LintId::LockOrder => {
                "nested lock acquisitions must form a cycle-free order per crate — a cycle \
                 (A held while taking B, B held while taking A) is a potential deadlock"
            }
            LintId::BlockingUnderLock => {
                "no blocking call (recv/join/sleep/accept/connect/read/write) while a lock \
                 guard is live — drop the guard first, or the lock convoys every thread"
            }
            LintId::UnboundedGrowth => {
                "long-lived collection state in serve/experiments must have an eviction, \
                 pruning, or capacity path — push/insert with no shrink leaks under load"
            }
            LintId::SwallowedResult => {
                "no `let _ = …` or bare trailing `.ok()` discarding a call's Result in \
                 non-test code — handle the error, propagate it, or suppress with the reason \
                 the failure is benign"
            }
            LintId::TruncatingCast => {
                "no `as` cast to a narrower integer on computed values that feed /metrics \
                 counters or JSON results — use try_from so overflow is an error, not a \
                 silent wrap"
            }
            LintId::PanicReachability => {
                "no undocumented panic site — panic!-family macro or bare .unwrap() — \
                 transitively reachable from a serve request-handling entrypoint; \
                 .expect(\"invariant\") documents a checked contract and is accepted"
            }
            LintId::TransitivePurity => {
                "no ambient time/RNG/env/filesystem/default-hasher source transitively \
                 reachable from the cache-keyed simulate path — the result cache memoizes \
                 on (organization, workload, scale, seed) alone"
            }
            LintId::UntrustedSizeTaint => {
                "request-derived integers must be bounds-checked before flowing into \
                 with_capacity/reserve/vec![_; n] — an attacker-chosen length is an \
                 allocation-size DoS, across call edges too"
            }
            LintId::LockHeldAcrossCall => {
                "no call to a (transitively) blocking function while a lock guard is live \
                 — the callee's recv/join/sleep convoys every thread behind the lock"
            }
            LintId::BadSuppression => {
                "suppression directives must name a known lint and carry a non-empty reason"
            }
            LintId::UnusedSuppression => {
                "suppression directives that match no finding must be deleted"
            }
        }
    }

    /// Whether findings of this lint may themselves be suppressed.
    /// Directive-hygiene lints may not, or a stale directive could hide
    /// itself.
    pub fn suppressible(self) -> bool {
        !matches!(self, LintId::BadSuppression | LintId::UnusedSuppression)
    }
}

impl fmt::Display for LintId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One lint hit: a location plus a human-readable message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// 1-based source line.
    pub line: u32,
    /// Which lint fired.
    pub lint: LintId,
    /// What was found and what to do instead.
    pub message: String,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for lint in ALL_LINTS {
            assert_eq!(LintId::from_name(lint.name()), Some(lint));
            assert!(!lint.summary().is_empty());
        }
        assert_eq!(LintId::from_name("no-such-lint"), None);
    }

    #[test]
    fn hygiene_lints_are_not_suppressible() {
        assert!(!LintId::BadSuppression.suppressible());
        assert!(!LintId::UnusedSuppression.suppressible());
        assert!(LintId::AmbientTime.suppressible());
    }
}
