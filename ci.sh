#!/usr/bin/env bash
# Offline CI gate: formatting, lints, and the tier-1 verify from
# ROADMAP.md. Everything here must pass with no network access.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets --release -- -D warnings

echo "==> jouppi-lint: determinism/robustness invariants"
cargo build --release -p jouppi-lint
./target/release/jouppi-lint --root . --workspace
./target/release/jouppi-lint --root . --workspace --json > /tmp/jouppi_lint_ci.json

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> build examples and benchmark binaries"
cargo build --release --examples
cargo build --release -p jouppi-bench --bin loadgen --bin sweep-bench

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> serve integration tests"
cargo test --release -q -p jouppi-serve --test integration

echo "==> sweep-bench smoke: fused vs per-cell schedules must agree"
./target/release/sweep-bench --smoke
echo "    lint status: $(grep -q '"clean":true' /tmp/jouppi_lint_ci.json && echo clean || echo DIRTY) (jouppi-lint --workspace --json)"

echo "==> loadgen smoke run"
./target/release/loadgen 120 4 /tmp/BENCH_serve_ci.json
grep -q '"benchmark": "loadgen"' /tmp/BENCH_serve_ci.json

echo "CI OK"
