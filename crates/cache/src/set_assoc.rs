//! The generic set-associative cache model.

use jouppi_trace::{Addr, LineAddr};

use crate::replacement::XorShift64;
use crate::{CacheGeometry, CacheStats, ReplacementPolicy};

/// Outcome of a demand access to a [`Cache`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessResult {
    /// The line was resident.
    Hit,
    /// The line was not resident; it has been filled, evicting `victim`
    /// (if the target way held a valid line).
    Miss {
        /// The line displaced by the fill, if any. This is exactly the line
        /// a victim cache would capture.
        victim: Option<LineAddr>,
    },
}

impl AccessResult {
    /// Returns `true` for [`AccessResult::Hit`].
    #[inline]
    pub const fn is_hit(&self) -> bool {
        matches!(self, AccessResult::Hit)
    }

    /// Returns `true` for [`AccessResult::Miss`].
    #[inline]
    pub const fn is_miss(&self) -> bool {
        !self.is_hit()
    }
}

#[derive(Clone, Copy, Debug)]
struct Way {
    line: LineAddr,
    /// Last-use time under LRU; insertion time under FIFO; unused by Random.
    stamp: u64,
}

#[derive(Clone, Debug, Default)]
struct CacheSet {
    ways: Vec<Way>,
}

/// A tag-only set-associative cache (direct-mapped through fully
/// associative) with a configurable replacement policy.
///
/// Two API levels are provided:
///
/// * [`Cache::access`] / [`Cache::access_line`] — a complete demand access:
///   lookup, fill-on-miss, and statistics. This is what plain baseline
///   simulations use.
/// * The primitives [`Cache::lookup`], [`Cache::fill`],
///   [`Cache::invalidate`], and [`Cache::replace_resident`] — used by the
///   augmented organizations in `jouppi-core` (victim caches need to swap
///   lines; stream buffers fill the cache from the buffer). The primitives
///   do **not** update [`Cache::stats`]; composite organizations keep their
///   own counters.
///
/// # Examples
///
/// ```
/// use jouppi_cache::{AccessResult, Cache, CacheGeometry};
/// use jouppi_trace::Addr;
///
/// # fn main() -> Result<(), jouppi_cache::GeometryError> {
/// let mut c = Cache::new(CacheGeometry::direct_mapped(64, 16)?);
/// assert!(c.access(Addr::new(0)).is_miss());
/// assert!(c.access(Addr::new(8)).is_hit());     // same line
/// // 64B direct-mapped cache of 16B lines = 4 sets; 0 and 64 collide:
/// match c.access(Addr::new(64)) {
///     AccessResult::Miss { victim } => assert_eq!(victim, Some(Addr::new(0).line(16))),
///     AccessResult::Hit => unreachable!(),
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct Cache {
    geom: CacheGeometry,
    policy: ReplacementPolicy,
    sets: Vec<CacheSet>,
    stats: CacheStats,
    tick: u64,
    rng: XorShift64,
}

impl Cache {
    /// Creates an empty cache with LRU replacement (exact LRU; for a
    /// direct-mapped cache the policy is irrelevant).
    pub fn new(geom: CacheGeometry) -> Self {
        Cache::with_policy(geom, ReplacementPolicy::Lru)
    }

    /// Creates an empty cache with the given replacement policy.
    pub fn with_policy(geom: CacheGeometry, policy: ReplacementPolicy) -> Self {
        let sets = vec![CacheSet::default(); geom.num_sets() as usize];
        Cache {
            geom,
            policy,
            sets,
            stats: CacheStats::default(),
            tick: 0,
            rng: XorShift64::new(0x9e37_79b9_7f4a_7c15),
        }
    }

    /// The cache's geometry.
    #[inline]
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geom
    }

    /// The replacement policy in use.
    #[inline]
    pub fn policy(&self) -> ReplacementPolicy {
        self.policy
    }

    /// Demand-access statistics accumulated by [`Cache::access`].
    #[inline]
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets the demand-access statistics (resident lines are kept).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Performs a full demand access for a byte address: lookup, fill on
    /// miss, and statistics update.
    pub fn access(&mut self, addr: Addr) -> AccessResult {
        let line = self.geom.line_of(addr);
        self.access_line(line)
    }

    /// Performs a full demand access for a line address.
    pub fn access_line(&mut self, line: LineAddr) -> AccessResult {
        self.stats.accesses += 1;
        if self.lookup(line) {
            self.stats.hits += 1;
            AccessResult::Hit
        } else {
            self.stats.misses += 1;
            let victim = self.fill(line);
            if victim.is_some() {
                self.stats.evictions += 1;
            }
            AccessResult::Miss { victim }
        }
    }

    /// Checks residency without updating replacement state or statistics.
    pub fn probe(&self, line: LineAddr) -> bool {
        let set = &self.sets[self.geom.set_of(line)];
        set.ways.iter().any(|w| w.line == line)
    }

    /// Looks up a line: on a hit the line's recency is updated (for LRU) and
    /// `true` is returned; on a miss nothing changes and `false` is
    /// returned. Statistics are *not* updated.
    pub fn lookup(&mut self, line: LineAddr) -> bool {
        self.tick += 1;
        let tick = self.tick;
        let set = &mut self.sets[self.geom.set_of(line)];
        match set.ways.iter_mut().find(|w| w.line == line) {
            Some(way) => {
                if self.policy == ReplacementPolicy::Lru {
                    way.stamp = tick;
                }
                true
            }
            None => false,
        }
    }

    /// Fills a line into the cache, evicting per the replacement policy if
    /// the set is full. Returns the displaced line, if any. Statistics are
    /// *not* updated.
    ///
    /// If the line is already resident this is a no-op returning `None`
    /// (composites may race a prefetch against a demand fill).
    pub fn fill(&mut self, line: LineAddr) -> Option<LineAddr> {
        self.tick += 1;
        let tick = self.tick;
        let assoc = self.geom.associativity() as usize;
        let policy = self.policy;
        let set_idx = self.geom.set_of(line);
        if self.sets[set_idx].ways.iter().any(|w| w.line == line) {
            return None;
        }
        if self.sets[set_idx].ways.len() < assoc {
            self.sets[set_idx].ways.push(Way { line, stamp: tick });
            return None;
        }
        let victim_idx = match policy {
            ReplacementPolicy::Lru | ReplacementPolicy::Fifo => {
                let set = &self.sets[set_idx];
                set.ways
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, w)| w.stamp)
                    .map(|(i, _)| i)
                    .expect("full set is nonempty")
            }
            ReplacementPolicy::Random => self.rng.below(assoc),
        };
        let set = &mut self.sets[set_idx];
        let victim = set.ways[victim_idx].line;
        set.ways[victim_idx] = Way { line, stamp: tick };
        Some(victim)
    }

    /// Removes a line from the cache. Returns `true` if it was resident.
    pub fn invalidate(&mut self, line: LineAddr) -> bool {
        let set = &mut self.sets[self.geom.set_of(line)];
        match set.ways.iter().position(|w| w.line == line) {
            Some(idx) => {
                set.ways.swap_remove(idx);
                true
            }
            None => false,
        }
    }

    /// Replaces resident line `old` with `new` in place, marking `new` as
    /// most recently used. Returns `false` (and changes nothing) if `old` is
    /// not resident or `new` maps to a different set.
    ///
    /// This is the cache half of a victim-cache swap: the requested line
    /// moves from the victim cache into the way its conflict partner
    /// occupied.
    pub fn replace_resident(&mut self, old: LineAddr, new: LineAddr) -> bool {
        if self.geom.set_of(old) != self.geom.set_of(new) {
            return false;
        }
        self.tick += 1;
        let tick = self.tick;
        let set = &mut self.sets[self.geom.set_of(old)];
        match set.ways.iter_mut().find(|w| w.line == old) {
            Some(way) => {
                way.line = new;
                way.stamp = tick;
                true
            }
            None => false,
        }
    }

    /// Number of currently resident lines.
    pub fn resident_count(&self) -> usize {
        self.sets.iter().map(|s| s.ways.len()).sum()
    }

    /// Iterates over all resident lines (set order, then way order).
    pub fn resident_lines(&self) -> impl Iterator<Item = LineAddr> + '_ {
        self.sets.iter().flat_map(|s| s.ways.iter().map(|w| w.line))
    }

    /// Empties the cache (statistics are kept).
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            set.ways.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dm(size: u64, line: u64) -> Cache {
        Cache::new(CacheGeometry::direct_mapped(size, line).unwrap())
    }

    fn l(n: u64) -> LineAddr {
        LineAddr::new(n)
    }

    #[test]
    fn direct_mapped_conflict_eviction() {
        let mut c = dm(64, 16); // 4 sets
        assert_eq!(c.access_line(l(0)), AccessResult::Miss { victim: None });
        assert_eq!(c.access_line(l(0)), AccessResult::Hit);
        // line 4 maps to set 0 as well
        assert_eq!(
            c.access_line(l(4)),
            AccessResult::Miss { victim: Some(l(0)) }
        );
        assert_eq!(
            c.access_line(l(0)),
            AccessResult::Miss { victim: Some(l(4)) }
        );
        assert_eq!(c.stats().accesses, 4);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 3);
        assert_eq!(c.stats().evictions, 2);
    }

    #[test]
    fn two_way_lru_keeps_recently_used() {
        let geom = CacheGeometry::new(64, 16, 2).unwrap(); // 2 sets, 2-way
        let mut c = Cache::new(geom);
        // Set 0 holds lines 0, 2, 4, ... (even lines).
        c.access_line(l(0));
        c.access_line(l(2));
        c.access_line(l(0)); // touch 0: now 2 is LRU
        assert_eq!(
            c.access_line(l(4)),
            AccessResult::Miss { victim: Some(l(2)) }
        );
        assert!(c.probe(l(0)));
        assert!(c.probe(l(4)));
    }

    #[test]
    fn fifo_ignores_touches() {
        let geom = CacheGeometry::new(32, 16, 2).unwrap(); // 1 set, 2-way
        let mut c = Cache::with_policy(geom, ReplacementPolicy::Fifo);
        c.access_line(l(0));
        c.access_line(l(1));
        c.access_line(l(0)); // hit; FIFO order unchanged
        assert_eq!(
            c.access_line(l(2)),
            AccessResult::Miss { victim: Some(l(0)) }
        );
    }

    #[test]
    fn random_policy_evicts_something_from_full_set() {
        let geom = CacheGeometry::new(64, 16, 4).unwrap(); // 1 set, 4-way
        let mut c = Cache::with_policy(geom, ReplacementPolicy::Random);
        for i in 0..4 {
            assert_eq!(c.access_line(l(i)), AccessResult::Miss { victim: None });
        }
        match c.access_line(l(10)) {
            AccessResult::Miss { victim: Some(v) } => assert!(v.get() < 4),
            other => panic!("expected eviction, got {other:?}"),
        }
        assert_eq!(c.resident_count(), 4);
    }

    #[test]
    fn probe_does_not_disturb_lru() {
        let geom = CacheGeometry::new(32, 16, 2).unwrap();
        let mut c = Cache::new(geom);
        c.access_line(l(0));
        c.access_line(l(1));
        assert!(c.probe(l(0))); // must NOT make 0 MRU
        assert_eq!(
            c.access_line(l(2)),
            AccessResult::Miss { victim: Some(l(0)) }
        );
    }

    #[test]
    fn fill_is_idempotent_for_resident_lines() {
        let mut c = dm(64, 16);
        c.fill(l(0));
        assert_eq!(c.fill(l(0)), None);
        assert_eq!(c.resident_count(), 1);
    }

    #[test]
    fn invalidate_removes() {
        let mut c = dm(64, 16);
        c.access_line(l(0));
        assert!(c.invalidate(l(0)));
        assert!(!c.invalidate(l(0)));
        assert!(!c.probe(l(0)));
        assert_eq!(c.access_line(l(0)), AccessResult::Miss { victim: None });
    }

    #[test]
    fn replace_resident_swaps_in_place() {
        let mut c = dm(64, 16);
        c.access_line(l(0));
        // 0 and 4 are conflict partners in a 4-set cache.
        assert!(c.replace_resident(l(0), l(4)));
        assert!(!c.probe(l(0)));
        assert!(c.probe(l(4)));
        // old not resident:
        assert!(!c.replace_resident(l(0), l(4)));
        // different sets:
        assert!(!c.replace_resident(l(4), l(5)));
    }

    #[test]
    fn flush_clears_lines_keeps_stats() {
        let mut c = dm(64, 16);
        c.access_line(l(0));
        c.flush();
        assert_eq!(c.resident_count(), 0);
        assert_eq!(c.stats().accesses, 1);
        c.reset_stats();
        assert_eq!(c.stats().accesses, 0);
    }

    #[test]
    fn byte_address_access_uses_line_size() {
        let mut c = dm(4096, 16);
        c.access(Addr::new(0x100));
        assert!(c.access(Addr::new(0x10f)).is_hit());
        assert!(c.access(Addr::new(0x110)).is_miss());
    }

    #[test]
    fn resident_lines_enumerates_all() {
        let mut c = dm(64, 16);
        c.access_line(l(0));
        c.access_line(l(1));
        let mut lines: Vec<_> = c.resident_lines().collect();
        lines.sort();
        assert_eq!(lines, vec![l(0), l(1)]);
    }

    #[test]
    fn fully_associative_equals_lru_set_behaviour() {
        let geom = CacheGeometry::fully_associative(64, 16).unwrap(); // 4 lines
        let mut c = Cache::new(geom);
        for i in 0..4 {
            c.access_line(l(i * 100)); // arbitrary lines all share set 0
        }
        c.access_line(l(0)); // touch first
        match c.access_line(l(999)) {
            AccessResult::Miss { victim } => assert_eq!(victim, Some(l(100))),
            AccessResult::Hit => panic!("expected miss"),
        }
    }
}
