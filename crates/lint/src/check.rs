//! The checker: runs the active lints over one lexed source file.
//!
//! Pipeline per file: lex → locate `#[cfg(test)]`/`#[test]` regions →
//! parse suppression directives from comments → scan tokens for each
//! active v1 lint → parse the AST and run the v2 structural analyses →
//! apply suppressions → report unused directives.
//!
//! # Single-file vs. workspace facts
//!
//! Most lints resolve within one file, but **lock-order** needs the
//! whole crate's acquisition graph: an A→B edge in one file is only a
//! deadlock when some other file holds B while taking A. So the checker
//! has two entry points: [`check_source_facts`] returns the resolved
//! findings *plus* the file's lock edges and its pending `lock-order`
//! suppressions (for the workspace scan to finish the job), while
//! [`check_source`] — the single-file convenience — resolves lock-order
//! against the file's own edges alone.
//!
//! # Suppression directives
//!
//! ```text
//! // jouppi-lint: allow(<lint>) — <reason>
//! // jouppi-lint: allow-file(<lint>) — <reason>
//! ```
//!
//! A trailing `allow` applies to findings on its own line; a standalone
//! `allow` (nothing but whitespace before it) applies to the next line
//! of code. `allow-file` covers the whole file. The reason is required —
//! a directive without one is itself a finding (`bad-suppression`), and
//! a directive that suppresses nothing is `unused-suppression`. The
//! separator before the reason may be `—`, `–`, `-`, or `:`.

use std::time::{Duration, Instant};

use crate::analyses::{self, GuardedCall, LockEdge};
use crate::lexer::{lex, Lexed, TokKind, Token};
use crate::lint::{Finding, LintId};
use crate::parser::{parse, Ast};
use crate::policy::{lints_for, FileContext};

/// Lints that only resolve once the whole workspace is assembled: the
/// crate-wide lock graph, plus the four call-graph analyses. Their
/// suppression directives stay pending through phase one.
pub const WORKSPACE_LINTS: [LintId; 5] = [
    LintId::LockOrder,
    LintId::PanicReachability,
    LintId::TransitivePurity,
    LintId::UntrustedSizeTaint,
    LintId::LockHeldAcrossCall,
];

/// Everything the workspace scan needs from one file: its resolved
/// findings plus the facts that only resolve workspace-wide.
#[derive(Clone, Debug, Default)]
pub struct FileFacts {
    /// Findings from every single-file lint, suppressed and sorted.
    pub findings: Vec<Finding>,
    /// Nested-acquisition edges (outside test regions) for the crate's
    /// lock graph.
    pub lock_edges: Vec<LockEdge>,
    /// Calls captured under a live guard (outside test regions), for the
    /// workspace lock-held-across-call pass.
    pub guarded_calls: Vec<GuardedCall>,
    /// The parsed AST, retained when any call-graph lint is active so
    /// the workspace scan can build the graph without re-parsing.
    pub ast: Option<Ast>,
    /// `#[cfg(test)]`/`#[test]` line ranges (graph nodes exclude them).
    pub test_ranges: Vec<(u32, u32)>,
    /// Suppression directives naming a workspace lint, held open until
    /// the workspace phases resolve.
    pub pending: Vec<PendingSuppression>,
    /// Wall-clock cost per stage, for the `--timings` report.
    pub timings: Vec<(&'static str, Duration)>,
}

/// A workspace-lint suppression awaiting cross-file resolution.
#[derive(Clone, Debug)]
pub struct PendingSuppression {
    /// Line of the directive comment.
    pub line: u32,
    /// The workspace lints the directive names.
    pub lints: Vec<LintId>,
    /// Whether the directive is `allow-file`.
    pub file_scope: bool,
    /// For line directives: the line a finding must be on to match.
    pub target_line: Option<u32>,
    /// Whether the directive already suppressed something (its other
    /// named lints may have matched in phase one).
    pub used: bool,
}

impl PendingSuppression {
    /// Whether this directive covers a `lint` finding on `line`.
    pub fn covers(&self, lint: LintId, line: u32) -> bool {
        self.lints.contains(&lint) && (self.file_scope || self.target_line == Some(line))
    }
}

/// The unused-suppression finding for a pending directive that never
/// matched.
pub fn unused_pending(p: &PendingSuppression) -> Finding {
    Finding {
        line: p.line,
        lint: LintId::UnusedSuppression,
        message: format!(
            "suppression for `{}` matches no finding — delete it",
            p.lints
                .iter()
                .map(|l| l.name())
                .collect::<Vec<_>>()
                .join(", ")
        ),
    }
}

/// Checks one source file, returning findings sorted by line.
/// Lock-order cycles are resolved against this file's edges alone; the
/// workspace scan resolves them crate-wide instead.
pub fn check_source(ctx: &FileContext, src: &str) -> Vec<Finding> {
    let mut facts = check_source_facts(ctx, src);
    let tagged: Vec<(String, LockEdge)> = facts
        .lock_edges
        .iter()
        .map(|e| (ctx.rel_path.clone(), e.clone()))
        .collect();
    for (_, finding) in analyses::lock_order_findings(&tagged) {
        if !suppress_pending(&mut facts.pending, LintId::LockOrder, finding.line) {
            facts.findings.push(finding);
        }
    }
    // The interprocedural lints cannot resolve from one file; only a
    // directive that names nothing else is knowably unused here.
    for p in &facts.pending {
        if !p.used && p.lints.iter().all(|&l| l == LintId::LockOrder) {
            facts.findings.push(unused_pending(p));
        }
    }
    facts.findings.sort_by_key(|f| (f.line, f.lint.name()));
    facts.findings
}

/// Marks the first pending suppression covering a `lint` finding on
/// `line` used; returns whether one matched.
pub fn suppress_pending(pending: &mut [PendingSuppression], lint: LintId, line: u32) -> bool {
    for p in pending.iter_mut() {
        if p.covers(lint, line) {
            p.used = true;
            return true;
        }
    }
    false
}

/// Checks one source file, returning findings plus cross-file facts.
pub fn check_source_facts(ctx: &FileContext, src: &str) -> FileFacts {
    let active = lints_for(ctx);
    if active.is_empty() {
        // Test files: nothing applies, including directive hygiene.
        return FileFacts::default();
    }
    let mut timings = Vec::new();
    let t0 = Instant::now();
    let lexed = lex(src);
    let test_ranges = test_regions(&lexed.tokens);
    let in_test = |line: u32| test_ranges.iter().any(|&(a, b)| line >= a && line <= b);

    let (mut directives, mut findings) = parse_directives(&lexed, &in_test);

    for &lint in &active {
        scan_lint(lint, ctx, &lexed, &in_test, &mut findings);
    }
    timings.push(("lex+v1-lints", t0.elapsed()));

    let needs_ast = active.iter().any(|l| {
        matches!(
            l,
            LintId::LockOrder
                | LintId::BlockingUnderLock
                | LintId::UnboundedGrowth
                | LintId::SwallowedResult
                | LintId::TruncatingCast
                | LintId::PanicReachability
                | LintId::TransitivePurity
                | LintId::UntrustedSizeTaint
                | LintId::LockHeldAcrossCall
        )
    });
    let graph_lints = active.iter().any(|l| {
        matches!(
            l,
            LintId::PanicReachability
                | LintId::TransitivePurity
                | LintId::UntrustedSizeTaint
                | LintId::LockHeldAcrossCall
        )
    });
    let mut lock_edges = Vec::new();
    let mut guarded_calls = Vec::new();
    let mut kept_ast = None;
    if needs_ast {
        let t0 = Instant::now();
        let ast = parse(&lexed);
        timings.push(("parse", t0.elapsed()));
        let out = analyses::run(ctx, &active, &ast);
        findings.extend(out.findings.into_iter().filter(|f| !in_test(f.line)));
        lock_edges = out
            .lock_edges
            .into_iter()
            .filter(|e| !in_test(e.line))
            .collect();
        guarded_calls = out
            .guarded_calls
            .into_iter()
            .filter(|c| !in_test(c.line))
            .collect();
        timings.extend(out.timings);
        if graph_lints {
            kept_ast = Some(ast);
        }
    }

    // Apply suppressions to suppressible findings.
    findings.retain(|f| {
        if !f.lint.suppressible() {
            return true;
        }
        for d in directives.iter_mut() {
            let name_matches = d.lints.contains(&f.lint);
            let scope_matches = d.file_scope || d.target_line == Some(f.line);
            if name_matches && scope_matches {
                d.used = true;
                return false;
            }
        }
        true
    });

    // Directives naming a workspace lint stay pending — their findings
    // only materialize once the workspace phases run.
    let mut pending = Vec::new();
    for d in &directives {
        let workspace_named: Vec<LintId> = d
            .lints
            .iter()
            .copied()
            .filter(|l| WORKSPACE_LINTS.contains(l))
            .collect();
        if !workspace_named.is_empty() {
            pending.push(PendingSuppression {
                line: d.line,
                lints: workspace_named,
                file_scope: d.file_scope,
                target_line: d.target_line,
                used: d.used,
            });
        } else if !d.used {
            findings.push(Finding {
                line: d.line,
                lint: LintId::UnusedSuppression,
                message: format!(
                    "suppression for `{}` matches no finding — delete it",
                    d.lints
                        .iter()
                        .map(|l| l.name())
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            });
        }
    }

    findings.sort_by_key(|f| (f.line, f.lint.name()));
    FileFacts {
        findings,
        lock_edges,
        guarded_calls,
        ast: kept_ast,
        test_ranges,
        pending,
        timings,
    }
}

/// A parsed, well-formed suppression directive.
struct Directive {
    line: u32,
    lints: Vec<LintId>,
    file_scope: bool,
    /// For line directives: the line findings must be on to match.
    target_line: Option<u32>,
    used: bool,
}

/// The marker every directive starts with (after the comment introducer).
const MARKER: &str = "jouppi-lint:";

/// Extracts directives from comments, resolving standalone directives to
/// the next code line. Malformed directives become findings.
fn parse_directives(
    lexed: &Lexed,
    in_test: &dyn Fn(u32) -> bool,
) -> (Vec<Directive>, Vec<Finding>) {
    let mut directives = Vec::new();
    let mut findings = Vec::new();
    for comment in &lexed.comments {
        let Some(at) = comment.text.find(MARKER) else {
            continue;
        };
        if in_test(comment.line) {
            continue; // Lints don't run in test regions; nor do directives.
        }
        // Doc comments (`///`, `//!`, `/** … */`, `/*! … */`) document the
        // directive syntax; only plain comments carry live directives.
        let t = comment.text.as_str();
        if t.starts_with("///")
            || t.starts_with("//!")
            || t.starts_with("/**")
            || t.starts_with("/*!")
        {
            continue;
        }
        let rest = comment.text[at + MARKER.len()..].trim();
        match parse_one(rest) {
            Ok((lints, file_scope)) => {
                let target_line = if file_scope {
                    None
                } else if comment.owns_line {
                    next_code_line(&lexed.tokens, comment.line)
                } else {
                    Some(comment.line)
                };
                directives.push(Directive {
                    line: comment.line,
                    lints,
                    file_scope,
                    target_line,
                    used: false,
                });
            }
            Err(why) => findings.push(Finding {
                line: comment.line,
                lint: LintId::BadSuppression,
                message: why,
            }),
        }
    }
    (directives, findings)
}

/// Parses `allow(<lints>) <sep> <reason>` / `allow-file(…)`; returns the
/// lints and whether the directive is file-scoped.
fn parse_one(rest: &str) -> Result<(Vec<LintId>, bool), String> {
    let (file_scope, body) = if let Some(b) = rest.strip_prefix("allow-file(") {
        (true, b)
    } else if let Some(b) = rest.strip_prefix("allow(") {
        (false, b)
    } else {
        return Err(format!(
            "malformed directive: expected `allow(<lint>) — <reason>` or \
             `allow-file(<lint>) — <reason>`, got `{rest}`"
        ));
    };
    let Some((names, after)) = body.split_once(')') else {
        return Err("malformed directive: missing `)` after lint name".to_owned());
    };
    let mut lints = Vec::new();
    for name in names.split(',') {
        let name = name.trim();
        match LintId::from_name(name) {
            Some(l) if l.suppressible() => lints.push(l),
            Some(l) => {
                return Err(format!("lint `{}` may not be suppressed", l.name()));
            }
            None => return Err(format!("unknown lint `{name}` in directive")),
        }
    }
    if lints.is_empty() {
        return Err("directive names no lint".to_owned());
    }
    let reason = after
        .trim_start_matches(|c: char| c.is_whitespace() || matches!(c, '—' | '–' | '-' | ':'))
        .trim();
    if reason.is_empty() {
        return Err(
            "suppression needs a reason: `jouppi-lint: allow(<lint>) — <why this is sound>`"
                .to_owned(),
        );
    }
    Ok((lints, file_scope))
}

/// The first line after `line` that carries a code token.
fn next_code_line(tokens: &[Token], line: u32) -> Option<u32> {
    tokens.iter().map(|t| t.line).find(|&l| l > line)
}

/// Line ranges covered by `#[cfg(test)]` / `#[test]` items (attribute
/// line through the item's closing brace).
fn test_regions(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if !(tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('['))) {
            i += 1;
            continue;
        }
        let attr_line = tokens[i].line;
        let Some((content_start, close)) = bracket_span(tokens, i + 1) else {
            break;
        };
        let content = &tokens[content_start..close];
        if !is_test_attribute(content) {
            i = close + 1;
            continue;
        }
        // Skip any further attributes, then find the item body.
        let mut j = close + 1;
        while tokens[j..].first().is_some_and(|t| t.is_punct('#'))
            && tokens.get(j + 1).is_some_and(|t| t.is_punct('['))
        {
            match bracket_span(tokens, j + 1) {
                Some((_, c)) => j = c + 1,
                None => break,
            }
        }
        // The region runs to the close of the item's outermost brace
        // block; an item ending in `;` before any `{` has no body.
        let mut depth = 0usize;
        let mut end_line = attr_line;
        let mut entered = false;
        while j < tokens.len() {
            match &tokens[j].kind {
                TokKind::Punct(';') if depth == 0 => {
                    end_line = tokens[j].line;
                    break;
                }
                TokKind::Punct('{') => {
                    depth += 1;
                    entered = true;
                }
                TokKind::Punct('}') => {
                    depth = depth.saturating_sub(1);
                    if entered && depth == 0 {
                        end_line = tokens[j].line;
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        if j >= tokens.len() {
            end_line = tokens.last().map_or(attr_line, |t| t.line);
        }
        regions.push((attr_line, end_line));
        i = j + 1;
    }
    regions
}

/// Given the index of a `[`, returns `(first content index, index of the
/// matching `]`)`.
fn bracket_span(tokens: &[Token], open: usize) -> Option<(usize, usize)> {
    let mut depth = 0usize;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return Some((open + 1, k));
            }
        }
    }
    None
}

/// Whether attribute content tokens are exactly `test` or `cfg(test)`.
/// (`cfg(not(test))` and friends are *not* test attributes.)
fn is_test_attribute(content: &[Token]) -> bool {
    match content {
        [t] => t.ident() == Some("test"),
        [c, o, t, p] => {
            c.ident() == Some("cfg")
                && o.is_punct('(')
                && t.ident() == Some("test")
                && p.is_punct(')')
        }
        _ => false,
    }
}

/// Runs one lint's token scan, appending findings.
fn scan_lint(
    lint: LintId,
    ctx: &FileContext,
    lexed: &Lexed,
    in_test: &dyn Fn(u32) -> bool,
    findings: &mut Vec<Finding>,
) {
    let tokens = &lexed.tokens;
    let mut hit = |line: u32, message: String| {
        if !in_test(line) {
            findings.push(Finding {
                line,
                lint,
                message,
            });
        }
    };
    match lint {
        LintId::AmbientTime => {
            for t in tokens {
                if let Some(name @ ("Instant" | "SystemTime" | "UNIX_EPOCH")) = t.ident() {
                    hit(
                        t.line,
                        format!(
                            "ambient time source `{name}` in a simulation crate — results \
                             must depend only on (trace, config, seed)"
                        ),
                    );
                }
            }
        }
        LintId::AmbientRng => {
            for (i, t) in tokens.iter().enumerate() {
                let Some(name) = t.ident() else { continue };
                // `SmallRng` is deliberately absent: jouppi_trace::SmallRng
                // is the blessed seeded PRNG and shares the name of its
                // `rand` counterpart.
                let ambient = matches!(
                    name,
                    "thread_rng"
                        | "ThreadRng"
                        | "OsRng"
                        | "StdRng"
                        | "from_entropy"
                        | "getrandom"
                        | "RandomState"
                ) || (name == "rand" && path_sep_follows(tokens, i));
                if ambient {
                    hit(
                        t.line,
                        format!(
                            "ambient randomness `{name}` in a simulation crate — draw from \
                             the seeded jouppi_workloads PRNG instead"
                        ),
                    );
                }
            }
        }
        LintId::DefaultHasher => {
            for (i, t) in tokens.iter().enumerate() {
                let Some(name @ ("HashMap" | "HashSet")) = t.ident() else {
                    continue;
                };
                let required_commas = if name == "HashMap" { 2 } else { 1 };
                if !has_hasher_param(tokens, i + 1, required_commas) {
                    hit(
                        t.line,
                        format!(
                            "default-hasher `{name}` in a simulation crate — use \
                             jouppi_cache::line_hash::Fx{name} (deterministic) or a \
                             BTree collection"
                        ),
                    );
                }
            }
        }
        LintId::ServePanic => {
            for (i, t) in tokens.iter().enumerate() {
                if let Some(name @ ("unwrap" | "expect")) = t.ident() {
                    if i > 0 && tokens[i - 1].is_punct('.') {
                        hit(
                            t.line,
                            format!(
                                "`.{name}()` in jouppi-serve — map the error to a 4xx/5xx \
                                 response or propagate it with `?`"
                            ),
                        );
                    }
                }
                if let Some(name @ ("panic" | "todo" | "unimplemented" | "unreachable")) = t.ident()
                {
                    if tokens.get(i + 1).is_some_and(|n| n.is_punct('!')) {
                        hit(
                            t.line,
                            format!(
                                "`{name}!` in jouppi-serve — the request loop must never \
                                 panic; return an error response instead"
                            ),
                        );
                    }
                }
            }
        }
        LintId::ForbidUnsafe => {
            if !has_forbid_unsafe(tokens) {
                findings.push(Finding {
                    line: 1,
                    lint,
                    message: format!(
                        "crate root `{}` is missing `#![forbid(unsafe_code)]`",
                        ctx.rel_path
                    ),
                });
            }
        }
        LintId::DebugPrint => {
            for (i, t) in tokens.iter().enumerate() {
                let Some(name) = t.ident() else { continue };
                if !tokens.get(i + 1).is_some_and(|n| n.is_punct('!')) {
                    continue;
                }
                if name == "dbg" {
                    hit(
                        t.line,
                        "`dbg!` left in committed code — remove it".to_owned(),
                    );
                } else if !ctx.is_bin && matches!(name, "println" | "print" | "eprintln" | "eprint")
                {
                    hit(
                        t.line,
                        format!(
                            "`{name}!` in library code — return the text to the caller \
                             (binaries do the printing)"
                        ),
                    );
                }
            }
        }
        LintId::RelaxedOrdering => {
            for (i, t) in tokens.iter().enumerate() {
                if t.ident() == Some("Relaxed")
                    && i >= 3
                    && tokens[i - 1].is_punct(':')
                    && tokens[i - 2].is_punct(':')
                    && tokens[i - 3].ident() == Some("Ordering")
                {
                    hit(
                        t.line,
                        "`Ordering::Relaxed` on a cross-thread counter that feeds reported \
                         results — justify why relaxed is exact here (suppress with a \
                         reason) or use a stronger ordering"
                            .to_owned(),
                    );
                }
            }
        }
        // The v2 structural analyses run on the AST (see
        // `crate::analyses`), and the v3 interprocedural analyses on the
        // workspace call graph (`crate::interproc`) — not the token
        // stream.
        LintId::LockOrder
        | LintId::BlockingUnderLock
        | LintId::UnboundedGrowth
        | LintId::SwallowedResult
        | LintId::TruncatingCast
        | LintId::PanicReachability
        | LintId::TransitivePurity
        | LintId::UntrustedSizeTaint
        | LintId::LockHeldAcrossCall
        | LintId::BadSuppression
        | LintId::UnusedSuppression => {}
    }
}

/// Whether `::` immediately follows the token at `i`.
fn path_sep_follows(tokens: &[Token], i: usize) -> bool {
    tokens.get(i + 1).is_some_and(|a| a.is_punct(':'))
        && tokens.get(i + 2).is_some_and(|b| b.is_punct(':'))
}

/// Whether the generic argument list starting after token `i` (either
/// `<…>` or turbofish `::<…>`) carries at least `required_commas`
/// top-level commas — i.e. an explicit hasher parameter. No generics at
/// all (`HashMap::new()`, a bare `use … ::HashMap;`) means the default
/// hasher.
fn has_hasher_param(tokens: &[Token], mut i: usize, required_commas: usize) -> bool {
    // Skip a turbofish's `::`.
    if path_sep_follows(tokens, i.wrapping_sub(1)) {
        i += 2;
    }
    if !tokens.get(i).is_some_and(|t| t.is_punct('<')) {
        return false;
    }
    let mut depth = 0usize;
    let mut commas = 0usize;
    let mut k = i;
    while k < tokens.len() {
        let t = &tokens[k];
        match t.kind {
            TokKind::Punct('<') => depth += 1,
            TokKind::Punct('>') => {
                // `->` in a fn-pointer type parameter is not a close.
                let arrow = k > 0 && tokens[k - 1].is_punct('-') && tokens[k - 1].pos + 1 == t.pos;
                if !arrow {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return commas >= required_commas;
                    }
                }
            }
            TokKind::Punct(',') if depth == 1 => commas += 1,
            _ => {}
        }
        k += 1;
    }
    false
}

/// Whether the token stream contains `#![forbid(unsafe_code)]`.
fn has_forbid_unsafe(tokens: &[Token]) -> bool {
    tokens.windows(8).any(|w| {
        w[0].is_punct('#')
            && w[1].is_punct('!')
            && w[2].is_punct('[')
            && w[3].ident() == Some("forbid")
            && w[4].is_punct('(')
            && w[5].ident() == Some("unsafe_code")
            && w[6].is_punct(')')
            && w[7].is_punct(']')
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::classify;

    fn sim_ctx() -> FileContext {
        classify("crates/core/src/fixture.rs").expect("sim context")
    }

    fn run(ctx: &FileContext, src: &str) -> Vec<Finding> {
        check_source(ctx, src)
    }

    #[test]
    fn cfg_test_regions_are_exempt() {
        let src = "\
fn a() {}
#[cfg(test)]
mod tests {
    use std::time::Instant;
    #[test]
    fn t() { let _ = Instant::now(); }
}
";
        assert!(run(&sim_ctx(), src).is_empty());
    }

    #[test]
    fn cfg_not_test_is_not_exempt() {
        let src = "#[cfg(not(test))]\nfn f() { let t = Instant::now(); }\n";
        let f = run(&sim_ctx(), src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].lint, LintId::AmbientTime);
    }

    #[test]
    fn standalone_directive_covers_next_line() {
        let src = "\
// jouppi-lint: allow(ambient-time) — progress timing only, not results
let t = Instant::now();
";
        assert!(run(&sim_ctx(), src).is_empty());
    }

    #[test]
    fn trailing_directive_covers_its_line() {
        let src = "let t = Instant::now(); // jouppi-lint: allow(ambient-time) — timing only\n";
        assert!(run(&sim_ctx(), src).is_empty());
    }

    #[test]
    fn directive_without_reason_is_a_finding() {
        let src = "// jouppi-lint: allow(ambient-time)\nlet t = Instant::now();\n";
        let f = run(&sim_ctx(), src);
        assert!(f.iter().any(|f| f.lint == LintId::BadSuppression));
        // The finding it tried to suppress still fires.
        assert!(f.iter().any(|f| f.lint == LintId::AmbientTime));
    }

    #[test]
    fn unknown_lint_in_directive_is_a_finding() {
        let src = "// jouppi-lint: allow(no-such) — because\nfn f() {}\n";
        let f = run(&sim_ctx(), src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].lint, LintId::BadSuppression);
    }

    #[test]
    fn unused_directive_is_a_finding() {
        let src = "// jouppi-lint: allow(ambient-time) — just in case\nfn f() {}\n";
        let f = run(&sim_ctx(), src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].lint, LintId::UnusedSuppression);
    }

    #[test]
    fn allow_file_covers_everything() {
        let src = "\
// jouppi-lint: allow-file(default-hasher) — len()-only sets, order never observed
use std::collections::HashSet;
fn f() -> HashSet<u64> { HashSet::new() }
";
        assert!(run(&sim_ctx(), src).is_empty());
    }

    #[test]
    fn hasher_param_heuristic() {
        let flagged = |src: &str| {
            run(&sim_ctx(), src)
                .iter()
                .filter(|f| f.lint == LintId::DefaultHasher)
                .count()
        };
        assert_eq!(flagged("struct S { m: HashMap<u64, u32> }"), 1);
        assert_eq!(
            flagged("struct S { m: HashMap<u64, u32, FxBuildHasher> }"),
            0
        );
        assert_eq!(flagged("struct S { s: HashSet<u64, FxBuildHasher> }"), 0);
        assert_eq!(flagged("struct S { s: HashSet<u64> }"), 1);
        assert_eq!(flagged("use std::collections::HashMap;"), 1);
        assert_eq!(flagged("let m = HashMap::new();"), 1);
        assert_eq!(flagged("let m: BTreeMap<u64, u32> = BTreeMap::new();"), 0);
        // fn-pointer arrow inside the generics must not close the list.
        assert_eq!(flagged("struct S { m: HashMap<u64, fn(u8) -> u16, H> }"), 0);
    }

    #[test]
    fn serve_panic_matches_exact_idents_only() {
        let ctx = classify("crates/serve/src/fixture.rs").expect("serve context");
        let src = "\
fn f(r: Result<u8, ()>) {
    let a = r.unwrap();
    let b = r.expect(\"x\");
    let c = r.unwrap_or_else(|_| 0);
    let d = r.unwrap_or_default();
    std::panic::catch_unwind(|| ());
    panic!(\"boom\");
}
";
        let f = run(&ctx, src);
        let panics: Vec<u32> = f
            .iter()
            .filter(|f| f.lint == LintId::ServePanic)
            .map(|f| f.line)
            .collect();
        assert_eq!(panics, vec![2, 3, 7]);
    }

    #[test]
    fn forbid_unsafe_required_on_crate_roots_only() {
        let root = classify("crates/cache/src/lib.rs").expect("root");
        let module = classify("crates/cache/src/lru.rs").expect("module");
        let src = "fn f() {}\n";
        assert!(run(&root, src)
            .iter()
            .any(|f| f.lint == LintId::ForbidUnsafe));
        assert!(run(&module, src).is_empty());
        let good = "#![forbid(unsafe_code)]\nfn f() {}\n";
        assert!(run(&root, good).is_empty());
    }

    #[test]
    fn debug_print_policy() {
        let lib = classify("crates/report/src/fixture.rs").expect("lib");
        let bin = classify("crates/cli/src/bin/fixture.rs").expect("bin");
        let src = "fn f() { println!(\"x\"); dbg!(1); }";
        let lib_lints: Vec<LintId> = run(&lib, src).iter().map(|f| f.lint).collect();
        assert_eq!(lib_lints, vec![LintId::DebugPrint, LintId::DebugPrint]);
        // Binaries may print, but dbg! is still flagged; the missing
        // forbid(unsafe_code) also fires since bin files are crate roots.
        let bin_findings = run(&bin, src);
        let dbg_only: Vec<&str> = bin_findings
            .iter()
            .filter(|f| f.lint == LintId::DebugPrint)
            .map(|f| f.message.as_str())
            .collect();
        assert_eq!(dbg_only.len(), 1);
        assert!(dbg_only[0].contains("dbg!"));
    }

    #[test]
    fn relaxed_ordering_needs_the_full_path() {
        let ctx = classify("crates/experiments/src/fixture.rs").expect("experiments");
        let src = "\
fn f(c: &AtomicU64) {
    c.load(Ordering::Relaxed);
    c.load(Ordering::SeqCst);
    let Relaxed = 1;
}
";
        let f = run(&ctx, src);
        let relaxed: Vec<u32> = f
            .iter()
            .filter(|f| f.lint == LintId::RelaxedOrdering)
            .map(|f| f.line)
            .collect();
        assert_eq!(relaxed, vec![2]);
    }

    #[test]
    fn literals_never_trip_lints() {
        let src = r#"
let a = "Instant::now() HashMap<u64,u64> .unwrap() Ordering::Relaxed";
let b = 'I';
// Instant in a comment is fine too.
"#;
        assert!(run(&sim_ctx(), src).is_empty());
        let serve = classify("crates/serve/src/fixture.rs").expect("serve");
        assert!(run(&serve, src).is_empty());
    }

    #[test]
    fn ambient_rng_catalog() {
        let f = run(
            &sim_ctx(),
            "use rand::Rng; fn f() { let r = thread_rng(); }\n",
        );
        assert_eq!(f.iter().filter(|f| f.lint == LintId::AmbientRng).count(), 2);
        // `rand` as a local name without `::` is fine.
        assert!(run(&sim_ctx(), "let rand = 3;\n").is_empty());
        // The repo's own seeded PRNG shares `rand`'s `SmallRng` name and
        // is the sanctioned entropy source — never ambient.
        assert!(run(
            &sim_ctx(),
            "use jouppi_trace::SmallRng; fn f() { let r = SmallRng::seed_from_u64(7); }\n"
        )
        .is_empty());
    }

    #[test]
    fn doc_comments_never_carry_directives() {
        // Docs that *describe* the syntax must not register as live
        // directives (which would then be flagged bad/unused).
        let src = "\
//! Suppress with `// jouppi-lint: allow(<lint>) — <reason>`.
/// Or file-wide: `// jouppi-lint: allow-file(ambient-time) — reason`.
fn f() {}
";
        assert!(run(&sim_ctx(), src).is_empty());
    }

    #[test]
    fn multiple_lints_in_one_directive() {
        let src = "\
use std::collections::HashMap; // jouppi-lint: allow(default-hasher, ambient-rng) — fixture exercising a two-lint directive
";
        let f = run(&sim_ctx(), src);
        // default-hasher suppressed; ambient-rng unused half is fine
        // because the directive as a whole was used.
        assert!(f.is_empty());
    }
}
