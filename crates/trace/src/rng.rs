//! A small deterministic PRNG shared by the whole workspace.
//!
//! The build environment has no network access, so the workspace cannot
//! depend on the `rand` crate; this module provides the only randomness
//! the simulator needs. [`SmallRng`] is a xoshiro256++ generator seeded
//! through SplitMix64 (the reference seeding procedure), giving
//! high-quality 64-bit output from a single `u64` seed while staying a
//! few lines of dependency-free code.
//!
//! It grew out of the private xorshift64* generator that the cache
//! crate's `Random` replacement policy carried; that use case now shares
//! this implementation.
//!
//! Determinism is load-bearing: every workload generator is seeded, and
//! the parallel sweep engine relies on traces being reproducible
//! regardless of thread interleaving.
//!
//! # Examples
//!
//! ```
//! use jouppi_trace::SmallRng;
//!
//! let mut a = SmallRng::seed_from_u64(42);
//! let mut b = SmallRng::seed_from_u64(42);
//! assert_eq!(a.next_u64(), b.next_u64());
//! assert!(a.gen_range(0..10u64) < 10);
//! assert!((0.0..1.0).contains(&a.next_f64()));
//! ```

use std::ops::{Range, RangeInclusive};

/// A seedable xoshiro256++ pseudo-random number generator.
///
/// The API mirrors the subset of `rand::Rng` the workloads use
/// ([`SmallRng::gen_range`], [`SmallRng::gen_bool`]), so the workload
/// generators read the same as they would against `rand`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

/// One step of SplitMix64, used to expand a 64-bit seed into state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SmallRng {
    /// Creates a generator from a 64-bit seed.
    ///
    /// Any seed is valid (including 0): the state is expanded with
    /// SplitMix64, which never produces the all-zero state xoshiro
    /// cannot leave.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        SmallRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Produces the next 64 uniformly-distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} not in [0, 1]");
        self.next_f64() < p
    }

    /// A uniform value in the given range.
    ///
    /// Integer ranges use a simple modulo reduction: the bias is below
    /// 2⁻⁵⁰ for every range the simulator draws from (all far smaller
    /// than 2¹⁴ wide) and keeps the generator branch-free.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// A uniform index in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `bound` is zero.
    pub fn below(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0, "below(0) is an empty range");
        (self.next_u64() % bound as u64) as usize
    }
}

/// A range that [`SmallRng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample(self, rng: &mut SmallRng) -> T;
}

macro_rules! impl_int_sample {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut SmallRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let width = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % width) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut SmallRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let width = (hi - lo) as u64;
                if width == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (width + 1)) as $t
            }
        }
    )*};
}

impl_int_sample!(u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut SmallRng) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
        assert!(va.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn zero_seed_is_fine() {
        let mut r = SmallRng::seed_from_u64(0);
        assert_ne!(r.next_u64() | r.next_u64(), 0);
    }

    #[test]
    fn f64_stays_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut r = SmallRng::seed_from_u64(4);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "got {frac}");
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }

    #[test]
    #[should_panic(expected = "not in [0, 1]")]
    fn gen_bool_rejects_bad_probability() {
        let mut r = SmallRng::seed_from_u64(0);
        r.gen_bool(1.5);
    }

    #[test]
    fn int_ranges_cover_bounds() {
        let mut r = SmallRng::seed_from_u64(5);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[r.gen_range(0..10usize)] = true;
            let v = r.gen_range(5..=7u32);
            assert!((5..=7).contains(&v));
            let w = r.gen_range(100..200u64);
            assert!((100..200).contains(&w));
        }
        assert!(seen.iter().all(|&s| s), "0..10 should cover all values");
    }

    #[test]
    fn float_range_scales() {
        let mut r = SmallRng::seed_from_u64(6);
        for _ in 0..1_000 {
            let x = r.gen_range(2.0..10.0);
            assert!((2.0..10.0).contains(&x));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = SmallRng::seed_from_u64(0);
        let _ = r.gen_range(5..5u64);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SmallRng::seed_from_u64(8);
        for _ in 0..1_000 {
            assert!(r.below(10) < 10);
        }
        assert_eq!(r.below(1), 0);
    }

    #[test]
    fn uniformity_is_rough_but_real() {
        let mut r = SmallRng::seed_from_u64(9);
        let mut counts = [0u32; 16];
        for _ in 0..160_000 {
            counts[(r.next_u64() % 16) as usize] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }
}
