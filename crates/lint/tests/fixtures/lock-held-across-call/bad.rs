//! Fixture: a lock guard held across a call whose callee transitively
//! blocks.

pub fn tick(jobs: &Mutex<u64>, rx: &Receiver<u64>) {
    let guard = jobs.lock();
    pump(rx);
    drop(guard);
}

fn pump(rx: &Receiver<u64>) {
    wait_one(rx);
}

fn wait_one(rx: &Receiver<u64>) {
    rx.recv();
}
