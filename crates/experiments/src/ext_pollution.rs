//! Ablation: prefetching into the cache vs. into a buffer.
//!
//! §4.1's design argument for stream buffers: "lines after the line
//! requested on the miss are placed in the buffer and not in the cache.
//! This avoids polluting the cache with data that may never be needed."
//! This experiment quantifies the claim by running the same streams
//! through (a) tagged prefetch into the cache (Smith's best classical
//! scheme) and (b) a stream buffer of the same aggressiveness, and
//! reporting both the demand miss rates and the pollution (prefetched
//! lines evicted unused).

use jouppi_core::prefetch::{PrefetchSimulator, PrefetchTechnique};
use jouppi_core::{AugmentedCache, AugmentedConfig, StreamBufferConfig};
use jouppi_report::Table;
use jouppi_workloads::Benchmark;

use crate::common::{average, baseline_l1, per_benchmark, ExperimentConfig, Side};

/// One benchmark's comparison.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PollutionRow {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// Bare direct-mapped miss rate.
    pub baseline: f64,
    /// Demand miss rate under tagged prefetch (into the cache).
    pub tagged: f64,
    /// Fraction of tagged prefetches evicted unused.
    pub tagged_pollution: f64,
    /// Demand miss rate with a 4-way stream buffer (into the buffer).
    pub stream: f64,
}

/// Which cache side the comparison ran on.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ExtPollution {
    /// The side measured.
    pub side: Side,
    /// One row per benchmark.
    pub rows: [PollutionRow; 6],
}

/// Runs the comparison on one side.
pub fn run(cfg: &ExperimentConfig, side: Side) -> ExtPollution {
    let geom = baseline_l1();
    let rows: Vec<PollutionRow> = per_benchmark(cfg, |b, trace| {
        // Baseline.
        let mut bare = AugmentedCache::new(AugmentedConfig::new(geom));
        // Tagged prefetch into the cache.
        let mut tagged = PrefetchSimulator::new(geom, PrefetchTechnique::Tagged);
        // Stream buffer (4-way so the data side is fairly represented).
        let mut sb = AugmentedCache::new(
            AugmentedConfig::new(geom).multi_way_stream_buffer(4, StreamBufferConfig::new(4)),
        );
        let mut t = 0u64;
        for r in trace.as_slice() {
            if side.matches(r) {
                t += 1;
                bare.access(r.addr);
                tagged.access(r.addr, t);
                sb.access(r.addr);
            }
        }
        let tstats = tagged.stats();
        PollutionRow {
            benchmark: b,
            baseline: bare.stats().demand_miss_rate(),
            tagged: tstats.miss_rate(),
            tagged_pollution: if tstats.prefetches_issued == 0 {
                0.0
            } else {
                tstats.prefetches_wasted as f64 / tstats.prefetches_issued as f64
            },
            stream: sb.stats().demand_miss_rate(),
        }
    })
    .into_iter()
    .map(|(_, r)| r)
    .collect();
    ExtPollution {
        side,
        rows: rows.try_into().expect("six benchmarks"),
    }
}

impl ExtPollution {
    /// Average demand miss rates `(baseline, tagged, stream)`.
    pub fn averages(&self) -> (f64, f64, f64) {
        (
            average(&self.rows.iter().map(|r| r.baseline).collect::<Vec<_>>()),
            average(&self.rows.iter().map(|r| r.tagged).collect::<Vec<_>>()),
            average(&self.rows.iter().map(|r| r.stream).collect::<Vec<_>>()),
        )
    }

    /// Average fraction of tagged prefetches wasted.
    pub fn avg_pollution(&self) -> f64 {
        average(
            &self
                .rows
                .iter()
                .map(|r| r.tagged_pollution)
                .collect::<Vec<_>>(),
        )
    }

    /// Renders the comparison.
    pub fn render(&self) -> String {
        let mut t = Table::new([
            "program",
            "baseline",
            "tagged→cache",
            "wasted prefetches",
            "4-way stream buffer",
        ]);
        for r in &self.rows {
            t.row([
                r.benchmark.name().to_owned(),
                format!("{:.4}", r.baseline),
                format!("{:.4}", r.tagged),
                format!("{:.0}%", 100.0 * r.tagged_pollution),
                format!("{:.4}", r.stream),
            ]);
        }
        let (b, tg, s) = self.averages();
        t.row([
            "average".to_owned(),
            format!("{b:.4}"),
            format!("{tg:.4}"),
            format!("{:.0}%", 100.0 * self.avg_pollution()),
            format!("{s:.4}"),
        ]);
        format!(
            "Ablation: prefetch into the cache (tagged) vs into a buffer \
             ({} demand miss rates; §4.1's pollution argument)\n{}",
            match self.side {
                Side::Instruction => "instruction-side",
                Side::Data => "data-side",
            },
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_schemes_beat_the_baseline_on_instructions() {
        let cfg = ExperimentConfig::with_scale(60_000);
        let e = run(&cfg, Side::Instruction);
        let (base, tagged, stream) = e.averages();
        assert!(tagged < base, "tagged {tagged} vs base {base}");
        assert!(stream < base, "stream {stream} vs base {base}");
    }

    #[test]
    fn data_side_pollution_is_real() {
        // On the data side, tagged prefetch wastes a substantial share of
        // its prefetches (lines evicted unused) — the pollution the stream
        // buffer architecture avoids by construction.
        let cfg = ExperimentConfig::with_scale(60_000);
        let e = run(&cfg, Side::Data);
        assert!(
            e.avg_pollution() > 0.1,
            "expected visible pollution, got {:.2}",
            e.avg_pollution()
        );
        // And the stream buffer matches or beats tagged prefetch without
        // touching the cache contents at all.
        let (_, tagged, stream) = e.averages();
        assert!(
            stream < tagged * 1.25,
            "stream {stream} should be competitive with tagged {tagged}"
        );
        assert!(e.render().contains("wasted"));
    }
}
