//! The instruction-fetch engine: procedures, loops, calls, and returns.
//!
//! Instruction streams dominate the paper's instruction-cache results:
//! conflicts are "widely spaced because the instructions within one
//! procedure will not conflict with each other as long as the procedure
//! size is less than the cache size … instruction conflict misses are most
//! likely when another procedure is called" (§3.1). This module models
//! exactly that structure: a code segment holding procedures back to back,
//! a call-graph random walk with configurable fan-out skew, per-procedure
//! inner loops, and sequential fetch within procedure bodies.

use jouppi_trace::{Addr, SmallRng};

/// Bytes per instruction (the paper's machines are 32-bit RISCs).
pub const INSTR_BYTES: u64 = 4;

/// A procedure: a contiguous run of instructions, optionally containing
/// one inner loop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Proc {
    /// First instruction's byte address.
    pub base: Addr,
    /// Body length in instructions.
    pub len: u32,
    /// Inner loop as `(start, end, iterations)` instruction offsets:
    /// executing instruction `end` jumps back to `start` until the loop
    /// has run `iterations` times per invocation of the procedure.
    pub inner_loop: Option<(u32, u32, u32)>,
}

/// A code segment: procedures packed contiguously.
#[derive(Clone, Debug)]
pub struct CodeLayout {
    procs: Vec<Proc>,
}

impl CodeLayout {
    /// Packs procedures of the given instruction lengths contiguously
    /// starting at `code_base`, with no inner loops.
    ///
    /// # Panics
    ///
    /// Panics if `lengths` is empty or contains a zero.
    pub fn contiguous(code_base: u64, lengths: &[u32]) -> Self {
        assert!(
            !lengths.is_empty(),
            "a program needs at least one procedure"
        );
        let mut procs = Vec::with_capacity(lengths.len());
        let mut base = code_base;
        for &len in lengths {
            assert!(len > 0, "procedures must have at least one instruction");
            procs.push(Proc {
                base: Addr::new(base),
                len,
                inner_loop: None,
            });
            base += u64::from(len) * INSTR_BYTES;
        }
        CodeLayout { procs }
    }

    /// Gives procedure `idx` an inner loop.
    ///
    /// # Panics
    ///
    /// Panics if the loop bounds fall outside the procedure body or are
    /// inverted.
    pub fn with_loop(mut self, idx: usize, start: u32, end: u32, iterations: u32) -> Self {
        let p = &mut self.procs[idx];
        assert!(start < end && end < p.len, "loop must sit inside the body");
        p.inner_loop = Some((start, end, iterations));
        self
    }

    /// The procedures in layout order.
    pub fn procs(&self) -> &[Proc] {
        &self.procs
    }

    /// Total code footprint in bytes.
    pub fn footprint(&self) -> u64 {
        self.procs
            .iter()
            .map(|p| u64::from(p.len) * INSTR_BYTES)
            .sum()
    }
}

/// Tunables for the call-graph random walk.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ExecConfig {
    /// Probability per instruction of calling another procedure (when
    /// below `max_depth`).
    pub call_prob: f64,
    /// Maximum call-stack depth.
    pub max_depth: usize,
    /// Skew of callee selection: callees are ranked and picked with
    /// probability ∝ 1/(rank+1)^`callee_skew`. 0.0 = uniform; larger
    /// values concentrate execution in a few hot procedures (more
    /// instruction-cache locality).
    pub callee_skew: f64,
    /// When a top-level procedure finishes, run the next procedure in
    /// layout order instead of dispatching randomly. Models programs that
    /// execute phases in sequence (`liver`'s 14 kernels).
    pub sequential_dispatch: bool,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            call_prob: 0.02,
            max_depth: 8,
            callee_skew: 1.0,
            sequential_dispatch: false,
        }
    }
}

/// Walks a [`CodeLayout`], producing the instruction-fetch address stream.
///
/// # Examples
///
/// A single straight-line procedure fetches sequentially and wraps:
///
/// ```
/// use jouppi_trace::SmallRng;
/// use jouppi_workloads::exec::{CodeLayout, ExecConfig, Executor, INSTR_BYTES};
///
/// let layout = CodeLayout::contiguous(0x10000, &[4]);
/// let cfg = ExecConfig { call_prob: 0.0, ..ExecConfig::default() };
/// let mut rng = SmallRng::seed_from_u64(1);
/// let mut exec = Executor::new(layout, cfg);
/// let fetches: Vec<u64> = (0..5).map(|_| exec.next_fetch(&mut rng).get()).collect();
/// assert_eq!(fetches, vec![0x10000, 0x10004, 0x10008, 0x1000c, 0x10000]);
/// ```
#[derive(Clone, Debug)]
pub struct Executor {
    layout: CodeLayout,
    cfg: ExecConfig,
    /// Cumulative callee-selection weights over rank.
    cum_weights: Vec<f64>,
    /// Procedure ranks: rank r maps to procedure `rank_to_proc[r]`.
    rank_to_proc: Vec<usize>,
    stack: Vec<Frame>,
    cur: Frame,
}

#[derive(Clone, Copy, Debug)]
struct Frame {
    proc: usize,
    offset: u32,
    loop_iters_left: u32,
}

impl Executor {
    /// Creates an executor starting at the first procedure.
    pub fn new(layout: CodeLayout, cfg: ExecConfig) -> Self {
        let n = layout.procs.len();
        // Rank r has weight 1/(r+1)^skew; identity rank→proc mapping keeps
        // hot procedures at the front of the layout, which is how linkers
        // tend to lay out call-graph-ordered code.
        let mut cum = Vec::with_capacity(n);
        let mut acc = 0.0;
        for r in 0..n {
            acc += 1.0 / ((r + 1) as f64).powf(cfg.callee_skew);
            cum.push(acc);
        }
        let start = Frame {
            proc: 0,
            offset: 0,
            loop_iters_left: layout.procs[0].inner_loop.map_or(0, |(_, _, i)| i),
        };
        Executor {
            layout,
            cfg,
            cum_weights: cum,
            rank_to_proc: (0..n).collect(),
            stack: Vec::new(),
            cur: start,
        }
    }

    /// The code layout being executed.
    pub fn layout(&self) -> &CodeLayout {
        &self.layout
    }

    /// Current call-stack depth (0 = top level).
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Produces the next instruction-fetch address and advances control.
    pub fn next_fetch(&mut self, rng: &mut SmallRng) -> Addr {
        let proc = self.layout.procs[self.cur.proc];
        let addr = proc.base + u64::from(self.cur.offset) * INSTR_BYTES;

        // Advance control flow past the instruction just fetched.
        let at_loop_end = matches!(proc.inner_loop, Some((_, end, _)) if self.cur.offset == end);
        if at_loop_end && self.cur.loop_iters_left > 0 {
            self.cur.loop_iters_left -= 1;
            let (start, _, _) = proc.inner_loop.expect("checked above");
            self.cur.offset = start;
        } else if self.cur.offset + 1 >= proc.len {
            self.return_or_restart(rng);
        } else {
            self.cur.offset += 1;
            // A call site?
            if self.stack.len() < self.cfg.max_depth
                && self.cfg.call_prob > 0.0
                && rng.gen_bool(self.cfg.call_prob)
            {
                let callee = self.pick_callee(rng);
                self.stack.push(self.cur);
                self.cur = self.entry_frame(callee);
            }
        }
        addr
    }

    fn return_or_restart(&mut self, rng: &mut SmallRng) {
        match self.stack.pop() {
            Some(frame) => self.cur = frame,
            None => {
                // Top-level procedure finished: the "main loop" dispatches
                // to another procedure.
                let next = if self.cfg.sequential_dispatch {
                    (self.cur.proc + 1) % self.layout.procs.len()
                } else {
                    self.pick_callee(rng)
                };
                self.cur = self.entry_frame(next);
            }
        }
    }

    fn entry_frame(&self, proc: usize) -> Frame {
        Frame {
            proc,
            offset: 0,
            loop_iters_left: self.layout.procs[proc].inner_loop.map_or(0, |(_, _, i)| i),
        }
    }

    fn pick_callee(&self, rng: &mut SmallRng) -> usize {
        let total = *self.cum_weights.last().expect("nonempty layout");
        let x: f64 = rng.gen_range(0.0..total);
        let rank = self
            .cum_weights
            .partition_point(|&c| c < x)
            .min(self.cum_weights.len() - 1);
        self.rank_to_proc[rank]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(7)
    }

    #[test]
    fn contiguous_layout_packs_back_to_back() {
        let l = CodeLayout::contiguous(0x1000, &[10, 20, 30]);
        assert_eq!(l.procs()[0].base, Addr::new(0x1000));
        assert_eq!(l.procs()[1].base, Addr::new(0x1000 + 40));
        assert_eq!(l.procs()[2].base, Addr::new(0x1000 + 40 + 80));
        assert_eq!(l.footprint(), 60 * INSTR_BYTES);
    }

    #[test]
    fn straight_line_fetch_is_sequential() {
        let l = CodeLayout::contiguous(0, &[8]);
        let cfg = ExecConfig {
            call_prob: 0.0,
            ..ExecConfig::default()
        };
        let mut e = Executor::new(l, cfg);
        let mut r = rng();
        for i in 0..8u64 {
            assert_eq!(e.next_fetch(&mut r), Addr::new(i * 4));
        }
        // Wraps to some procedure start (only one exists).
        assert_eq!(e.next_fetch(&mut r), Addr::new(0));
    }

    #[test]
    fn inner_loop_repeats_body() {
        // 5-instruction proc with a loop over [1..3] running 2 extra times.
        let l = CodeLayout::contiguous(0, &[5]).with_loop(0, 1, 3, 2);
        let cfg = ExecConfig {
            call_prob: 0.0,
            ..ExecConfig::default()
        };
        let mut e = Executor::new(l, cfg);
        let mut r = rng();
        let seq: Vec<u64> = (0..14).map(|_| e.next_fetch(&mut r).get() / 4).collect();
        assert_eq!(seq, vec![0, 1, 2, 3, 1, 2, 3, 1, 2, 3, 4, 0, 1, 2]);
    }

    #[test]
    fn calls_push_and_return_resumes() {
        let l = CodeLayout::contiguous(0, &[100, 10]);
        let cfg = ExecConfig {
            call_prob: 0.5,
            max_depth: 4,
            callee_skew: 0.0,
            sequential_dispatch: false,
        };
        let mut e = Executor::new(l, cfg);
        let mut r = rng();
        let mut max_depth_seen = 0;
        for _ in 0..10_000 {
            e.next_fetch(&mut r);
            max_depth_seen = max_depth_seen.max(e.depth());
        }
        assert!(max_depth_seen > 0, "calls should occur");
        assert!(max_depth_seen <= 4, "depth limit respected");
    }

    #[test]
    fn skew_concentrates_execution() {
        let lengths = vec![50u32; 32];
        let run = |skew: f64| {
            let cfg = ExecConfig {
                call_prob: 0.05,
                max_depth: 6,
                callee_skew: skew,
                sequential_dispatch: false,
            };
            let mut e = Executor::new(CodeLayout::contiguous(0, &lengths), cfg);
            let mut r = rng();
            let mut first_proc_fetches = 0u64;
            let total = 100_000;
            for _ in 0..total {
                let a = e.next_fetch(&mut r).get();
                if a < 50 * 4 {
                    first_proc_fetches += 1;
                }
            }
            first_proc_fetches
        };
        let uniform = run(0.0);
        let skewed = run(2.0);
        assert!(
            skewed > uniform * 2,
            "skew 2.0 ({skewed}) should focus on proc 0 vs uniform ({uniform})"
        );
    }

    #[test]
    fn all_fetches_stay_inside_the_code_segment() {
        let lengths = vec![30u32, 60, 90, 120];
        let layout = CodeLayout::contiguous(0x4_0000, &lengths);
        let lo = 0x4_0000;
        let hi = lo + layout.footprint();
        let mut e = Executor::new(layout, ExecConfig::default());
        let mut r = rng();
        for _ in 0..50_000 {
            let a = e.next_fetch(&mut r).get();
            assert!(a >= lo && a < hi, "fetch {a:#x} escaped [{lo:#x},{hi:#x})");
        }
    }

    #[test]
    fn deterministic_given_same_seed() {
        let make = || {
            let cfg = ExecConfig::default();
            Executor::new(CodeLayout::contiguous(0, &[40, 40, 40]), cfg)
        };
        let mut a = make();
        let mut b = make();
        let mut ra = SmallRng::seed_from_u64(99);
        let mut rb = SmallRng::seed_from_u64(99);
        for _ in 0..10_000 {
            assert_eq!(a.next_fetch(&mut ra), b.next_fetch(&mut rb));
        }
    }

    #[test]
    #[should_panic(expected = "at least one procedure")]
    fn empty_layout_panics() {
        let _ = CodeLayout::contiguous(0, &[]);
    }

    #[test]
    #[should_panic(expected = "inside the body")]
    fn bad_loop_bounds_panic() {
        let _ = CodeLayout::contiguous(0, &[5]).with_loop(0, 2, 5, 3);
    }
}
