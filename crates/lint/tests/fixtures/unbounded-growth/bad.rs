//! Fixture: a long-lived collection in a daemon crate that only ever
//! grows — every request leaks a little memory.

pub struct Sessions {
    log: Vec<u64>,
}

impl Sessions {
    pub fn record(&mut self, id: u64) {
        self.log.push(id);
    }
}
