//! Fused one-pass gang simulation of many cache organizations.
//!
//! The paper's figures are sweeps: one recorded trace replayed against
//! many [`AugmentedCache`] configurations. Replaying per configuration
//! streams the (megabytes-long) trace through the memory hierarchy once
//! per cell; a [`Gang`] instead steps every member organization on each
//! reference, so one pass over the trace drives the whole sweep row and
//! the trace stays hot in the data cache of the *host*.
//!
//! Members never interact — each owns its L1, conflict aid, and stream
//! buffers, exactly as if simulated alone — so interleaving their steps
//! is **bit-identical** to separate passes (pinned by the
//! `fused_per_cell_equivalence` integration test in
//! `jouppi-experiments`).
//!
//! # Examples
//!
//! ```
//! use jouppi_cache::CacheGeometry;
//! use jouppi_core::{AugmentedCache, AugmentedConfig, Gang};
//! use jouppi_trace::Addr;
//!
//! # fn main() -> Result<(), jouppi_cache::GeometryError> {
//! let geom = CacheGeometry::direct_mapped(4096, 16)?;
//! let cfgs: Vec<AugmentedConfig> = (1..=4)
//!     .map(|n| AugmentedConfig::new(geom).victim_cache(n))
//!     .collect();
//! let mut gang = Gang::new(&cfgs);
//! let mut solo = AugmentedCache::new(cfgs[0]);
//! for addr in [0x0u64, 0x1000, 0x0, 0x1000] {
//!     gang.step_addr(Addr::new(addr));
//!     solo.access(Addr::new(addr));
//! }
//! assert_eq!(gang.stats()[0], *solo.stats());
//! # Ok(())
//! # }
//! ```

use jouppi_trace::{Addr, LineAddr, MemRef};

use crate::{AugmentedCache, AugmentedConfig, AugmentedStats};

/// A gang of independent [`AugmentedCache`] organizations stepped in
/// lockstep over a single trace pass.
pub struct Gang {
    members: Vec<AugmentedCache>,
    uniform_line_size: Option<u64>,
}

impl Gang {
    /// Builds one member per configuration, in order.
    pub fn new(cfgs: &[AugmentedConfig]) -> Self {
        let members: Vec<AugmentedCache> = cfgs.iter().map(|&c| AugmentedCache::new(c)).collect();
        let uniform_line_size = members.split_first().and_then(|(first, rest)| {
            let size = first.config().geometry().line_size();
            rest.iter()
                .all(|m| m.config().geometry().line_size() == size)
                .then_some(size)
        });
        Gang {
            members,
            uniform_line_size,
        }
    }

    /// Number of member organizations.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Returns `true` if the gang has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The members' common line size, if they all agree.
    ///
    /// When uniform, callers can derive each reference's line address once
    /// and drive the gang through [`Gang::step_line`]; mixed-line-size
    /// gangs must go through [`Gang::step_addr`].
    pub fn uniform_line_size(&self) -> Option<u64> {
        self.uniform_line_size
    }

    /// Feeds one memory reference to every member.
    pub fn step(&mut self, r: &MemRef) {
        self.step_addr(r.addr);
    }

    /// Feeds one byte address to every member (each derives its own line).
    pub fn step_addr(&mut self, addr: Addr) {
        for m in &mut self.members {
            m.access(addr);
        }
    }

    /// Feeds one pre-derived line address to every member.
    ///
    /// Only valid when [`Gang::uniform_line_size`] is `Some` and `line`
    /// was derived with that size (debug-asserted).
    pub fn step_line(&mut self, line: LineAddr) {
        debug_assert!(
            self.uniform_line_size.is_some(),
            "step_line requires a uniform member line size"
        );
        for m in &mut self.members {
            m.access_line(line);
        }
    }

    /// Per-member statistics, in configuration order.
    pub fn stats(&self) -> Vec<AugmentedStats> {
        self.members.iter().map(|m| *m.stats()).collect()
    }

    /// Consumes the gang, returning per-member statistics.
    pub fn into_stats(self) -> Vec<AugmentedStats> {
        self.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jouppi_cache::CacheGeometry;
    use jouppi_trace::SmallRng;

    fn geom() -> CacheGeometry {
        CacheGeometry::direct_mapped(1024, 16).unwrap()
    }

    fn mixed_configs() -> Vec<AugmentedConfig> {
        let base = AugmentedConfig::new(geom());
        vec![
            base,
            base.miss_cache(2),
            base.victim_cache(4),
            base.multi_way_stream_buffer(4, crate::StreamBufferConfig::new(4)),
        ]
    }

    #[test]
    fn gang_matches_separate_passes_on_random_stream() {
        let cfgs = mixed_configs();
        let mut gang = Gang::new(&cfgs);
        let mut solos: Vec<AugmentedCache> = cfgs.iter().map(|&c| AugmentedCache::new(c)).collect();
        let mut rng = SmallRng::seed_from_u64(0xfeed);
        for _ in 0..20_000 {
            let addr = Addr::new(rng.below(1 << 14) as u64);
            gang.step_addr(addr);
            for s in &mut solos {
                s.access(addr);
            }
        }
        for (g, s) in gang.stats().iter().zip(&solos) {
            assert_eq!(g, s.stats());
        }
    }

    #[test]
    fn step_line_matches_step_addr_for_uniform_gangs() {
        let cfgs = mixed_configs();
        let mut by_line = Gang::new(&cfgs);
        let mut by_addr = Gang::new(&cfgs);
        let size = by_line.uniform_line_size().expect("uniform line size");
        assert_eq!(size, 16);
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let addr = Addr::new(rng.below(1 << 13) as u64);
            by_line.step_line(addr.line(size));
            by_addr.step_addr(addr);
        }
        assert_eq!(by_line.stats(), by_addr.stats());
    }

    #[test]
    fn step_consumes_mem_refs() {
        let cfgs = vec![AugmentedConfig::new(geom())];
        let mut gang = Gang::new(&cfgs);
        gang.step(&MemRef::load(Addr::new(0x40)));
        gang.step(&MemRef::instr(Addr::new(0x44)));
        let stats = gang.into_stats();
        assert_eq!(stats[0].accesses, 2);
        assert_eq!(stats[0].l1_hits, 1);
    }

    #[test]
    fn mixed_line_sizes_have_no_uniform_size() {
        let a = AugmentedConfig::new(CacheGeometry::direct_mapped(1024, 16).unwrap());
        let b = AugmentedConfig::new(CacheGeometry::direct_mapped(1024, 32).unwrap());
        let gang = Gang::new(&[a, b]);
        assert_eq!(gang.uniform_line_size(), None);
        assert_eq!(gang.len(), 2);
        assert!(!gang.is_empty());
        let empty = Gang::new(&[]);
        assert!(empty.is_empty());
        assert_eq!(empty.uniform_line_size(), None);
    }
}
