//! A minimal JSON value model: encode and parse, no dependencies.
//!
//! The whole workspace builds offline, so the service speaks JSON through
//! this hand-rolled module instead of serde. Design points:
//!
//! * Objects are **ordered** (`Vec<(String, Json)>`): encoding is
//!   deterministic, which is what lets the integration tests compare a
//!   served sweep result against the in-process one *bit-for-bit*.
//! * Integers and floats are separate variants so `u64` counters render
//!   exactly and floats render with a decimal point (`"29.0"`, not
//!   `"29"`), keeping `parse(encode(v)) == v`.
//! * The parser is a plain recursive-descent over bytes with a depth
//!   limit; malformed input yields an error with a byte offset, never a
//!   panic.
//!
//! # Examples
//!
//! ```
//! use jouppi_serve::json::Json;
//!
//! let v = Json::obj([("ok", Json::Bool(true)), ("n", Json::Int(3))]);
//! assert_eq!(v.encode(), r#"{"ok":true,"n":3}"#);
//! assert_eq!(Json::parse(&v.encode()).unwrap(), v);
//! ```

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number without a fractional part or exponent.
    Int(i64),
    /// Any other number. Non-finite values encode as `null`.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is preserved by encode.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Looks up a key in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload (also accepts integral floats).
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Json::Int(n) => Some(n),
            Json::Float(f) if f.fract() == 0.0 && f.abs() < 9e15 => Some(f as i64),
            _ => None,
        }
    }

    /// The numeric payload as a float.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Int(n) => Some(n as f64),
            Json::Float(f) => Some(f),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Encodes compactly (no whitespace).
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Encodes compactly with every object's keys sorted (ties keep
    /// insertion order), recursively. Two documents that differ only in
    /// object key order produce identical canonical text, which is what
    /// the result cache hashes into content keys.
    pub fn encode_canonical(&self) -> String {
        match self {
            Json::Arr(items) => {
                let mut out = String::from("[");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&item.encode_canonical());
                }
                out.push(']');
                out
            }
            Json::Obj(pairs) => {
                let mut order: Vec<usize> = (0..pairs.len()).collect();
                order.sort_by(|&a, &b| pairs[a].0.cmp(&pairs[b].0));
                let mut out = String::from("{");
                for (n, &i) in order.iter().enumerate() {
                    if n > 0 {
                        out.push(',');
                    }
                    let (k, v) = &pairs[i];
                    write_string(&mut out, k);
                    out.push(':');
                    out.push_str(&v.encode_canonical());
                }
                out.push('}');
                out
            }
            scalar => scalar.encode(),
        }
    }

    /// Encodes with newlines and two-space indentation.
    pub fn encode_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(n) => out.push_str(&n.to_string()),
            Json::Float(f) => write_float(out, *f),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                    items[i].write(out, indent, depth + 1);
                });
            }
            Json::Obj(pairs) => {
                write_seq(out, indent, depth, '{', '}', pairs.len(), |out, i| {
                    let (k, v) = &pairs[i];
                    write_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                });
            }
        }
    }

    /// Parses a JSON document (one value plus trailing whitespace).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] with the byte offset of the first problem.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after value"));
        }
        Ok(v)
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', step * depth));
    }
    out.push(close);
}

fn write_float(out: &mut String, f: f64) {
    if !f.is_finite() {
        out.push_str("null");
    } else if f == f.trunc() && f.abs() < 1e15 {
        // Force a decimal point so the value re-parses as a Float.
        out.push_str(&format!("{f:.1}"));
    } else {
        out.push_str(&format!("{f}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if u32::from(c) < 0x20 => out.push_str(&format!("\\u{:04x}", u32::from(c))),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: what went wrong and where.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description.
    pub msg: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Nesting beyond this depth is rejected (stack-overflow guard).
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError {
            msg: msg.into(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {what}")))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("invalid literal (expected '{word}')")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'[', "'['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'{', "'{'")?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "':'")?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "'\"'")?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => out.push(self.unicode_escape()?),
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                _ if b < 0x20 => return Err(self.err("raw control character in string")),
                _ => {
                    // Consume the full UTF-8 sequence starting at b.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    if end > self.bytes.len() {
                        return Err(self.err("truncated UTF-8 sequence"));
                    }
                    match std::str::from_utf8(&self.bytes[start..end]) {
                        Ok(s) => out.push_str(s),
                        Err(_) => return Err(self.err("invalid UTF-8 in string")),
                    }
                    self.pos = end;
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let hex4 = |p: &mut Self| -> Result<u32, JsonError> {
            let end = p.pos + 4;
            if end > p.bytes.len() {
                return Err(p.err("truncated \\u escape"));
            }
            let s =
                std::str::from_utf8(&p.bytes[p.pos..end]).map_err(|_| p.err("bad \\u escape"))?;
            let v = u32::from_str_radix(s, 16).map_err(|_| p.err("bad \\u escape"))?;
            p.pos = end;
            Ok(v)
        };
        let hi = hex4(self)?;
        // Surrogate pair?
        if (0xD800..0xDC00).contains(&hi) {
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let lo = hex4(self)?;
                if (0xDC00..0xE000).contains(&lo) {
                    let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    return char::from_u32(c).ok_or_else(|| self.err("bad surrogate pair"));
                }
            }
            return Err(self.err("lone surrogate in \\u escape"));
        }
        char::from_u32(hi).ok_or_else(|| self.err("bad \\u escape"))
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut fractional = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("non-ASCII bytes in number".to_string()))?;
        if !fractional {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Json::Int(n));
            }
        }
        match text.parse::<f64>() {
            Ok(f) if f.is_finite() => Ok(Json::Float(f)),
            _ => Err(self.err(format!("invalid number '{text}'"))),
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Json {
        Json::obj([
            ("name", Json::str("sweep \"x\"\n")),
            ("count", Json::Int(-42)),
            ("rate", Json::Float(29.75)),
            ("whole", Json::Float(29.0)),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            (
                "rows",
                Json::Arr(vec![
                    Json::Int(1),
                    Json::obj([("k", Json::str("v"))]),
                    Json::Arr(vec![]),
                ]),
            ),
        ])
    }

    #[test]
    fn round_trips_compact_and_pretty() {
        let v = sample();
        assert_eq!(Json::parse(&v.encode()).unwrap(), v);
        assert_eq!(Json::parse(&v.encode_pretty()).unwrap(), v);
    }

    #[test]
    fn integral_floats_keep_their_point() {
        assert_eq!(Json::Float(29.0).encode(), "29.0");
        assert_eq!(Json::Float(0.125).encode(), "0.125");
        assert_eq!(Json::Int(29).encode(), "29");
        assert_eq!(Json::Float(f64::NAN).encode(), "null");
    }

    #[test]
    fn object_order_is_preserved() {
        let v = Json::obj([("z", Json::Int(1)), ("a", Json::Int(2))]);
        assert_eq!(v.encode(), r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn canonical_encoding_sorts_keys_recursively() {
        let a = Json::parse(r#"{"z":1,"a":{"y":[{"b":2,"a":1}],"x":0}}"#).unwrap();
        let b = Json::parse(r#"{"a":{"x":0,"y":[{"a":1,"b":2}]},"z":1}"#).unwrap();
        assert_eq!(a.encode_canonical(), b.encode_canonical());
        assert_eq!(
            a.encode_canonical(),
            r#"{"a":{"x":0,"y":[{"a":1,"b":2}]},"z":1}"#
        );
        // Arrays keep their order: different orders stay distinct.
        let c = Json::parse(r#"{"a":[1,2]}"#).unwrap();
        let d = Json::parse(r#"{"a":[2,1]}"#).unwrap();
        assert_ne!(c.encode_canonical(), d.encode_canonical());
    }

    #[test]
    fn accessors() {
        let v = sample();
        assert_eq!(v.get("count").and_then(Json::as_i64), Some(-42));
        assert_eq!(v.get("whole").and_then(Json::as_i64), Some(29));
        assert_eq!(v.get("rate").and_then(Json::as_f64), Some(29.75));
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(
            v.get("rows").and_then(Json::as_arr).map(<[Json]>::len),
            Some(3)
        );
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Null.get("k"), None);
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = Json::parse(r#""a\u00e9\n\t\"\\\u0041 \ud83d\ude00""#).unwrap();
        assert_eq!(v, Json::str("aé\n\t\"\\A 😀"));
        // Encoded control characters round-trip.
        let s = Json::str("\u{0001}bell\u{0007}");
        assert_eq!(Json::parse(&s.encode()).unwrap(), s);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "nul",
            "01x",
            "1.2.3",
            "\"unterminated",
            "[1 2]",
            "{\"a\":1,}",
            "\"\\q\"",
            "\"\\ud800\"",
            "1e999",
            "{\"a\":1} extra",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn depth_limit_is_enforced() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&deep).is_err());
        let ok = "[".repeat(30) + &"]".repeat(30);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn numbers_classify_as_int_or_float() {
        assert_eq!(Json::parse("42").unwrap(), Json::Int(42));
        assert_eq!(Json::parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(Json::parse("42.5").unwrap(), Json::Float(42.5));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Float(1000.0));
        // Beyond i64: falls back to float.
        assert_eq!(
            Json::parse("99999999999999999999").unwrap(),
            Json::Float(1e20)
        );
    }
}
