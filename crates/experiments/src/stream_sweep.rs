//! Figures 4-3 and 4-5: stream-buffer miss removal as a function of the
//! allowed stream-run length.

use jouppi_core::{AugmentedConfig, StreamBufferConfig};
use jouppi_report::{Chart, Series, Table};
use jouppi_workloads::Benchmark;

use crate::common::{
    average, baseline_l1, classify_side, pct_of_misses_removed, record_traces, run_side,
    run_side_gang, ExperimentConfig, Side, GANG_WIDTH,
};
use crate::sweep;

/// One benchmark's cumulative miss-removal curves.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchStream {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// `instr[l]` = % of I-cache misses removed with run length `l`.
    pub instr: Vec<f64>,
    /// Same for the data cache.
    pub data: Vec<f64>,
}

/// A stream-buffer run-length sweep (Figure 4-3 single, 4-5 four-way).
#[derive(Clone, Debug, PartialEq)]
pub struct StreamSweep {
    /// Number of parallel stream-buffer ways (1 or 4).
    pub ways: usize,
    /// Run lengths measured: `0..=max`.
    pub run_lengths: Vec<usize>,
    /// Per-benchmark curves.
    pub benchmarks: Vec<BenchStream>,
}

fn config(ways: usize, run: usize) -> AugmentedConfig {
    let sb = StreamBufferConfig::new(4).max_run(run);
    let base = AugmentedConfig::new(baseline_l1());
    if ways == 1 {
        base.stream_buffer(sb)
    } else {
        base.multi_way_stream_buffer(ways, sb)
    }
}

/// Runs the sweep for run lengths `0..=max_run` with `ways` parallel
/// buffers on the fused engine.
///
/// The unit of scheduled work is one (benchmark × side) cell: it
/// classifies that side once (the total-miss denominator) and then
/// replays the side through [`run_side_gang`] gangs of up to
/// [`GANG_WIDTH`] run-length configurations. Results are bit-identical
/// to [`run_per_cell`] (pinned by the `fused_per_cell_equivalence`
/// test).
pub fn run(cfg: &ExperimentConfig, ways: usize, max_run: usize) -> StreamSweep {
    let geom = baseline_l1();
    let traces = record_traces(cfg);
    let cfgs: Vec<_> = (0..=max_run).map(|run| config(ways, run)).collect();
    let jobs = traces.len() * 2;
    let total: u64 = traces.iter().map(|(_, t)| t.len() as u64).sum();
    // Each cell classifies once, then replays its side once per config.
    let refs_per_job = total / jobs as u64 * (1 + cfgs.len() as u64);
    let rows = sweep::map_jobs_sized(jobs, refs_per_job, |cell| {
        let (_, trace) = &traces[cell / 2];
        let side = Side::BOTH[cell % 2];
        let misses = classify_side(trace, side, geom).0;
        let mut removed = Vec::with_capacity(max_run + 1);
        for chunk in cfgs.chunks(GANG_WIDTH) {
            for stats in run_side_gang(trace, side, chunk) {
                removed.push(pct_of_misses_removed(stats.removed_misses(), misses));
            }
        }
        removed
    });
    assemble(ways, max_run, &traces, |cell| rows[cell].clone())
}

/// Runs the sweep with one scheduled cell per (benchmark × side ×
/// run-length) simulation — the pre-fusion engine, kept as the reference
/// implementation the fused path is checked against.
pub fn run_per_cell(cfg: &ExperimentConfig, ways: usize, max_run: usize) -> StreamSweep {
    let geom = baseline_l1();
    let traces = record_traces(cfg);
    let sides = traces.len() * 2;
    let runs = max_run + 1;
    let misses = sweep::map_jobs(sides, |cell| {
        let (_, trace) = &traces[cell / 2];
        classify_side(trace, Side::BOTH[cell % 2], geom).0
    });
    let removed = sweep::map_jobs(sides * runs, |job| {
        let cell = job / runs;
        let (_, trace) = &traces[cell / 2];
        let stats = run_side(trace, Side::BOTH[cell % 2], config(ways, job % runs));
        pct_of_misses_removed(stats.removed_misses(), misses[cell])
    });
    assemble(ways, max_run, &traces, |cell| {
        removed[cell * runs..(cell + 1) * runs].to_vec()
    })
}

fn assemble(
    ways: usize,
    max_run: usize,
    traces: &[(Benchmark, jouppi_trace::RecordedTrace)],
    curve: impl Fn(usize) -> Vec<f64>,
) -> StreamSweep {
    let benchmarks = traces
        .iter()
        .enumerate()
        .map(|(i, (b, _))| BenchStream {
            benchmark: *b,
            instr: curve(2 * i),
            data: curve(2 * i + 1),
        })
        .collect();
    StreamSweep {
        ways,
        run_lengths: (0..=max_run).collect(),
        benchmarks,
    }
}

impl StreamSweep {
    /// Average % of instruction misses removed at a run length.
    pub fn avg_instr(&self, run: usize) -> f64 {
        self.avg(run, true)
    }

    /// Average % of data misses removed at a run length.
    pub fn avg_data(&self, run: usize) -> f64 {
        self.avg(run, false)
    }

    fn avg(&self, run: usize, instr: bool) -> f64 {
        match self.run_lengths.iter().position(|&l| l == run) {
            Some(idx) => average(
                &self
                    .benchmarks
                    .iter()
                    .map(|b| if instr { b.instr[idx] } else { b.data[idx] })
                    .collect::<Vec<_>>(),
            ),
            None => 0.0,
        }
    }

    /// Curve for one benchmark and side (for shape assertions).
    pub fn benchmark_curve(&self, benchmark: Benchmark, side: Side) -> Option<&[f64]> {
        self.benchmarks
            .iter()
            .find(|b| b.benchmark == benchmark)
            .map(|b| match side {
                Side::Instruction => b.instr.as_slice(),
                Side::Data => b.data.as_slice(),
            })
    }

    /// Renders the averaged chart plus per-benchmark end points.
    pub fn render(&self) -> String {
        let fig = if self.ways == 1 {
            "Figure 4-3: sequential stream buffer performance"
        } else {
            "Figure 4-5: four-way stream buffer performance"
        };
        let max = *self.run_lengths.last().expect("nonempty sweep");
        let mut t = Table::new(["program", "I-miss removed %", "D-miss removed %"]);
        for b in &self.benchmarks {
            t.row([
                b.benchmark.name().to_owned(),
                format!("{:.0}", b.instr[max]),
                format!("{:.0}", b.data[max]),
            ]);
        }
        t.row([
            "average".to_owned(),
            format!("{:.0}", self.avg_instr(max)),
            format!("{:.0}", self.avg_data(max)),
        ]);
        let to_points = |instr: bool| {
            self.run_lengths
                .iter()
                .map(|&l| {
                    (
                        l as f64,
                        if instr {
                            self.avg_instr(l)
                        } else {
                            self.avg_data(l)
                        },
                    )
                })
                .collect()
        };
        let chart = Chart::new(format!("{fig} (cumulative, avg of 6 benchmarks)"), 60, 16)
            .y_range(0.0, 100.0)
            .series(Series::new("L1 I-cache", 'I', to_points(true)))
            .series(Series::new("L1 D-cache", 'D', to_points(false)));
        format!(
            "{fig}\nat max run length {max}:\n{}\n{}",
            t.render(),
            chart.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_buffer_favors_instruction_streams() {
        let cfg = ExperimentConfig::with_scale(60_000);
        let s = run(&cfg, 1, 8);
        // Paper: single buffer removes 72% of I-misses but only 25% of
        // D-misses; the ordering is the load-bearing claim.
        let i = s.avg_instr(8);
        let d = s.avg_data(8);
        assert!(i > d, "I {i} should exceed D {d}");
        assert!(i > 30.0, "I removal too weak: {i}");
    }

    #[test]
    fn four_way_roughly_doubles_data_removal() {
        let cfg = ExperimentConfig::with_scale(60_000);
        let single = run(&cfg, 1, 8);
        let multi = run(&cfg, 4, 8);
        let s = single.avg_data(8);
        let m = multi.avg_data(8);
        assert!(
            m > s * 1.3,
            "4-way data removal {m} should far exceed single {s}"
        );
        // Instruction side barely changes (paper: "virtually unchanged").
        let si = single.avg_instr(8);
        let mi = multi.avg_instr(8);
        assert!(
            (si - mi).abs() < 12.0,
            "I-side shifted too much: {si} vs {mi}"
        );
    }

    #[test]
    fn liver_gains_most_from_multi_way() {
        let cfg = ExperimentConfig::with_scale(60_000);
        let single = run(&cfg, 1, 8);
        let multi = run(&cfg, 4, 8);
        let s = single
            .benchmark_curve(Benchmark::Liver, Side::Data)
            .unwrap()[8];
        let m = multi.benchmark_curve(Benchmark::Liver, Side::Data).unwrap()[8];
        // Paper: liver goes from 7% to 60% removal.
        assert!(m > s + 20.0, "liver: 4-way {m} vs single {s}");
    }

    #[test]
    fn curves_are_cumulative_and_start_at_zero() {
        let cfg = ExperimentConfig::with_scale(30_000);
        let s = run(&cfg, 1, 4);
        for b in &s.benchmarks {
            assert_eq!(
                b.instr[0], 0.0,
                "{}: run 0 must remove nothing",
                b.benchmark
            );
            assert_eq!(b.data[0], 0.0);
            for w in b.instr.windows(2) {
                assert!(w[1] + 1.0 >= w[0], "non-monotone: {:?}", b.instr);
            }
        }
        assert!(s.render().contains("Figure 4-3"));
        assert_eq!(s.avg_instr(999), 0.0);
    }
}
