//! Load generator for the `jouppi-serve` daemon.
//!
//! Boots an in-process server on an ephemeral loopback port, hammers it
//! from several concurrent keep-alive connections with a realistic
//! endpoint mix (`/healthz`, `POST /v1/simulate`, `/metrics`), runs a
//! Zipf-skewed duplicate-request phase against the result cache (same
//! mix with the cache bypassed, then enabled, to measure the served-RPS
//! delta), then deliberately overflows the sweep queue to measure
//! backpressure, and finally drains the daemon gracefully. Writes
//! `BENCH_serve.json`.
//!
//! Usage: `loadgen [REQUESTS] [CONNECTIONS] [OUT_PATH]`
//!        `loadgen --cache-smoke`
//!
//! * `REQUESTS` — total steady-state requests across all connections
//!   (default 600).
//! * `CONNECTIONS` — concurrent keep-alive client connections
//!   (default 4).
//! * `OUT_PATH` — where to write the JSON report (default
//!   `BENCH_serve.json` in the current directory).
//! * `--cache-smoke` — instead of benchmarking, assert the result
//!   cache's observable behavior (miss → hit; bypass stays bypass) and
//!   exit; nonzero on failure. CI's cache gate.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::time::Instant;

use jouppi_bench::{round3, LatencySummary};
use jouppi_serve::json::Json;
use jouppi_serve::server::ServerConfig;
use jouppi_serve::{Client, Server};
use jouppi_trace::SmallRng;
use jouppi_workloads::data::{DataPattern, TableLookup};

/// Instructions per simulate request: small enough that a request is
/// a few milliseconds, large enough to exercise the full replay path.
const SIMULATE_SCALE: u64 = 20_000;

/// Scale for the queue-overflow sweep jobs: big enough that jobs
/// outlive the burst of submissions that must overflow the queue.
const SWEEP_SCALE: u64 = 30_000;

/// Workloads rotated through the simulate mix.
const WORKLOADS: [&str; 3] = ["ccom", "met", "liver"];

/// Zipf exponent for the duplicate-request phase: skewed enough that a
/// handful of hot configurations dominate, like a dashboard refreshing
/// the same sweeps (acceptance floor is skew >= 0.9).
const ZIPF_SKEW: f64 = 1.1;

/// Distinct simulate configurations the Zipf phase draws from.
const ZIPF_DISTINCT: usize = 48;

/// Scale for Zipf-phase simulations: big enough (~milliseconds each)
/// that recomputation, not HTTP framing, dominates a cache-off pass.
const ZIPF_SCALE: u64 = 200_000;

/// Minimum Zipf-phase requests, so hit rates are measured on a stream
/// long enough to converge past the compulsory-miss prefix.
const ZIPF_MIN_REQUESTS: usize = 480;

/// One timed request: endpoint label, latency, status.
struct Sample {
    endpoint: &'static str,
    ms: f64,
    status: u16,
}

fn timed(
    client: &mut Client,
    endpoint: &'static str,
    method: &str,
    path: &str,
    body: Option<&Json>,
) -> Sample {
    let start = Instant::now();
    let status = client
        .request(method, path, body)
        .map(|r| r.status)
        .unwrap_or(0);
    Sample {
        endpoint,
        ms: start.elapsed().as_secs_f64() * 1000.0,
        status,
    }
}

/// One connection's worth of the steady-state mix: mostly simulate,
/// with healthz and metrics sprinkled in the way a probe/scraper would.
fn drive_connection(addr: SocketAddr, requests: usize, worker: usize) -> Vec<Sample> {
    let mut client = Client::connect(addr).expect("loadgen connect");
    let mut samples = Vec::with_capacity(requests);
    for i in 0..requests {
        let sample = match i % 10 {
            0 => timed(&mut client, "healthz", "GET", "/healthz", None),
            5 => timed(&mut client, "metrics", "GET", "/metrics", None),
            _ => {
                let body = Json::obj([
                    (
                        "workload",
                        Json::str(WORKLOADS[(worker + i) % WORKLOADS.len()]),
                    ),
                    ("scale", Json::Int(SIMULATE_SCALE as i64)),
                    ("seed", Json::Int((42 + worker) as i64)),
                    ("victim", Json::Int(4)),
                ]);
                // The steady-state mix bypasses the result cache so its
                // latency numbers keep measuring raw service cost; the
                // Zipf phase below measures the cache on purpose.
                timed(
                    &mut client,
                    "simulate",
                    "POST",
                    "/v1/simulate?cache=bypass",
                    Some(&body),
                )
            }
        };
        samples.push(sample);
    }
    samples
}

/// Fires async sweep submissions faster than the workers can drain them
/// and counts how many are accepted (202) versus shed (503).
fn overflow_burst(addr: SocketAddr, submissions: usize) -> (u64, u64, bool) {
    let mut client = Client::connect(addr).expect("overflow connect");
    let body = Json::obj([
        ("sweep", Json::str("fig_3_1")),
        ("scale", Json::Int(SWEEP_SCALE as i64)),
    ]);
    let (mut accepted, mut shed, mut retry_after) = (0u64, 0u64, false);
    // Bypass the result cache: identical submissions must each take a
    // real queue slot, or the queue can never overflow.
    for _ in 0..submissions {
        let resp = client
            .request("POST", "/v1/sweep?cache=bypass", Some(&body))
            .expect("overflow request");
        match resp.status {
            202 => accepted += 1,
            503 => {
                shed += 1;
                retry_after |= resp.header("retry-after").is_some();
            }
            other => panic!("unexpected overflow status {other}"),
        }
    }
    (accepted, shed, retry_after)
}

/// The simulate body for one Zipf rank: each rank is a distinct
/// (workload, seed) configuration, so distinct ranks never share a
/// cache entry.
fn zipf_body(rank: u64) -> Json {
    Json::obj([
        (
            "workload",
            Json::str(WORKLOADS[rank as usize % WORKLOADS.len()]),
        ),
        ("scale", Json::Int(ZIPF_SCALE as i64)),
        ("seed", Json::Int(1_000 + rank as i64)),
        ("victim", Json::Int(4)),
    ])
}

/// One connection's deterministic Zipf-skewed rank stream. Both passes
/// (cache bypassed and cache enabled) replay exactly this sequence.
fn zipf_ranks(requests: usize, worker: usize) -> Vec<u64> {
    let mut rng = SmallRng::seed_from_u64(0x5eed_2100 + worker as u64);
    let mut table = TableLookup::new(0, ZIPF_DISTINCT, 1, ZIPF_SKEW);
    (0..requests)
        .map(|_| table.next_addr(&mut rng).get())
        .collect()
}

/// Replays the Zipf mix once, returning the wall time and the response
/// body observed for each rank (asserted identical on every repeat).
fn zipf_pass(
    addr: SocketAddr,
    connections: usize,
    per_conn: usize,
    bypass: bool,
) -> (f64, BTreeMap<u64, String>) {
    let path = if bypass {
        "/v1/simulate?cache=bypass"
    } else {
        "/v1/simulate"
    };
    let start = Instant::now();
    let maps: Vec<BTreeMap<u64, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..connections)
            .map(|worker| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("zipf connect");
                    let mut seen: BTreeMap<u64, String> = BTreeMap::new();
                    for rank in zipf_ranks(per_conn, worker) {
                        let resp = client
                            .request("POST", path, Some(&zipf_body(rank)))
                            .expect("zipf request");
                        assert_eq!(resp.status, 200, "zipf simulate failed: {}", resp.text());
                        let text = resp.text();
                        match seen.get(&rank) {
                            None => {
                                seen.insert(rank, text);
                            }
                            Some(previous) => assert_eq!(
                                *previous, text,
                                "rank {rank} responses diverged within a pass"
                            ),
                        }
                    }
                    seen
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall_ms = start.elapsed().as_secs_f64() * 1000.0;
    let mut merged: BTreeMap<u64, String> = BTreeMap::new();
    for map in maps {
        for (rank, text) in map {
            match merged.get(&rank) {
                None => {
                    merged.insert(rank, text);
                }
                Some(previous) => assert_eq!(
                    *previous, text,
                    "rank {rank} responses diverged across connections"
                ),
            }
        }
    }
    (wall_ms, merged)
}

/// Scrapes the three result-cache counters in one round trip.
fn scrape_cache_counters(addr: SocketAddr) -> (u64, u64, u64) {
    let text = Client::connect(addr)
        .and_then(|mut c| c.request("GET", "/metrics", None))
        .map(|r| r.text())
        .unwrap_or_default();
    (
        scrape_counter(&text, "jouppi_result_cache_hits_total"),
        scrape_counter(&text, "jouppi_result_cache_misses_total"),
        scrape_counter(&text, "jouppi_result_cache_coalesced_total"),
    )
}

/// The Zipf duplicate-request phase: replay the same skewed mix with
/// the cache bypassed, then enabled, and report the served-RPS delta
/// with the hit/coalesce counters that account for it.
fn run_zipf_phase(addr: SocketAddr, requests: usize, connections: usize) -> Json {
    let total = requests.max(ZIPF_MIN_REQUESTS);
    let per_conn = total.div_ceil(connections);
    eprintln!(
        "zipf phase: {} requests over {connections} connection(s), \
         skew {ZIPF_SKEW}, {ZIPF_DISTINCT} distinct configs",
        per_conn * connections
    );

    // Pass 1 — cache bypassed: every request pays full recomputation.
    let (off_ms, off_bodies) = zipf_pass(addr, connections, per_conn, true);

    // Pass 2 — cache enabled: same streams, duplicates hit or coalesce.
    let (hits0, misses0, coalesced0) = scrape_cache_counters(addr);
    let (on_ms, on_bodies) = zipf_pass(addr, connections, per_conn, false);
    let (hits1, misses1, coalesced1) = scrape_cache_counters(addr);

    // Cached responses must be byte-identical to uncached ones.
    assert_eq!(
        off_bodies, on_bodies,
        "cache-on responses differ from cache-off responses"
    );

    let (hits, misses, coalesced) = (hits1 - hits0, misses1 - misses0, coalesced1 - coalesced0);
    let n = (per_conn * connections) as f64;
    let rps_off = if off_ms > 0.0 {
        n * 1000.0 / off_ms
    } else {
        0.0
    };
    let rps_on = if on_ms > 0.0 { n * 1000.0 / on_ms } else { 0.0 };
    let speedup = if rps_off > 0.0 { rps_on / rps_off } else { 0.0 };
    eprintln!(
        "zipf phase: {rps_off:.0} -> {rps_on:.0} req/s ({speedup:.1}x); \
         {hits} hit(s), {misses} miss(es), {coalesced} coalesced"
    );

    Json::obj([
        ("skew", Json::Float(ZIPF_SKEW)),
        ("distinct", Json::Int(ZIPF_DISTINCT as i64)),
        ("requests", Json::Int((per_conn * connections) as i64)),
        ("hits", Json::Int(hits as i64)),
        ("misses", Json::Int(misses as i64)),
        ("coalesced", Json::Int(coalesced as i64)),
        (
            "hit_rate",
            Json::Float(round3((hits + coalesced) as f64 / n)),
        ),
        ("coalesce_rate", Json::Float(round3(coalesced as f64 / n))),
        ("rps_cache_off", Json::Float(rps_off.round())),
        ("rps_cache_on", Json::Float(rps_on.round())),
        ("speedup", Json::Float(round3(speedup))),
        ("responses_identical", Json::Bool(true)),
    ])
}

/// CI's cache gate: a repeat request must report a hit, and a bypassed
/// repeat must not. Panics (nonzero exit) on any violation.
fn cache_smoke() {
    let handle = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        ..ServerConfig::default()
    })
    .expect("cache-smoke server");
    let addr = handle.addr();
    let mut client = Client::connect(addr).expect("cache-smoke connect");
    let body = Json::obj([
        ("workload", Json::str("met")),
        ("scale", Json::Int(SIMULATE_SCALE as i64)),
        ("victim", Json::Int(4)),
    ]);
    let note = |resp: &jouppi_serve::ClientResponse| {
        resp.header("x-jouppi-cache").unwrap_or("<none>").to_owned()
    };

    let first = client
        .request("POST", "/v1/simulate", Some(&body))
        .expect("first request");
    assert_eq!(first.status, 200, "{}", first.text());
    assert_eq!(note(&first), "miss", "first request must compute");

    let second = client
        .request("POST", "/v1/simulate", Some(&body))
        .expect("repeat request");
    assert_eq!(second.status, 200, "{}", second.text());
    assert_eq!(note(&second), "hit", "repeat request must hit the cache");
    assert_eq!(
        first.text(),
        second.text(),
        "cached response must be byte-identical"
    );

    let bypassed = client
        .request("POST", "/v1/simulate?cache=bypass", Some(&body))
        .expect("bypass request");
    assert_eq!(bypassed.status, 200, "{}", bypassed.text());
    assert_eq!(note(&bypassed), "bypass", "bypass must not read the cache");
    assert_eq!(
        first.text(),
        bypassed.text(),
        "bypassed response must be byte-identical"
    );

    let (hits, misses, _) = scrape_cache_counters(addr);
    assert_eq!(hits, 1, "exactly the repeat request hits");
    assert_eq!(misses, 1, "exactly the first request misses");
    handle.shutdown();
    eprintln!("cache smoke: miss -> hit -> bypass all behaved; responses byte-identical");
}

/// Pulls one counter out of the Prometheus exposition text.
fn scrape_counter(metrics: &str, name: &str) -> u64 {
    metrics
        .lines()
        .find_map(|l| {
            l.strip_prefix(name)
                .and_then(|rest| rest.trim().parse::<f64>().ok())
        })
        .map(|v| v as u64)
        .unwrap_or(0)
}

fn main() {
    let mut args = std::env::args().skip(1).peekable();
    if args.peek().map(String::as_str) == Some("--cache-smoke") {
        cache_smoke();
        return;
    }
    let requests: usize = args
        .next()
        .map(|r| r.parse().expect("REQUESTS must be an integer"))
        .unwrap_or(600);
    let connections: usize = args
        .next()
        .map(|r| r.parse().expect("CONNECTIONS must be an integer"))
        .unwrap_or(4)
        .max(1);
    let out = args.next().unwrap_or_else(|| "BENCH_serve.json".to_owned());

    let cfg = ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        queue_depth: 2,
        ..ServerConfig::default()
    };
    let handle = Server::start(cfg.clone()).expect("loadgen server");
    let addr = handle.addr();
    eprintln!(
        "loadgen: {requests} requests over {connections} connection(s) against http://{addr}"
    );

    // Steady-state phase.
    let per_conn = requests.div_ceil(connections);
    let start = Instant::now();
    let samples: Vec<Sample> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..connections)
            .map(|w| scope.spawn(move || drive_connection(addr, per_conn, w)))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    let wall_ms = start.elapsed().as_secs_f64() * 1000.0;

    // Zipf duplicate-request phase: cache off vs cache on.
    let zipf = run_zipf_phase(addr, requests, connections);

    // Backpressure phase: overfill the 2-deep queue.
    let submissions = 4 * (cfg.workers + cfg.queue_depth);
    let (accepted, shed, retry_after) = overflow_burst(addr, submissions);

    let metrics_text = Client::connect(addr)
        .and_then(|mut c| c.request("GET", "/metrics", None))
        .map(|r| r.text())
        .unwrap_or_default();
    let refs_simulated = scrape_counter(&metrics_text, "jouppi_refs_simulated_total");

    let stats = handle.shutdown();

    // Aggregate.
    let mut statuses: BTreeMap<u16, u64> = BTreeMap::new();
    for s in &samples {
        *statuses.entry(s.status).or_insert(0) += 1;
    }
    let mut latency = Vec::new();
    for endpoint in ["healthz", "simulate", "metrics"] {
        let subset: Vec<f64> = samples
            .iter()
            .filter(|s| s.endpoint == endpoint)
            .map(|s| s.ms)
            .collect();
        if let Some(summary) = LatencySummary::from_samples(endpoint, &subset) {
            eprintln!(
                "{:>9}: {:>5} reqs, p50 {:>7.3} ms, p99 {:>7.3} ms, max {:>7.3} ms",
                summary.endpoint, summary.requests, summary.p50_ms, summary.p99_ms, summary.max_ms
            );
            latency.push(summary);
        }
    }
    let total = samples.len();
    let rps = if wall_ms > 0.0 {
        total as f64 * 1000.0 / wall_ms
    } else {
        0.0
    };
    eprintln!(
        "throughput: {rps:.0} req/s; overflow: {accepted} accepted, {shed} shed (503); \
         {} job(s) drained at shutdown",
        stats.jobs_completed
    );

    let report = Json::obj([
        ("benchmark", Json::str("loadgen")),
        ("connections", Json::Int(connections as i64)),
        ("requests", Json::Int(total as i64)),
        ("wall_ms", Json::Float(round3(wall_ms))),
        ("requests_per_sec", Json::Float(rps.round())),
        (
            "latency",
            Json::Arr(latency.iter().map(LatencySummary::json).collect()),
        ),
        (
            "statuses",
            Json::Obj(
                statuses
                    .iter()
                    .map(|(code, n)| (code.to_string(), Json::Int(*n as i64)))
                    .collect(),
            ),
        ),
        (
            "overflow",
            Json::obj([
                ("submitted", Json::Int(submissions as i64)),
                ("accepted_202", Json::Int(accepted as i64)),
                ("rejected_503", Json::Int(shed as i64)),
                ("retry_after_seen", Json::Bool(retry_after)),
            ]),
        ),
        ("zipf", zipf),
        ("jobs_drained", Json::Int(stats.jobs_completed as i64)),
        ("refs_simulated", Json::Int(refs_simulated as i64)),
    ])
    .encode_pretty();
    std::fs::write(&out, &report).expect("failed to write the loadgen report");
    eprintln!("wrote {out}");
}
