//! A conservative workspace call graph over the symbol tables.
//!
//! Nodes are the workspace's non-test function declarations; edges are
//! call sites resolved syntactically:
//!
//! 1. **Path calls** (`helper()`, `crate::json::Json::parse(…)`,
//!    `jouppi_core::simulate(…)`) resolve through the file's `use`
//!    imports, `crate`/`self`/`super` prefixes, and the `jouppi_*` →
//!    crate-directory mapping; a two-segment tail also tries
//!    `Type::method` against impl-block self-types (same crate first,
//!    then workspace-wide).
//! 2. **Method calls** (`queue.push(…)`, `self.resolve(…)`) resolve by
//!    receiver-name heuristics: the receiver identifier is matched
//!    against the snake_case of every impl self-type defining that
//!    method (`queue` matches `JobQueue`); `self.…` prefers the
//!    enclosing impl block's type.
//! 3. Anything still unresolved falls back to a workspace-wide
//!    name match — **unique** matches become ordinary edges, multiple
//!    matches become edges to every candidate carrying an explicit
//!    *ambiguous* marker, and zero matches are external (std or out of
//!    workspace). Ubiquitous std method names (`len`, `push`, `get`, …)
//!    never fall back by bare name: a receiver-less `x.push(…)` is far
//!    more likely `Vec::push` than any workspace `push`.
//!
//! The reachability engine (`reach_forward`/`reaches_backward`) follows
//! **resolved edges only**: ambiguous edges are surfaced as counts in
//! the JSON report but never traversed, so the interprocedural analyses
//! fail toward false negatives — same stance as the v2 analyses.

use std::collections::BTreeMap;
use std::collections::VecDeque;

use crate::parser::{Ast, Block, Expr, Root, Step, Stmt};
use crate::policy::FileContext;
use crate::symbols::{self, FileSymbols, FnDecl};

/// What a call site calls.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Callee {
    /// A path call: `foo(…)`, `a::b::c(…)`, `Type::method(…)`.
    Path(Vec<String>),
    /// A method call `recv.name(…)`. `receiver` is the last identifier
    /// of the chain root when the call is the chain's first step
    /// (`self`, `queue`, …); `None` mid-chain.
    Method {
        /// The receiver identifier, when syntactically evident.
        receiver: Option<String>,
        /// The method name.
        name: String,
    },
}

/// One call site inside a function body.
#[derive(Clone, Debug)]
pub struct CallSite {
    /// What is being called.
    pub callee: Callee,
    /// Source line of the call.
    pub line: u32,
    /// Number of arguments at the site (`self` not counted).
    pub arity: usize,
}

/// One file's worth of input to the graph builder.
pub struct GraphFile<'a> {
    /// The file's policy context (crate, path, role).
    pub ctx: &'a FileContext,
    /// Its parsed AST.
    pub ast: &'a Ast,
    /// `#[cfg(test)]`/`#[test]` line ranges — functions inside are not
    /// graph nodes.
    pub test_ranges: &'a [(u32, u32)],
}

/// One graph node: a workspace function.
pub struct Node<'a> {
    /// Index of the declaring file in the builder's input slice.
    pub file: usize,
    /// The declaration (name, impl type, module, params).
    pub decl: FnDecl,
    /// The function body, when present.
    pub body: Option<&'a Block>,
}

/// One call edge.
#[derive(Clone, Debug)]
pub struct Edge {
    /// Callee node index.
    pub to: usize,
    /// Source line of the call site in the caller's file.
    pub line: u32,
    /// Whether this edge came from a non-unique name match.
    pub ambiguous: bool,
}

/// The workspace call graph.
pub struct CallGraph<'a> {
    /// All nodes; indices are stable identifiers.
    pub nodes: Vec<Node<'a>>,
    /// Adjacency: `edges[i]` are the calls out of node `i`.
    pub edges: Vec<Vec<Edge>>,
    /// Per-file symbol tables, parallel to the builder's input slice.
    pub files: Vec<FileSymbols>,
    /// Count of uniquely resolved edges.
    pub resolved_edges: usize,
    /// Count of ambiguous (multi-candidate name-match) edges.
    pub ambiguous_edges: usize,
    /// Call sites that resolved to nothing in the workspace (std or
    /// external) — reported for scale, never traversed.
    pub external_calls: usize,
    /// Name-resolution indexes, retained for late single-site lookups.
    index: Indexes,
}

impl<'a> CallGraph<'a> {
    /// Finds the node declared in `file` whose `fn` keyword is on
    /// `line`.
    pub fn node_at(&self, file: usize, line: u32) -> Option<usize> {
        self.nodes
            .iter()
            .position(|n| n.file == file && n.decl.line == line)
    }

    /// Resolves one late call site (e.g. a call captured under a lock
    /// guard) from `caller`'s context. Returns the target only on a
    /// **unique** resolution — ambiguous matches stay unresolved, same
    /// false-negative stance as edge traversal.
    pub fn resolve_unique(&self, caller: usize, callee: &Callee, arity: usize) -> Option<usize> {
        let site = CallSite {
            callee: callee.clone(),
            line: 0,
            arity,
        };
        let symbols = &self.files[self.nodes[caller].file];
        match resolve(&site, &self.nodes[caller], symbols, &self.index) {
            Resolution::Unique(n) => Some(n),
            Resolution::Ambiguous(_) | Resolution::External => None,
        }
    }

    /// A short human label for a node: `crate::Type::name` or
    /// `crate::name`.
    pub fn label(&self, node: usize) -> String {
        let n = &self.nodes[node];
        let krate = &self.files[n.file].crate_name;
        match &n.decl.impl_type {
            Some(t) => format!("{krate}::{t}::{}", n.decl.name),
            None => format!("{krate}::{}", n.decl.name),
        }
    }
}

/// Method names so ubiquitous in std that a bare (receiver-less) name
/// match would mostly manufacture false edges. These still resolve via
/// receiver/impl-type matching.
const COMMON_METHODS: [&str; 41] = [
    "new",
    "len",
    "get",
    "get_mut",
    "push",
    "pop",
    "insert",
    "remove",
    "clear",
    "iter",
    "iter_mut",
    "next",
    "clone",
    "into",
    "from",
    "to_owned",
    "to_string",
    "as_str",
    "as_ref",
    "map",
    "and_then",
    "ok",
    "err",
    "is_empty",
    "contains",
    "extend",
    "collect",
    "min",
    "max",
    "clamp",
    "parse",
    "write",
    "read",
    "send",
    "recv",
    "join",
    "lock",
    "drain",
    "entry",
    "flush",
    "wait",
];

/// Path roots that are definitionally outside the workspace.
const EXTERNAL_ROOTS: [&str; 4] = ["std", "core", "alloc", "proc_macro"];

/// Extracts every call site in a block, recursively (closures, nested
/// blocks, macro arguments included).
pub fn call_sites(block: &Block) -> Vec<CallSite> {
    let mut out = Vec::new();
    walk_block(block, &mut out);
    out
}

fn walk_block(block: &Block, out: &mut Vec<CallSite>) {
    for stmt in &block.stmts {
        match stmt {
            Stmt::Let(l) => {
                if let Some(init) = &l.init {
                    walk_expr(init, out);
                }
                if let Some(b) = &l.else_block {
                    walk_block(b, out);
                }
            }
            Stmt::Expr(e) => walk_expr(e, out),
            Stmt::Item(_) => {}
        }
    }
}

fn walk_expr(expr: &Expr, out: &mut Vec<CallSite>) {
    match expr {
        Expr::Chain(chain) => {
            let root_path: Option<&[String]> = match &chain.root {
                Root::Path(segments) => Some(segments),
                Root::Grouped(inner) => {
                    walk_expr(inner, out);
                    None
                }
            };
            for (k, step) in chain.steps.iter().enumerate() {
                match step {
                    Step::Call { args, line } => {
                        if k == 0 {
                            if let Some(path) = root_path {
                                out.push(CallSite {
                                    callee: Callee::Path(path.to_vec()),
                                    line: *line,
                                    arity: args.len(),
                                });
                            }
                        }
                        for a in args {
                            walk_expr(a, out);
                        }
                    }
                    Step::Method { name, args, line } => {
                        let receiver = if k == 0 {
                            root_path.and_then(|p| p.last().cloned())
                        } else {
                            None
                        };
                        out.push(CallSite {
                            callee: Callee::Method {
                                receiver,
                                name: name.clone(),
                            },
                            line: *line,
                            arity: args.len(),
                        });
                        for a in args {
                            walk_expr(a, out);
                        }
                    }
                    Step::Index(inner, _) => walk_expr(inner, out),
                    Step::Field(_, _) | Step::Try(_) => {}
                }
            }
        }
        Expr::Block(b) => walk_block(b, out),
        Expr::If {
            cond,
            then_block,
            else_branch,
        } => {
            walk_expr(cond, out);
            walk_block(then_block, out);
            if let Some(e) = else_branch {
                walk_expr(e, out);
            }
        }
        Expr::While { cond, body } => {
            walk_expr(cond, out);
            walk_block(body, out);
        }
        Expr::Loop { body } => walk_block(body, out),
        Expr::For { iter, body } => {
            walk_expr(iter, out);
            walk_block(body, out);
        }
        Expr::Match {
            scrutinee, arms, ..
        } => {
            walk_expr(scrutinee, out);
            for a in arms {
                walk_expr(a, out);
            }
        }
        Expr::Closure { body, .. } => walk_expr(body, out),
        Expr::Cast { inner, .. } => walk_expr(inner, out),
        Expr::Macro { args, .. } => {
            for a in args {
                walk_expr(a, out);
            }
        }
        Expr::Group(children) => {
            for c in children {
                walk_expr(c, out);
            }
        }
        Expr::Lit(_) | Expr::Unit(_) => {}
    }
}

/// Builds the workspace call graph from per-file ASTs.
pub fn build<'a>(inputs: &[GraphFile<'a>]) -> CallGraph<'a> {
    let mut nodes: Vec<Node<'a>> = Vec::new();
    let mut files: Vec<FileSymbols> = Vec::with_capacity(inputs.len());
    for (fi, input) in inputs.iter().enumerate() {
        let (symbols, bodies) = symbols::collect(input.ctx, input.ast, input.test_ranges);
        for (decl, f) in symbols.fns.iter().zip(&bodies) {
            nodes.push(Node {
                file: fi,
                decl: decl.clone(),
                body: f.body.as_ref(),
            });
        }
        files.push(symbols);
    }

    let index = Indexes::new(&nodes, &files);
    let mut edges: Vec<Vec<Edge>> = vec![Vec::new(); nodes.len()];
    let mut resolved_edges = 0usize;
    let mut ambiguous_edges = 0usize;
    let mut external_calls = 0usize;

    for i in 0..nodes.len() {
        let Some(body) = nodes[i].body else { continue };
        let symbols = &files[nodes[i].file];
        for site in call_sites(body) {
            match resolve(&site, &nodes[i], symbols, &index) {
                Resolution::Unique(to) => {
                    resolved_edges += 1;
                    push_edge(&mut edges[i], to, site.line, false);
                }
                Resolution::Ambiguous(candidates) => {
                    for to in candidates {
                        ambiguous_edges += 1;
                        push_edge(&mut edges[i], to, site.line, true);
                    }
                }
                Resolution::External => external_calls += 1,
            }
        }
    }

    CallGraph {
        nodes,
        edges,
        files,
        resolved_edges,
        ambiguous_edges,
        external_calls,
        index,
    }
}

fn push_edge(edges: &mut Vec<Edge>, to: usize, line: u32, ambiguous: bool) {
    if !edges.iter().any(|e| e.to == to && e.ambiguous == ambiguous) {
        edges.push(Edge {
            to,
            line,
            ambiguous,
        });
    }
}

enum Resolution {
    Unique(usize),
    Ambiguous(Vec<usize>),
    External,
}

/// Secondary indexes over the node list.
struct Indexes {
    /// crate name → exists.
    crates: Vec<String>,
    /// fn name → nodes.
    by_name: BTreeMap<String, Vec<usize>>,
    /// (crate, module, name) → nodes (free functions only).
    by_module: BTreeMap<(String, Vec<String>, String), Vec<usize>>,
    /// (crate, impl type, name) → nodes.
    by_crate_impl: BTreeMap<(String, String, String), Vec<usize>>,
    /// (impl type, name) → nodes, workspace-wide.
    by_impl: BTreeMap<(String, String), Vec<usize>>,
}

impl Indexes {
    fn new(nodes: &[Node<'_>], files: &[FileSymbols]) -> Indexes {
        let mut crates: Vec<String> = files.iter().map(|f| f.crate_name.clone()).collect();
        crates.sort();
        crates.dedup();
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut by_module: BTreeMap<(String, Vec<String>, String), Vec<usize>> = BTreeMap::new();
        let mut by_crate_impl: BTreeMap<(String, String, String), Vec<usize>> = BTreeMap::new();
        let mut by_impl: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
        for (i, node) in nodes.iter().enumerate() {
            let krate = files[node.file].crate_name.clone();
            by_name.entry(node.decl.name.clone()).or_default().push(i);
            match &node.decl.impl_type {
                Some(t) => {
                    by_crate_impl
                        .entry((krate.clone(), t.clone(), node.decl.name.clone()))
                        .or_default()
                        .push(i);
                    by_impl
                        .entry((t.clone(), node.decl.name.clone()))
                        .or_default()
                        .push(i);
                }
                None => {
                    by_module
                        .entry((krate, node.decl.module.clone(), node.decl.name.clone()))
                        .or_default()
                        .push(i);
                }
            }
        }
        Indexes {
            crates,
            by_name,
            by_module,
            by_crate_impl,
            by_impl,
        }
    }

    fn is_workspace_crate(&self, name: &str) -> bool {
        self.crates.iter().any(|c| c == name)
    }
}

/// Maps an import-path crate segment (`jouppi_core`, `jouppi`) to the
/// crate directory name the policy layer uses (`core`, `jouppi`).
fn crate_of_segment(seg: &str, index: &Indexes) -> Option<String> {
    if seg == "jouppi" && index.is_workspace_crate("jouppi") {
        return Some("jouppi".to_owned());
    }
    let dir = seg.strip_prefix("jouppi_")?;
    index.is_workspace_crate(dir).then(|| dir.to_owned())
}

fn resolve(
    site: &CallSite,
    caller: &Node<'_>,
    symbols: &FileSymbols,
    index: &Indexes,
) -> Resolution {
    match &site.callee {
        Callee::Path(path) => resolve_path(path, caller, symbols, index),
        Callee::Method { receiver, name } => {
            resolve_method(receiver.as_deref(), name, caller, symbols, index)
        }
    }
}

fn resolve_path(
    path: &[String],
    caller: &Node<'_>,
    symbols: &FileSymbols,
    index: &Indexes,
) -> Resolution {
    if path.is_empty() {
        return Resolution::External;
    }
    // Splice a leading import alias: `Json::parse` + `use crate::json::Json`
    // → `crate::json::Json::parse`.
    let mut full: Vec<String> = match symbols.imports.get(&path[0]) {
        Some(target) => target.iter().chain(path.iter().skip(1)).cloned().collect(),
        None => path.to_vec(),
    };

    // Normalize the crate prefix.
    let mut krate = symbols.crate_name.clone();
    let mut module_base: Option<Vec<String>> = None;
    loop {
        let Some(first) = full.first().cloned() else {
            return Resolution::External;
        };
        match first.as_str() {
            "crate" => {
                full.remove(0);
                module_base = Some(Vec::new());
            }
            "self" => {
                full.remove(0);
                module_base = Some(symbols.module.clone());
            }
            "super" => {
                full.remove(0);
                let mut m = module_base.take().unwrap_or_else(|| symbols.module.clone());
                m.pop();
                module_base = Some(m);
                continue; // repeated `super::super::…`
            }
            s if EXTERNAL_ROOTS.contains(&s) => return Resolution::External,
            s => {
                if let Some(c) = crate_of_segment(s, index) {
                    full.remove(0);
                    krate = c;
                    module_base = Some(Vec::new());
                }
            }
        }
        break;
    }
    let Some(name) = full.last().cloned() else {
        return Resolution::External;
    };
    let prefix: Vec<String> = match &module_base {
        Some(base) => base
            .iter()
            .chain(full[..full.len() - 1].iter())
            .cloned()
            .collect(),
        None => full[..full.len() - 1].to_vec(),
    };

    // (a) Free function at the exact module path.
    if let Some(nodes) = index
        .by_module
        .get(&(krate.clone(), prefix.clone(), name.clone()))
    {
        return unique_or_ambiguous(nodes);
    }
    // Bare single-segment call: a sibling in the caller's own module.
    if full.len() == 1 && module_base.is_none() {
        if let Some(nodes) =
            index
                .by_module
                .get(&(krate.clone(), caller.decl.module.clone(), name.clone()))
        {
            return unique_or_ambiguous(nodes);
        }
        // …or at the crate root (`use`-free sibling module call can't
        // reach here, but crate-root helpers are common).
        if let Some(nodes) = index
            .by_module
            .get(&(krate.clone(), Vec::new(), name.clone()))
        {
            return unique_or_ambiguous(nodes);
        }
    }
    // (b) `Type::method`: the second-to-last segment as an impl type.
    if let Some(ty) = full.len().checked_sub(2).map(|k| full[k].clone()) {
        if ty.chars().next().is_some_and(char::is_uppercase) {
            if let Some(nodes) = index
                .by_crate_impl
                .get(&(krate.clone(), ty.clone(), name.clone()))
            {
                return unique_or_ambiguous(nodes);
            }
            if let Some(nodes) = index.by_impl.get(&(ty, name.clone())) {
                return unique_or_ambiguous(nodes);
            }
        }
    }
    // (c) Workspace-wide bare-name fallback, single-segment sites only —
    // a dotted external path (`io::stdout()`) must not name-match.
    if path.len() == 1 {
        if let Some(nodes) = index.by_name.get(&name) {
            return unique_or_ambiguous(nodes);
        }
    }
    Resolution::External
}

fn resolve_method(
    receiver: Option<&str>,
    name: &str,
    caller: &Node<'_>,
    symbols: &FileSymbols,
    index: &Indexes,
) -> Resolution {
    // `self.method()` prefers the enclosing impl block's type.
    if receiver == Some("self") {
        if let Some(ty) = &caller.decl.impl_type {
            if let Some(nodes) =
                index
                    .by_crate_impl
                    .get(&(symbols.crate_name.clone(), ty.clone(), name.to_owned()))
            {
                return unique_or_ambiguous(nodes);
            }
            if let Some(nodes) = index.by_impl.get(&(ty.clone(), name.to_owned())) {
                return unique_or_ambiguous(nodes);
            }
        }
    } else if let Some(recv) = receiver {
        // Receiver-name heuristic against impl self-types.
        let mut candidates: Vec<usize> = Vec::new();
        for ((ty, fn_name), nodes) in &index.by_impl {
            if fn_name == name && receiver_matches(recv, ty) {
                candidates.extend(nodes.iter().copied());
            }
        }
        if !candidates.is_empty() {
            // Prefer same-crate candidates when they narrow the set.
            let same_crate: Vec<usize> = candidates
                .iter()
                .copied()
                .filter(|&i| {
                    index
                        .by_crate_impl
                        .iter()
                        .any(|((c, _, _), nodes)| c == &symbols.crate_name && nodes.contains(&i))
                })
                .collect();
            let pick = if !same_crate.is_empty() {
                same_crate
            } else {
                candidates
            };
            return unique_or_ambiguous(&pick);
        }
    }
    // Bare-name fallback, unless the name is a ubiquitous std method.
    if COMMON_METHODS.contains(&name) {
        return Resolution::External;
    }
    match index.by_name.get(name) {
        Some(nodes) => unique_or_ambiguous(nodes),
        None => Resolution::External,
    }
}

/// Whether receiver identifier `recv` plausibly names a value of type
/// `ty`: `queue` matches `JobQueue` (`job_queue`), `cache` matches
/// `AugmentedCache` (`augmented_cache`), exact snake match always.
fn receiver_matches(recv: &str, ty: &str) -> bool {
    let snake = symbols::snake_case(ty);
    recv == snake || snake.ends_with(&format!("_{recv}")) || recv.ends_with(&format!("_{snake}"))
}

fn unique_or_ambiguous(nodes: &[usize]) -> Resolution {
    match nodes {
        [] => Resolution::External,
        [one] => Resolution::Unique(*one),
        many => Resolution::Ambiguous(many.to_vec()),
    }
}

/// BFS from `entries` over **resolved** edges. Returns, per node, the
/// predecessor on a shortest call path from an entry (`usize::MAX` if
/// unreachable; entries are their own predecessor).
pub fn reach_forward(graph: &CallGraph<'_>, entries: &[usize]) -> Vec<usize> {
    let mut parent = vec![usize::MAX; graph.nodes.len()];
    let mut queue: VecDeque<usize> = VecDeque::new();
    for &e in entries {
        if parent[e] == usize::MAX {
            parent[e] = e;
            queue.push_back(e);
        }
    }
    while let Some(n) = queue.pop_front() {
        for edge in &graph.edges[n] {
            if !edge.ambiguous && parent[edge.to] == usize::MAX {
                parent[edge.to] = n;
                queue.push_back(edge.to);
            }
        }
    }
    parent
}

/// Reconstructs the entry → … → `node` call path from a
/// [`reach_forward`] predecessor array.
pub fn path_to(parent: &[usize], node: usize) -> Vec<usize> {
    let mut path = vec![node];
    let mut cur = node;
    while parent[cur] != cur && parent[cur] != usize::MAX {
        cur = parent[cur];
        path.push(cur);
        if path.len() > parent.len() {
            break; // defensive: malformed parent array
        }
    }
    path.reverse();
    path
}

/// The set of nodes from which any `seed` node is reachable over
/// resolved edges (seeds included) — reverse reachability, used for
/// "does this callee transitively block?".
pub fn reaches_backward(graph: &CallGraph<'_>, seeds: &[bool]) -> Vec<bool> {
    let mut reverse: Vec<Vec<usize>> = vec![Vec::new(); graph.nodes.len()];
    for (from, edges) in graph.edges.iter().enumerate() {
        for e in edges {
            if !e.ambiguous {
                reverse[e.to].push(from);
            }
        }
    }
    let mut reaches = seeds.to_vec();
    let mut queue: VecDeque<usize> = seeds
        .iter()
        .enumerate()
        .filter_map(|(i, &s)| s.then_some(i))
        .collect();
    while let Some(n) = queue.pop_front() {
        for &p in &reverse[n] {
            if !reaches[p] {
                reaches[p] = true;
                queue.push_back(p);
            }
        }
    }
    reaches
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;
    use crate::policy::classify;

    /// Builds a graph from (rel_path, src) pairs.
    fn graph_of<'a>(asts: &'a [(String, Ast)]) -> CallGraph<'a> {
        let ctxs: Vec<FileContext> = asts
            .iter()
            .map(|(p, _)| classify(p).expect("classifiable"))
            .collect();
        // Leak the contexts for the test's lifetime simplicity.
        let ctxs: &'static [FileContext] = Box::leak(ctxs.into_boxed_slice());
        let inputs: Vec<GraphFile<'a>> = asts
            .iter()
            .zip(ctxs.iter())
            .map(|((_, ast), ctx)| GraphFile {
                ctx,
                ast,
                test_ranges: &[],
            })
            .collect();
        build(&inputs)
    }

    fn parsed(files: &[(&str, &str)]) -> Vec<(String, Ast)> {
        files
            .iter()
            .map(|(p, s)| ((*p).to_owned(), parse(&lex(s))))
            .collect()
    }

    fn node_named(g: &CallGraph<'_>, name: &str) -> usize {
        g.nodes
            .iter()
            .position(|n| n.decl.name == name)
            .unwrap_or_else(|| panic!("node {name}"))
    }

    fn has_edge(g: &CallGraph<'_>, from: &str, to: &str, ambiguous: bool) -> bool {
        let f = node_named(g, from);
        let t = node_named(g, to);
        g.edges[f]
            .iter()
            .any(|e| e.to == t && e.ambiguous == ambiguous)
    }

    #[test]
    fn same_file_and_cross_module_path_calls_resolve() {
        let asts = parsed(&[
            (
                "crates/serve/src/routes.rs",
                "use crate::sim;\nfn route() { helper(); sim::simulate(); }\nfn helper() {}\n",
            ),
            ("crates/serve/src/sim.rs", "pub fn simulate() {}\n"),
        ]);
        let g = graph_of(&asts);
        assert!(has_edge(&g, "route", "helper", false));
        assert!(has_edge(&g, "route", "simulate", false));
        assert_eq!(g.ambiguous_edges, 0);
    }

    #[test]
    fn cross_crate_paths_resolve_via_jouppi_prefix() {
        let asts = parsed(&[
            (
                "crates/serve/src/sim.rs",
                "use jouppi_core::AugmentedCache;\n\
                 fn simulate() { let c = AugmentedCache::new(); jouppi_core::replay(); }\n",
            ),
            (
                "crates/core/src/lib.rs",
                "pub fn replay() {}\n\
                 pub struct AugmentedCache;\n\
                 impl AugmentedCache { pub fn new() -> Self { AugmentedCache } }\n",
            ),
        ]);
        let g = graph_of(&asts);
        assert!(has_edge(&g, "simulate", "replay", false));
        assert!(has_edge(&g, "simulate", "new", false));
    }

    #[test]
    fn method_calls_resolve_by_receiver_name() {
        let asts = parsed(&[(
            "crates/serve/src/queue.rs",
            "pub struct JobQueue;\n\
             impl JobQueue {\n\
                 pub fn admit(&self) { self.evict(); }\n\
                 fn evict(&self) {}\n\
             }\n\
             fn drive(queue: &JobQueue) { queue.admit(); }\n",
        )]);
        let g = graph_of(&asts);
        assert!(has_edge(&g, "admit", "evict", false)); // self.method()
        assert!(has_edge(&g, "drive", "admit", false)); // receiver heuristic
    }

    #[test]
    fn multi_candidate_name_match_is_ambiguous() {
        let asts = parsed(&[
            (
                "crates/serve/src/a.rs",
                "fn caller(x: &X) { x.refresh(); }\n",
            ),
            (
                "crates/serve/src/b.rs",
                "struct B; impl B { fn refresh(&self) {} }\n",
            ),
            (
                "crates/core/src/c.rs",
                "struct C; impl C { fn refresh(&self) {} }\n",
            ),
        ]);
        let g = graph_of(&asts);
        let caller = node_named(&g, "caller");
        let amb: Vec<&Edge> = g.edges[caller].iter().filter(|e| e.ambiguous).collect();
        assert_eq!(amb.len(), 2, "both refresh candidates, marked ambiguous");
        assert_eq!(g.ambiguous_edges, 2);
    }

    #[test]
    fn common_std_method_names_do_not_name_match() {
        let asts = parsed(&[
            (
                "crates/serve/src/a.rs",
                "fn caller(v: &mut Vec<u8>) { v.push(1); }\n",
            ),
            (
                "crates/serve/src/b.rs",
                "struct Stack; impl Stack { fn push(&mut self, b: u8) {} }\n",
            ),
        ]);
        let g = graph_of(&asts);
        let caller = node_named(&g, "caller");
        assert!(
            g.edges[caller].is_empty(),
            "`v.push` must not edge to Stack::push by bare name"
        );
        assert_eq!(g.external_calls, 1);
    }

    #[test]
    fn reachability_follows_resolved_edges_only() {
        let asts = parsed(&[(
            "crates/serve/src/a.rs",
            "fn entry() { step(); }\n\
             fn step() { leaf(); }\n\
             fn leaf() {}\n\
             fn island() {}\n",
        )]);
        let g = graph_of(&asts);
        let entry = node_named(&g, "entry");
        let parent = reach_forward(&g, &[entry]);
        let leaf = node_named(&g, "leaf");
        assert_ne!(parent[leaf], usize::MAX);
        assert_eq!(parent[node_named(&g, "island")], usize::MAX);
        let path = path_to(&parent, leaf);
        let names: Vec<&str> = path
            .iter()
            .map(|&i| g.nodes[i].decl.name.as_str())
            .collect();
        assert_eq!(names, ["entry", "step", "leaf"]);
    }

    #[test]
    fn backward_reachability_finds_transitive_callers() {
        let asts = parsed(&[(
            "crates/serve/src/a.rs",
            "fn top() { mid(); }\nfn mid() { blocker(); }\nfn blocker() {}\nfn other() {}\n",
        )]);
        let g = graph_of(&asts);
        let mut seeds = vec![false; g.nodes.len()];
        seeds[node_named(&g, "blocker")] = true;
        let reaches = reaches_backward(&g, &seeds);
        assert!(reaches[node_named(&g, "top")]);
        assert!(reaches[node_named(&g, "mid")]);
        assert!(!reaches[node_named(&g, "other")]);
    }
}
