//! Memory-footprint accounting: how much distinct memory a trace touches.

// jouppi-lint: allow-file(default-hasher) — only `len()` is ever read from
// these sets (iteration order is unobservable), and jouppi-trace sits below
// jouppi-cache in the dependency graph, so the Fx aliases are unreachable.
use std::collections::HashSet;

use crate::{AccessKind, MemRef};

/// Tracks the distinct cache lines a reference stream touches, split by
/// access kind.
///
/// Footprints determine which level of the paper's hierarchy a workload
/// stresses: a data footprint below 4KB never misses for capacity in L1;
/// one beyond 1MB defeats the baseline L2. The granularity is fixed at
/// construction (usually a line size).
///
/// # Examples
///
/// ```
/// use jouppi_trace::{Addr, Footprint, MemRef};
///
/// let mut f = Footprint::new(16);
/// f.observe(MemRef::instr(Addr::new(0x100)));
/// f.observe(MemRef::instr(Addr::new(0x104))); // same 16B line
/// f.observe(MemRef::load(Addr::new(0x2000)));
/// assert_eq!(f.instr_lines(), 1);
/// assert_eq!(f.data_lines(), 1);
/// assert_eq!(f.data_bytes(), 16);
/// ```
#[derive(Clone, Debug)]
pub struct Footprint {
    granularity: u64,
    instr: HashSet<u64>,
    data: HashSet<u64>,
}

impl Footprint {
    /// Creates a tracker at the given granularity in bytes.
    ///
    /// # Panics
    ///
    /// Panics if `granularity` is not a power of two.
    pub fn new(granularity: u64) -> Self {
        assert!(
            granularity.is_power_of_two(),
            "granularity must be a power of two"
        );
        Footprint {
            granularity,
            instr: HashSet::new(),
            data: HashSet::new(),
        }
    }

    /// The tracking granularity in bytes.
    pub fn granularity(&self) -> u64 {
        self.granularity
    }

    /// Observes one reference.
    pub fn observe(&mut self, r: MemRef) {
        let line = r.addr.line(self.granularity).get();
        match r.kind {
            AccessKind::InstrFetch => {
                self.instr.insert(line);
            }
            AccessKind::Load | AccessKind::Store => {
                self.data.insert(line);
            }
        }
    }

    /// Observes a whole stream.
    pub fn observe_all<I: IntoIterator<Item = MemRef>>(&mut self, refs: I) {
        for r in refs {
            self.observe(r);
        }
    }

    /// Distinct instruction lines touched.
    pub fn instr_lines(&self) -> usize {
        self.instr.len()
    }

    /// Distinct data lines touched.
    pub fn data_lines(&self) -> usize {
        self.data.len()
    }

    /// Instruction footprint in bytes.
    pub fn instr_bytes(&self) -> u64 {
        self.instr.len() as u64 * self.granularity
    }

    /// Data footprint in bytes.
    pub fn data_bytes(&self) -> u64 {
        self.data.len() as u64 * self.granularity
    }

    /// Total footprint in bytes (instruction + data; code and data spaces
    /// are assumed disjoint, as in the paper's machines).
    pub fn total_bytes(&self) -> u64 {
        self.instr_bytes() + self.data_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Addr;

    #[test]
    fn counts_distinct_lines_per_side() {
        let mut f = Footprint::new(16);
        f.observe_all([
            MemRef::instr(Addr::new(0)),
            MemRef::instr(Addr::new(15)),
            MemRef::instr(Addr::new(16)),
            MemRef::load(Addr::new(1000)),
            MemRef::store(Addr::new(1000)),
            MemRef::load(Addr::new(5000)),
        ]);
        assert_eq!(f.instr_lines(), 2);
        assert_eq!(f.data_lines(), 2);
        assert_eq!(f.instr_bytes(), 32);
        assert_eq!(f.total_bytes(), 64);
        assert_eq!(f.granularity(), 16);
    }

    #[test]
    fn granularity_merges_neighbours() {
        let mut fine = Footprint::new(16);
        let mut coarse = Footprint::new(128);
        for i in 0..16u64 {
            let r = MemRef::load(Addr::new(i * 16));
            fine.observe(r);
            coarse.observe(r);
        }
        assert_eq!(fine.data_lines(), 16);
        assert_eq!(coarse.data_lines(), 2);
        assert_eq!(fine.data_bytes(), coarse.data_bytes());
    }

    #[test]
    fn empty_footprint_is_zero() {
        let f = Footprint::new(64);
        assert_eq!(f.instr_lines(), 0);
        assert_eq!(f.data_bytes(), 0);
        assert_eq!(f.total_bytes(), 0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_granularity_panics() {
        let _ = Footprint::new(48);
    }
}
