//! Golden tests: every lint has a `bad`/`ok` fixture pair under
//! `tests/fixtures/<lint>/`. Each case materializes a one-file throwaway
//! workspace in the system temp directory at the path where the lint is
//! active, then drives the real CLI: the `bad` fixture must exit 1 and
//! name the lint, the `ok` fixture (fixed or justifiably suppressed)
//! must exit 0.
//!
//! Fixture files live under `tests/`, so the workspace self-scan treats
//! them as test sources and never lints them in place.

use std::fs;
use std::path::{Path, PathBuf};

/// (lint, fixture dir, path the fixture occupies in the temp workspace).
const CASES: [(&str, &str, &str); 18] = [
    ("ambient-time", "ambient-time", "crates/core/src/fixture.rs"),
    ("ambient-rng", "ambient-rng", "crates/core/src/fixture.rs"),
    (
        "default-hasher",
        "default-hasher",
        "crates/core/src/fixture.rs",
    ),
    ("serve-panic", "serve-panic", "crates/serve/src/fixture.rs"),
    ("forbid-unsafe", "forbid-unsafe", "crates/core/src/lib.rs"),
    ("debug-print", "debug-print", "crates/core/src/fixture.rs"),
    (
        "relaxed-ordering",
        "relaxed-ordering",
        "crates/experiments/src/fixture.rs",
    ),
    (
        "bad-suppression",
        "bad-suppression",
        "crates/core/src/fixture.rs",
    ),
    (
        "unused-suppression",
        "unused-suppression",
        "crates/core/src/fixture.rs",
    ),
    ("lock-order", "lock-order", "crates/core/src/fixture.rs"),
    (
        "blocking-under-lock",
        "blocking-under-lock",
        "crates/core/src/fixture.rs",
    ),
    (
        "unbounded-growth",
        "unbounded-growth",
        "crates/serve/src/fixture.rs",
    ),
    (
        "swallowed-result",
        "swallowed-result",
        "crates/core/src/fixture.rs",
    ),
    (
        "truncating-cast",
        "truncating-cast",
        "crates/serve/src/fixture.rs",
    ),
    (
        "panic-reachability",
        "panic-reachability",
        "crates/core/src/fixture.rs",
    ),
    (
        "transitive-purity",
        "transitive-purity",
        "crates/report/src/fixture.rs",
    ),
    (
        "untrusted-size-taint",
        "untrusted-size-taint",
        "crates/serve/src/fixture.rs",
    ),
    (
        "lock-held-across-call",
        "lock-held-across-call",
        "crates/core/src/fixture.rs",
    ),
];

/// Support files materialized alongside a fixture for both its bad and
/// ok runs — the interprocedural lints fire only when a serve-side
/// entrypoint in another crate reaches the fixture.
const SUPPORT: [(&str, &str, &str); 2] = [
    (
        "panic-reachability",
        "entry.rs",
        "crates/serve/src/entry.rs",
    ),
    ("transitive-purity", "entry.rs", "crates/serve/src/entry.rs"),
];

fn fixture(dir: &str, name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(dir)
        .join(name);
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Creates a minimal workspace containing exactly one source file.
fn temp_workspace(tag: &str, rel_file: &str, contents: &str) -> PathBuf {
    let root =
        std::env::temp_dir().join(format!("jouppi-lint-golden-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    let file = root.join(rel_file);
    fs::create_dir_all(file.parent().expect("fixture path has a parent")).expect("mkdir");
    fs::write(root.join("Cargo.toml"), "[workspace]\n").expect("write manifest");
    fs::write(&file, contents).expect("write fixture");
    root
}

/// Adds the fixture dir's support files (if any) to a temp workspace.
fn write_support(root: &Path, dir: &str) {
    for (support_dir, name, rel_file) in SUPPORT {
        if support_dir != dir {
            continue;
        }
        let file = root.join(rel_file);
        fs::create_dir_all(file.parent().expect("support path has a parent")).expect("mkdir");
        fs::write(&file, fixture(dir, name)).expect("write support file");
    }
}

fn lint_workspace(root: &Path, json: bool) -> jouppi_lint::cli::CliResult {
    let mut args = vec![
        "--root".to_owned(),
        root.to_string_lossy().into_owned(),
        "--workspace".to_owned(),
    ];
    if json {
        args.push("--json".to_owned());
    }
    jouppi_lint::cli::run(args)
}

#[test]
fn bad_fixtures_fail_with_the_expected_lint() {
    for (lint, dir, rel_file) in CASES {
        let root = temp_workspace(&format!("bad-{dir}"), rel_file, &fixture(dir, "bad.rs"));
        write_support(&root, dir);
        let r = lint_workspace(&root, false);
        assert_eq!(
            r.code, 1,
            "{lint}: expected findings\n{}{}",
            r.stdout, r.stderr
        );
        assert!(
            r.stdout.contains(&format!("[{lint}]")),
            "{lint}: findings do not name the lint:\n{}",
            r.stdout
        );
        let _ = fs::remove_dir_all(&root);
    }
}

#[test]
fn ok_fixtures_pass_clean() {
    for (lint, dir, rel_file) in CASES {
        let root = temp_workspace(&format!("ok-{dir}"), rel_file, &fixture(dir, "ok.rs"));
        write_support(&root, dir);
        let r = lint_workspace(&root, false);
        assert_eq!(
            r.code, 0,
            "{lint}: expected clean\n{}{}",
            r.stdout, r.stderr
        );
        assert!(r.stdout.contains("clean"), "{lint}: {}", r.stdout);
        let _ = fs::remove_dir_all(&root);
    }
}

/// The full baseline-ratchet lifecycle against a real temp workspace:
/// capture, hold-at-baseline, catch a new finding, catch a stale entry.
#[test]
fn baseline_ratchet_golden() {
    let rel_file = "crates/core/src/fixture.rs";
    let root = temp_workspace("baseline", rel_file, &fixture("swallowed-result", "bad.rs"));
    let run = |extra: &[&str]| {
        let mut args = vec![
            "--root".to_owned(),
            root.to_string_lossy().into_owned(),
            "--workspace".to_owned(),
        ];
        args.extend(extra.iter().map(|s| (*s).to_owned()));
        jouppi_lint::cli::run(args)
    };
    // Without a baseline the bad fixture fails.
    assert_eq!(run(&[]).code, 1);
    // Capture the debt...
    let r = run(&["--baseline", "base.json", "--write-baseline"]);
    assert_eq!(r.code, 0, "{}{}", r.stdout, r.stderr);
    assert!(root.join("base.json").is_file());
    // ...and the same tree now passes, reporting the ratchet verdict.
    let r = run(&["--baseline", "base.json"]);
    assert_eq!(r.code, 0, "{}{}", r.stdout, r.stderr);
    assert!(r.stdout.contains("0 new, 0 stale: ok"), "{}", r.stdout);
    // A third discard exceeds the grandfathered count: NEW, fail.
    let grown = format!(
        "{}\npub fn again(path: &Path) {{\n    let _ = fs::remove_file(path);\n}}\n",
        fixture("swallowed-result", "bad.rs")
    );
    fs::write(root.join(rel_file), grown).expect("grow fixture");
    let r = run(&["--baseline", "base.json"]);
    assert_eq!(r.code, 1, "{}{}", r.stdout, r.stderr);
    assert!(r.stdout.contains("baseline: NEW"), "{}", r.stdout);
    // Paying the debt off makes the entry STALE until regenerated.
    fs::write(root.join(rel_file), fixture("swallowed-result", "ok.rs")).expect("fix fixture");
    let r = run(&["--baseline", "base.json"]);
    assert_eq!(r.code, 1, "{}{}", r.stdout, r.stderr);
    assert!(r.stdout.contains("baseline: STALE"), "{}", r.stdout);
    let r = run(&["--baseline", "base.json", "--write-baseline"]);
    assert_eq!(r.code, 0, "{}{}", r.stdout, r.stderr);
    assert_eq!(run(&["--baseline", "base.json"]).code, 0);
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn json_report_carries_machine_readable_findings() {
    let (lint, dir, rel_file) = CASES[0];
    let root = temp_workspace("json", rel_file, &fixture(dir, "bad.rs"));
    let r = lint_workspace(&root, true);
    assert_eq!(r.code, 1);
    let doc = jouppi_serve::json::Json::parse(r.stdout.trim()).expect("valid JSON");
    assert_eq!(
        doc.get("clean"),
        Some(&jouppi_serve::json::Json::Bool(false))
    );
    let findings = doc
        .get("findings")
        .and_then(|f| f.as_arr())
        .expect("findings array");
    assert!(!findings.is_empty());
    let first = &findings[0];
    assert_eq!(
        first.get("lint").and_then(|l| l.as_str()),
        Some(lint),
        "first finding should be the {lint} fixture's"
    );
    assert_eq!(first.get("file").and_then(|f| f.as_str()), Some(rel_file));
    let _ = fs::remove_dir_all(&root);
}
