//! Fixture: stray console output in library code.

pub fn announce(x: u32) {
    println!("x = {x}");
}
