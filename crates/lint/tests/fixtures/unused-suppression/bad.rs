//! Fixture: a directive left behind after the code it excused was removed.

// jouppi-lint: allow(ambient-time) — leftover from a removed timing probe
pub fn answer() -> u32 {
    7
}
