//! End-to-end tests: boot the daemon on an ephemeral port and drive it
//! over real sockets — health, sweeps (sync and polled), bit-for-bit
//! agreement with the in-process sweep, backpressure, malformed input,
//! metrics, and draining shutdown.

use std::time::Duration;

use jouppi_experiments::common::ExperimentConfig;
use jouppi_serve::http::Limits;
use jouppi_serve::server::ServerConfig;
use jouppi_serve::{sweeps, Client, Json, Server, ServerHandle};
use jouppi_workloads::Scale;

fn start(config: ServerConfig) -> ServerHandle {
    Server::start(config).expect("bind ephemeral port")
}

fn client(handle: &ServerHandle) -> Client {
    Client::connect(handle.addr()).expect("connect to server")
}

fn json(text: &str) -> Json {
    Json::parse(text).expect("test fixture is valid JSON")
}

#[test]
fn healthz_answers() {
    let handle = start(ServerConfig::default());
    let mut c = client(&handle);
    let resp = c.request("GET", "/healthz", None).unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(resp.text(), "ok\n");
    // Keep-alive: same connection answers again.
    let resp = c.request("GET", "/healthz", None).unwrap();
    assert_eq!(resp.status, 200);
    handle.shutdown();
}

#[test]
fn sweep_matches_in_process_run_bit_for_bit() {
    let handle = start(ServerConfig::default());
    let mut c = client(&handle);

    // What the very same sweep produces when run in-process.
    let cfg = ExperimentConfig {
        scale: Scale::new(20_000),
        seed: 42,
    };
    let mut expected = sweeps::run_named("fig_3_1", &cfg).unwrap().encode();
    expected.push('\n');

    // Synchronous path: "wait": true returns the result document. The
    // first request for this tuple computes (and memoizes) it.
    let resp = c
        .request(
            "POST",
            "/v1/sweep",
            Some(&json(r#"{"sweep":"fig_3_1","scale":20000,"wait":true}"#)),
        )
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.text());
    assert_eq!(resp.header("x-jouppi-cache"), Some("miss"));
    assert_eq!(
        resp.text(),
        expected,
        "served sweep differs from in-process"
    );

    // Async path: the same tuple is now memoized, so the 202 ticket is
    // already done — no second sweep executes. Polling still works.
    let resp = c
        .request(
            "POST",
            "/v1/sweep",
            Some(&json(r#"{"sweep":"fig_3_1","scale":20000}"#)),
        )
        .unwrap();
    assert_eq!(resp.status, 202, "{}", resp.text());
    assert_eq!(resp.header("x-jouppi-cache"), Some("hit"));
    let ticket = resp.json().unwrap();
    assert_eq!(ticket.get("status").unwrap(), &Json::str("done"));
    let id = ticket.get("job").unwrap().as_i64().unwrap();
    let poll = ticket.get("poll").unwrap().as_str().unwrap().to_owned();
    assert_eq!(poll, format!("/v1/jobs/{id}"));

    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    let result = loop {
        let resp = c.request("GET", &poll, None).unwrap();
        assert_eq!(resp.status, 200);
        let doc = resp.json().unwrap();
        match doc.get("status").unwrap().as_str().unwrap() {
            "done" => break doc.get("result").unwrap().clone(),
            "failed" => panic!("job failed: {}", resp.text()),
            _ => {
                assert!(std::time::Instant::now() < deadline, "job never finished");
                std::thread::sleep(Duration::from_millis(25));
            }
        }
    };
    let mut via_poll = result.encode();
    via_poll.push('\n');
    assert_eq!(via_poll, expected, "polled sweep differs from in-process");

    // Metrics reflect the traffic.
    let resp = c.request("GET", "/metrics", None).unwrap();
    assert_eq!(resp.status, 200);
    let text = resp.text();
    assert!(
        text.contains("jouppi_http_requests_total{endpoint=\"sweep\",status=\"200\"} 1"),
        "{text}"
    );
    assert!(
        text.contains("jouppi_http_requests_total{endpoint=\"sweep\",status=\"202\"} 1"),
        "{text}"
    );
    // Only the first request executed a sweep; the async duplicate was
    // served from the result cache without touching a worker.
    assert!(text.contains("jouppi_jobs_completed_total 1"), "{text}");
    assert!(
        text.contains("jouppi_result_cache_misses_total 1"),
        "{text}"
    );
    assert!(text.contains("jouppi_result_cache_hits_total 1"), "{text}");
    let refs_line = text
        .lines()
        .find(|l| l.starts_with("jouppi_refs_simulated_total"))
        .expect("refs counter exported");
    let refs: u64 = refs_line.split(' ').nth(1).unwrap().parse().unwrap();
    assert!(refs > 0, "no references counted: {refs_line}");
    let rps_line = text
        .lines()
        .find(|l| l.starts_with("jouppi_refs_per_second"))
        .expect("throughput gauge exported");
    let rps: u64 = rps_line.split(' ').nth(1).unwrap().parse().unwrap();
    assert!(rps > 0, "completed sweeps must set throughput: {rps_line}");
    assert!(
        text.contains("jouppi_request_seconds_bucket{endpoint=\"sweep\",le=\"+Inf\"} 2"),
        "{text}"
    );

    handle.shutdown();
}

#[test]
fn engine_field_selects_the_single_pass_engine() {
    let handle = start(ServerConfig::default());
    let mut c = client(&handle);

    let cfg = ExperimentConfig {
        scale: Scale::new(20_000),
        seed: 42,
    };
    let mut expected = sweeps::run_named_engine("fig_3_1", &cfg, "single_pass")
        .unwrap()
        .encode();
    expected.push('\n');

    let resp = c
        .request(
            "POST",
            "/v1/sweep",
            Some(&json(
                r#"{"sweep":"fig_3_1","engine":"single_pass","scale":20000,"wait":true}"#,
            )),
        )
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.text());
    assert_eq!(
        resp.text(),
        expected,
        "served engine differs from in-process"
    );
    let doc = resp.json().unwrap();
    assert_eq!(doc.get("engine").unwrap(), &Json::str("single_pass"));

    // The one-pass engine's work shows up on /metrics.
    let text = c.request("GET", "/metrics", None).unwrap().text();
    let line = text
        .lines()
        .find(|l| l.starts_with("jouppi_single_pass_refs_total"))
        .expect("single-pass counter exported");
    let refs: u64 = line.split(' ').nth(1).unwrap().parse().unwrap();
    assert!(refs > 0, "single-pass engine counted nothing: {line}");

    handle.shutdown();
}

#[test]
fn simulate_runs_synchronously() {
    let handle = start(ServerConfig::default());
    let mut c = client(&handle);
    let resp = c
        .request(
            "POST",
            "/v1/simulate",
            Some(&json(
                r#"{"workload":"met","scale":20000,"victim":4,"classify":true}"#,
            )),
        )
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.text());
    let doc = resp.json().unwrap();
    assert!(doc.get("victim_hits").unwrap().as_i64().unwrap() > 0);
    assert!(doc.get("classification").is_some());
    handle.shutdown();
}

#[test]
fn queue_overflow_returns_503_with_retry_after() {
    let handle = start(ServerConfig {
        workers: 1,
        queue_depth: 1,
        ..ServerConfig::default()
    });
    let mut c = client(&handle);
    let body = json(r#"{"sweep":"fig_3_1","scale":100000}"#);
    let mut accepted = 0;
    let mut rejected = 0;
    // The bypass knob keeps these identical sweeps from coalescing, so
    // each one really tries to take a queue slot.
    for _ in 0..8 {
        let resp = c
            .request("POST", "/v1/sweep?cache=bypass", Some(&body))
            .unwrap();
        if resp.status != 503 {
            assert_eq!(resp.header("x-jouppi-cache"), Some("bypass"));
        }
        match resp.status {
            202 => accepted += 1,
            503 => {
                rejected += 1;
                assert_eq!(resp.header("retry-after"), Some("1"), "{:?}", resp.headers);
            }
            other => panic!("unexpected status {other}: {}", resp.text()),
        }
    }
    assert!(accepted >= 1, "no sweep was ever accepted");
    assert!(rejected >= 1, "queue never overflowed");
    // Backpressure shows on /metrics too.
    let text = c.request("GET", "/metrics", None).unwrap().text();
    assert!(
        text.contains("jouppi_http_requests_total{endpoint=\"sweep\",status=\"503\"}"),
        "{text}"
    );
    let stats = handle.shutdown();
    assert_eq!(stats.jobs_completed, accepted, "accepted jobs must drain");
}

#[test]
fn malformed_requests_get_4xx_not_a_crash() {
    let handle = start(ServerConfig {
        limits: Limits {
            max_body_bytes: 1024,
            ..Limits::default()
        },
        ..ServerConfig::default()
    });

    let mut c = client(&handle);
    let cases: Vec<(&str, &str, Option<Json>, u16)> = vec![
        ("POST", "/v1/sweep", Some(Json::str("not an object")), 400),
        (
            "POST",
            "/v1/sweep",
            Some(json(r#"{"sweep":"fig_9_9"}"#)),
            400,
        ),
        (
            "POST",
            "/v1/sweep",
            Some(json(r#"{"sweep":"fig_3_1","scale":0}"#)),
            400,
        ),
        (
            // "fused" exists, but not for this sweep.
            "POST",
            "/v1/sweep",
            Some(json(r#"{"sweep":"fig_3_1","engine":"fused"}"#)),
            400,
        ),
        (
            "POST",
            "/v1/simulate",
            Some(json(r#"{"workload":"doom"}"#)),
            400,
        ),
        ("GET", "/v1/simulate", None, 405),
        ("POST", "/healthz", None, 405),
        ("GET", "/v1/jobs/not-a-number", None, 400),
        ("GET", "/v1/jobs/999999", None, 404),
        ("GET", "/nope", None, 404),
    ];
    for (method, path, body, want) in cases {
        let resp = c.request(method, path, body.as_ref()).unwrap();
        assert_eq!(resp.status, want, "{method} {path}: {}", resp.text());
    }

    // Unparsable JSON body (valid HTTP framing).
    let resp = c
        .send_raw(b"POST /v1/sweep HTTP/1.1\r\nContent-Length: 9\r\n\r\n{not json")
        .unwrap();
    assert_eq!(resp.status, 400);

    // Oversized body: rejected, connection closed.
    let mut big = client(&handle);
    let resp = big
        .send_raw(b"POST /v1/simulate HTTP/1.1\r\nContent-Length: 9999\r\n\r\n")
        .unwrap();
    assert_eq!(resp.status, 413);

    // Garbage framing: 400, connection closed.
    let mut garbage = client(&handle);
    let resp = garbage.send_raw(b"TOTAL GARBAGE\r\n\r\n").unwrap();
    assert_eq!(resp.status, 400);

    // The server is still healthy after all of that.
    let resp = c.request("GET", "/healthz", None).unwrap();
    assert_eq!(resp.status, 200);
    handle.shutdown();
}

#[test]
fn shutdown_drains_accepted_jobs() {
    let handle = start(ServerConfig {
        workers: 1,
        queue_depth: 8,
        ..ServerConfig::default()
    });
    let mut c = client(&handle);
    // Distinct seeds: three different content keys, so all three really
    // enter the queue instead of coalescing onto one job.
    for seed in 1..=3 {
        let resp = c
            .request(
                "POST",
                "/v1/sweep",
                Some(&json(&format!(
                    r#"{{"sweep":"fig_3_1","scale":50000,"seed":{seed}}}"#
                ))),
            )
            .unwrap();
        assert_eq!(resp.status, 202);
    }
    let stats = handle.shutdown();
    assert_eq!(stats.jobs_completed, 3, "shutdown must drain accepted jobs");
}

#[test]
fn thundering_herd_costs_exactly_one_simulation() {
    const HERD: usize = 8;
    let handle = start(ServerConfig::default());
    let addr = handle.addr();
    let body = r#"{"workload":"met","scale":200000,"victim":4}"#;

    // N identical concurrent POSTs released by a barrier: the leader
    // simulates once, everyone else hits or coalesces.
    let barrier = std::sync::Arc::new(std::sync::Barrier::new(HERD));
    let stampede: Vec<_> = (0..HERD)
        .map(|_| {
            let barrier = std::sync::Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).expect("connect");
                barrier.wait();
                let resp = c
                    .request("POST", "/v1/simulate", Some(&json(body)))
                    .unwrap();
                assert_eq!(resp.status, 200, "{}", resp.text());
                let note = resp
                    .header("x-jouppi-cache")
                    .expect("cache header present")
                    .to_owned();
                (note, resp.text())
            })
        })
        .collect();
    let responses: Vec<(String, String)> = stampede
        .into_iter()
        .map(|t| t.join().expect("herd thread"))
        .collect();

    // All responses are bit-identical...
    let reference = responses[0].1.clone();
    for (_, text) in &responses {
        assert_eq!(*text, reference, "cached response differs");
    }
    // ...exactly one was computed, and the rest rode it.
    let misses = responses.iter().filter(|(n, _)| n == "miss").count();
    let served = responses
        .iter()
        .filter(|(n, _)| n == "hit" || n == "coalesced")
        .count();
    assert_eq!(
        misses, 1,
        "herd must elect exactly one leader: {responses:?}"
    );
    assert_eq!(served, HERD - 1, "everyone else must hit or coalesce");

    // A bypassing request recomputes from scratch and must produce the
    // same bytes — cached responses are byte-identical to uncached ones.
    let mut c = client(&handle);
    let resp = c
        .request("POST", "/v1/simulate?cache=bypass", Some(&json(body)))
        .unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(resp.header("x-jouppi-cache"), Some("bypass"));
    assert_eq!(resp.text(), reference, "bypass and cached bytes differ");

    // /metrics agrees: one miss, N-1 hits+coalesced, bytes resident.
    let text = c.request("GET", "/metrics", None).unwrap().text();
    let counter = |name: &str| -> u64 {
        text.lines()
            .find(|l| l.starts_with(name) && !l.starts_with('#'))
            .and_then(|l| l.split(' ').nth(1))
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("missing {name} in:\n{text}"))
    };
    assert_eq!(counter("jouppi_result_cache_misses_total"), 1);
    assert_eq!(
        counter("jouppi_result_cache_hits_total") + counter("jouppi_result_cache_coalesced_total"),
        (HERD - 1) as u64
    );
    assert!(counter("jouppi_result_cache_bytes_resident") > 0);

    handle.shutdown();
}
