//! Ablation: victim-cache replacement policy.
//!
//! The paper's victim caches "replace the least recently used item"; at
//! 1-15 entries, exact LRU is cheap. This ablation checks how much LRU
//! actually buys over FIFO and random replacement — quantifying a design
//! choice DESIGN.md calls out.

use jouppi_cache::ReplacementPolicy;
use jouppi_core::AugmentedConfig;
use jouppi_report::Table;
use jouppi_workloads::Benchmark;

use crate::common::{
    average, baseline_l1, classify_side, pct_of_conflicts_removed, per_benchmark, run_side,
    ExperimentConfig, Side,
};

/// Policies compared.
pub const POLICIES: [ReplacementPolicy; 3] = [
    ReplacementPolicy::Lru,
    ReplacementPolicy::Fifo,
    ReplacementPolicy::Random,
];

/// One benchmark's % of data conflict misses removed per policy, with a
/// 4-entry victim cache.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReplacementRow {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// LRU replacement (the paper's design).
    pub lru: f64,
    /// FIFO replacement.
    pub fifo: f64,
    /// Random replacement.
    pub random: f64,
}

/// Results of the replacement-policy ablation.
#[derive(Clone, Debug, PartialEq)]
pub struct ExtReplacement {
    /// One row per benchmark.
    pub rows: Vec<ReplacementRow>,
}

/// Runs the ablation (data side, 4-entry victim caches).
pub fn run(cfg: &ExperimentConfig) -> ExtReplacement {
    let geom = baseline_l1();
    let rows = per_benchmark(cfg, |b, trace| {
        let (_, breakdown) = classify_side(trace, Side::Data, geom);
        let removed = |policy: ReplacementPolicy| {
            let aug = AugmentedConfig::new(geom)
                .victim_cache(4)
                .victim_policy(policy);
            let stats = run_side(trace, Side::Data, aug);
            pct_of_conflicts_removed(stats.removed_misses(), breakdown.conflict)
        };
        ReplacementRow {
            benchmark: b,
            lru: removed(ReplacementPolicy::Lru),
            fifo: removed(ReplacementPolicy::Fifo),
            random: removed(ReplacementPolicy::Random),
        }
    })
    .into_iter()
    .map(|(_, r)| r)
    .collect();
    ExtReplacement { rows }
}

impl ExtReplacement {
    /// Averages `(lru, fifo, random)`.
    pub fn averages(&self) -> (f64, f64, f64) {
        (
            average(&self.rows.iter().map(|r| r.lru).collect::<Vec<_>>()),
            average(&self.rows.iter().map(|r| r.fifo).collect::<Vec<_>>()),
            average(&self.rows.iter().map(|r| r.random).collect::<Vec<_>>()),
        )
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut t = Table::new(["program", "LRU", "FIFO", "random"]);
        for r in &self.rows {
            t.row([
                r.benchmark.name().to_owned(),
                format!("{:.0}%", r.lru),
                format!("{:.0}%", r.fifo),
                format!("{:.0}%", r.random),
            ]);
        }
        let (lru, fifo, random) = self.averages();
        t.row([
            "average".to_owned(),
            format!("{lru:.0}%"),
            format!("{fifo:.0}%"),
            format!("{random:.0}%"),
        ]);
        format!(
            "Ablation: 4-entry data victim cache replacement policy \
             (% of conflict misses removed)\n{t}"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_is_at_least_competitive() {
        let cfg = ExperimentConfig::with_scale(60_000);
        let e = run(&cfg);
        let (lru, fifo, random) = e.averages();
        // LRU should match or beat the alternatives on average (small
        // slack: FIFO ≈ LRU when hits are rare between insertions).
        assert!(lru + 3.0 >= fifo, "LRU {lru} vs FIFO {fifo}");
        assert!(lru + 3.0 >= random, "LRU {lru} vs random {random}");
        assert!(lru > 20.0, "LRU ineffective: {lru}");
        assert!(e.render().contains("FIFO"));
    }

    #[test]
    fn all_policies_remove_some_conflicts() {
        let cfg = ExperimentConfig::with_scale(40_000);
        let e = run(&cfg);
        for r in &e.rows {
            if r.lru > 10.0 {
                assert!(r.fifo > 0.0, "{:?}", r);
                assert!(r.random > 0.0, "{:?}", r);
            }
        }
    }
}
