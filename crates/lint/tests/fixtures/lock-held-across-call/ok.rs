//! Fixture: the guard scope closes before the blocking call; calls made
//! under the lock reach non-blocking callees only.

pub fn tick(jobs: &Mutex<u64>, rx: &Receiver<u64>) {
    {
        let guard = jobs.lock();
        note(1);
        drop(guard);
    }
    pump(rx);
}

fn note(count: u64) {}

fn pump(rx: &Receiver<u64>) {
    wait_one(rx);
}

fn wait_one(rx: &Receiver<u64>) {
    rx.recv();
}
