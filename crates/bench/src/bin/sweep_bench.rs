//! Times full experiment sweeps with the sweep engine forced sequential
//! and again at the default worker count, then writes `BENCH_sweep.json`.
//!
//! Usage: `sweep-bench [SCALE] [OUT_PATH]`
//!
//! * `SCALE` — instructions per benchmark trace (default 60000).
//! * `OUT_PATH` — where to write the JSON report (default
//!   `BENCH_sweep.json` in the current directory).
//!
//! The default-mode worker count honors `JOUPPI_THREADS`.

use std::time::Instant;

use jouppi_bench::{bench_config, render_json, Measurement};
use jouppi_experiments::common::{record_traces, ExperimentConfig};
use jouppi_experiments::{conflict_sweep, fig_3_1, stream_sweep, sweep};
use jouppi_workloads::Scale;

fn time_sweep(
    name: &'static str,
    force_sequential: bool,
    refs: u64,
    run: &dyn Fn(),
) -> Measurement {
    sweep::set_thread_count(if force_sequential { 1 } else { 0 });
    let threads = sweep::thread_count();
    let start = Instant::now();
    run();
    let wall_ms = start.elapsed().as_secs_f64() * 1000.0;
    sweep::set_thread_count(0);
    Measurement {
        sweep: name,
        mode: if force_sequential {
            "forced_sequential"
        } else {
            "default"
        },
        threads,
        refs,
        wall_ms,
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut cfg = bench_config();
    if let Some(raw) = args.next() {
        let n: u64 = raw.parse().expect("SCALE must be an integer");
        cfg = ExperimentConfig {
            scale: Scale::new(n),
            ..cfg
        };
    }
    let out = args.next().unwrap_or_else(|| "BENCH_sweep.json".to_owned());

    // Every replay of a cache side touches each of that side's references
    // exactly once, so refs-per-sweep is (replays per side) × trace size.
    let total: u64 = record_traces(&cfg)
        .iter()
        .map(|(_, t)| t.len() as u64)
        .sum();
    let fig31 = || {
        fig_3_1::run(&cfg);
    };
    let victim = || {
        conflict_sweep::run(&cfg, conflict_sweep::Mechanism::VictimCache, 4);
    };
    let stream = || {
        stream_sweep::run(&cfg, 1, 8);
    };
    let sweeps: [(&'static str, u64, &dyn Fn()); 3] = [
        ("fig_3_1", total, &fig31),
        ("victim_cache_4", 5 * total, &victim),
        ("stream_single_8", 10 * total, &stream),
    ];

    let mut runs = Vec::new();
    for (name, refs, run) in sweeps {
        for force_sequential in [true, false] {
            let m = time_sweep(name, force_sequential, refs, run);
            eprintln!(
                "{:>16} {:>17} ({} thread{}): {:>9.1} ms, {:>12.0} refs/s",
                m.sweep,
                m.mode,
                m.threads,
                if m.threads == 1 { "" } else { "s" },
                m.wall_ms,
                m.refs_per_sec()
            );
            runs.push(m);
        }
    }

    let report = render_json(sweep::available_cores(), &cfg, &runs);
    std::fs::write(&out, &report).expect("failed to write the benchmark report");
    eprintln!("wrote {out}");
}
