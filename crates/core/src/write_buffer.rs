//! A write buffer between a write-through L1 and the second-level cache.
//!
//! §2 of the paper argues the second-level cache must be *pipelined* from
//! bandwidth alone: "stores typically occur at an average rate of 1 in
//! every 6 or 7 instructions, [so] an unpipelined external cache would
//! not have even enough bandwidth to handle the store traffic for access
//! times greater than seven instruction times." A write buffer decouples
//! the processor from that latency — until it fills. This model exposes
//! exactly that behaviour: stores enqueue instantly while there is room,
//! the buffer drains one entry per `accept_interval` ticks (the L2's
//! issue rate), and a store arriving at a full buffer stalls until a slot
//! frees.

/// A FIFO write buffer draining into a pipelined (or not) next level.
///
/// Time is a caller-supplied monotone tick counter (instruction times).
///
/// # Examples
///
/// A deep enough buffer with a fast-draining L2 absorbs store bursts:
///
/// ```
/// use jouppi_core::WriteBuffer;
///
/// let mut wb = WriteBuffer::new(4, 2); // 4 entries, drains 1 per 2 ticks
/// let mut stalls = 0;
/// for t in 0..100u64 {
///     stalls += wb.store(t * 7); // a store every 7 instruction times
/// }
/// assert_eq!(stalls, 0); // drain rate exceeds store rate: never stalls
/// ```
#[derive(Clone, Debug)]
pub struct WriteBuffer {
    depth: usize,
    accept_interval: u64,
    /// Completion times of queued writes (monotone, front = oldest).
    completions: std::collections::VecDeque<u64>,
    /// When the next level can accept another write.
    next_free: u64,
    stall_ticks: u64,
    stores: u64,
}

impl WriteBuffer {
    /// Creates a buffer with `depth` entries draining one write per
    /// `accept_interval` ticks.
    ///
    /// # Panics
    ///
    /// Panics if `depth` or `accept_interval` is zero.
    pub fn new(depth: usize, accept_interval: u64) -> Self {
        assert!(depth > 0, "write buffer needs at least one entry");
        assert!(accept_interval > 0, "the next level must accept writes");
        WriteBuffer {
            depth,
            accept_interval,
            completions: std::collections::VecDeque::with_capacity(depth),
            next_free: 0,
            stall_ticks: 0,
            stores: 0,
        }
    }

    /// Buffer capacity in entries.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Ticks between writes the next level accepts.
    pub fn accept_interval(&self) -> u64 {
        self.accept_interval
    }

    /// Entries still in flight at time `now`.
    pub fn occupancy(&self, now: u64) -> usize {
        self.completions.iter().filter(|&&c| c > now).count()
    }

    /// Issues a store at time `now`; returns the stall ticks the
    /// processor pays (0 if the buffer had room).
    ///
    /// `now` must be monotone and must account for previously returned
    /// stalls — a stalled processor does not keep issuing: advance your
    /// clock by the return value before the next reference.
    pub fn store(&mut self, now: u64) -> u64 {
        self.stores += 1;
        // Retire completed writes.
        while matches!(self.completions.front(), Some(&c) if c <= now) {
            self.completions.pop_front();
        }
        let stall = if self.completions.len() == self.depth {
            // Full: wait until the oldest write completes.
            let free_at = *self.completions.front().expect("full buffer");
            let stall = free_at.saturating_sub(now);
            self.completions.pop_front();
            stall
        } else {
            0
        };
        let issue_at = self.next_free.max(now + stall);
        let done = issue_at + self.accept_interval;
        self.next_free = done;
        self.completions.push_back(done);
        self.stall_ticks += stall;
        stall
    }

    /// Total stall ticks paid so far.
    pub fn total_stalls(&self) -> u64 {
        self.stall_ticks
    }

    /// Total stores issued.
    pub fn total_stores(&self) -> u64 {
        self.stores
    }

    /// Average stall per store (0.0 with no stores).
    pub fn stall_per_store(&self) -> f64 {
        if self.stores == 0 {
            0.0
        } else {
            self.stall_ticks as f64 / self.stores as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_drain_never_stalls() {
        let mut wb = WriteBuffer::new(4, 2);
        for t in 0..1000u64 {
            assert_eq!(wb.store(t * 7), 0);
        }
        assert_eq!(wb.total_stalls(), 0);
        assert_eq!(wb.total_stores(), 1000);
    }

    #[test]
    fn slow_drain_eventually_stalls_every_store() {
        // §2's claim: stores 1-in-7 instructions, unpipelined L2 slower
        // than 7 instruction times per access ⇒ bandwidth-limited. The
        // clock advances by the stall each time (a stalled processor
        // stops issuing).
        let mut wb = WriteBuffer::new(4, 16); // accepts 1 write per 16 ticks
        let mut now = 0u64;
        let mut stalled = 0;
        for _ in 0..1000u64 {
            now += 7; // seven instruction times of useful work
            let stall = wb.store(now);
            now += stall;
            if stall > 0 {
                stalled += 1;
            }
        }
        assert!(stalled > 900, "only {stalled} stores stalled");
        // Steady state: each store waits the bandwidth deficit (16 − 7).
        let per_store = wb.stall_per_store();
        assert!(
            (8.0..10.0).contains(&per_store),
            "expected ~9 ticks/store deficit, got {per_store}"
        );
    }

    #[test]
    fn break_even_at_the_store_interval() {
        // Accept interval equal to the store interval: keeps up exactly.
        let mut wb = WriteBuffer::new(2, 7);
        for t in 0..1000u64 {
            assert_eq!(wb.store(t * 7), 0, "at t={t}");
        }
    }

    #[test]
    fn deeper_buffers_absorb_longer_bursts() {
        let burst = |depth: usize| {
            let mut wb = WriteBuffer::new(depth, 10);
            // A burst of back-to-back stores, then silence.
            (0..12u64).map(|i| wb.store(i)).sum::<u64>()
        };
        let shallow = burst(2);
        let deep = burst(8);
        assert!(deep < shallow, "depth 8 ({deep}) vs depth 2 ({shallow})");
    }

    #[test]
    fn occupancy_tracks_in_flight_writes() {
        let mut wb = WriteBuffer::new(4, 10);
        wb.store(0); // completes at 10
        wb.store(0); // completes at 20
        assert_eq!(wb.occupancy(5), 2);
        assert_eq!(wb.occupancy(15), 1);
        assert_eq!(wb.occupancy(25), 0);
        assert_eq!(wb.depth(), 4);
        assert_eq!(wb.accept_interval(), 10);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_depth_panics() {
        let _ = WriteBuffer::new(0, 1);
    }
}
