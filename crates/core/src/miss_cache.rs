//! The miss cache of §3.1.

use jouppi_cache::LruSet;
use jouppi_trace::LineAddr;

/// A small fully-associative cache between a direct-mapped cache and its
/// refill path, loaded with the **requested** line on every first-level
/// miss (§3.1 of the paper).
///
/// Because the requested line is loaded into both the direct-mapped cache
/// and the miss cache, lines are duplicated — the observation that motivates
/// [victim caching](crate::VictimCache).
///
/// The miss cache is probed in parallel with the upper cache; a probe that
/// hits turns a many-cycle off-chip miss into a one-cycle reload.
///
/// # Examples
///
/// ```
/// use jouppi_core::MissCache;
/// use jouppi_trace::LineAddr;
///
/// let mut mc = MissCache::new(2);
/// let (a, b) = (LineAddr::new(0), LineAddr::new(256)); // conflicting pair
/// // First misses: loaded into the miss cache alongside the upper cache.
/// mc.insert(a);
/// mc.insert(b);
/// // The alternating string-compare pattern now hits in the miss cache:
/// assert!(mc.probe_and_touch(a));
/// assert!(mc.probe_and_touch(b));
/// ```
#[derive(Clone, Debug)]
pub struct MissCache {
    lines: LruSet,
}

impl MissCache {
    /// Creates a miss cache with `entries` lines (the paper studies 1-15,
    /// recommending 2-5).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero.
    pub fn new(entries: usize) -> Self {
        MissCache {
            lines: LruSet::new(entries),
        }
    }

    /// Number of entries the miss cache can hold.
    pub fn capacity(&self) -> usize {
        self.lines.capacity()
    }

    /// Number of currently valid entries.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// Returns `true` if no entries are valid.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// Probes for `line` on an upper-cache miss. On a hit the entry becomes
    /// most-recently used (the upper cache is reloaded from here in one
    /// cycle) and `true` is returned.
    pub fn probe_and_touch(&mut self, line: LineAddr) -> bool {
        self.lines.touch(line)
    }

    /// Checks residency without updating recency (for overlap statistics).
    pub fn contains(&self, line: LineAddr) -> bool {
        self.lines.contains(line)
    }

    /// Loads the requested `line` after a full miss, replacing the
    /// least-recently-used entry. Returns the entry that was displaced,
    /// if any.
    pub fn insert(&mut self, line: LineAddr) -> Option<LineAddr> {
        self.lines.insert(line)
    }

    /// Iterates over the resident lines, most-recently used first.
    pub fn iter(&self) -> impl Iterator<Item = LineAddr> + '_ {
        self.lines.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(n: u64) -> LineAddr {
        LineAddr::new(n)
    }

    #[test]
    fn two_entry_cache_absorbs_alternating_pair() {
        let mut mc = MissCache::new(2);
        mc.insert(l(1));
        mc.insert(l(2));
        for _ in 0..10 {
            assert!(mc.probe_and_touch(l(1)));
            assert!(mc.probe_and_touch(l(2)));
        }
        assert_eq!(mc.len(), 2);
    }

    #[test]
    fn lru_replacement_on_insert() {
        let mut mc = MissCache::new(2);
        mc.insert(l(1));
        mc.insert(l(2));
        mc.probe_and_touch(l(1)); // 2 becomes LRU
        assert_eq!(mc.insert(l(3)), Some(l(2)));
        assert!(mc.contains(l(1)));
        assert!(!mc.contains(l(2)));
    }

    #[test]
    fn probe_miss_returns_false() {
        let mut mc = MissCache::new(2);
        assert!(!mc.probe_and_touch(l(7)));
        assert!(mc.is_empty());
        assert_eq!(mc.capacity(), 2);
    }

    #[test]
    fn thrashing_three_way_conflict_defeats_two_entries() {
        // Three alternating conflicting lines overwhelm a 2-entry miss
        // cache cycled in LRU order — the paper's motivating limit case.
        let mut mc = MissCache::new(2);
        let mut hits = 0;
        for i in 0..30 {
            let line = l(i % 3);
            if mc.probe_and_touch(line) {
                hits += 1;
            } else {
                mc.insert(line);
            }
        }
        assert_eq!(
            hits, 0,
            "LRU cycling of 3 lines through 2 entries never hits"
        );
    }

    #[test]
    fn iter_is_mru_first() {
        let mut mc = MissCache::new(3);
        mc.insert(l(1));
        mc.insert(l(2));
        mc.insert(l(3));
        mc.probe_and_touch(l(1));
        let order: Vec<_> = mc.iter().collect();
        assert_eq!(order, vec![l(1), l(3), l(2)]);
    }
}
