//! Shared machinery for Figures 3-3 and 3-5: sweep the number of entries
//! in a fully-associative backing cache (miss cache or victim cache) and
//! measure what percentage of conflict misses it removes.

use jouppi_core::AugmentedConfig;
use jouppi_report::{Chart, Series, Table};
use jouppi_workloads::Benchmark;

use crate::common::{
    average, baseline_l1, classify_side, pct_of_conflicts_removed, record_traces, run_side,
    run_side_gang, ExperimentConfig, Side, GANG_WIDTH,
};
use crate::sweep;

/// Which §3 mechanism a sweep exercises.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mechanism {
    /// The miss cache of §3.1 (loads the requested line).
    MissCache,
    /// The victim cache of §3.2 (loads the replacement victim).
    VictimCache,
}

impl Mechanism {
    fn label(self) -> &'static str {
        match self {
            Mechanism::MissCache => "miss cache",
            Mechanism::VictimCache => "victim cache",
        }
    }

    fn config(self, entries: usize) -> AugmentedConfig {
        let base = AugmentedConfig::new(baseline_l1());
        match self {
            Mechanism::MissCache => base.miss_cache(entries),
            Mechanism::VictimCache => base.victim_cache(entries),
        }
    }
}

/// One benchmark's sweep: percent of conflict misses removed per entry
/// count, for both cache sides.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchSweep {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// `instr[n-1]` = % of I-cache conflict misses removed with `n`
    /// entries.
    pub instr: Vec<f64>,
    /// Same for the data cache.
    pub data: Vec<f64>,
}

/// A full conflict-removal sweep (Figure 3-3 or 3-5).
#[derive(Clone, Debug, PartialEq)]
pub struct ConflictSweep {
    /// The mechanism swept.
    pub mechanism: Mechanism,
    /// Entry counts measured (`1..=max`).
    pub entries: Vec<usize>,
    /// Per-benchmark curves.
    pub benchmarks: Vec<BenchSweep>,
}

/// Runs the sweep for entry counts `1..=max_entries` on the fused engine.
///
/// The unit of scheduled work is one (benchmark × side) cell: it
/// classifies that side's misses once (the conflict-miss denominator) and
/// then replays the side through [`run_side_gang`] gangs of up to
/// [`GANG_WIDTH`] entry-count configurations — one trace pass per gang
/// instead of one per configuration. Results are bit-identical to
/// [`run_per_cell`] (pinned by the `fused_per_cell_equivalence` test).
pub fn run(cfg: &ExperimentConfig, mechanism: Mechanism, max_entries: usize) -> ConflictSweep {
    let geom = baseline_l1();
    let traces = record_traces(cfg);
    let cfgs: Vec<_> = (1..=max_entries).map(|n| mechanism.config(n)).collect();
    let jobs = traces.len() * 2;
    let total: u64 = traces.iter().map(|(_, t)| t.len() as u64).sum();
    // Each cell classifies once, then replays its side once per config.
    let refs_per_job = total / jobs as u64 * (1 + cfgs.len() as u64);
    let rows = sweep::map_jobs_sized(jobs, refs_per_job, |cell| {
        let (_, trace) = &traces[cell / 2];
        let side = Side::BOTH[cell % 2];
        let (_, breakdown) = classify_side(trace, side, geom);
        let mut removed = Vec::with_capacity(max_entries);
        for chunk in cfgs.chunks(GANG_WIDTH) {
            for stats in run_side_gang(trace, side, chunk) {
                removed.push(pct_of_conflicts_removed(
                    stats.removed_misses(),
                    breakdown.conflict,
                ));
            }
        }
        removed
    });
    assemble(mechanism, max_entries, &traces, |cell| rows[cell].clone())
}

/// Runs the sweep with one scheduled cell per (benchmark × side ×
/// entry-count) simulation — the pre-fusion engine, kept as the reference
/// implementation the fused path is checked against.
pub fn run_per_cell(
    cfg: &ExperimentConfig,
    mechanism: Mechanism,
    max_entries: usize,
) -> ConflictSweep {
    let geom = baseline_l1();
    let traces = record_traces(cfg);
    let sides = traces.len() * 2;
    let conflicts = sweep::map_jobs(sides, |cell| {
        let (_, trace) = &traces[cell / 2];
        let (_, breakdown) = classify_side(trace, Side::BOTH[cell % 2], geom);
        breakdown.conflict
    });
    let removed = sweep::map_jobs(sides * max_entries, |job| {
        let cell = job / max_entries;
        let entries = 1 + job % max_entries;
        let (_, trace) = &traces[cell / 2];
        let stats = run_side(trace, Side::BOTH[cell % 2], mechanism.config(entries));
        pct_of_conflicts_removed(stats.removed_misses(), conflicts[cell])
    });
    assemble(mechanism, max_entries, &traces, |cell| {
        removed[cell * max_entries..(cell + 1) * max_entries].to_vec()
    })
}

fn assemble(
    mechanism: Mechanism,
    max_entries: usize,
    traces: &[(Benchmark, jouppi_trace::RecordedTrace)],
    curve: impl Fn(usize) -> Vec<f64>,
) -> ConflictSweep {
    let benchmarks = traces
        .iter()
        .enumerate()
        .map(|(i, (b, _))| BenchSweep {
            benchmark: *b,
            instr: curve(2 * i),
            data: curve(2 * i + 1),
        })
        .collect();
    ConflictSweep {
        mechanism,
        entries: (1..=max_entries).collect(),
        benchmarks,
    }
}

impl ConflictSweep {
    /// Average (equal-weight across benchmarks) percent of conflict misses
    /// removed with `entries` entries, instruction side.
    pub fn avg_instr(&self, entries: usize) -> f64 {
        self.avg(entries, true)
    }

    /// Average percent of conflict misses removed, data side.
    pub fn avg_data(&self, entries: usize) -> f64 {
        self.avg(entries, false)
    }

    fn avg(&self, entries: usize, instr: bool) -> f64 {
        let idx = match self.entries.iter().position(|&e| e == entries) {
            Some(i) => i,
            None => return 0.0,
        };
        average(
            &self
                .benchmarks
                .iter()
                .map(|b| if instr { b.instr[idx] } else { b.data[idx] })
                .collect::<Vec<_>>(),
        )
    }

    /// The averaged curves as chart series (I and D).
    pub fn chart(&self) -> Chart {
        let to_points = |instr: bool| {
            self.entries
                .iter()
                .map(|&n| {
                    (
                        n as f64,
                        if instr {
                            self.avg_instr(n)
                        } else {
                            self.avg_data(n)
                        },
                    )
                })
                .collect()
        };
        Chart::new(
            format!(
                "conflict misses removed by {} (avg of 6 benchmarks)",
                self.mechanism.label()
            ),
            60,
            16,
        )
        .y_range(0.0, 100.0)
        .series(Series::new("L1 I-cache", 'I', to_points(true)))
        .series(Series::new("L1 D-cache", 'D', to_points(false)))
    }

    /// Renders the per-benchmark table plus the averaged chart.
    pub fn render(&self) -> String {
        let fig = match self.mechanism {
            Mechanism::MissCache => "Figure 3-3",
            Mechanism::VictimCache => "Figure 3-5",
        };
        let mut header: Vec<String> = vec!["program/side".into()];
        header.extend(self.entries.iter().map(|n| format!("{n}")));
        let mut t = Table::new(header);
        for b in &self.benchmarks {
            let mut row_i: Vec<String> = vec![format!("{} I", b.benchmark.name())];
            row_i.extend(b.instr.iter().map(|v| format!("{v:.0}")));
            t.row(row_i);
            let mut row_d: Vec<String> = vec![format!("{} D", b.benchmark.name())];
            row_d.extend(b.data.iter().map(|v| format!("{v:.0}")));
            t.row(row_d);
        }
        format!(
            "{fig}: % conflict misses removed by {} vs entries\n{}\n{}",
            self.mechanism.label(),
            t.render(),
            self.chart().render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> ExperimentConfig {
        ExperimentConfig::with_scale(60_000)
    }

    #[test]
    fn victim_cache_dominates_miss_cache() {
        let cfg = small_cfg();
        let mc = run(&cfg, Mechanism::MissCache, 4);
        let vc = run(&cfg, Mechanism::VictimCache, 4);
        // §3.2: "Victim caching is always an improvement over miss
        // caching" — check the averaged curves at every size.
        for &n in &[1usize, 2, 4] {
            assert!(
                vc.avg_data(n) + 1e-9 >= mc.avg_data(n),
                "entries={n}: VC {} < MC {}",
                vc.avg_data(n),
                mc.avg_data(n)
            );
        }
        // One-entry victim caches are useful; one-entry miss caches are
        // nearly useless (only stale-data rescue, typically ~0).
        assert!(vc.avg_data(1) > mc.avg_data(1) + 5.0);
    }

    #[test]
    fn miss_cache_matches_paper_magnitudes() {
        let cfg = small_cfg();
        let mc = run(&cfg, Mechanism::MissCache, 4);
        // Paper: 2 entries remove ~25% of data conflict misses, 4 entries
        // ~36%. Allow wide bands for the synthetic workloads.
        let two = mc.avg_data(2);
        let four = mc.avg_data(4);
        assert!((10.0..55.0).contains(&two), "2-entry avg {two}");
        assert!(four >= two, "more entries can't hurt");
        // Data side benefits much more than the instruction side.
        assert!(mc.avg_data(2) > mc.avg_instr(2));
    }

    #[test]
    fn curves_are_monotone_in_entries() {
        let cfg = ExperimentConfig::with_scale(40_000);
        let vc = run(&cfg, Mechanism::VictimCache, 5);
        for b in &vc.benchmarks {
            for w in b.data.windows(2) {
                assert!(w[1] + 1.0 >= w[0], "{}: {:?}", b.benchmark, b.data);
            }
        }
    }

    #[test]
    fn render_contains_chart_and_rows() {
        let cfg = ExperimentConfig::with_scale(20_000);
        let vc = run(&cfg, Mechanism::VictimCache, 2);
        let text = vc.render();
        assert!(text.contains("Figure 3-5"));
        assert!(text.contains("ccom I"));
        assert!(text.contains("L1 D-cache"));
    }
}
