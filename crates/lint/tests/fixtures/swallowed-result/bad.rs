//! Fixture: both ways of silently discarding a `Result` — `let _ =` and
//! a statement-level `.ok()`.

use std::fs;
use std::path::Path;

pub fn cleanup(path: &Path) {
    let _ = fs::remove_file(path);
}

pub fn touch(path: &Path) {
    fs::write(path, b"x").ok();
}
