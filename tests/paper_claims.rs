//! The paper's headline quantitative claims, checked end to end against
//! the synthetic workload suite (generous bands — the substrate is a
//! seeded synthetic trace generator, not the WRL Titan).

use jouppi::experiments::common::ExperimentConfig;
use jouppi::experiments::{conflict_sweep, fig_3_1, fig_5_1, overlap, stream_sweep};
use jouppi::workloads::Benchmark;

fn cfg() -> ExperimentConfig {
    ExperimentConfig::with_scale(100_000)
}

#[test]
fn conflict_fractions_are_significant() {
    // §3: "Conflict misses typically account for between 20% and 40% of
    // all direct-mapped cache misses"; the paper measures 39% (data) and
    // 29% (instruction) for this suite.
    let f = fig_3_1::run(&cfg());
    let d = f.avg_data_conflict_fraction();
    let i = f.avg_instr_conflict_fraction();
    assert!((0.25..=0.60).contains(&d), "data conflict avg {d}");
    assert!((0.12..=0.45).contains(&i), "instr conflict avg {i}");
    assert_eq!(f.highest_data_conflict(), Benchmark::Met);
}

#[test]
fn small_miss_caches_remove_a_quarter_of_data_conflicts() {
    // Abstract: "Small miss caches of 2 to 5 entries are shown to be very
    // effective"; §3.1: 2 entries remove 25%, 4 entries 36% of data
    // conflict misses on average.
    let mc = conflict_sweep::run(&cfg(), conflict_sweep::Mechanism::MissCache, 5);
    let two = mc.avg_data(2);
    let four = mc.avg_data(4);
    assert!((12.0..=50.0).contains(&two), "2-entry: {two}%");
    assert!((18.0..=60.0).contains(&four), "4-entry: {four}%");
    assert!(four >= two);
    // One-entry miss caches are nearly useless (§3.2).
    assert!(mc.avg_data(1) < 5.0, "1-entry MC: {}", mc.avg_data(1));
}

#[test]
fn victim_caches_beat_miss_caches_at_every_size() {
    // §3.2: "Victim caching is always an improvement over miss caching",
    // and one-entry victim caches are already useful.
    let c = cfg();
    let mc = conflict_sweep::run(&c, conflict_sweep::Mechanism::MissCache, 5);
    let vc = conflict_sweep::run(&c, conflict_sweep::Mechanism::VictimCache, 5);
    for n in 1..=5 {
        assert!(
            vc.avg_data(n) + 1e-9 >= mc.avg_data(n),
            "{n} entries: VC {} < MC {}",
            vc.avg_data(n),
            mc.avg_data(n)
        );
    }
    assert!(vc.avg_data(1) > 15.0, "1-entry VC: {}", vc.avg_data(1));
}

#[test]
fn stream_buffers_remove_most_instruction_misses() {
    // §4.2: single stream buffer removes 72% of instruction misses and
    // 25% of data misses; the 4-way version removes 43% of data misses.
    let c = cfg();
    let single = stream_sweep::run(&c, 1, 16);
    let multi = stream_sweep::run(&c, 4, 16);
    let i = single.avg_instr(16);
    assert!((55.0..=100.0).contains(&i), "single I: {i}%");
    let d1 = single.avg_data(16);
    let d4 = multi.avg_data(16);
    assert!(d4 > d1 * 1.4, "4-way data {d4}% vs single {d1}%");
    assert!((25.0..=75.0).contains(&d4), "4-way D: {d4}%");
}

#[test]
fn victim_caches_and_stream_buffers_are_orthogonal() {
    // §5: tiny overlap between what the two mechanisms capture.
    let o = overlap::run(&cfg());
    let non_linpack_avg: f64 = o
        .rows
        .iter()
        .filter(|r| r.benchmark != Benchmark::Linpack)
        .map(|r| r.overlap_fraction)
        .sum::<f64>()
        / 5.0;
    assert!(non_linpack_avg < 0.15, "avg overlap {non_linpack_avg}");
    // linpack benefits least from victim caching (~4% of misses).
    let linpack = o.row(Benchmark::Linpack).unwrap();
    assert!(
        linpack.vc_hit_fraction < 0.15,
        "{}",
        linpack.vc_hit_fraction
    );
}

#[test]
fn combined_system_halves_the_miss_rate() {
    // Abstract: "Together, victim caches and stream buffers reduce the
    // miss rate of the first level in the cache hierarchy by a factor of
    // two to three"; §5: 143% average performance improvement.
    let f = fig_5_1::run(&cfg());
    let ratio = f.avg_miss_rate_ratio();
    assert!(
        ratio < 0.5,
        "avg miss-rate ratio {ratio} (paper: 1/2 .. 1/3)"
    );
    let improvement = f.avg_improvement_pct();
    assert!(
        (60.0..=300.0).contains(&improvement),
        "avg improvement {improvement}% (paper: 143%)"
    );
}
