//! `jouppi-lint` — std-only static analysis for the Jouppi workspace.
//!
//! The repo's headline guarantee is *exactness*: every paper claim is
//! reproduced bit-for-bit, and the fused gang scheduler is bit-identical
//! to per-cell scheduling. Those guarantees rest on conventions the
//! compiler does not enforce — no ambient time or entropy in simulation
//! crates, hasher-independent aggregation, no panic paths in the serve
//! request loop. Since the workspace builds offline with zero external
//! dependencies, tools like dylint and miri are out of reach; this crate
//! is the checker built in the same std-only style as the rest.
//!
//! Architecture:
//!
//! * [`lexer`] — a hand-rolled Rust lexer (comments, strings, raw
//!   strings, char/byte literals, lifetimes), so lint patterns are
//!   matched against *code tokens* only, never text inside literals;
//! * [`parser`] — a tolerant recursive-descent parser recovering just
//!   enough structure (items, blocks, statements, chains) for the
//!   syntax-aware analyses;
//! * [`lint`] — the catalog of enforced invariants;
//! * [`policy`] — the per-crate table mapping files to active lints;
//! * [`check`] — the per-file checker, including `#[cfg(test)]` region
//!   exemption and the suppression-directive engine;
//! * [`analyses`] — the structural analyses (lock-order,
//!   blocking-under-lock, unbounded-growth, swallowed-result,
//!   truncating-cast) walking the parsed AST;
//! * [`symbols`] — per-file symbol tables (function declarations with
//!   impl/module context, flattened `use` imports);
//! * [`callgraph`] — the conservative workspace call graph and its
//!   reachability engine (resolved vs. explicitly ambiguous edges);
//! * [`interproc`] — the four interprocedural analyses riding the graph
//!   (panic-reachability, transitive purity, untrusted-size taint,
//!   lock-held-across-call);
//! * [`workspace`] — deterministic workspace walking, including the
//!   crate-wide lock-order resolution phase and the workspace
//!   call-graph phase;
//! * [`baseline`] — the `lint-baseline.json` ratchet (grandfathered
//!   findings may only shrink);
//! * [`report`] — human `file:line` output, the `--json` document, and
//!   the `--timings` breakdown;
//! * [`cli`] — the driver shared by the `jouppi-lint` binary and the
//!   `jouppi lint` subcommand.
//!
//! # Example
//!
//! ```
//! use jouppi_lint::check::check_source;
//! use jouppi_lint::lint::LintId;
//! use jouppi_lint::policy::classify;
//!
//! let ctx = classify("crates/core/src/example.rs").expect("lintable path");
//! let findings = check_source(&ctx, "fn f() { let t = Instant::now(); }");
//! assert_eq!(findings.len(), 1);
//! assert_eq!(findings[0].lint, LintId::AmbientTime);
//!
//! // With a justified suppression the file is clean.
//! let clean = check_source(
//!     &ctx,
//!     "// jouppi-lint: allow(ambient-time) — doc example\n\
//!      fn f() { let t = Instant::now(); }",
//! );
//! assert!(clean.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyses;
pub mod baseline;
pub mod callgraph;
pub mod check;
pub mod cli;
pub mod interproc;
pub mod lexer;
pub mod lint;
pub mod parser;
pub mod policy;
pub mod report;
pub mod symbols;
pub mod workspace;

pub use check::check_source;
pub use lint::{Finding, LintId, ALL_LINTS};
pub use policy::{classify, lints_for, FileContext};
pub use workspace::{find_root, scan_workspace, ScanResult};
