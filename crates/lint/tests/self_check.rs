//! The workspace must pass its own linter — this is the test form of the
//! `jouppi-lint --workspace` gate ci.sh enforces.

use std::path::Path;

use jouppi_lint::find_root;

fn root_args(extra: &[&str]) -> Vec<String> {
    let root = find_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root");
    let mut args = vec![
        "--root".to_owned(),
        root.to_string_lossy().into_owned(),
        "--workspace".to_owned(),
    ];
    args.extend(extra.iter().map(|s| (*s).to_owned()));
    args
}

#[test]
fn workspace_is_lint_clean() {
    let r = jouppi_lint::cli::run(root_args(&[]));
    assert_eq!(
        r.code, 0,
        "jouppi-lint found regressions:\n{}{}",
        r.stdout, r.stderr
    );
    assert!(r.stdout.contains("clean"), "{}", r.stdout);
}

#[test]
fn workspace_json_report_is_clean_and_covers_the_tree() {
    let r = jouppi_lint::cli::run(root_args(&["--json"]));
    assert_eq!(r.code, 0, "{}{}", r.stdout, r.stderr);
    let doc = jouppi_serve::json::Json::parse(r.stdout.trim()).expect("valid JSON");
    assert_eq!(
        doc.get("clean"),
        Some(&jouppi_serve::json::Json::Bool(true))
    );
    match doc.get("files_scanned") {
        Some(jouppi_serve::json::Json::Int(n)) => {
            assert!(*n > 50, "only {n} files scanned — walker regression?");
        }
        other => panic!("files_scanned missing or mistyped: {other:?}"),
    }
}
