//! Synthetic benchmark workloads standing in for the six WRL traces of
//! Jouppi (ISCA 1990).
//!
//! The paper's evaluation drives every experiment with address traces of
//! six large programs captured on a DEC WRL Titan (`ccom`, `grr`, `yacc`,
//! `met`, `linpack`, `liver`; Table 2-1). Those traces no longer exist in
//! public form, so this crate substitutes *seeded synthetic generators* —
//! one per program — composed from reference-pattern primitives that model
//! the documented behaviour of each original program (see `DESIGN.md` §3
//! for the substitution argument):
//!
//! * [`exec`] — an instruction-fetch engine: procedures laid out in a code
//!   segment, executed sequentially with loops, calls, and returns;
//! * [`data`] — data-reference patterns: strided sweeps, interleaved
//!   vector kernels, alternating string compares, pointer chases, table
//!   lookups, hot conflict sets, and stack frames;
//! * [`Benchmark`] — the six programs, each wiring an instruction engine
//!   and a weighted mixture of data patterns into a deterministic
//!   [`jouppi_trace::TraceSource`].
//!
//! Generators are calibrated so the baseline 4KB/16B direct-mapped miss
//! rates land near Table 2-2 and the conflict-miss fractions near Figure
//! 3-1, and so the paper's qualitative orderings hold (`met` has the
//! highest data-conflict ratio, `linpack`/`liver` have essentially zero
//! instruction misses and long sequential data streams, `liver`'s misses
//! are interleaved streams).
//!
//! # Examples
//!
//! ```
//! use jouppi_trace::TraceSource;
//! use jouppi_workloads::{Benchmark, Scale};
//!
//! let src = Benchmark::Linpack.source(Scale::new(10_000), 42);
//! let stats = jouppi_trace::TraceStats::from_refs(src.refs());
//! assert_eq!(stats.instruction_refs, 10_000);
//! assert!(stats.data_refs() > 0);
//! // Deterministic: same seed, same trace.
//! let again = jouppi_trace::TraceStats::from_refs(src.refs());
//! assert_eq!(stats, again);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod benchmarks;
pub mod data;
pub mod exec;
mod gen;
pub mod kernels;

pub use benchmarks::{Benchmark, PaperRow, WorkloadSource};
pub use gen::{Scale, TraceGen};
