//! Replacement policies for set-associative caches.

use std::fmt;

/// Which resident line a set evicts when a new line must be brought in.
///
/// The paper's caches are direct-mapped (where replacement is trivial), and
/// its fully-associative miss/victim caches use LRU; FIFO and a seeded
/// pseudo-random policy are provided for ablation experiments.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum ReplacementPolicy {
    /// Evict the least-recently-used line (exact LRU).
    #[default]
    Lru,
    /// Evict the line that has been resident longest, ignoring use.
    Fifo,
    /// Evict a pseudo-random line (deterministic xorshift sequence).
    Random,
}

impl fmt::Display for ReplacementPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ReplacementPolicy::Lru => "LRU",
            ReplacementPolicy::Fifo => "FIFO",
            ReplacementPolicy::Random => "random",
        };
        f.write_str(name)
    }
}

/// A small deterministic xorshift64* generator for the `Random` policy.
///
/// Implemented inline so the cache substrate carries no RNG dependency; the
/// sequence is fixed for a given seed, keeping simulations reproducible.
#[derive(Clone, Debug)]
pub(crate) struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    pub(crate) fn new(seed: u64) -> Self {
        XorShift64 {
            state: seed.max(1), // xorshift must not start at 0
        }
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform-ish value in `0..bound` (bound must be nonzero).
    pub(crate) fn below(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0);
        (self.next_u64() % bound as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names() {
        assert_eq!(ReplacementPolicy::Lru.to_string(), "LRU");
        assert_eq!(ReplacementPolicy::Fifo.to_string(), "FIFO");
        assert_eq!(ReplacementPolicy::Random.to_string(), "random");
    }

    #[test]
    fn default_is_lru() {
        assert_eq!(ReplacementPolicy::default(), ReplacementPolicy::Lru);
    }

    #[test]
    fn xorshift_is_deterministic_and_varies() {
        let mut a = XorShift64::new(42);
        let mut b = XorShift64::new(42);
        let va: Vec<_> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<_> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
        assert!(va.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn xorshift_handles_zero_seed() {
        let mut r = XorShift64::new(0);
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = XorShift64::new(7);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
        }
        // bound 1 always yields 0
        assert_eq!(r.below(1), 0);
    }
}
