//! Data-reference patterns: the building blocks of the six workloads.
//!
//! Every behaviour the paper's data-cache results rest on appears here as
//! a reusable, seeded generator:
//!
//! * [`StridedSweep`] — one long unit-(or larger-)stride stream over a
//!   region bigger than the cache (sequential capacity misses; stream
//!   buffers eat these).
//! * [`InterleavedSweep`] — several arrays walked in lockstep (Livermore
//!   kernels; the multi-way stream buffer's reason to exist).
//! * [`Daxpy`] — LINPACK's inner loop: a cached `x` column against a
//!   streaming `y` column with a store per element.
//! * [`StringCompare`] — the paper's canonical tight conflict: two
//!   pointers advanced alternately, sometimes landing on the same cache
//!   set (§3.1's character-string example).
//! * [`HotConflictSet`] — a persistent group of lines mapping to one set,
//!   rotated forever (`met`'s dominant pattern).
//! * [`PointerChase`] — a random cyclic permutation walk over a heap
//!   region (compiler/CAD data structures; capacity misses a victim cache
//!   cannot help).
//! * [`TableLookup`] — skewed random lookups into a table (yacc's DFA
//!   tables, symbol tables).
//! * [`StackFrames`] — procedure frames pushed and popped near the top of
//!   stack (high locality, few misses).
//! * [`Mixture`] — a weighted blend of any of the above.

use jouppi_trace::{Addr, SmallRng};

/// A generator of data-reference addresses.
///
/// Implementations are deterministic given the `SmallRng` handed in (the
/// workload owns one seeded RNG shared by all its patterns).
pub trait DataPattern {
    /// Produces the next data address.
    fn next_addr(&mut self, rng: &mut SmallRng) -> Addr;
}

/// One stream sweeping a region with a fixed stride, wrapping at the end.
///
/// # Examples
///
/// ```
/// use jouppi_trace::SmallRng;
/// use jouppi_workloads::data::{DataPattern, StridedSweep};
///
/// let mut rng = SmallRng::seed_from_u64(0);
/// let mut s = StridedSweep::new(0x1000, 8, 32);
/// let addrs: Vec<u64> = (0..5).map(|_| s.next_addr(&mut rng).get()).collect();
/// assert_eq!(addrs, vec![0x1000, 0x1008, 0x1010, 0x1018, 0x1000]);
/// ```
#[derive(Clone, Debug)]
pub struct StridedSweep {
    base: u64,
    stride: u64,
    region: u64,
    pos: u64,
}

impl StridedSweep {
    /// Sweeps `region` bytes starting at `base`, advancing `stride` bytes
    /// per reference.
    ///
    /// # Panics
    ///
    /// Panics if `stride` or `region` is zero.
    pub fn new(base: u64, stride: u64, region: u64) -> Self {
        assert!(
            stride > 0 && region > 0,
            "stride and region must be nonzero"
        );
        StridedSweep {
            base,
            stride,
            region,
            pos: 0,
        }
    }
}

impl DataPattern for StridedSweep {
    fn next_addr(&mut self, _rng: &mut SmallRng) -> Addr {
        let addr = Addr::new(self.base + self.pos);
        self.pos = (self.pos + self.stride) % self.region;
        addr
    }
}

/// Several arrays walked in lockstep at the same element index —
/// `x[i] = y[i] * z[i]` and friends.
#[derive(Clone, Debug)]
pub struct InterleavedSweep {
    bases: Vec<u64>,
    stride: u64,
    region: u64,
    pos: u64,
    way: usize,
}

impl InterleavedSweep {
    /// Walks each of `bases` with the given element stride over `region`
    /// bytes, cycling base-by-base before advancing the index.
    ///
    /// # Panics
    ///
    /// Panics if `bases` is empty or `stride`/`region` is zero.
    pub fn new(bases: Vec<u64>, stride: u64, region: u64) -> Self {
        assert!(!bases.is_empty(), "need at least one array");
        assert!(
            stride > 0 && region > 0,
            "stride and region must be nonzero"
        );
        InterleavedSweep {
            bases,
            stride,
            region,
            pos: 0,
            way: 0,
        }
    }

    /// Number of interleaved streams.
    pub fn ways(&self) -> usize {
        self.bases.len()
    }
}

impl DataPattern for InterleavedSweep {
    fn next_addr(&mut self, _rng: &mut SmallRng) -> Addr {
        let addr = Addr::new(self.bases[self.way] + self.pos);
        self.way += 1;
        if self.way == self.bases.len() {
            self.way = 0;
            self.pos = (self.pos + self.stride) % self.region;
        }
        addr
    }
}

/// LINPACK's `daxpy` kernel over an `n`×`n` (leading dimension `lda`)
/// column-major matrix of f64: for each target column `j`, stream
/// `y[i] += a * x[i]` — two loads and a store per element, with the `x`
/// column reused across all `j`.
///
/// The standard 100×100 LINPACK declares its array `201×200`, so the
/// column stride is `lda` = 201 elements, not `n`; the resulting odd byte
/// stride staggers columns across cache sets just as in the real
/// benchmark.
#[derive(Clone, Debug)]
pub struct Daxpy {
    base: u64,
    n: u64,
    lda: u64,
    k: u64,
    j: u64,
    i: u64,
    phase: u8,
}

/// Bytes per matrix element (f64).
const F64_BYTES: u64 = 8;

impl Daxpy {
    /// A fresh factorization sweep over an `n`×`n` matrix at `base` with
    /// leading dimension `lda` (in elements).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `lda < n`.
    pub fn new(base: u64, n: u64, lda: u64) -> Self {
        assert!(n >= 2, "daxpy needs at least a 2x2 matrix");
        assert!(lda >= n, "leading dimension must cover the matrix");
        Daxpy {
            base,
            n,
            lda,
            k: 0,
            j: 1,
            i: 0,
            phase: 0,
        }
    }

    fn col_addr(&self, col: u64, row: u64) -> u64 {
        self.base + col * self.lda * F64_BYTES + row * F64_BYTES
    }
}

impl DataPattern for Daxpy {
    fn next_addr(&mut self, _rng: &mut SmallRng) -> Addr {
        let addr = match self.phase {
            0 => self.col_addr(self.k, self.i), // load x[i]
            _ => self.col_addr(self.j, self.i), // load then store y[i]
        };
        self.phase += 1;
        if self.phase == 3 {
            self.phase = 0;
            self.i += 1;
            if self.i == self.n {
                self.i = 0;
                self.j += 1;
                if self.j == self.n {
                    // next elimination step: new pivot column
                    self.k = (self.k + 1) % self.n;
                    self.j = if self.k == 0 { 1 } else { 0 };
                }
                if self.j == self.k {
                    self.j += 1;
                    if self.j == self.n {
                        self.k = (self.k + 1) % self.n;
                        self.j = if self.k == 0 { 1 } else { 0 };
                    }
                }
            }
        }
        Addr::new(addr)
    }
}

/// The §3.1 string-compare conflict: two pointers advanced alternately
/// through episodes, landing on the same cache set with probability
/// `conflict_prob`.
#[derive(Clone, Debug)]
pub struct StringCompare {
    region_a: u64,
    region_b: u64,
    region_len: u64,
    /// Cache span that determines set collisions (line size × number of
    /// sets of the reference cache, 4096 for the paper's 4KB/16B L1).
    cache_span: u64,
    conflict_prob: f64,
    min_len: u64,
    max_len: u64,
    // episode state
    a: u64,
    b: u64,
    off: u64,
    remaining: u64,
    second: bool,
}

impl StringCompare {
    /// Compares strings drawn from two `region_len`-byte regions at
    /// `region_a`/`region_b`; with probability `conflict_prob` an episode's
    /// two strings collide in a cache whose size is `cache_span` bytes
    /// (direct-mapped). Episode lengths are uniform in
    /// `min_len..=max_len` byte pairs.
    ///
    /// # Panics
    ///
    /// Panics if the regions are smaller than `cache_span + max_len`, if
    /// `min_len > max_len`, or if `conflict_prob` is outside `[0, 1]`.
    pub fn new(
        region_a: u64,
        region_b: u64,
        region_len: u64,
        cache_span: u64,
        conflict_prob: f64,
        min_len: u64,
        max_len: u64,
    ) -> Self {
        assert!(min_len >= 1 && min_len <= max_len, "bad episode lengths");
        assert!(
            (0.0..=1.0).contains(&conflict_prob),
            "conflict_prob must be a probability"
        );
        assert!(
            region_len >= cache_span + max_len,
            "regions must span at least one full cache image"
        );
        StringCompare {
            region_a,
            region_b,
            region_len,
            cache_span,
            conflict_prob,
            min_len,
            max_len,
            a: region_a,
            b: region_b,
            off: 0,
            remaining: 0,
            second: false,
        }
    }

    fn new_episode(&mut self, rng: &mut SmallRng) {
        let len = rng.gen_range(self.min_len..=self.max_len);
        let max_start = self.region_len - len;
        let a_off = rng.gen_range(0..max_start) & !3; // word-align
        self.a = self.region_a + a_off;
        self.b = if rng.gen_bool(self.conflict_prob) {
            // Same index bits: b ≡ a (mod cache_span). Both regions are
            // cache_span-aligned by construction of the workloads.
            let congruent = a_off % self.cache_span;
            let images = (self.region_len - congruent - len) / self.cache_span;
            let k = rng.gen_range(0..=images);
            self.region_b + congruent + k * self.cache_span
        } else {
            self.region_b + (rng.gen_range(0..max_start) & !3)
        };
        self.off = 0;
        self.remaining = len;
        self.second = false;
    }
}

impl DataPattern for StringCompare {
    fn next_addr(&mut self, rng: &mut SmallRng) -> Addr {
        if self.remaining == 0 {
            self.new_episode(rng);
        }
        let addr = if self.second {
            self.b + self.off
        } else {
            self.a + self.off
        };
        if self.second {
            self.off += 4;
            self.remaining = self.remaining.saturating_sub(4);
        }
        self.second = !self.second;
        Addr::new(addr)
    }
}

/// A persistent group of addresses that all map to the same cache set,
/// referenced round-robin — `met`'s dominant pattern, and the purest
/// possible conflict-miss generator.
#[derive(Clone, Debug)]
pub struct HotConflictSet {
    lines: Vec<u64>,
    dwell: u64,
    idx: usize,
    used: u64,
}

impl HotConflictSet {
    /// Rotates over `ways` addresses spaced exactly `cache_span` bytes
    /// apart starting at `base`, spending `dwell` consecutive references
    /// on each before moving on.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is zero or `dwell` is zero.
    pub fn new(base: u64, cache_span: u64, ways: usize, dwell: u64) -> Self {
        assert!(ways > 0, "need at least one way");
        assert!(dwell > 0, "dwell must be nonzero");
        HotConflictSet {
            lines: (0..ways as u64).map(|i| base + i * cache_span).collect(),
            dwell,
            idx: 0,
            used: 0,
        }
    }

    /// The number of conflicting addresses in the set.
    pub fn ways(&self) -> usize {
        self.lines.len()
    }
}

impl DataPattern for HotConflictSet {
    fn next_addr(&mut self, rng: &mut SmallRng) -> Addr {
        let addr = self.lines[self.idx] + (rng.gen_range(0..4u64)) * 4;
        self.used += 1;
        if self.used == self.dwell {
            self.used = 0;
            self.idx = (self.idx + 1) % self.lines.len();
        }
        Addr::new(addr)
    }
}

/// A walk over a random cyclic permutation of heap nodes — pointer-rich
/// data structures with no spatial locality.
#[derive(Clone, Debug)]
pub struct PointerChase {
    base: u64,
    node_bytes: u64,
    next: Vec<u32>,
    cur: u32,
}

impl PointerChase {
    /// Builds one random cycle over `count` nodes of `node_bytes` each,
    /// laid out contiguously at `base`.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero, exceeds `u32::MAX`, or `node_bytes` is
    /// zero.
    pub fn new(base: u64, node_bytes: u64, count: usize, rng: &mut SmallRng) -> Self {
        assert!(count > 0 && count <= u32::MAX as usize, "bad node count");
        assert!(node_bytes > 0, "nodes must have nonzero size");
        // Sattolo's algorithm: a uniform random single cycle.
        let mut order: Vec<u32> = (0..count as u32).collect();
        let mut i = count - 1;
        while i > 0 {
            let j = rng.gen_range(0..i);
            order.swap(i, j);
            i -= 1;
        }
        // order is a permutation; make `next` follow the cycle it encodes.
        let mut next = vec![0u32; count];
        for w in 0..count {
            next[order[w] as usize] = order[(w + 1) % count];
        }
        PointerChase {
            base,
            node_bytes,
            next,
            cur: 0,
        }
    }

    /// Total bytes the chase touches.
    pub fn footprint(&self) -> u64 {
        self.node_bytes * self.next.len() as u64
    }
}

impl DataPattern for PointerChase {
    fn next_addr(&mut self, _rng: &mut SmallRng) -> Addr {
        let addr = self.base + u64::from(self.cur) * self.node_bytes;
        self.cur = self.next[self.cur as usize];
        Addr::new(addr)
    }
}

/// Skewed random lookups into a table (DFA transition tables, symbol
/// tables). Rank `r` is selected with probability ∝ 1/(r+1)^`skew`.
#[derive(Clone, Debug)]
pub struct TableLookup {
    base: u64,
    entry_bytes: u64,
    cum: Vec<f64>,
}

impl TableLookup {
    /// Looks up entries of `entry_bytes` each in a table of `entries` at
    /// `base`, with Zipf-like skew (0.0 = uniform).
    ///
    /// # Panics
    ///
    /// Panics if `entries` or `entry_bytes` is zero.
    pub fn new(base: u64, entries: usize, entry_bytes: u64, skew: f64) -> Self {
        assert!(entries > 0 && entry_bytes > 0, "empty table");
        let mut cum = Vec::with_capacity(entries);
        let mut acc = 0.0;
        for r in 0..entries {
            acc += 1.0 / ((r + 1) as f64).powf(skew);
            cum.push(acc);
        }
        TableLookup {
            base,
            entry_bytes,
            cum,
        }
    }
}

impl DataPattern for TableLookup {
    fn next_addr(&mut self, rng: &mut SmallRng) -> Addr {
        let total = *self.cum.last().expect("nonempty table");
        let x: f64 = rng.gen_range(0.0..total);
        let rank = self.cum.partition_point(|&c| c < x).min(self.cum.len() - 1);
        Addr::new(self.base + rank as u64 * self.entry_bytes)
    }
}

/// Procedure frames pushed and popped near the top of stack — dense
/// sequential references with high reuse.
#[derive(Clone, Debug)]
pub struct StackFrames {
    top: u64,
    max_depth_bytes: u64,
    frame_bytes: u64,
    sp: u64,
}

impl StackFrames {
    /// A stack growing down from `top`, at most `max_depth_bytes` deep,
    /// with `frame_bytes` frames.
    ///
    /// # Panics
    ///
    /// Panics if `frame_bytes` is zero or exceeds `max_depth_bytes`.
    pub fn new(top: u64, max_depth_bytes: u64, frame_bytes: u64) -> Self {
        assert!(
            frame_bytes > 0 && frame_bytes <= max_depth_bytes,
            "bad frame size"
        );
        StackFrames {
            top,
            max_depth_bytes,
            frame_bytes,
            sp: 0,
        }
    }
}

impl DataPattern for StackFrames {
    fn next_addr(&mut self, rng: &mut SmallRng) -> Addr {
        // Random walk of the frame pointer, referencing within the frame.
        let r: f64 = rng.next_f64();
        if r < 0.1 && self.sp + self.frame_bytes <= self.max_depth_bytes {
            self.sp += self.frame_bytes; // call
        } else if r < 0.2 && self.sp >= self.frame_bytes {
            self.sp -= self.frame_bytes; // return
        }
        let off = rng.gen_range(0..self.frame_bytes / 4) * 4;
        Addr::new(self.top - self.sp - off)
    }
}

/// A row-major walk over a column-major matrix: consecutive references
/// jump a full column (`lda` elements), the canonical non-unit-stride
/// pattern §5 flags for future work.
#[derive(Clone, Debug)]
pub struct Transpose {
    base: u64,
    n: u64,
    lda_bytes: u64,
    elem: u64,
    i: u64,
    j: u64,
}

impl Transpose {
    /// Walks an `n`×`n` matrix of 8-byte elements at `base` with leading
    /// dimension `lda` (elements), row index outer, column index inner.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `lda < n`.
    pub fn new(base: u64, n: u64, lda: u64) -> Self {
        assert!(n > 0, "matrix must be nonempty");
        assert!(lda >= n, "leading dimension must cover the matrix");
        Transpose {
            base,
            n,
            lda_bytes: lda * 8,
            elem: 8,
            i: 0,
            j: 0,
        }
    }

    /// The byte stride between consecutive references.
    pub fn stride_bytes(&self) -> u64 {
        self.lda_bytes
    }
}

impl DataPattern for Transpose {
    fn next_addr(&mut self, _rng: &mut SmallRng) -> Addr {
        let addr = self.base + self.j * self.lda_bytes + self.i * self.elem;
        self.j += 1;
        if self.j == self.n {
            self.j = 0;
            self.i = (self.i + 1) % self.n;
        }
        Addr::new(addr)
    }
}

/// Data-dependent indirection: `a[idx[i]]` with random indices — the
/// access pattern no sequential or strided prefetcher can help, because
/// the next address is unpredictable until the index loads.
#[derive(Clone, Debug)]
pub struct GatherScatter {
    index_base: u64,
    target_base: u64,
    targets: u64,
    elem: u64,
    i: u64,
    count: u64,
    phase: bool,
}

impl GatherScatter {
    /// Gathers from `targets` elements of `elem` bytes at `target_base`,
    /// driven by a sequential index array at `index_base` (each gather is
    /// an index load followed by a random target load).
    ///
    /// # Panics
    ///
    /// Panics if `targets` or `elem` is zero.
    pub fn new(index_base: u64, target_base: u64, targets: u64, elem: u64) -> Self {
        assert!(targets > 0 && elem > 0, "empty gather target");
        GatherScatter {
            index_base,
            target_base,
            targets,
            elem,
            i: 0,
            count: 0,
            phase: false,
        }
    }
}

impl DataPattern for GatherScatter {
    fn next_addr(&mut self, rng: &mut SmallRng) -> Addr {
        if self.phase {
            self.phase = false;
            let idx = rng.gen_range(0..self.targets);
            Addr::new(self.target_base + idx * self.elem)
        } else {
            self.phase = true;
            self.count += 1;
            self.i = (self.i + 1) % (1 << 20);
            Addr::new(self.index_base + self.i * 4)
        }
    }
}

/// A weighted blend of patterns with *burst* scheduling: when a pattern
/// is selected it runs for a burst of consecutive references before the
/// mixture draws again.
///
/// Bursts model the loop structure of real programs — a string compare or
/// vector kernel issues dozens of consecutive references before control
/// moves elsewhere. This temporal clustering is load-bearing: the paper's
/// miss caches and stream buffers only work because a pattern's misses
/// arrive back-to-back, not shuffled uniformly among other misses.
///
/// A pattern's expected share of references is proportional to its weight
/// regardless of its burst length (selection probability is divided by
/// the burst length).
///
/// # Examples
///
/// ```
/// use jouppi_trace::SmallRng;
/// use jouppi_workloads::data::{DataPattern, Mixture, StridedSweep, TableLookup};
///
/// let mut rng = SmallRng::seed_from_u64(3);
/// let mut mix = Mixture::new()
///     .with_burst(3.0, 16, StridedSweep::new(0x10_000, 8, 1 << 16))
///     .with(1.0, TableLookup::new(0x90_000, 256, 16, 1.0));
/// let _addr = mix.next_addr(&mut rng);
/// ```
#[derive(Default)]
pub struct Mixture {
    entries: Vec<MixEntry>,
    /// Cumulative selection weights (weight / burst).
    cum: Vec<f64>,
    total: f64,
    current: Option<usize>,
    remaining: u32,
}

struct MixEntry {
    burst: u32,
    pattern: Box<dyn DataPattern>,
}

impl Mixture {
    /// An empty mixture. At least one pattern must be added before use.
    pub fn new() -> Self {
        Mixture::default()
    }

    /// Adds a pattern with the given relative weight and a burst length
    /// of one (every reference re-draws).
    ///
    /// # Panics
    ///
    /// Panics if `weight` is not finite and positive.
    #[must_use]
    pub fn with<P: DataPattern + 'static>(self, weight: f64, pattern: P) -> Self {
        self.with_burst(weight, 1, pattern)
    }

    /// Adds a pattern that runs `burst` consecutive references each time
    /// it is selected, still receiving `weight`'s proportional share of
    /// references overall.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is not finite and positive, or `burst` is zero.
    #[must_use]
    pub fn with_burst<P: DataPattern + 'static>(
        mut self,
        weight: f64,
        burst: u32,
        pattern: P,
    ) -> Self {
        assert!(
            weight.is_finite() && weight > 0.0,
            "weights must be positive"
        );
        assert!(burst > 0, "burst length must be nonzero");
        self.total += weight / f64::from(burst);
        self.cum.push(self.total);
        self.entries.push(MixEntry {
            burst,
            pattern: Box::new(pattern),
        });
        self
    }

    /// Number of component patterns.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the mixture has no components.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl DataPattern for Mixture {
    fn next_addr(&mut self, rng: &mut SmallRng) -> Addr {
        assert!(!self.entries.is_empty(), "mixture has no patterns");
        let idx = match self.current {
            Some(idx) if self.remaining > 0 => idx,
            _ => {
                let x: f64 = rng.gen_range(0.0..self.total);
                let idx = self
                    .cum
                    .partition_point(|c| *c < x)
                    .min(self.entries.len() - 1);
                self.current = Some(idx);
                self.remaining = self.entries[idx].burst;
                idx
            }
        };
        self.remaining -= 1;
        self.entries[idx].pattern.next_addr(rng)
    }
}

impl std::fmt::Debug for Mixture {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mixture")
            .field("patterns", &self.entries.len())
            .field("total_selection_weight", &self.total)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(11)
    }

    #[test]
    fn strided_sweep_wraps() {
        let mut r = rng();
        let mut s = StridedSweep::new(100, 16, 48);
        let seq: Vec<u64> = (0..6).map(|_| s.next_addr(&mut r).get()).collect();
        assert_eq!(seq, vec![100, 116, 132, 100, 116, 132]);
    }

    #[test]
    fn interleaved_sweep_cycles_arrays_then_advances() {
        let mut r = rng();
        let mut s = InterleavedSweep::new(vec![0, 1000], 8, 32);
        let seq: Vec<u64> = (0..6).map(|_| s.next_addr(&mut r).get()).collect();
        assert_eq!(seq, vec![0, 1000, 8, 1008, 16, 1016]);
        assert_eq!(s.ways(), 2);
    }

    #[test]
    fn daxpy_reuses_x_column_and_streams_y() {
        let mut r = rng();
        let n = 4;
        let mut d = Daxpy::new(0, n, n);
        // First element of the first daxpy: x[0] (col 0), y[0], y[0] (col 1).
        let a0 = d.next_addr(&mut r).get();
        let a1 = d.next_addr(&mut r).get();
        let a2 = d.next_addr(&mut r).get();
        assert_eq!(a0, 0); // col 0, row 0
        assert_eq!(a1, n * 8); // col 1, row 0
        assert_eq!(a2, a1); // store to the same element
    }

    #[test]
    fn daxpy_skips_pivot_column_as_target() {
        let mut r = rng();
        let n = 3;
        let mut d = Daxpy::new(0, n, n);
        // Walk a full elimination step (k=0): targets must be cols 1 and 2.
        let mut targets = std::collections::BTreeSet::new();
        for _ in 0..(3 * n * (n - 1)) {
            let phase0 = d.phase == 0;
            let a = d.next_addr(&mut r).get();
            if !phase0 {
                targets.insert(a / (n * 8));
            }
        }
        assert!(!targets.contains(&0), "pivot column must not be a target");
    }

    #[test]
    fn string_compare_alternates_and_advances() {
        let mut r = rng();
        let mut s = StringCompare::new(0, 1 << 20, 1 << 19, 4096, 0.0, 64, 64);
        let a0 = s.next_addr(&mut r).get();
        let b0 = s.next_addr(&mut r).get();
        let a1 = s.next_addr(&mut r).get();
        let b1 = s.next_addr(&mut r).get();
        assert_eq!(a1, a0 + 4);
        assert_eq!(b1, b0 + 4);
        assert!(a0 < 1 << 19);
        assert!(b0 >= 1 << 20);
    }

    #[test]
    fn string_compare_conflict_prob_one_collides_sets() {
        let mut r = rng();
        // Regions are 4096-aligned, so congruence mod 4096 ⇒ same set.
        let mut s = StringCompare::new(0, 1 << 20, 1 << 19, 4096, 1.0, 32, 32);
        for _ in 0..50 {
            let a = s.next_addr(&mut r).get();
            let b = s.next_addr(&mut r).get();
            assert_eq!(a % 4096, b % 4096, "episode pair must collide");
        }
    }

    #[test]
    fn hot_conflict_set_rotates_same_set_addresses() {
        let mut r = rng();
        let mut h = HotConflictSet::new(0x8000, 4096, 3, 2);
        let addrs: Vec<u64> = (0..12).map(|_| h.next_addr(&mut r).get()).collect();
        // All congruent mod 4096 up to the sub-line jitter (<16B).
        for a in &addrs {
            assert_eq!((a & !15) % 4096, 0x8000 % 4096);
        }
        // Dwell 2: address line changes every 2 refs.
        assert_eq!(addrs[0] & !15, addrs[1] & !15);
        assert_ne!(addrs[1] & !15, addrs[2] & !15);
        assert_eq!(h.ways(), 3);
    }

    #[test]
    fn pointer_chase_visits_every_node() {
        let mut r = rng();
        let mut p = PointerChase::new(0, 64, 100, &mut r);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(p.next_addr(&mut r).get());
        }
        assert_eq!(seen.len(), 100, "a single cycle visits all nodes");
        assert_eq!(p.footprint(), 6400);
    }

    #[test]
    fn pointer_chase_has_no_short_cycles() {
        let mut r = rng();
        let mut p = PointerChase::new(0, 16, 50, &mut r);
        let first = p.next_addr(&mut r).get();
        // The cycle length is exactly `count`: the start reappears on the
        // 51st call (50 steps after the first).
        let mut reappear = None;
        for i in 1..100 {
            if p.next_addr(&mut r).get() == first {
                reappear = Some(i);
                break;
            }
        }
        assert_eq!(reappear, Some(50));
    }

    #[test]
    fn table_lookup_skew_prefers_low_ranks() {
        let mut r = rng();
        let mut t = TableLookup::new(0, 1000, 8, 1.5);
        let mut low = 0;
        for _ in 0..10_000 {
            if t.next_addr(&mut r).get() / 8 < 10 {
                low += 1;
            }
        }
        assert!(low > 3000, "skew 1.5 should hit top-10 often, got {low}");
    }

    #[test]
    fn table_lookup_uniform_spreads() {
        let mut r = rng();
        let mut t = TableLookup::new(0, 100, 8, 0.0);
        let mut counts = vec![0u32; 100];
        for _ in 0..10_000 {
            counts[(t.next_addr(&mut r).get() / 8) as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c > 30), "uniform should cover all");
    }

    #[test]
    fn stack_frames_stay_in_bounds() {
        let mut r = rng();
        let top = 0x7000_0000u64;
        let mut s = StackFrames::new(top, 4096, 128);
        for _ in 0..10_000 {
            let a = s.next_addr(&mut r).get();
            assert!(a <= top && a > top - 4096 - 128);
        }
    }

    #[test]
    fn transpose_strides_by_lda() {
        let mut r = rng();
        let mut t = Transpose::new(0, 3, 5);
        let seq: Vec<u64> = (0..7).map(|_| t.next_addr(&mut r).get()).collect();
        // Row 0: columns 0,1,2 at stride 40B; then row 1 starts at +8.
        assert_eq!(seq, vec![0, 40, 80, 8, 48, 88, 16]);
        assert_eq!(t.stride_bytes(), 40);
    }

    #[test]
    fn gather_alternates_index_and_target() {
        let mut r = rng();
        let mut g = GatherScatter::new(0, 1 << 30, 1000, 8);
        let a0 = g.next_addr(&mut r).get();
        let a1 = g.next_addr(&mut r).get();
        let a2 = g.next_addr(&mut r).get();
        assert!(a0 < 1 << 30, "first ref is the index load");
        assert!(a1 >= 1 << 30, "second ref is the gathered target");
        assert!(a2 < 1 << 30);
        // Index loads advance sequentially.
        assert_eq!(a2, a0 + 4);
    }

    #[test]
    fn gather_targets_are_spread() {
        let mut r = rng();
        let mut g = GatherScatter::new(0, 1 << 30, 4096, 8);
        let mut targets = std::collections::HashSet::new();
        for _ in 0..2000 {
            let a = g.next_addr(&mut r).get();
            if a >= 1 << 30 {
                targets.insert(a);
            }
        }
        assert!(
            targets.len() > 500,
            "gathered {} distinct targets",
            targets.len()
        );
    }

    #[test]
    fn mixture_draws_in_proportion() {
        let mut r = rng();
        // Two sweeps in disjoint regions; weight 3:1.
        let mut m = Mixture::new()
            .with(3.0, StridedSweep::new(0, 4, 1 << 20))
            .with(1.0, StridedSweep::new(1 << 30, 4, 1 << 20));
        let mut first = 0;
        let n = 20_000;
        for _ in 0..n {
            if m.next_addr(&mut r).get() < 1 << 30 {
                first += 1;
            }
        }
        let frac = first as f64 / n as f64;
        assert!((frac - 0.75).abs() < 0.03, "expected ~0.75, got {frac}");
        assert_eq!(m.len(), 2);
        assert!(!m.is_empty());
    }

    #[test]
    #[should_panic(expected = "no patterns")]
    fn empty_mixture_panics_on_use() {
        let mut r = rng();
        let mut m = Mixture::new();
        let _ = m.next_addr(&mut r);
    }

    #[test]
    #[should_panic(expected = "weights must be positive")]
    fn bad_weight_panics() {
        let _ = Mixture::new().with(0.0, StridedSweep::new(0, 4, 16));
    }
}
