//! Reproduction of every table and figure in Jouppi (ISCA 1990).
//!
//! One module per paper artifact (or per pair sharing machinery):
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`tables`] | Table 1-1 (miss costs), 2-1 (program characteristics), 2-2 (baseline miss rates) |
//! | [`fig_2_2`] | Figure 2-2 — baseline performance lost per hierarchy level |
//! | [`fig_3_1`] | Figure 3-1 — conflict-miss fractions |
//! | [`conflict_sweep`] | Figures 3-3 / 3-5 — miss-cache / victim-cache entry sweeps |
//! | [`victim_geometry`] | Figures 3-6 / 3-7 — victim cache vs cache size / line size |
//! | [`fig_4_1`] | Figure 4-1 — limited time for prefetch |
//! | [`stream_sweep`] | Figures 4-3 / 4-5 — stream-buffer run-length sweeps |
//! | [`stream_geometry`] | Figures 4-6 / 4-7 — stream buffers vs cache size / line size |
//! | [`overlap`] | §5 — victim-cache / stream-buffer orthogonality |
//! | [`fig_5_1`] | Figure 5-1 — improved system performance |
//!
//! Plus the §5 future-work extensions and ablations the paper calls for:
//!
//! | Module | Extension |
//! |---|---|
//! | [`ext_stride`] | non-unit-stride streams + stride-detecting buffers |
//! | [`ext_l2_victim`] | victim caches for second-level caches (§3.5) |
//! | [`ext_multiprogramming`] | interleaved multiprogrammed workloads |
//! | [`ext_associativity`] | DM + victim cache vs real set-associativity |
//! | [`ext_latency`] | stream-buffer benefit under prefetch latency |
//! | [`ext_replacement`] | victim-cache replacement-policy ablation |
//! | [`ext_penalty`] | mechanism value vs miss penalty (Table 1-1's range) |
//! | [`ext_working_set`] | working-set curves via exact stack distances |
//! | [`ext_pollution`] | prefetch-into-cache pollution vs stream buffers |
//! | [`single_pass`] | full size × associativity × policy grid in one pass per side |
//! | [`ext_seed`] | seed-sensitivity of the Figure 5-1 headline |
//! | [`ext_write_bandwidth`] | §2's store-bandwidth argument for a pipelined L2 |
//!
//! Every experiment takes an [`ExperimentConfig`] (trace scale + seed),
//! returns a plain data struct, and renders itself as text; the `repro`
//! binary drives them all, and `repro --check` grades the full claim
//! list ([`checks`]) as a reproduction certificate.
//!
//! # Examples
//!
//! ```no_run
//! use jouppi_experiments::{common::ExperimentConfig, fig_5_1};
//!
//! let cfg = ExperimentConfig::default();
//! let result = fig_5_1::run(&cfg);
//! println!("{}", result.render());
//! println!("average improvement: {:.0}%", result.avg_improvement_pct());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checks;
pub mod common;
pub mod conflict_sweep;
pub mod diagrams;
pub mod ext_associativity;
pub mod ext_l2_victim;
pub mod ext_latency;
pub mod ext_multiprogramming;
pub mod ext_penalty;
pub mod ext_pollution;
pub mod ext_replacement;
pub mod ext_seed;
pub mod ext_stride;
pub mod ext_working_set;
pub mod ext_write_bandwidth;
pub mod fig_2_2;
pub mod fig_3_1;
pub mod fig_4_1;
pub mod fig_5_1;
pub mod overlap;
pub mod single_pass;
pub mod stream_geometry;
pub mod stream_sweep;
pub mod sweep;
pub mod tables;
pub mod victim_geometry;

pub use common::ExperimentConfig;
