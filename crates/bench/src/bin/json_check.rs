//! Validates benchmark report files against the shared JSON model.
//!
//! Usage: `json-check FILE... [--lint FILE...]`
//!
//! Each FILE must parse with `jouppi_serve::json` — the same model the
//! daemon serves and the report tooling consumes — and carry a
//! top-level `"benchmark"` string plus at least one non-empty array of
//! result rows (`"results"` for sweep-bench, `"latency"` for loadgen).
//! An empty row array means the bench trajectory silently recorded
//! nothing, so it fails. A loadgen report must additionally carry the
//! Zipf result-cache fields (hit/miss/coalesce counters, hit rate, and
//! the cache-on vs cache-off speedup).
//!
//! Files after `--lint` are instead validated as `jouppi-lint --json`
//! version-3 reports: tool/version identification, a findings array
//! consistent with the `clean` flag, and the `callgraph` section with
//! all four size counters (a workspace scan always builds a non-empty
//! graph). Exits nonzero naming every file that fails.

#![forbid(unsafe_code)]

use std::process::ExitCode;

use jouppi_serve::json::Json;

fn check(path: &str) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read failed: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("not valid JSON: {e}"))?;
    let benchmark = doc
        .get("benchmark")
        .and_then(Json::as_str)
        .ok_or("missing top-level \"benchmark\" string")?
        .to_owned();
    let Json::Obj(fields) = &doc else {
        return Err("top level is not an object".to_owned());
    };
    let rows: usize = fields
        .iter()
        .filter_map(|(_, v)| v.as_arr().map(<[Json]>::len))
        .sum();
    if rows == 0 {
        return Err("no result rows — the bench trajectory must never be empty".to_owned());
    }
    if benchmark == "loadgen" {
        check_zipf(&doc)?;
    }
    Ok(format!("benchmark \"{benchmark}\", {rows} result rows"))
}

/// Validates the result-cache fields a loadgen report must carry.
fn check_zipf(doc: &Json) -> Result<(), String> {
    let zipf = doc
        .get("zipf")
        .ok_or("loadgen report is missing the \"zipf\" object")?;
    for field in ["hits", "misses", "coalesced", "requests"] {
        zipf.get(field)
            .and_then(Json::as_i64)
            .ok_or(format!("\"zipf\" is missing integer field \"{field}\""))?;
    }
    for field in ["hit_rate", "coalesce_rate", "speedup", "skew"] {
        zipf.get(field)
            .and_then(Json::as_f64)
            .ok_or(format!("\"zipf\" is missing numeric field \"{field}\""))?;
    }
    let requests = zipf.get("requests").and_then(Json::as_i64).unwrap_or(0);
    let accounted = ["hits", "misses", "coalesced"]
        .iter()
        .filter_map(|f| zipf.get(f).and_then(Json::as_i64))
        .sum::<i64>();
    if accounted != requests {
        return Err(format!(
            "zipf counters do not account for the request stream: \
             hits+misses+coalesced = {accounted}, requests = {requests}"
        ));
    }
    Ok(())
}

/// Validates a `jouppi-lint --json` version-3 report.
fn check_lint(path: &str) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read failed: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("not valid JSON: {e}"))?;
    match doc.get("tool").and_then(Json::as_str) {
        Some("jouppi-lint") => {}
        other => return Err(format!("\"tool\" is {other:?}, expected \"jouppi-lint\"")),
    }
    match doc.get("version").and_then(Json::as_i64) {
        Some(3) => {}
        other => return Err(format!("\"version\" is {other:?}, expected 3")),
    }
    let scanned = doc
        .get("files_scanned")
        .and_then(Json::as_i64)
        .ok_or("missing integer \"files_scanned\"")?;
    if scanned == 0 {
        return Err("\"files_scanned\" is 0 — the scan saw nothing".to_owned());
    }
    let findings = doc
        .get("findings")
        .and_then(Json::as_arr)
        .ok_or("missing \"findings\" array")?;
    let clean = doc
        .get("clean")
        .and_then(|c| match c {
            Json::Bool(b) => Some(*b),
            _ => None,
        })
        .ok_or("missing boolean \"clean\"")?;
    if clean != findings.is_empty() {
        return Err(format!(
            "\"clean\" is {clean} but the report carries {} findings",
            findings.len()
        ));
    }
    let graph = doc
        .get("callgraph")
        .ok_or("missing \"callgraph\" object — required in version 3")?;
    let mut nodes = 0i64;
    for field in [
        "nodes",
        "resolved_edges",
        "ambiguous_edges",
        "external_calls",
    ] {
        let n = graph.get(field).and_then(Json::as_i64).ok_or(format!(
            "\"callgraph\" is missing integer field \"{field}\""
        ))?;
        if field == "nodes" {
            nodes = n;
        }
    }
    if nodes == 0 {
        return Err(
            "\"callgraph\".\"nodes\" is 0 — a workspace scan always sees functions".to_owned(),
        );
    }
    Ok(format!(
        "lint report v3, {scanned} files scanned, {} findings, {nodes} graph nodes",
        findings.len()
    ))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: json-check FILE... [--lint FILE...]");
        return ExitCode::FAILURE;
    }
    let mut failures = 0usize;
    let mut lint_mode = false;
    for arg in &args {
        if arg == "--lint" {
            lint_mode = true;
            continue;
        }
        let path = arg;
        let verdict = if lint_mode {
            check_lint(path)
        } else {
            check(path)
        };
        match verdict {
            Ok(summary) => eprintln!("ok   {path}: {summary}"),
            Err(why) => {
                eprintln!("FAIL {path}: {why}");
                failures += 1;
            }
        }
    }
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
