//! The multi-way stream buffer of §4.2.

use jouppi_trace::LineAddr;

use crate::{StreamBuffer, StreamBufferConfig, StreamProbe};

/// Several [`StreamBuffer`]s in parallel, so interleaved reference streams
/// (e.g. array operations reading multiple operand vectors) can each hold a
/// buffer (§4.2; the paper uses four ways).
///
/// On a miss every way's head comparator is checked; a hit consumes from
/// the matching way. When no way hits, the **least-recently-hit** way is
/// cleared and restarted at the miss address.
///
/// # Examples
///
/// Two interleaved streams — the pattern that defeats a single buffer —
/// both stay resident in a 4-way buffer:
///
/// ```
/// use jouppi_core::{MultiWayStreamBuffer, StreamBufferConfig, StreamProbe};
/// use jouppi_trace::LineAddr;
///
/// let mut sb = MultiWayStreamBuffer::new(4, StreamBufferConfig::new(4));
/// sb.handle_miss(LineAddr::new(1_000), 0);
/// sb.handle_miss(LineAddr::new(9_000), 1);
/// for i in 1..20 {
///     let t = 2 * i as u64;
///     assert!(sb.probe_consume(LineAddr::new(1_000 + i), t).is_hit());
///     assert!(sb.probe_consume(LineAddr::new(9_000 + i), t + 1).is_hit());
/// }
/// ```
#[derive(Clone, Debug)]
pub struct MultiWayStreamBuffer {
    ways: Vec<StreamBuffer>,
}

impl MultiWayStreamBuffer {
    /// Creates `ways` parallel stream buffers, all sharing one
    /// configuration.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is zero.
    pub fn new(ways: usize, cfg: StreamBufferConfig) -> Self {
        assert!(ways > 0, "a multi-way stream buffer needs at least one way");
        MultiWayStreamBuffer {
            ways: (0..ways).map(|_| StreamBuffer::new(cfg)).collect(),
        }
    }

    /// Number of parallel ways.
    pub fn num_ways(&self) -> usize {
        self.ways.len()
    }

    /// The per-way configuration.
    pub fn config(&self) -> &StreamBufferConfig {
        self.ways[0].config()
    }

    /// Returns `true` if `line` is buffered in any way (overlap statistics;
    /// the hardware only sees the heads).
    pub fn contains(&self, line: LineAddr) -> bool {
        self.ways.iter().any(|w| w.contains(line))
    }

    /// Compares `line` against every way's head without consuming.
    pub fn probe(&self, line: LineAddr, now: u64) -> StreamProbe {
        self.ways
            .iter()
            .map(|w| w.probe(line, now))
            .find(StreamProbe::is_hit)
            .unwrap_or(StreamProbe::Miss)
    }

    /// Probes all heads on a cache miss; consumes from the first way that
    /// hits. Returns [`StreamProbe::Miss`] if no way matched (use
    /// [`handle_miss`](Self::handle_miss) to then reallocate a way).
    pub fn probe_consume(&mut self, line: LineAddr, now: u64) -> StreamProbe {
        for way in &mut self.ways {
            let probe = way.probe(line, now);
            if probe.is_hit() {
                return way.probe_consume(line, now);
            }
        }
        StreamProbe::Miss
    }

    /// Reallocates the least-recently-used way to a new stream starting
    /// after `miss`. Call after [`probe_consume`](Self::probe_consume)
    /// returned a miss.
    pub fn handle_miss(&mut self, miss: LineAddr, now: u64) {
        let lru = self
            .ways
            .iter_mut()
            .min_by_key(|w| if w.is_active() { w.last_use() + 1 } else { 0 })
            .expect("at least one way");
        lru.restart(miss, now);
    }

    /// Flushes every way.
    pub fn flush(&mut self) {
        for way in &mut self.ways {
            way.flush();
        }
    }

    /// Iterates over the individual ways (for inspection in tests and
    /// reports).
    pub fn ways(&self) -> impl Iterator<Item = &StreamBuffer> {
        self.ways.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(n: u64) -> LineAddr {
        LineAddr::new(n)
    }

    fn four_way() -> MultiWayStreamBuffer {
        MultiWayStreamBuffer::new(4, StreamBufferConfig::new(4))
    }

    #[test]
    fn four_interleaved_streams_all_hit() {
        let mut sb = four_way();
        let bases = [100u64, 5_000, 90_000, 700_000];
        for (i, &b) in bases.iter().enumerate() {
            sb.handle_miss(l(b), i as u64);
        }
        let mut t = 10;
        for i in 1..30u64 {
            for &b in &bases {
                assert!(
                    sb.probe_consume(l(b + i), t).is_hit(),
                    "stream at base {b} lost its way"
                );
                t += 1;
            }
        }
    }

    #[test]
    fn fifth_stream_evicts_least_recently_hit() {
        let mut sb = four_way();
        let bases = [100u64, 5_000, 90_000, 700_000];
        for (i, &b) in bases.iter().enumerate() {
            sb.handle_miss(l(b), i as u64);
        }
        // Touch streams 1..3 (leaving stream at 100 least recently used).
        let mut t = 10;
        for &b in &bases[1..] {
            assert!(sb.probe_consume(l(b + 1), t).is_hit());
            t += 1;
        }
        // New stream: must evict the way tracking base 100.
        sb.handle_miss(l(42_000_000), t);
        assert_eq!(sb.probe_consume(l(101), t + 1), StreamProbe::Miss);
        assert!(sb.probe_consume(l(42_000_001), t + 2).is_hit());
    }

    #[test]
    fn idle_ways_are_allocated_before_active_ones() {
        let mut sb = four_way();
        sb.handle_miss(l(100), 5);
        sb.handle_miss(l(200), 6);
        // Two ways active, two idle; next allocation must take an idle way,
        // keeping both active streams hittable.
        sb.handle_miss(l(300), 7);
        assert!(sb.probe_consume(l(101), 8).is_hit());
        assert!(sb.probe_consume(l(201), 9).is_hit());
        assert!(sb.probe_consume(l(301), 10).is_hit());
    }

    #[test]
    fn single_way_behaves_like_plain_stream_buffer() {
        let mut multi = MultiWayStreamBuffer::new(1, StreamBufferConfig::new(4));
        let mut single = StreamBuffer::new(StreamBufferConfig::new(4));
        multi.handle_miss(l(10), 0);
        single.restart(l(10), 0);
        for n in 11..40 {
            assert_eq!(multi.probe_consume(l(n), 0), single.probe_consume(l(n), 0));
        }
        // Interleaving defeats one way in both models identically.
        assert_eq!(multi.probe_consume(l(100), 0), StreamProbe::Miss);
    }

    #[test]
    fn probe_does_not_consume() {
        let mut sb = four_way();
        sb.handle_miss(l(10), 0);
        assert!(sb.probe(l(11), 1).is_hit());
        assert!(sb.probe(l(11), 2).is_hit()); // still there
        assert!(sb.probe_consume(l(11), 3).is_hit());
        assert_eq!(sb.probe(l(11), 4), StreamProbe::Miss); // consumed
    }

    #[test]
    fn contains_searches_all_ways_and_depths() {
        let mut sb = four_way();
        sb.handle_miss(l(10), 0);
        sb.handle_miss(l(500), 1);
        assert!(sb.contains(l(13)));
        assert!(sb.contains(l(503)));
        assert!(!sb.contains(l(10))); // the miss target itself is not buffered
        assert_eq!(sb.num_ways(), 4);
        assert_eq!(sb.ways().filter(|w| w.is_active()).count(), 2);
    }

    #[test]
    fn flush_clears_everything() {
        let mut sb = four_way();
        sb.handle_miss(l(10), 0);
        sb.flush();
        assert_eq!(sb.probe_consume(l(11), 1), StreamProbe::Miss);
        assert!(sb.ways().all(|w| !w.is_active()));
    }

    #[test]
    #[should_panic(expected = "at least one way")]
    fn zero_ways_panics() {
        let _ = MultiWayStreamBuffer::new(0, StreamBufferConfig::default());
    }
}
