//! A tiny Prometheus-text-format metrics registry.
//!
//! Tracks per-endpoint request counts (by status) and latency
//! histograms, plus the gauges/counters the job queue and the
//! experiments crate feed in at render time. Everything is `std`
//! atomics and one mutex; rendering is deterministic (sorted label
//! sets) so tests can assert on exact lines.

// jouppi-lint: allow-file(relaxed-ordering) — every atomic here is a
// monotone fetch_add counter or an independent single-word gauge; totals
// are exact under any ordering and /metrics renders point-in-time
// operational samples, not simulation results.
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Histogram bucket upper bounds, in seconds.
pub const LATENCY_BUCKETS: [f64; 8] = [0.001, 0.005, 0.02, 0.1, 0.25, 1.0, 2.5, 10.0];

/// The endpoint labels requests are classified under.
pub const ENDPOINTS: [&str; 6] = ["healthz", "jobs", "metrics", "other", "simulate", "sweep"];

/// A fixed-bucket latency histogram (`counts[8]` is the +Inf bucket).
#[derive(Default)]
struct Histogram {
    counts: [AtomicU64; 9],
    sum_micros: AtomicU64,
}

impl Histogram {
    fn observe(&self, seconds: f64) {
        let idx = LATENCY_BUCKETS
            .iter()
            .position(|&b| seconds <= b)
            .unwrap_or(LATENCY_BUCKETS.len());
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.sum_micros
            .fetch_add((seconds * 1e6) as u64, Ordering::Relaxed);
    }

    fn render(&self, endpoint: &str, out: &mut String) {
        let mut cumulative = 0u64;
        for (i, le) in LATENCY_BUCKETS.iter().enumerate() {
            cumulative += self.counts[i].load(Ordering::Relaxed);
            out.push_str(&format!(
                "jouppi_request_seconds_bucket{{endpoint=\"{endpoint}\",le=\"{le}\"}} {cumulative}\n"
            ));
        }
        cumulative += self.counts[8].load(Ordering::Relaxed);
        out.push_str(&format!(
            "jouppi_request_seconds_bucket{{endpoint=\"{endpoint}\",le=\"+Inf\"}} {cumulative}\n"
        ));
        out.push_str(&format!(
            "jouppi_request_seconds_sum{{endpoint=\"{endpoint}\"}} {}\n",
            self.sum_micros.load(Ordering::Relaxed) as f64 / 1e6
        ));
        out.push_str(&format!(
            "jouppi_request_seconds_count{{endpoint=\"{endpoint}\"}} {cumulative}\n"
        ));
    }

    fn count(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }
}

/// Gauges and counters sampled from the rest of the process at render
/// time (the registry itself only owns request-level metrics).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Sampled {
    /// Jobs waiting in the queue.
    pub queue_depth: usize,
    /// Jobs currently executing on queue workers.
    pub jobs_inflight: usize,
    /// Jobs finished (successfully or not) since startup.
    pub jobs_completed: u64,
    /// Open HTTP connections.
    pub connections: usize,
    /// Memory references simulated process-wide
    /// (`jouppi_experiments::common::refs_simulated`).
    pub refs_simulated: u64,
    /// Sweep-engine cells executed process-wide.
    pub sweep_cells: u64,
    /// References answered by the single-pass multi-geometry engine
    /// (`jouppi_experiments::sweep::single_pass_refs`).
    pub single_pass_refs: u64,
    /// Replay throughput (refs/s) of the last completed named sweep.
    pub refs_per_second: u64,
    /// Result-cache memo hits (`jouppi_result_cache_hits_total`).
    pub result_cache_hits: u64,
    /// Result-cache misses that computed (`jouppi_result_cache_misses_total`).
    pub result_cache_misses: u64,
    /// Memoized results displaced by capacity
    /// (`jouppi_result_cache_evictions_total`).
    pub result_cache_evictions: u64,
    /// Requests that rode another request's in-flight computation
    /// (`jouppi_result_cache_coalesced_total`).
    pub result_cache_coalesced: u64,
    /// Encoded bytes of all memoized result documents
    /// (`jouppi_result_cache_bytes_resident`).
    pub result_cache_bytes: u64,
}

/// The registry: per-endpoint request counters and latency histograms.
pub struct Registry {
    requests: Mutex<BTreeMap<(&'static str, u16), u64>>, // jouppi-lint: allow(unbounded-growth) — keyed by (endpoint, status): both drawn from small finite sets, so the map tops out at a few dozen entries
    latency: BTreeMap<&'static str, Histogram>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// An empty registry covering [`ENDPOINTS`].
    pub fn new() -> Self {
        Registry {
            requests: Mutex::new(BTreeMap::new()),
            latency: ENDPOINTS
                .iter()
                .map(|&e| (e, Histogram::default()))
                .collect(),
        }
    }

    /// Records one finished request.
    ///
    /// `endpoint` must be one of [`ENDPOINTS`]; anything else is folded
    /// into `"other"`.
    pub fn observe(&self, endpoint: &'static str, status: u16, seconds: f64) {
        let endpoint = if self.latency.contains_key(endpoint) {
            endpoint
        } else {
            "other"
        };
        *self
            .requests
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .entry((endpoint, status))
            .or_insert(0) += 1;
        self.latency[endpoint].observe(seconds);
    }

    /// Total requests observed for one endpoint (any status).
    pub fn requests_for(&self, endpoint: &str) -> u64 {
        self.latency.get(endpoint).map_or(0, Histogram::count)
    }

    /// Renders everything in Prometheus text exposition format.
    pub fn render(&self, sampled: &Sampled) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("# HELP jouppi_http_requests_total Completed HTTP requests.\n");
        out.push_str("# TYPE jouppi_http_requests_total counter\n");
        for ((endpoint, status), count) in self
            .requests
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
        {
            out.push_str(&format!(
                "jouppi_http_requests_total{{endpoint=\"{endpoint}\",status=\"{status}\"}} {count}\n"
            ));
        }
        out.push_str("# HELP jouppi_request_seconds Request service time.\n");
        out.push_str("# TYPE jouppi_request_seconds histogram\n");
        for (endpoint, histogram) in &self.latency {
            if histogram.count() > 0 {
                histogram.render(endpoint, &mut out);
            }
        }
        let gauges: [(&str, &str, u64); 13] = [
            (
                "jouppi_jobs_queue_depth",
                "Jobs waiting in the bounded queue.",
                sampled.queue_depth as u64,
            ),
            (
                "jouppi_jobs_inflight",
                "Jobs currently executing.",
                sampled.jobs_inflight as u64,
            ),
            (
                "jouppi_jobs_completed_total",
                "Jobs finished since startup.",
                sampled.jobs_completed,
            ),
            (
                "jouppi_http_connections",
                "Open HTTP connections.",
                sampled.connections as u64,
            ),
            (
                "jouppi_refs_simulated_total",
                "Memory references replayed through cache models.",
                sampled.refs_simulated,
            ),
            (
                "jouppi_sweep_cells_total",
                "Sweep-engine cells executed.",
                sampled.sweep_cells,
            ),
            (
                "jouppi_single_pass_refs_total",
                "References answered by the single-pass multi-geometry engine.",
                sampled.single_pass_refs,
            ),
            (
                "jouppi_refs_per_second",
                "Replay throughput of the last completed sweep.",
                sampled.refs_per_second,
            ),
            (
                "jouppi_result_cache_hits_total",
                "Requests answered from the content-addressed result cache.",
                sampled.result_cache_hits,
            ),
            (
                "jouppi_result_cache_misses_total",
                "Requests that computed because no memoized result existed.",
                sampled.result_cache_misses,
            ),
            (
                "jouppi_result_cache_evictions_total",
                "Memoized results displaced by the cache capacity bound.",
                sampled.result_cache_evictions,
            ),
            (
                "jouppi_result_cache_coalesced_total",
                "Requests merged onto another request's in-flight computation.",
                sampled.result_cache_coalesced,
            ),
            (
                "jouppi_result_cache_bytes_resident",
                "Encoded bytes of all memoized result documents.",
                sampled.result_cache_bytes,
            ),
        ];
        for (name, help, value) in gauges {
            let kind = if name.ends_with("_total") {
                "counter"
            } else {
                "gauge"
            };
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} {kind}\n{name} {value}\n"
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observations_show_up_in_render() {
        let r = Registry::new();
        r.observe("healthz", 200, 0.0004);
        r.observe("healthz", 200, 0.003);
        r.observe("sweep", 503, 0.2);
        r.observe("bogus", 200, 0.1); // folded into "other"
        let text = r.render(&Sampled {
            queue_depth: 2,
            jobs_inflight: 1,
            jobs_completed: 7,
            connections: 3,
            refs_simulated: 1_000,
            sweep_cells: 12,
            single_pass_refs: 555,
            refs_per_second: 1_234,
            result_cache_hits: 40,
            result_cache_misses: 9,
            result_cache_evictions: 2,
            result_cache_coalesced: 6,
            result_cache_bytes: 4_096,
        });
        assert!(text.contains("jouppi_http_requests_total{endpoint=\"healthz\",status=\"200\"} 2"));
        assert!(text.contains("jouppi_http_requests_total{endpoint=\"sweep\",status=\"503\"} 1"));
        assert!(text.contains("jouppi_http_requests_total{endpoint=\"other\",status=\"200\"} 1"));
        assert!(text.contains("jouppi_request_seconds_bucket{endpoint=\"healthz\",le=\"0.001\"} 1"));
        assert!(text.contains("jouppi_request_seconds_bucket{endpoint=\"healthz\",le=\"+Inf\"} 2"));
        assert!(text.contains("jouppi_request_seconds_count{endpoint=\"healthz\"} 2"));
        assert!(text.contains("jouppi_jobs_queue_depth 2"));
        assert!(text.contains("jouppi_jobs_completed_total 7"));
        assert!(text.contains("jouppi_refs_simulated_total 1000"));
        assert!(text.contains("# TYPE jouppi_single_pass_refs_total counter"));
        assert!(text.contains("jouppi_single_pass_refs_total 555"));
        assert!(text.contains("# TYPE jouppi_refs_per_second gauge"));
        assert!(text.contains("jouppi_refs_per_second 1234"));
        assert!(text.contains("# TYPE jouppi_result_cache_hits_total counter"));
        assert!(text.contains("jouppi_result_cache_hits_total 40"));
        assert!(text.contains("jouppi_result_cache_misses_total 9"));
        assert!(text.contains("jouppi_result_cache_evictions_total 2"));
        assert!(text.contains("jouppi_result_cache_coalesced_total 6"));
        assert!(text.contains("# TYPE jouppi_result_cache_bytes_resident gauge"));
        assert!(text.contains("jouppi_result_cache_bytes_resident 4096"));
        assert_eq!(r.requests_for("healthz"), 2);
        assert_eq!(r.requests_for("nope"), 0);
    }

    #[test]
    fn bucket_edges_are_inclusive() {
        let h = Histogram::default();
        h.observe(0.001);
        h.observe(100.0);
        assert_eq!(h.counts[0].load(Ordering::Relaxed), 1);
        assert_eq!(h.counts[8].load(Ordering::Relaxed), 1);
        assert_eq!(h.count(), 2);
    }
}
