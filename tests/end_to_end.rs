//! End-to-end integration: workloads → caches → system model, spanning
//! every crate in the workspace.

use jouppi::cache::{CacheGeometry, ClassifiedCache};
use jouppi::core::{AugmentedCache, AugmentedConfig, StreamBufferConfig};
use jouppi::system::{SystemConfig, SystemModel};
use jouppi::trace::{RecordedTrace, TraceSource};
use jouppi::workloads::{Benchmark, Scale};

fn scale() -> Scale {
    Scale::new(60_000)
}

#[test]
fn full_pipeline_runs_every_benchmark() {
    for b in Benchmark::ALL {
        let src = b.source(scale(), 1);
        let report = SystemModel::new(SystemConfig::baseline()).run(&src);
        assert_eq!(report.refs.instruction_refs, 60_000, "{b}");
        assert!(report.performance_fraction() > 0.0, "{b}");
        assert!(report.performance_fraction() < 1.0, "{b}");
        assert!(report.l2_stats.accesses > 0, "{b}: L2 never touched");
    }
}

#[test]
fn improved_machine_never_loses() {
    for b in Benchmark::ALL {
        let src = b.source(scale(), 2);
        let base = SystemModel::new(SystemConfig::baseline()).run(&src);
        let imp = SystemModel::new(SystemConfig::improved()).run(&src);
        assert!(
            imp.time.total() <= base.time.total(),
            "{b}: improved machine slower ({} vs {})",
            imp.time.total(),
            base.time.total()
        );
        assert!(imp.l1_miss_rate() <= base.l1_miss_rate(), "{b}");
    }
}

#[test]
fn recorded_traces_replay_identically_through_caches() {
    let src = Benchmark::Yacc.source(Scale::new(20_000), 3);
    let recorded = RecordedTrace::record(&src);
    let run = |t: &dyn TraceSource| {
        let geom = CacheGeometry::direct_mapped(4096, 16).unwrap();
        let mut c = AugmentedCache::new(AugmentedConfig::new(geom).victim_cache(4));
        for r in t.refs() {
            if r.kind.is_data() {
                c.access(r.addr);
            }
        }
        *c.stats()
    };
    assert_eq!(run(&src), run(&recorded));
}

#[test]
fn miss_classification_is_consistent_with_direct_simulation() {
    // The classifier's total must equal the plain cache's miss count on
    // the same stream — across all benchmarks.
    let geom = CacheGeometry::direct_mapped(4096, 16).unwrap();
    for b in Benchmark::ALL {
        let src = b.source(Scale::new(30_000), 4);
        let mut classified = ClassifiedCache::new(geom);
        let mut plain = jouppi::cache::Cache::new(geom);
        let mut plain_misses = 0u64;
        for r in src.refs().filter(|r| r.kind.is_data()) {
            classified.access(r.addr);
            if plain.access(r.addr).is_miss() {
                plain_misses += 1;
            }
        }
        assert_eq!(classified.breakdown().total(), plain_misses, "{b}");
        assert_eq!(classified.stats().misses, plain_misses, "{b}");
    }
}

#[test]
fn victim_cache_exclusivity_holds_across_real_workloads() {
    let geom = CacheGeometry::direct_mapped(1024, 16).unwrap();
    for b in [Benchmark::Met, Benchmark::Ccom] {
        let src = b.source(Scale::new(15_000), 5);
        let mut c = AugmentedCache::new(AugmentedConfig::new(geom).victim_cache(4));
        for (i, r) in src.refs().filter(|r| r.kind.is_data()).enumerate() {
            c.access(r.addr);
            if i % 997 == 0 {
                assert!(c.exclusivity_holds(), "{b}: dup at ref {i}");
            }
        }
        assert!(c.exclusivity_holds(), "{b}: dup at end");
    }
}

#[test]
fn stream_buffers_and_victim_caches_compose() {
    // Combined organization must remove at least as many misses as each
    // mechanism alone on every benchmark (data side).
    let geom = CacheGeometry::direct_mapped(4096, 16).unwrap();
    for b in Benchmark::ALL {
        let src = b.source(Scale::new(40_000), 6);
        let trace = RecordedTrace::record(&src);
        let run = |cfg: AugmentedConfig| {
            let mut c = AugmentedCache::new(cfg);
            for r in trace.as_slice().iter().filter(|r| r.kind.is_data()) {
                c.access(r.addr);
            }
            c.stats().removed_misses()
        };
        let vc_only = run(AugmentedConfig::new(geom).victim_cache(4));
        let sb_only =
            run(AugmentedConfig::new(geom).multi_way_stream_buffer(4, StreamBufferConfig::new(4)));
        let both = run(AugmentedConfig::new(geom)
            .victim_cache(4)
            .multi_way_stream_buffer(4, StreamBufferConfig::new(4)));
        // Near-orthogonality (§5): the combination captures most of both.
        let best_single = vc_only.max(sb_only);
        assert!(
            both >= best_single,
            "{b}: both={both} < best single={best_single}"
        );
    }
}
