//! Benchmark harness support for the Jouppi (ISCA 1990) reproduction.
//!
//! The Criterion benches under `benches/` time the regeneration of every
//! table and figure in the paper (`benches/experiments.rs` — one group
//! per artifact), the simulator hot paths (`benches/simulators.rs`), and
//! trace generation (`benches/workloads.rs`). Run them with
//! `cargo bench --workspace`.
//!
//! This library crate only hosts the shared scale constants so the bench
//! targets agree on workload sizes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use jouppi_experiments::common::ExperimentConfig;

/// Trace scale used by the per-figure benches: large enough for the
/// curves to have their shape, small enough for Criterion's repetitions.
pub fn bench_config() -> ExperimentConfig {
    ExperimentConfig::with_scale(10_000)
}

/// Number of references used by the microbenches.
pub const MICRO_REFS: usize = 100_000;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_config_is_small() {
        assert!(bench_config().scale.instructions <= 100_000);
        const { assert!(MICRO_REFS >= 10_000) };
    }
}
