//! # jouppi — victim caches, miss caches & stream buffers (ISCA 1990)
//!
//! Umbrella crate for a from-scratch Rust reproduction of Norman P.
//! Jouppi's *Improving Direct-Mapped Cache Performance by the Addition of a
//! Small Fully-Associative Cache and Prefetch Buffers* (ISCA 1990). It
//! re-exports the workspace crates:
//!
//! * [`trace`] — memory-reference model (addresses, references, traces),
//! * [`cache`] — conventional cache simulation substrate + 3-C classifier,
//! * [`core`] — the paper's mechanisms: miss caches, victim caches, stream
//!   buffers (single and multi-way), and prefetch baselines,
//! * [`workloads`] — the six synthetic benchmark trace generators,
//! * [`system`] — the baseline and improved two-level system models,
//! * [`experiments`] — one module per paper table/figure,
//! * [`report`] — ASCII tables and charts for rendering results.
//!
//! # Examples
//!
//! Measure how much a 4-entry victim cache helps the paper's baseline 4KB
//! direct-mapped data cache on the `ccom` workload:
//!
//! ```no_run
//! use jouppi::cache::CacheGeometry;
//! use jouppi::core::{AugmentedCache, AugmentedConfig};
//! use jouppi::trace::TraceSource;
//! use jouppi::workloads::{Benchmark, Scale};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let geom = CacheGeometry::direct_mapped(4096, 16)?;
//! let mut cache = AugmentedCache::new(AugmentedConfig::new(geom).victim_cache(4));
//! let workload = Benchmark::Ccom.source(Scale::default(), 42);
//! for r in workload.refs().filter(|r| r.kind.is_data()) {
//!     cache.access(r.addr);
//! }
//! println!("miss rate: {:.4}", cache.stats().demand_miss_rate());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use jouppi_cache as cache;
pub use jouppi_core as core;
pub use jouppi_experiments as experiments;
pub use jouppi_report as report;
pub use jouppi_system as system;
pub use jouppi_trace as trace;
pub use jouppi_workloads as workloads;
