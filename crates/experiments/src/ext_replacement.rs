//! Ablation: victim-cache replacement policy.
//!
//! The paper's victim caches "replace the least recently used item"; at
//! 1-15 entries, exact LRU is cheap. This ablation checks how much LRU
//! actually buys over FIFO and random replacement — quantifying a design
//! choice DESIGN.md calls out.

use jouppi_cache::{CacheGeometry, FifoSweep, LruSweep, ReplacementPolicy};
use jouppi_core::AugmentedConfig;
use jouppi_report::{rate, Table};
use jouppi_workloads::Benchmark;

use crate::common::{
    average, baseline_l1, classify_side, pct_of_conflicts_removed, per_benchmark, run_side,
    ExperimentConfig, Side,
};
use crate::sweep;

/// Policies compared.
pub const POLICIES: [ReplacementPolicy; 3] = [
    ReplacementPolicy::Lru,
    ReplacementPolicy::Fifo,
    ReplacementPolicy::Random,
];

/// One benchmark's % of data conflict misses removed per policy, with a
/// 4-entry victim cache.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReplacementRow {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// LRU replacement (the paper's design).
    pub lru: f64,
    /// FIFO replacement.
    pub fifo: f64,
    /// Random replacement.
    pub random: f64,
}

/// One benchmark's data miss rates for a 4KB 2-way L1 under each
/// one-pass policy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct L1PolicyRow {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// 2-way LRU L1 miss rate.
    pub lru: f64,
    /// 2-way FIFO L1 miss rate.
    pub fifo: f64,
}

/// Results of the replacement-policy ablation.
#[derive(Clone, Debug, PartialEq)]
pub struct ExtReplacement {
    /// One row per benchmark (victim-cache policy ablation).
    pub rows: Vec<ReplacementRow>,
    /// One row per benchmark: LRU-vs-FIFO miss rates of a 4KB 2-way L1
    /// itself, answered by the single-pass engines ([`LruSweep`] /
    /// [`FifoSweep`], one trace traversal each) — the DEW extension of
    /// the policy question from the victim cache to the L1.
    pub l1_two_way: Vec<L1PolicyRow>,
}

/// The 4KB 2-way geometry of the [`ExtReplacement::l1_two_way`] section.
fn l1_two_way_geometry() -> CacheGeometry {
    CacheGeometry::new(4096, 16, 2).expect("valid")
}

/// Runs the ablation (data side, 4-entry victim caches, plus the
/// one-pass L1 policy section).
pub fn run(cfg: &ExperimentConfig) -> ExtReplacement {
    let geom = baseline_l1();
    let sa2 = l1_two_way_geometry();
    let mut l1_two_way = Vec::new();
    let rows = per_benchmark(cfg, |b, trace| {
        let (_, breakdown) = classify_side(trace, Side::Data, geom);
        let removed = |policy: ReplacementPolicy| {
            let aug = AugmentedConfig::new(geom)
                .victim_cache(4)
                .victim_policy(policy);
            let stats = run_side(trace, Side::Data, aug);
            pct_of_conflicts_removed(stats.removed_misses(), breakdown.conflict)
        };
        let lines = Side::Data
            .view(trace)
            .lines_for(16)
            .expect("16B lines are pre-derived for the baseline line size");
        let mut lru_sweep =
            LruSweep::bounded(&[(sa2.num_sets(), sa2.associativity())]).expect("valid cell");
        let mut fifo_sweep =
            FifoSweep::new(&[(sa2.num_sets(), sa2.associativity())]).expect("valid cell");
        for &line in lines {
            lru_sweep.observe(line);
            fifo_sweep.observe(line);
        }
        sweep::note_single_pass_refs(2 * lines.len() as u64);
        l1_two_way.push(L1PolicyRow {
            benchmark: b,
            lru: lru_sweep.miss_rate_for_geometry(&sa2).expect("tracked"),
            fifo: if lines.is_empty() {
                0.0
            } else {
                fifo_sweep.misses_for_geometry(&sa2).expect("tracked") as f64 / lines.len() as f64
            },
        });
        ReplacementRow {
            benchmark: b,
            lru: removed(ReplacementPolicy::Lru),
            fifo: removed(ReplacementPolicy::Fifo),
            random: removed(ReplacementPolicy::Random),
        }
    })
    .into_iter()
    .map(|(_, r)| r)
    .collect();
    ExtReplacement { rows, l1_two_way }
}

impl ExtReplacement {
    /// Averages `(lru, fifo, random)`.
    pub fn averages(&self) -> (f64, f64, f64) {
        (
            average(&self.rows.iter().map(|r| r.lru).collect::<Vec<_>>()),
            average(&self.rows.iter().map(|r| r.fifo).collect::<Vec<_>>()),
            average(&self.rows.iter().map(|r| r.random).collect::<Vec<_>>()),
        )
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut t = Table::new(["program", "LRU", "FIFO", "random"]);
        for r in &self.rows {
            t.row([
                r.benchmark.name().to_owned(),
                format!("{:.0}%", r.lru),
                format!("{:.0}%", r.fifo),
                format!("{:.0}%", r.random),
            ]);
        }
        let (lru, fifo, random) = self.averages();
        t.row([
            "average".to_owned(),
            format!("{lru:.0}%"),
            format!("{fifo:.0}%"),
            format!("{random:.0}%"),
        ]);
        let mut l1 = Table::new(["program", "2-way LRU", "2-way FIFO"]);
        for r in &self.l1_two_way {
            l1.row([r.benchmark.name().to_owned(), rate(r.lru), rate(r.fifo)]);
        }
        format!(
            "Ablation: 4-entry data victim cache replacement policy \
             (% of conflict misses removed)\n{t}\n\
             L1 policy (4KB 2-way D-cache miss rates, one-pass engines)\n{l1}"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_is_at_least_competitive() {
        let cfg = ExperimentConfig::with_scale(60_000);
        let e = run(&cfg);
        let (lru, fifo, random) = e.averages();
        // LRU should match or beat the alternatives on average (small
        // slack: FIFO ≈ LRU when hits are rare between insertions).
        assert!(lru + 3.0 >= fifo, "LRU {lru} vs FIFO {fifo}");
        assert!(lru + 3.0 >= random, "LRU {lru} vs random {random}");
        assert!(lru > 20.0, "LRU ineffective: {lru}");
        assert!(e.render().contains("FIFO"));
    }

    #[test]
    fn l1_policy_section_matches_per_cell_oracle() {
        // The one-pass L1 rates must equal a per-cell Cache simulation
        // (LRU and FIFO) exactly.
        let cfg = ExperimentConfig::with_scale(20_000);
        let e = run(&cfg);
        let oracle = per_benchmark(&cfg, |_, trace| {
            let lines = Side::Data.view(trace).lines_for(16).unwrap();
            let mut per_policy = [0.0f64; 2];
            for (slot, policy) in [ReplacementPolicy::Lru, ReplacementPolicy::Fifo]
                .into_iter()
                .enumerate()
            {
                let mut cache = jouppi_cache::Cache::with_policy(l1_two_way_geometry(), policy);
                let mut misses = 0u64;
                for &line in lines {
                    if cache.access_line(line).is_miss() {
                        misses += 1;
                    }
                }
                per_policy[slot] = misses as f64 / lines.len() as f64;
            }
            per_policy
        });
        assert_eq!(e.l1_two_way.len(), 6);
        for (row, (b, [lru, fifo])) in e.l1_two_way.iter().zip(oracle) {
            assert_eq!(row.lru, lru, "{b} LRU");
            assert_eq!(row.fifo, fifo, "{b} FIFO");
        }
        assert!(e.render().contains("2-way FIFO"));
    }

    #[test]
    fn all_policies_remove_some_conflicts() {
        let cfg = ExperimentConfig::with_scale(40_000);
        let e = run(&cfg);
        for r in &e.rows {
            if r.lru > 10.0 {
                assert!(r.fifo > 0.0, "{:?}", r);
                assert!(r.random > 0.0, "{:?}", r);
            }
        }
    }
}
