//! `jouppi-sim` — command-line cache simulator. See [`jouppi_cli`] for
//! the option reference.

#![forbid(unsafe_code)]

use std::process::ExitCode;

fn main() -> ExitCode {
    let opts = match jouppi_cli::parse_args(std::env::args().skip(1)) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    match jouppi_cli::run(&opts) {
        Ok(report) => {
            println!("{report}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
