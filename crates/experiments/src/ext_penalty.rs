//! Ablation: miss-penalty sensitivity — connecting Table 1-1's trend to
//! Figure 5-1's payoff.
//!
//! Table 1-1's whole argument is that miss cost in instruction times is
//! exploding (0.6 on a VAX 11/780, 8.6 on the Titan, 140 projected).
//! This ablation sweeps the first-level miss penalty and shows the
//! system-level value of the paper's mechanisms growing with it: on the
//! VAX there was nothing to win; on the projected machine the victim
//! cache + stream buffers pay for themselves many times over.

use jouppi_report::Table;
use jouppi_system::{SystemConfig, SystemModel};

use crate::common::{average, per_benchmark, ExperimentConfig};

/// L1 miss penalties swept (instruction times); 24 is the paper's
/// baseline. The L2 penalty is scaled proportionally (×13⅓, as in the
/// baseline's 24→320 ratio).
pub const PENALTIES: [u64; 5] = [2, 8, 24, 70, 140];

/// Results of the penalty sweep.
#[derive(Clone, Debug, PartialEq)]
pub struct ExtPenalty {
    /// `(l1 penalty, avg % system-performance improvement)`.
    pub points: Vec<(u64, f64)>,
}

/// Runs the sweep over all six benchmarks.
pub fn run(cfg: &ExperimentConfig) -> ExtPenalty {
    let per_bench = per_benchmark(cfg, |_, trace| {
        PENALTIES
            .iter()
            .map(|&p| {
                let scale = |mut c: SystemConfig| {
                    c.l1_miss_penalty = p;
                    c.l2_miss_penalty = p * 320 / 24;
                    c
                };
                let base = SystemModel::new(scale(SystemConfig::baseline())).run(trace);
                let imp = SystemModel::new(scale(SystemConfig::improved())).run(trace);
                100.0 * (imp.time.speedup_over(&base.time) - 1.0)
            })
            .collect::<Vec<_>>()
    });
    let points = PENALTIES
        .iter()
        .enumerate()
        .map(|(i, &p)| {
            let vals: Vec<f64> = per_bench.iter().map(|(_, c)| c[i]).collect();
            (p, average(&vals))
        })
        .collect();
    ExtPenalty { points }
}

impl ExtPenalty {
    /// Average improvement at a penalty (0.0 if not swept).
    pub fn improvement_at(&self, penalty: u64) -> f64 {
        self.points
            .iter()
            .find(|(p, _)| *p == penalty)
            .map(|(_, v)| *v)
            .unwrap_or(0.0)
    }

    /// Renders the sweep.
    pub fn render(&self) -> String {
        let mut t = Table::new(["L1 miss penalty", "L2 miss penalty", "avg improvement"]);
        for (p, v) in &self.points {
            t.row([
                p.to_string(),
                (p * 320 / 24).to_string(),
                format!("{v:.0}%"),
            ]);
        }
        format!(
            "Ablation: value of VC + stream buffers vs miss penalty \
             (Table 1-1's machines span this range)\n{t}"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benefit_grows_with_miss_cost() {
        let cfg = ExperimentConfig::with_scale(50_000);
        let e = run(&cfg);
        assert_eq!(e.points.len(), PENALTIES.len());
        // Monotone: the dearer the miss, the more the mechanisms matter.
        for w in e.points.windows(2) {
            assert!(
                w[1].1 + 1.0 >= w[0].1,
                "improvement fell: {:?} → {:?}",
                w[0],
                w[1]
            );
        }
        // VAX-class penalties: little to gain. Future-machine penalties:
        // large gains.
        assert!(e.improvement_at(2) < e.improvement_at(140) / 3.0);
        assert!(e.improvement_at(140) > 50.0);
        assert!(e.render().contains("miss penalty"));
    }
}
