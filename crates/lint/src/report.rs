//! Rendering scan results: human `file:line` lines and the `--json`
//! machine document (built on the workspace's ordered-JSON model).

use jouppi_serve::json::Json;

use crate::lint::ALL_LINTS;
use crate::workspace::ScanResult;

/// Human-readable report: one `file:line: [lint] message` line per
/// finding plus a summary line.
pub fn human(result: &ScanResult) -> String {
    let mut out = String::new();
    for (path, finding) in result.findings() {
        out.push_str(&format!(
            "{path}:{line}: [{lint}] {msg}\n",
            line = finding.line,
            lint = finding.lint.name(),
            msg = finding.message
        ));
    }
    let n = result.total_findings();
    if n == 0 {
        out.push_str(&format!(
            "jouppi-lint: clean — {} files, 0 findings\n",
            result.files_scanned()
        ));
    } else {
        out.push_str(&format!(
            "jouppi-lint: {n} finding{s} in {} files\n",
            result.files_scanned(),
            s = if n == 1 { "" } else { "s" }
        ));
    }
    out
}

/// Machine-readable report document.
pub fn to_json(result: &ScanResult) -> Json {
    let findings: Vec<Json> = result
        .findings()
        .map(|(path, f)| {
            Json::obj([
                ("file", Json::str(path)),
                ("line", Json::Int(i64::from(f.line))),
                ("lint", Json::str(f.lint.name())),
                ("message", Json::str(f.message.clone())),
            ])
        })
        .collect();
    Json::obj([
        ("tool", Json::str("jouppi-lint")),
        ("version", Json::Int(1)),
        ("files_scanned", Json::Int(result.files_scanned() as i64)),
        ("findings", Json::Arr(findings)),
        ("clean", Json::Bool(result.is_clean())),
    ])
}

/// The `--list` catalog text.
pub fn catalog() -> String {
    let mut out = String::from("jouppi-lint catalog:\n");
    for lint in ALL_LINTS {
        out.push_str(&format!("  {:<20} {}\n", lint.name(), lint.summary()));
    }
    out.push_str(
        "\nsuppression: // jouppi-lint: allow(<lint>) — <reason>\n\
         file scope:  // jouppi-lint: allow-file(<lint>) — <reason>\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint::{Finding, LintId};
    use crate::workspace::FileReport;

    fn sample() -> ScanResult {
        ScanResult {
            files: vec![
                FileReport {
                    rel_path: "crates/core/src/x.rs".to_owned(),
                    findings: vec![Finding {
                        line: 7,
                        lint: LintId::AmbientTime,
                        message: "ambient time source `Instant`".to_owned(),
                    }],
                },
                FileReport {
                    rel_path: "crates/core/src/y.rs".to_owned(),
                    findings: Vec::new(),
                },
            ],
        }
    }

    #[test]
    fn human_report_lists_findings_and_summary() {
        let text = human(&sample());
        assert!(text.contains("crates/core/src/x.rs:7: [ambient-time]"));
        assert!(text.contains("1 finding in 2 files"));
        let clean = ScanResult {
            files: vec![FileReport {
                rel_path: "a.rs".to_owned(),
                findings: Vec::new(),
            }],
        };
        assert!(human(&clean).contains("clean — 1 files, 0 findings"));
    }

    #[test]
    fn json_report_round_trips() {
        let doc = to_json(&sample());
        let parsed = Json::parse(&doc.encode()).expect("valid JSON");
        assert_eq!(parsed.get("clean"), Some(&Json::Bool(false)));
        assert_eq!(parsed.get("files_scanned"), Some(&Json::Int(2)));
        let findings = parsed
            .get("findings")
            .and_then(Json::as_arr)
            .expect("findings array");
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].get("line"), Some(&Json::Int(7)));
        assert_eq!(findings[0].get("lint"), Some(&Json::str("ambient-time")));
    }

    #[test]
    fn catalog_names_every_lint() {
        let text = catalog();
        for lint in ALL_LINTS {
            assert!(text.contains(lint.name()), "missing {}", lint.name());
        }
    }
}
