//! Cache-simulation substrate for the Jouppi (ISCA 1990) reproduction.
//!
//! This crate provides the conventional caching machinery the paper builds
//! on: tag-only set-associative cache models (direct-mapped through
//! fully-associative), replacement policies, an exact O(1) LRU structure,
//! and the three-C miss classifier (compulsory / capacity / conflict, after
//! Hill) that Sections 3 and 4 of the paper rely on to separate the misses
//! each mechanism targets.
//!
//! Caches here are *functional* simulators: they track which line addresses
//! are resident, not data bytes, because every metric in the paper is a miss
//! count. Stores are treated as allocating references (the paper explicitly
//! sets aside write-policy tradeoffs).
//!
//! # Examples
//!
//! Simulate the paper's baseline 4KB direct-mapped data cache with 16-byte
//! lines:
//!
//! ```
//! use jouppi_cache::{Cache, CacheGeometry};
//! use jouppi_trace::Addr;
//!
//! # fn main() -> Result<(), jouppi_cache::GeometryError> {
//! let geom = CacheGeometry::direct_mapped(4096, 16)?;
//! let mut cache = Cache::new(geom);
//! cache.access(Addr::new(0x0));      // compulsory miss
//! cache.access(Addr::new(0x8));      // same 16B line: hit
//! cache.access(Addr::new(0x1000));   // maps to set 0 too: conflict evicts
//! cache.access(Addr::new(0x0));      // miss again
//! assert_eq!(cache.stats().hits, 1);
//! assert_eq!(cache.stats().misses, 3);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod classify;
mod geometry;
mod line_hash;
mod lru;
mod lru_map;
mod replacement;
mod set_assoc;
mod single_pass;
mod stack_distance;
mod stats;

pub use classify::{ClassifiedCache, MissClass, MissClassifier};
pub use geometry::{CacheGeometry, GeometryError};
pub use line_hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use lru::{LruSet, TouchOutcome, SMALL_CAPACITY_MAX};
pub use lru_map::{Displaced, LruMap};
pub use replacement::ReplacementPolicy;
pub use set_assoc::{AccessResult, Cache};
pub use single_pass::{FifoSweep, LruSweep, SinglePassError};
pub use stack_distance::StackDistanceProfile;
pub use stats::{CacheStats, MissBreakdown};
