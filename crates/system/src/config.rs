//! System configuration: cache organizations and miss penalties.

use jouppi_cache::CacheGeometry;
use jouppi_core::{AugmentedConfig, StreamBufferConfig};

/// The full machine configuration: both first-level cache organizations,
/// the second-level cache, and the miss penalties in instruction times.
///
/// # Examples
///
/// ```
/// use jouppi_system::SystemConfig;
///
/// let base = SystemConfig::baseline();
/// assert_eq!(base.l1_miss_penalty, 24);
/// assert_eq!(base.l2_miss_penalty, 320);
/// assert_eq!(base.i_cache.geometry().size(), 4096);
///
/// let improved = SystemConfig::improved();
/// assert_eq!(improved.d_cache.stream_ways(), 4);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SystemConfig {
    /// Instruction-cache organization (L1 + optional augmentations).
    pub i_cache: AugmentedConfig,
    /// Data-cache organization (L1 + optional augmentations).
    pub d_cache: AugmentedConfig,
    /// Second-level cache geometry.
    pub l2: CacheGeometry,
    /// Entries in a second-level victim cache (0 = none). §3.5 of the
    /// paper leaves L2 victim caching to future work; this knob
    /// implements it: an L2 miss that hits the L2 victim cache is
    /// serviced with one extra L2-side fixup instead of the full
    /// main-memory penalty.
    pub l2_victim_entries: usize,
    /// Ways of a second-level stream buffer between L2 and main memory
    /// (0 = none) — §5 names second-level application of the techniques
    /// as future work. An L2 miss caught at a buffer head costs one
    /// fixup instead of the main-memory penalty.
    pub l2_stream_ways: usize,
    /// Penalty of a first-level miss serviced by the second level, in
    /// instruction times (the paper assumes 24).
    pub l1_miss_penalty: u64,
    /// Additional penalty of a second-level miss to main memory (320).
    pub l2_miss_penalty: u64,
    /// Cost of an L1 miss serviced on-chip by a victim cache, miss cache,
    /// or stream buffer (one cycle).
    pub onchip_fixup: u64,
    /// Peak instruction issue rate in MIPS (1000 for the baseline).
    pub peak_mips: u64,
}

impl SystemConfig {
    /// The §2 baseline: bare 4KB/16B direct-mapped split L1s, 1MB/128B
    /// direct-mapped L2, 24- and 320-instruction-time penalties.
    pub fn baseline() -> Self {
        let l1 = CacheGeometry::direct_mapped(4096, 16).expect("baseline L1 geometry is valid");
        let l2 = CacheGeometry::direct_mapped(1 << 20, 128).expect("baseline L2 geometry is valid");
        SystemConfig {
            i_cache: AugmentedConfig::new(l1),
            d_cache: AugmentedConfig::new(l1),
            l2,
            l2_victim_entries: 0,
            l2_stream_ways: 0,
            l1_miss_penalty: 24,
            l2_miss_penalty: 320,
            onchip_fixup: 1,
            peak_mips: 1000,
        }
    }

    /// The §5 improved system (Figure 5-1): baseline plus a single
    /// four-entry instruction stream buffer, a four-entry data victim
    /// cache, and a four-way four-entry data stream buffer.
    pub fn improved() -> Self {
        let mut cfg = SystemConfig::baseline();
        cfg.i_cache = cfg.i_cache.stream_buffer(StreamBufferConfig::new(4));
        cfg.d_cache = cfg
            .d_cache
            .victim_cache(4)
            .multi_way_stream_buffer(4, StreamBufferConfig::new(4));
        cfg
    }

    /// Replaces both L1 organizations (useful for sweeps that vary the
    /// first-level caches while keeping the rest of the machine).
    #[must_use]
    pub fn with_l1(mut self, i_cache: AugmentedConfig, d_cache: AugmentedConfig) -> Self {
        self.i_cache = i_cache;
        self.d_cache = d_cache;
        self
    }

    /// Adds a victim cache behind the second-level cache (§3.5's future
    /// work; L2's large lines make conflicts more likely, so victim
    /// caching applies there too).
    #[must_use]
    pub fn with_l2_victim(mut self, entries: usize) -> Self {
        self.l2_victim_entries = entries;
        self
    }

    /// Adds a multi-way stream buffer between the second-level cache and
    /// main memory (§5 future work applied one level down).
    #[must_use]
    pub fn with_l2_stream(mut self, ways: usize) -> Self {
        self.l2_stream_ways = ways;
        self
    }
}

impl Default for SystemConfig {
    /// The baseline system.
    fn default() -> Self {
        SystemConfig::baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jouppi_core::ConflictAid;

    #[test]
    fn baseline_matches_section_2() {
        let c = SystemConfig::baseline();
        assert_eq!(c.i_cache.geometry().size(), 4096);
        assert_eq!(c.i_cache.geometry().line_size(), 16);
        assert!(c.i_cache.geometry().is_direct_mapped());
        assert_eq!(c.d_cache.geometry(), c.i_cache.geometry());
        assert_eq!(c.l2.size(), 1 << 20);
        assert_eq!(c.l2.line_size(), 128);
        assert_eq!(c.l1_miss_penalty, 24);
        assert_eq!(c.l2_miss_penalty, 320);
        assert_eq!(c.peak_mips, 1000);
        assert_eq!(c.i_cache.conflict_aid(), ConflictAid::None);
        assert_eq!(c.i_cache.stream_ways(), 0);
        assert_eq!(SystemConfig::default(), c);
    }

    #[test]
    fn improved_matches_section_5() {
        let c = SystemConfig::improved();
        assert_eq!(c.i_cache.stream_ways(), 1);
        assert_eq!(c.i_cache.conflict_aid(), ConflictAid::None);
        assert_eq!(c.d_cache.stream_ways(), 4);
        assert_eq!(c.d_cache.conflict_aid(), ConflictAid::VictimCache(4));
        assert_eq!(c.d_cache.stream_config().depth(), 4);
    }

    #[test]
    fn l2_victim_is_off_by_default_and_settable() {
        assert_eq!(SystemConfig::baseline().l2_victim_entries, 0);
        assert_eq!(SystemConfig::improved().l2_victim_entries, 0);
        let cfg = SystemConfig::improved().with_l2_victim(8);
        assert_eq!(cfg.l2_victim_entries, 8);
    }

    #[test]
    fn l2_stream_is_off_by_default_and_settable() {
        assert_eq!(SystemConfig::baseline().l2_stream_ways, 0);
        let cfg = SystemConfig::baseline().with_l2_stream(4);
        assert_eq!(cfg.l2_stream_ways, 4);
    }

    #[test]
    fn with_l1_swaps_organizations() {
        let small = CacheGeometry::direct_mapped(1024, 16).unwrap();
        let cfg = SystemConfig::baseline().with_l1(
            AugmentedConfig::new(small),
            AugmentedConfig::new(small).victim_cache(2),
        );
        assert_eq!(cfg.i_cache.geometry().size(), 1024);
        assert_eq!(cfg.d_cache.conflict_aid(), ConflictAid::VictimCache(2));
        assert_eq!(cfg.l2.size(), 1 << 20); // untouched
    }
}
