//! Instruction-time accounting (Figures 2-2 and 5-1).

use std::fmt;

/// Where the machine's time went, in instruction times.
///
/// The paper's performance figures decompose execution into the ideal
/// issue time plus stalls charged to each hierarchy level; the "net
/// performance" of the machine is the ideal fraction of the total.
///
/// # Examples
///
/// ```
/// use jouppi_system::TimeBreakdown;
///
/// let t = TimeBreakdown {
///     ideal: 800,
///     onchip_fixup: 0,
///     l1i_stall: 100,
///     l1d_stall: 60,
///     l2_stall: 40,
/// };
/// assert_eq!(t.total(), 1000);
/// assert!((t.performance_fraction() - 0.8).abs() < 1e-12);
/// assert!((t.lost_to_l1i() - 0.1).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TimeBreakdown {
    /// One instruction time per issued instruction.
    pub ideal: u64,
    /// One-cycle fixups for misses serviced on-chip (victim cache, miss
    /// cache, stream buffer).
    pub onchip_fixup: u64,
    /// Stall time from instruction-cache misses serviced by L2.
    pub l1i_stall: u64,
    /// Stall time from data-cache misses serviced by L2.
    pub l1d_stall: u64,
    /// Additional stall time from L2 misses to main memory.
    pub l2_stall: u64,
}

impl TimeBreakdown {
    /// Total execution time in instruction times.
    pub const fn total(&self) -> u64 {
        self.ideal + self.onchip_fixup + self.l1i_stall + self.l1d_stall + self.l2_stall
    }

    /// Fraction of peak performance achieved (the solid line in Figures
    /// 2-2 and 5-1); 0.0 for an empty run.
    pub fn performance_fraction(&self) -> f64 {
        self.frac(self.ideal)
    }

    /// Fraction of time lost to first-level instruction-cache misses.
    pub fn lost_to_l1i(&self) -> f64 {
        self.frac(self.l1i_stall)
    }

    /// Fraction of time lost to first-level data-cache misses.
    pub fn lost_to_l1d(&self) -> f64 {
        self.frac(self.l1d_stall)
    }

    /// Fraction of time lost to second-level misses.
    pub fn lost_to_l2(&self) -> f64 {
        self.frac(self.l2_stall)
    }

    /// Fraction of time spent on one-cycle on-chip fixups.
    pub fn lost_to_fixups(&self) -> f64 {
        self.frac(self.onchip_fixup)
    }

    /// Achieved MIPS given a peak issue rate.
    pub fn mips(&self, peak_mips: u64) -> f64 {
        peak_mips as f64 * self.performance_fraction()
    }

    /// Relative performance of `self` versus `baseline` (>1 means faster),
    /// comparing time per instruction so different trace lengths are
    /// comparable. Returns 0.0 if either run is empty.
    pub fn speedup_over(&self, baseline: &TimeBreakdown) -> f64 {
        if self.ideal == 0 || baseline.ideal == 0 || self.total() == 0 {
            return 0.0;
        }
        let ours = self.total() as f64 / self.ideal as f64;
        let theirs = baseline.total() as f64 / baseline.ideal as f64;
        theirs / ours
    }

    fn frac(&self, part: u64) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            part as f64 / total as f64
        }
    }
}

impl fmt::Display for TimeBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.1}% of peak ({} ideal + {} fixup + {} L1I + {} L1D + {} L2 instruction-times)",
            100.0 * self.performance_fraction(),
            self.ideal,
            self.onchip_fixup,
            self.l1i_stall,
            self.l1d_stall,
            self.l2_stall
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_sum_to_one() {
        let t = TimeBreakdown {
            ideal: 500,
            onchip_fixup: 50,
            l1i_stall: 200,
            l1d_stall: 150,
            l2_stall: 100,
        };
        let sum = t.performance_fraction()
            + t.lost_to_fixups()
            + t.lost_to_l1i()
            + t.lost_to_l1d()
            + t.lost_to_l2();
        assert!((sum - 1.0).abs() < 1e-12);
        assert_eq!(t.total(), 1000);
    }

    #[test]
    fn empty_run_is_all_zero() {
        let t = TimeBreakdown::default();
        assert_eq!(t.total(), 0);
        assert_eq!(t.performance_fraction(), 0.0);
        assert_eq!(t.mips(1000), 0.0);
        assert_eq!(t.speedup_over(&t), 0.0);
    }

    #[test]
    fn speedup_compares_time_per_instruction() {
        let slow = TimeBreakdown {
            ideal: 100,
            l1i_stall: 300,
            ..TimeBreakdown::default()
        };
        let fast = TimeBreakdown {
            ideal: 100,
            l1i_stall: 100,
            ..TimeBreakdown::default()
        };
        assert!((fast.speedup_over(&slow) - 2.0).abs() < 1e-12);
        assert!((slow.speedup_over(&fast) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mips_scales_with_fraction() {
        let t = TimeBreakdown {
            ideal: 250,
            l1d_stall: 750,
            ..TimeBreakdown::default()
        };
        assert!((t.mips(1000) - 250.0).abs() < 1e-9);
    }

    #[test]
    fn display_shows_percentage() {
        let t = TimeBreakdown {
            ideal: 1,
            l2_stall: 1,
            ..TimeBreakdown::default()
        };
        assert!(t.to_string().contains("50.0% of peak"));
    }
}
