//! Analysis: the §2 store-bandwidth argument for a pipelined L2.
//!
//! "Since stores typically occur at an average rate of 1 in every 6 or 7
//! instructions, an unpipelined external cache would not have even enough
//! bandwidth to handle the store traffic for access times greater than
//! seven instruction times." This experiment drives each benchmark's real
//! store stream (write-through L1, 4-entry write buffer) against a range
//! of L2 accept intervals and measures the stall time per instruction —
//! showing exactly where the unpipelined designs fall off the cliff and
//! the pipelined ones (accept interval 2-4) do not.

use jouppi_core::WriteBuffer;
use jouppi_report::Table;
use jouppi_trace::AccessKind;

use crate::common::{average, per_benchmark, ExperimentConfig};

/// L2 accept intervals swept (instruction times between writes accepted).
/// 2-4 model a pipelined cache; 16-30 model unpipelined access times.
pub const ACCEPT_INTERVALS: [u64; 5] = [2, 4, 8, 16, 30];

/// Results of the store-bandwidth analysis.
#[derive(Clone, Debug, PartialEq)]
pub struct ExtWriteBandwidth {
    /// `(accept interval, avg stall ticks per instruction)`.
    pub points: Vec<(u64, f64)>,
    /// Average store interval over the suite (instructions per store).
    pub avg_store_interval: f64,
}

/// Runs every benchmark's store stream through the write buffer at each
/// accept interval.
pub fn run(cfg: &ExperimentConfig) -> ExtWriteBandwidth {
    let per_bench = per_benchmark(cfg, |_, trace| {
        let mut per_interval = Vec::new();
        let mut stores = 0u64;
        for &interval in &ACCEPT_INTERVALS {
            let mut wb = WriteBuffer::new(4, interval);
            let mut now = 0u64;
            let mut instrs = 0u64;
            stores = 0;
            for r in trace.as_slice() {
                match r.kind {
                    AccessKind::InstrFetch => {
                        instrs += 1;
                        now += 1;
                    }
                    AccessKind::Store => {
                        stores += 1;
                        now += wb.store(now);
                    }
                    AccessKind::Load => {}
                }
            }
            per_interval.push(wb.total_stalls() as f64 / instrs.max(1) as f64);
        }
        let instrs = trace.stats().instruction_refs;
        (per_interval, instrs as f64 / stores.max(1) as f64)
    });
    let points = ACCEPT_INTERVALS
        .iter()
        .enumerate()
        .map(|(i, &interval)| {
            let vals: Vec<f64> = per_bench.iter().map(|(_, (c, _))| c[i]).collect();
            (interval, average(&vals))
        })
        .collect();
    let avg_store_interval = average(&per_bench.iter().map(|(_, (_, s))| *s).collect::<Vec<_>>());
    ExtWriteBandwidth {
        points,
        avg_store_interval,
    }
}

impl ExtWriteBandwidth {
    /// Stall per instruction at an accept interval (0.0 if not swept).
    pub fn stall_at(&self, interval: u64) -> f64 {
        self.points
            .iter()
            .find(|(i, _)| *i == interval)
            .map(|(_, s)| *s)
            .unwrap_or(0.0)
    }

    /// Renders the sweep.
    pub fn render(&self) -> String {
        let mut t = Table::new(["L2 accept interval", "stall per instruction"]);
        for (interval, stall) in &self.points {
            t.row([interval.to_string(), format!("{stall:.3}")]);
        }
        format!(
            "Analysis (§2): store bandwidth vs L2 pipelining \
             (write-through L1, 4-entry write buffer)\n\
             suite averages one store per {:.1} instructions\n{}",
            self.avg_store_interval,
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unpipelined_l2_is_bandwidth_limited() {
        let cfg = ExperimentConfig::with_scale(60_000);
        let e = run(&cfg);
        // The suite stores about 1-in-7-instructions, like the paper's.
        assert!(
            (4.0..14.0).contains(&e.avg_store_interval),
            "store interval {:.1}",
            e.avg_store_interval
        );
        // Pipelined intervals keep stalls negligible…
        assert!(e.stall_at(2) < 0.05, "{}", e.stall_at(2));
        // …while unpipelined access times beyond the store interval melt
        // down, exactly as §2 argues.
        assert!(
            e.stall_at(30) > 10.0 * e.stall_at(4).max(0.001),
            "30: {} vs 4: {}",
            e.stall_at(30),
            e.stall_at(4)
        );
        // Monotone in the accept interval.
        for w in e.points.windows(2) {
            assert!(w[1].1 + 1e-12 >= w[0].1, "{:?}", e.points);
        }
        assert!(e.render().contains("store bandwidth"));
    }
}
