//! Beyond the paper: stride-detecting stream buffers on non-unit-stride
//! code — the §5 future-work item.
//!
//! Walks a column-major matrix along the row dimension (every reference
//! one full column apart) and shows the paper's sequential stream buffer
//! failing where the stride-detecting extension succeeds.
//!
//! Run with `cargo run --release --example stride_prefetch`.

use jouppi::cache::CacheGeometry;
use jouppi::core::{AugmentedCache, AugmentedConfig, StreamBufferConfig};
use jouppi::report::Table;
use jouppi::trace::Addr;

/// References the matrix row-major-wise over column-major storage:
/// element (i, j) at `base + j*lda*8 + i*8`, walking j fastest.
fn row_walk(base: u64, n: u64, lda: u64, passes: u64) -> impl Iterator<Item = Addr> {
    (0..passes)
        .flat_map(move |_| (0..n).flat_map(move |i| (0..n).map(move |j| (i, j))))
        .map(move |(i, j)| Addr::new(base + j * lda * 8 + i * 8))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let geom = CacheGeometry::direct_mapped(4096, 16)?;
    let n = 96;
    let lda = 100; // column stride: 800 bytes = 50 cache lines
    let configs: [(&str, AugmentedConfig); 3] = [
        ("no prefetch", AugmentedConfig::new(geom)),
        (
            "sequential 4-way stream buffer (the paper's)",
            AugmentedConfig::new(geom).multi_way_stream_buffer(4, StreamBufferConfig::new(4)),
        ),
        (
            "stride-detecting 4-way stream buffer (extension)",
            AugmentedConfig::new(geom).strided_stream_buffer(4, StreamBufferConfig::new(4), 128),
        ),
    ];

    println!("row-wise walk of a column-major {n}x{n} matrix (lda {lda}):");
    println!("every access jumps 50 cache lines — zero spatial locality\n");
    let mut t = Table::new(["organization", "miss rate", "misses removed"]);
    for (name, cfg) in configs {
        let mut cache = AugmentedCache::new(cfg);
        for addr in row_walk(0x1000_0000, n, lda, 4) {
            cache.access(addr);
        }
        let s = cache.stats();
        t.row([
            name.to_owned(),
            format!("{:.4}", s.demand_miss_rate()),
            format!("{:.1}%", 100.0 * s.removed_fraction()),
        ]);
    }
    println!("{t}");
    println!("§4.1 predicted the sequential buffer would be \"of little");
    println!("benefit\" here; a two-miss stride detector fixes it.");
    Ok(())
}
