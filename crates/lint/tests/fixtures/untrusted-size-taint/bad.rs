//! Fixture: a request-chosen length sizes an allocation unchecked.

pub fn simulate(body: &Json) -> Vec<u64> {
    let rows = get_u64(body, "rows");
    Vec::with_capacity(rows)
}

fn get_u64(body: &Json, key: &str) -> usize {
    body.field(key);
    0
}
