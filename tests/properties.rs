//! Property-based tests over the core data structures and their paper
//! invariants, driven by random reference streams.

//
// Gated: requires the `proptest` feature (and re-adding the `proptest`
// dev-dependency, which the offline build environment cannot download).
#![cfg(feature = "proptest")]

use jouppi::cache::{
    Cache, CacheGeometry, FifoSweep, LruSet, LruSweep, MissClassifier, ReplacementPolicy,
    StackDistanceProfile,
};
use jouppi::core::{AugmentedCache, AugmentedConfig, StreamBufferConfig, VictimCache};
use jouppi::trace::LineAddr;
use proptest::prelude::*;

/// Random line streams with controllable locality: values are small so
/// conflicts and reuse actually occur.
fn line_stream(max_line: u64, len: usize) -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0..max_line, 1..len)
}

proptest! {
    /// An LruSet never exceeds capacity and evicts exactly the LRU.
    #[test]
    fn lru_set_respects_capacity(stream in line_stream(64, 200), cap in 1usize..10) {
        let mut lru = LruSet::new(cap);
        let mut reference: Vec<u64> = Vec::new(); // MRU at front
        for &n in &stream {
            let line = LineAddr::new(n);
            let evicted = match lru.touch_or_insert(line) {
                jouppi::cache::TouchOutcome::Evicted(v) => Some(v.get()),
                _ => None,
            };
            // Maintain the reference model.
            if let Some(pos) = reference.iter().position(|&x| x == n) {
                reference.remove(pos);
                prop_assert!(evicted.is_none());
            } else if reference.len() == cap {
                let lru_line = reference.pop().expect("full");
                prop_assert_eq!(evicted, Some(lru_line));
            } else {
                prop_assert!(evicted.is_none());
            }
            reference.insert(0, n);
            prop_assert!(lru.len() <= cap);
            prop_assert_eq!(lru.len(), reference.len());
        }
        // Final MRU→LRU order matches the reference model.
        let order: Vec<u64> = lru.iter().map(|l| l.get()).collect();
        prop_assert_eq!(order, reference);
    }

    /// A fully-associative Cache with LRU equals an LruSet on the same
    /// stream (same hits, same evictions).
    #[test]
    fn fully_associative_cache_equals_lru_set(stream in line_stream(128, 300)) {
        let geom = CacheGeometry::fully_associative(8 * 16, 16).unwrap(); // 8 lines
        let mut cache = Cache::new(geom);
        let mut lru = LruSet::new(8);
        for &n in &stream {
            let line = LineAddr::new(n);
            let lru_hit = lru.contains(line);
            lru.touch_or_insert(line);
            let cache_hit = cache.access_line(line).is_hit();
            prop_assert_eq!(cache_hit, lru_hit);
            prop_assert_eq!(cache.probe(line), lru.contains(line));
            prop_assert!(cache.resident_count() <= 8);
        }
    }

    /// The three miss classes partition total misses, and compulsory
    /// misses equal the number of distinct lines that missed first.
    #[test]
    fn three_c_partition(stream in line_stream(96, 400)) {
        let geom = CacheGeometry::direct_mapped(16 * 16, 16).unwrap(); // 16 lines
        let mut cache = Cache::new(geom);
        let mut cls = MissClassifier::new(geom);
        let mut misses = 0u64;
        for &n in &stream {
            let line = LineAddr::new(n);
            let miss = cache.access_line(line).is_miss();
            if miss { misses += 1; }
            cls.observe(line, miss);
        }
        let b = cls.breakdown();
        prop_assert_eq!(b.total(), misses);
        let distinct: std::collections::HashSet<_> = stream.iter().collect();
        prop_assert_eq!(b.compulsory as usize, distinct.len());
    }

    /// LRU stack property: a larger fully-associative LRU cache never
    /// misses more than a smaller one on the same stream.
    #[test]
    fn lru_inclusion_property(stream in line_stream(256, 400)) {
        let mut misses_by_size = Vec::new();
        for lines in [4u64, 8, 16, 32] {
            let geom = CacheGeometry::fully_associative(lines * 16, 16).unwrap();
            let mut cache = Cache::new(geom);
            let mut misses = 0;
            for &n in &stream {
                if cache.access_line(LineAddr::new(n)).is_miss() {
                    misses += 1;
                }
            }
            misses_by_size.push(misses);
        }
        for w in misses_by_size.windows(2) {
            prop_assert!(w[1] <= w[0], "bigger LRU cache missed more: {:?}", misses_by_size);
        }
    }

    /// Victim-cache exclusivity and the L1-miss invariance across
    /// organizations, on arbitrary streams.
    #[test]
    fn victim_cache_invariants(stream in line_stream(64, 400), entries in 1usize..6) {
        let geom = CacheGeometry::direct_mapped(8 * 16, 16).unwrap(); // 8 sets
        let bare = {
            let mut c = AugmentedCache::new(AugmentedConfig::new(geom));
            for &n in &stream { c.access_line(LineAddr::new(n)); }
            c.stats().l1_misses()
        };
        let mut c = AugmentedCache::new(AugmentedConfig::new(geom).victim_cache(entries));
        for &n in &stream {
            c.access_line(LineAddr::new(n));
        }
        prop_assert!(c.exclusivity_holds());
        prop_assert_eq!(c.stats().l1_misses(), bare);
        prop_assert_eq!(
            c.stats().l1_misses(),
            c.stats().victim_hits + c.stats().full_misses
        );
    }

    /// Larger victim caches never service fewer misses on-chip.
    #[test]
    fn victim_cache_monotone_in_entries(stream in line_stream(48, 300)) {
        let geom = CacheGeometry::direct_mapped(8 * 16, 16).unwrap();
        let mut prev = 0u64;
        for entries in [1usize, 2, 4, 8, 16] {
            let mut c = AugmentedCache::new(AugmentedConfig::new(geom).victim_cache(entries));
            for &n in &stream { c.access_line(LineAddr::new(n)); }
            let hits = c.stats().victim_hits;
            prop_assert!(hits >= prev, "{entries} entries: {hits} < {prev}");
            prev = hits;
        }
    }

    /// Raw VictimCache structure: a swap-hit removes the line and the
    /// set's size never exceeds capacity.
    #[test]
    fn raw_victim_cache_size_bound(ops in prop::collection::vec((0u64..32, 0u64..32), 1..200), cap in 1usize..6) {
        let mut vc = VictimCache::new(cap);
        for &(req, vic) in &ops {
            let (req, vic) = (LineAddr::new(req), LineAddr::new(vic));
            if req != vic {
                if !vc.probe_swap(req, Some(vic)) {
                    vc.insert_victim(vic);
                }
                prop_assert!(!vc.contains(req) || req == vic);
            }
            prop_assert!(vc.len() <= cap);
        }
    }

    /// Stream buffers never *add* misses: full misses with a buffer are
    /// at most the bare cache's misses.
    #[test]
    fn stream_buffer_never_hurts(stream in line_stream(200, 400), ways in 1usize..5) {
        let geom = CacheGeometry::direct_mapped(8 * 16, 16).unwrap();
        let bare = {
            let mut c = AugmentedCache::new(AugmentedConfig::new(geom));
            for &n in &stream { c.access_line(LineAddr::new(n)); }
            c.stats().full_misses
        };
        let mut c = AugmentedCache::new(
            AugmentedConfig::new(geom).multi_way_stream_buffer(ways, StreamBufferConfig::new(4)),
        );
        for &n in &stream { c.access_line(LineAddr::new(n)); }
        prop_assert!(c.stats().full_misses <= bare);
    }

    /// The stack-distance profile predicts FA-LRU misses exactly
    /// (Mattson), for every capacity, on arbitrary streams.
    #[test]
    fn stack_distance_predicts_fa_lru(stream in line_stream(96, 400)) {
        let mut profile = StackDistanceProfile::new();
        for &n in &stream {
            profile.observe(LineAddr::new(n));
        }
        for lines in [1u64, 2, 4, 8, 32] {
            let geom = CacheGeometry::fully_associative(lines * 16, 16).unwrap();
            let mut cache = Cache::new(geom);
            let mut misses = 0u64;
            for &n in &stream {
                if cache.access_line(LineAddr::new(n)).is_miss() {
                    misses += 1;
                }
            }
            prop_assert_eq!(profile.misses_for_capacity(lines as usize), misses);
        }
        // Compulsory count equals distinct lines.
        let distinct: std::collections::HashSet<_> = stream.iter().collect();
        prop_assert_eq!(profile.cold_refs() as usize, distinct.len());
    }

    /// Set refinement: the within-set stack distance at S sets predicts
    /// an S-set A-way LRU cache's hit/miss per reference (hit ⇔ not a
    /// first touch and depth ≤ A), on arbitrary streams.
    #[test]
    fn within_set_depth_predicts_set_assoc_lru(stream in line_stream(128, 400)) {
        for (sets, assoc) in [(1u64, 4u64), (4, 1), (4, 2), (8, 4), (16, 2)] {
            let geom = CacheGeometry::new(sets * assoc * 16, 16, assoc).unwrap();
            let mut cache = Cache::new(geom);
            let mut sweep = LruSweep::for_set_counts(&[sets]).unwrap();
            for &n in &stream {
                let line = LineAddr::new(n);
                let (cold, depths) = sweep.observe_depths(line);
                let predicted_hit = !cold && u64::from(depths[0]) <= assoc;
                prop_assert_eq!(
                    cache.access_line(line).is_hit(),
                    predicted_hit,
                    "{} sets x {} ways at line {}", sets, assoc, n
                );
            }
            prop_assert_eq!(
                sweep.misses(sets, assoc),
                Some(cache.stats().misses)
            );
        }
    }

    /// The bounded LRU backend equals the exact Fenwick backend at every
    /// associativity up to each level's bound, and declines to answer
    /// beyond it, on arbitrary streams.
    #[test]
    fn bounded_lru_sweep_matches_exact_within_bounds(stream in line_stream(128, 400)) {
        let cells = [(1u64, 6u64), (2, 3), (8, 2), (16, 1)];
        let counts: Vec<u64> = cells.iter().map(|&(s, _)| s).collect();
        let mut exact = LruSweep::for_set_counts(&counts).unwrap();
        let mut bounded = LruSweep::bounded(&cells).unwrap();
        for &n in &stream {
            exact.observe(LineAddr::new(n));
            bounded.observe(LineAddr::new(n));
        }
        for (sets, bound) in cells {
            for assoc in 1..=bound {
                prop_assert_eq!(
                    bounded.misses(sets, assoc),
                    exact.misses(sets, assoc),
                    "{} sets x {} ways (bound {})", sets, assoc, bound
                );
            }
            prop_assert_eq!(bounded.misses(sets, bound + 1), None);
        }
        prop_assert_eq!(bounded.cold_refs(), exact.cold_refs());
        prop_assert_eq!(bounded.distinct_lines(), exact.distinct_lines());
    }

    /// The one-pass FIFO curves equal per-cell FIFO simulation exactly,
    /// for every tracked (set count, associativity) cell, on arbitrary
    /// streams.
    #[test]
    fn fifo_sweep_matches_per_cell_fifo(stream in line_stream(160, 400)) {
        let cells = [(1u64, 2u64), (1, 8), (2, 4), (4, 1), (8, 2), (16, 1)];
        let mut sweep = FifoSweep::new(&cells).unwrap();
        for &n in &stream {
            sweep.observe(LineAddr::new(n));
        }
        for (sets, assoc) in cells {
            let geom = CacheGeometry::new(sets * assoc * 16, 16, assoc).unwrap();
            let mut cache = Cache::with_policy(geom, ReplacementPolicy::Fifo);
            for &n in &stream {
                cache.access_line(LineAddr::new(n));
            }
            prop_assert_eq!(
                sweep.misses(sets, assoc),
                Some(cache.stats().misses),
                "{} sets x {} ways", sets, assoc
            );
        }
    }

    /// Set-associative caches with FIFO/Random still respect capacity and
    /// never "lose" lines spuriously (a resident line probed right after
    /// insertion is present).
    #[test]
    fn policies_respect_capacity(stream in line_stream(64, 300)) {
        for policy in [ReplacementPolicy::Lru, ReplacementPolicy::Fifo, ReplacementPolicy::Random] {
            let geom = CacheGeometry::new(4 * 16 * 2, 16, 2).unwrap(); // 4 sets, 2-way
            let mut cache = Cache::with_policy(geom, policy);
            for &n in &stream {
                let line = LineAddr::new(n);
                cache.access_line(line);
                prop_assert!(cache.probe(line), "{policy}: line vanished");
                prop_assert!(cache.resident_count() <= 8);
            }
        }
    }
}
