//! Driving a trace through the two-level hierarchy.

use std::fmt;

use jouppi_core::{AccessOutcome, AugmentedCache, AugmentedConfig, AugmentedStats};
use jouppi_trace::{TraceSource, TraceStats};

use crate::{SystemConfig, TimeBreakdown};

/// A complete machine: split augmented L1 caches over a shared L2, with
/// instruction-time accounting.
///
/// A single model instance can be reused across traces; statistics
/// accumulate until [`SystemModel::report`] is taken. Most callers use
/// [`SystemModel::run`], which drives one trace from a cold machine and
/// returns its report.
pub struct SystemModel {
    cfg: SystemConfig,
    l1i: AugmentedCache,
    l1d: AugmentedCache,
    l2: AugmentedCache,
    time: TimeBreakdown,
    refs: TraceStats,
}

impl SystemModel {
    /// Builds a cold machine.
    pub fn new(cfg: SystemConfig) -> Self {
        let mut l2_cfg = AugmentedConfig::new(cfg.l2);
        if cfg.l2_victim_entries > 0 {
            l2_cfg = l2_cfg.victim_cache(cfg.l2_victim_entries);
        }
        if cfg.l2_stream_ways > 0 {
            l2_cfg = l2_cfg.multi_way_stream_buffer(
                cfg.l2_stream_ways,
                jouppi_core::StreamBufferConfig::new(4),
            );
        }
        SystemModel {
            cfg,
            l1i: AugmentedCache::new(cfg.i_cache),
            l1d: AugmentedCache::new(cfg.d_cache),
            l2: AugmentedCache::new(l2_cfg),
            time: TimeBreakdown::default(),
            refs: TraceStats::default(),
        }
    }

    /// The machine's configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Resets caches and statistics to a cold machine.
    pub fn reset(&mut self) {
        *self = SystemModel::new(self.cfg);
    }

    /// Processes a single reference, charging its time.
    pub fn step(&mut self, r: jouppi_trace::MemRef) {
        self.refs.record(r.kind);
        let is_instr = r.kind.is_instr();
        if is_instr {
            self.time.ideal += 1;
        }
        let l1 = if is_instr {
            &mut self.l1i
        } else {
            &mut self.l1d
        };
        let outcome = l1.access(r.addr);
        match outcome {
            AccessOutcome::L1Hit => {}
            AccessOutcome::VictimHit | AccessOutcome::MissCacheHit => {
                self.time.onchip_fixup += self.cfg.onchip_fixup;
            }
            AccessOutcome::StreamHit { stall } => {
                // The line was prefetched from L2 earlier; account for its
                // presence there (prefetch traffic) without charging demand
                // time beyond the one-cycle reload plus any remaining
                // in-flight latency.
                self.time.onchip_fixup += self.cfg.onchip_fixup + stall;
                self.l2.access(r.addr);
            }
            AccessOutcome::Miss => {
                if is_instr {
                    self.time.l1i_stall += self.cfg.l1_miss_penalty;
                } else {
                    self.time.l1d_stall += self.cfg.l1_miss_penalty;
                }
                match self.l2.access(r.addr) {
                    AccessOutcome::Miss => self.time.l2_stall += self.cfg.l2_miss_penalty,
                    AccessOutcome::VictimHit | AccessOutcome::StreamHit { .. } => {
                        // Serviced beside L2 (victim swap or prefetch
                        // buffer): one extra cycle instead of the
                        // main-memory penalty.
                        self.time.onchip_fixup += self.cfg.onchip_fixup;
                    }
                    _ => {}
                }
            }
        }
    }

    /// Drives a whole trace from a cold machine and returns the report.
    pub fn run(&mut self, src: &dyn TraceSource) -> SystemReport {
        self.reset();
        for r in src.refs() {
            self.step(r);
        }
        self.report()
    }

    /// Snapshot of everything measured so far.
    pub fn report(&self) -> SystemReport {
        SystemReport {
            refs: self.refs,
            i_stats: *self.l1i.stats(),
            d_stats: *self.l1d.stats(),
            l2_stats: *self.l2.stats(),
            time: self.time,
        }
    }
}

impl fmt::Debug for SystemModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SystemModel")
            .field("config", &self.cfg)
            .field("time", &self.time)
            .finish_non_exhaustive()
    }
}

/// Everything a system run measured.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SystemReport {
    /// Reference counts by kind.
    pub refs: TraceStats,
    /// Instruction-side L1 outcome counters.
    pub i_stats: AugmentedStats,
    /// Data-side L1 outcome counters.
    pub d_stats: AugmentedStats,
    /// Second-level cache counters (demand + stream-prefetch traffic).
    pub l2_stats: AugmentedStats,
    /// Instruction-time breakdown.
    pub time: TimeBreakdown,
}

impl SystemReport {
    /// Fraction of peak performance achieved.
    pub fn performance_fraction(&self) -> f64 {
        self.time.performance_fraction()
    }

    /// Combined first-level miss rate over all references (the §5 metric
    /// "reduce the first-level miss rate to less than half").
    pub fn l1_miss_rate(&self) -> f64 {
        let total = self.i_stats.accesses + self.d_stats.accesses;
        if total == 0 {
            0.0
        } else {
            (self.i_stats.full_misses + self.d_stats.full_misses) as f64 / total as f64
        }
    }

    /// Achieved MIPS given the configured peak.
    pub fn mips(&self, peak_mips: u64) -> f64 {
        self.time.mips(peak_mips)
    }
}

impl fmt::Display for SystemReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} instr, I-miss {:.4}, D-miss {:.4}, {}",
            self.refs.instruction_refs,
            self.i_stats.demand_miss_rate(),
            self.d_stats.demand_miss_rate(),
            self.time
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jouppi_trace::{Addr, MemRef, RecordedTrace};

    fn trace(refs: Vec<MemRef>) -> RecordedTrace {
        RecordedTrace::from_refs("t", refs)
    }

    #[test]
    fn all_hits_run_at_peak() {
        let mut m = SystemModel::new(SystemConfig::baseline());
        // Same line over and over: 1 cold miss then pure hits.
        let t = trace((0..1000).map(|_| MemRef::instr(Addr::new(0))).collect());
        let r = m.run(&t);
        assert_eq!(r.time.ideal, 1000);
        assert_eq!(r.time.l1i_stall, 24);
        assert_eq!(r.time.l2_stall, 320);
        assert!(r.performance_fraction() > 0.7);
    }

    #[test]
    fn l1_miss_charges_penalty_once_per_miss() {
        let mut m = SystemModel::new(SystemConfig::baseline());
        // Two conflicting instruction lines alternating: every ref misses
        // L1 but only the first two miss L2 (128B L2 lines cover both? no:
        // 0x0 and 0x1000 are different L2 lines).
        let refs: Vec<MemRef> = (0..100)
            .map(|i| MemRef::instr(Addr::new(if i % 2 == 0 { 0 } else { 0x1000 })))
            .collect();
        let r = m.run(&trace(refs));
        assert_eq!(r.i_stats.full_misses, 100);
        assert_eq!(r.time.l1i_stall, 100 * 24);
        assert_eq!(r.time.l2_stall, 2 * 320); // two cold L2 misses only
    }

    #[test]
    fn data_misses_charge_the_data_lane() {
        let mut m = SystemModel::new(SystemConfig::baseline());
        let refs: Vec<MemRef> = (0..10)
            .map(|i| MemRef::load(Addr::new(i * 0x2000)))
            .collect();
        let r = m.run(&trace(refs));
        assert_eq!(r.time.l1d_stall, 10 * 24);
        assert_eq!(r.time.l1i_stall, 0);
        assert_eq!(r.time.ideal, 0); // no instructions in this trace
    }

    #[test]
    fn improved_system_beats_baseline_on_conflicts() {
        // Alternating data conflict: the victim cache turns 24-cycle
        // misses into 1-cycle swaps.
        let refs: Vec<MemRef> = (0..2000)
            .flat_map(|i| {
                [
                    MemRef::instr(Addr::new(0x100)),
                    MemRef::load(Addr::new(if i % 2 == 0 { 0 } else { 0x1000 })),
                ]
            })
            .collect();
        let t = trace(refs);
        let base = SystemModel::new(SystemConfig::baseline()).run(&t);
        let imp = SystemModel::new(SystemConfig::improved()).run(&t);
        assert!(imp.d_stats.victim_hits > 1900);
        assert!(imp.time.speedup_over(&base.time) > 2.0);
        assert!(imp.l1_miss_rate() < base.l1_miss_rate() / 2.0);
    }

    #[test]
    fn stream_buffer_feeds_l2_traffic() {
        let mut m = SystemModel::new(SystemConfig::improved());
        // Long sequential instruction run: stream-buffer hits should still
        // register L2 accesses (that's where the prefetches came from).
        let refs: Vec<MemRef> = (0..4096)
            .map(|i| MemRef::instr(Addr::new(0x10_0000 + i * 16)))
            .collect();
        let r = m.run(&trace(refs));
        assert!(r.i_stats.stream_hits > 4000);
        assert!(r.l2_stats.accesses > 4000);
    }

    #[test]
    fn reset_restores_cold_state() {
        let mut m = SystemModel::new(SystemConfig::baseline());
        let t = trace(vec![MemRef::instr(Addr::new(0))]);
        let first = m.run(&t);
        let second = m.run(&t); // run() resets internally
        assert_eq!(first, second);
    }

    #[test]
    fn report_display_mentions_miss_rates() {
        let mut m = SystemModel::new(SystemConfig::baseline());
        let r = m.run(&trace(vec![MemRef::instr(Addr::new(0))]));
        let text = r.to_string();
        assert!(text.contains("I-miss"));
        assert!(text.contains("of peak"));
    }
}
