//! The per-crate policy table: which lints apply where.
//!
//! Policy is keyed on a file's *workspace-relative path*. Each file gets
//! a [`FileContext`] describing the crate it belongs to and its role
//! (library module, binary, crate root, test), and [`lints_for`] maps
//! that context to the set of active lints:
//!
//! | crate | determinism (time/rng/hasher) | serve-panic | relaxed-ordering | unbounded-growth | truncating-cast |
//! |---|---|---|---|---|---|
//! | trace, cache, core, workloads, system, jouppi (root) | ✔ | | | | |
//! | experiments | ✔ | | ✔ | ✔ | ✔ |
//! | serve | | ✔ | ✔ | ✔ | ✔ |
//! | cli, bench, report | | | | | ✔ |
//! | lint | | | | | |
//!
//! `forbid-unsafe` applies to every crate root; `debug-print`,
//! `lock-order`, `blocking-under-lock`, and `swallowed-result` apply to
//! all non-test code everywhere, and the four interprocedural lints
//! (`panic-reachability`, `transitive-purity`, `untrusted-size-taint`,
//! `lock-held-across-call`) to every non-test file — their findings
//! land wherever the offending function is declared.
//!
//! Files under `tests/` and `examples/` directories (and `#[cfg(test)]`
//! regions) run under a **relaxed policy**: they may unwrap, print, and
//! block freely, but in simulation crates the determinism lints
//! (ambient-time/rng/default-hasher) still apply — a test that asserts
//! on wall-clock time or unseeded randomness is flaky by construction.

use crate::lint::LintId;

/// Where a source file sits in the workspace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FileContext {
    /// Workspace-relative path with `/` separators.
    pub rel_path: String,
    /// Crate directory name (`trace`, `serve`, …); `"jouppi"` for the
    /// umbrella crate at the workspace root.
    pub crate_name: String,
    /// Whether the file lives under a `tests/` directory (integration
    /// tests: relaxed policy).
    pub is_test_file: bool,
    /// Whether the file lives under an `examples/` directory (relaxed
    /// policy, bin-like).
    pub is_example: bool,
    /// Whether the file is part of a binary target (`main.rs`, under
    /// `src/bin/`, or an example).
    pub is_bin: bool,
    /// Whether the file is a crate root (`lib.rs`, `main.rs`, or a
    /// direct child of `src/bin/`).
    pub is_crate_root: bool,
}

/// Crates whose outputs are simulation results, and must therefore be
/// bit-reproducible from (trace, config, seed) alone.
const SIM_CRATES: [&str; 7] = [
    "trace",
    "cache",
    "core",
    "workloads",
    "system",
    "experiments",
    "jouppi",
];

/// Classifies a workspace-relative path. Returns `None` for paths the
/// linter does not cover (benches, non-Rust files, build output).
pub fn classify(rel_path: &str) -> Option<FileContext> {
    if !rel_path.ends_with(".rs") {
        return None;
    }
    let parts: Vec<&str> = rel_path.split('/').collect();
    let (crate_name, rest): (String, &[&str]) = match parts.as_slice() {
        ["crates", name, rest @ ..] => ((*name).to_owned(), rest),
        ["src" | "tests" | "examples", ..] => ("jouppi".to_owned(), &parts[..]),
        _ => return None,
    };
    let (is_test_file, is_example, in_src, tail): (bool, bool, bool, &[&str]) = match rest {
        ["src", tail @ ..] => (false, false, true, tail),
        ["tests", tail @ ..] => (true, false, false, tail),
        ["examples", tail @ ..] => (false, true, false, tail),
        _ => return None,
    };
    let is_bin = is_example || (in_src && (tail == ["main.rs"] || tail.first() == Some(&"bin")));
    let is_crate_root = in_src
        && (tail == ["lib.rs"] || tail == ["main.rs"] || (tail.len() == 2 && tail[0] == "bin"));
    Some(FileContext {
        rel_path: rel_path.to_owned(),
        crate_name,
        is_test_file,
        is_example,
        is_bin,
        is_crate_root,
    })
}

/// The lints active for a file. Test and example files run the relaxed
/// policy (determinism lints only, in simulation crates); the caller
/// also skips `#[cfg(test)]` regions within non-test files.
pub fn lints_for(ctx: &FileContext) -> Vec<LintId> {
    let mut lints = Vec::new();
    if SIM_CRATES.contains(&ctx.crate_name.as_str()) {
        lints.push(LintId::AmbientTime);
        lints.push(LintId::AmbientRng);
        lints.push(LintId::DefaultHasher);
    }
    if ctx.is_test_file || ctx.is_example {
        // Relaxed policy: panics, printing, and blocking are fine in
        // tests and examples; flaky-by-construction ambient inputs in
        // simulation crates are not.
        return lints;
    }
    if ctx.crate_name == "serve" {
        lints.push(LintId::ServePanic);
    }
    if ctx.crate_name == "experiments" || ctx.crate_name == "serve" {
        lints.push(LintId::RelaxedOrdering);
    }
    if ctx.is_crate_root {
        lints.push(LintId::ForbidUnsafe);
    }
    lints.push(LintId::DebugPrint);
    // v2 structural analyses. The concurrency and Result-discipline
    // lints apply everywhere; growth tracking targets the long-lived
    // daemons (serve) and sweep state (experiments); cast tracking
    // targets the layers that decode wire/flag values and encode
    // counters.
    lints.push(LintId::LockOrder);
    lints.push(LintId::BlockingUnderLock);
    lints.push(LintId::SwallowedResult);
    if ctx.crate_name == "serve" || ctx.crate_name == "experiments" {
        lints.push(LintId::UnboundedGrowth);
    }
    if matches!(
        ctx.crate_name.as_str(),
        "serve" | "cli" | "bench" | "report" | "experiments"
    ) {
        lints.push(LintId::TruncatingCast);
    }
    // v3 interprocedural analyses: active everywhere — reachability is
    // decided by the workspace call graph, so findings land wherever
    // the offending function is declared, in any crate.
    lints.push(LintId::PanicReachability);
    lints.push(LintId::TransitivePurity);
    lints.push(LintId::UntrustedSizeTaint);
    lints.push(LintId::LockHeldAcrossCall);
    lints
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_covers_the_workspace_shapes() {
        let lib = classify("crates/cache/src/lru.rs").expect("lib module");
        assert_eq!(lib.crate_name, "cache");
        assert!(!lib.is_bin && !lib.is_crate_root && !lib.is_test_file);

        let root = classify("crates/serve/src/lib.rs").expect("crate root");
        assert!(root.is_crate_root && !root.is_bin);

        let bin = classify("crates/cli/src/bin/jouppi.rs").expect("bin root");
        assert!(bin.is_bin && bin.is_crate_root);

        let main = classify("crates/cli/src/main.rs").expect("main");
        assert!(main.is_bin && main.is_crate_root);

        let t = classify("crates/serve/tests/integration.rs").expect("test");
        assert!(t.is_test_file);

        let umbrella = classify("src/lib.rs").expect("umbrella root");
        assert_eq!(umbrella.crate_name, "jouppi");
        assert!(umbrella.is_crate_root);

        let root_test = classify("tests/paper_claims.rs").expect("root test");
        assert!(root_test.is_test_file);

        let root_example = classify("examples/quickstart.rs").expect("root example");
        assert_eq!(root_example.crate_name, "jouppi");
        assert!(root_example.is_example && root_example.is_bin);

        let crate_example =
            classify("crates/workloads/examples/calibrate.rs").expect("crate example");
        assert_eq!(crate_example.crate_name, "workloads");
        assert!(crate_example.is_example && !crate_example.is_test_file);

        assert!(classify("crates/cache/benches/x.rs").is_none());
        assert!(classify("README.md").is_none());
    }

    #[test]
    fn policy_matches_the_table() {
        let sim = classify("crates/core/src/victim_cache.rs").expect("sim module");
        let lints = lints_for(&sim);
        assert!(lints.contains(&LintId::AmbientTime));
        assert!(lints.contains(&LintId::DefaultHasher));
        assert!(!lints.contains(&LintId::ServePanic));

        let serve = classify("crates/serve/src/routes.rs").expect("serve module");
        let lints = lints_for(&serve);
        assert!(lints.contains(&LintId::ServePanic));
        assert!(lints.contains(&LintId::RelaxedOrdering));
        assert!(!lints.contains(&LintId::AmbientTime));

        let exp = classify("crates/experiments/src/sweep.rs").expect("experiments");
        assert!(lints_for(&exp).contains(&LintId::RelaxedOrdering));

        let report = classify("crates/report/src/table.rs").expect("report");
        let lints = lints_for(&report);
        assert_eq!(
            lints,
            vec![
                LintId::DebugPrint,
                LintId::LockOrder,
                LintId::BlockingUnderLock,
                LintId::SwallowedResult,
                LintId::TruncatingCast,
                LintId::PanicReachability,
                LintId::TransitivePurity,
                LintId::UntrustedSizeTaint,
                LintId::LockHeldAcrossCall,
            ]
        );
    }

    #[test]
    fn relaxed_policy_for_tests_and_examples() {
        // Sim-crate tests/examples: determinism lints only — no panic,
        // print, blocking, or interprocedural lints.
        let sim_test = classify("crates/cache/tests/lru_backends.rs").expect("test");
        assert_eq!(
            lints_for(&sim_test),
            vec![
                LintId::AmbientTime,
                LintId::AmbientRng,
                LintId::DefaultHasher,
            ]
        );
        let sim_example = classify("crates/workloads/examples/calibrate.rs").expect("example");
        assert_eq!(
            lints_for(&sim_example),
            vec![
                LintId::AmbientTime,
                LintId::AmbientRng,
                LintId::DefaultHasher,
            ]
        );
        // Non-sim tests (serve, the lint crate's own fixtures): nothing
        // applies — intentionally-bad fixture files must not lint.
        let serve_test = classify("crates/serve/tests/integration.rs").expect("test");
        assert!(lints_for(&serve_test).is_empty());
        let fixture = classify("crates/lint/tests/fixtures/bad/ambient_time.rs").expect("fixture");
        assert!(fixture.is_test_file);
        assert!(lints_for(&fixture).is_empty());
    }

    #[test]
    fn v2_analyses_follow_the_table() {
        let serve = classify("crates/serve/src/queue.rs").expect("serve");
        let lints = lints_for(&serve);
        for lint in [
            LintId::LockOrder,
            LintId::BlockingUnderLock,
            LintId::SwallowedResult,
            LintId::UnboundedGrowth,
            LintId::TruncatingCast,
        ] {
            assert!(lints.contains(&lint), "serve should run {lint}");
        }

        let sim = classify("crates/cache/src/lru.rs").expect("sim");
        let lints = lints_for(&sim);
        assert!(lints.contains(&LintId::LockOrder));
        assert!(!lints.contains(&LintId::UnboundedGrowth));
        assert!(!lints.contains(&LintId::TruncatingCast));

        let exp = classify("crates/experiments/src/sweep.rs").expect("experiments");
        let lints = lints_for(&exp);
        assert!(lints.contains(&LintId::UnboundedGrowth));
        assert!(lints.contains(&LintId::TruncatingCast));
    }
}
