//! Extension/ablation: direct-mapped + victim cache versus real
//! set-associativity.
//!
//! §3 of the paper argues the direct-mapped cache is the right baseline
//! because its hit path is a bare RAM access, and victim caching is a way
//! to "have our cake and eat it too": associativity's miss-rate benefit
//! without its hit-time cost. This ablation quantifies the claim the
//! argument rests on — how close a small victim cache gets a
//! direct-mapped cache's *miss rate* to a genuinely set-associative
//! cache of the same capacity.

use jouppi_cache::{CacheGeometry, LruSweep};
use jouppi_core::AugmentedConfig;
use jouppi_report::{rate, Table};
use jouppi_workloads::Benchmark;

use crate::common::{average, per_benchmark, run_side, ExperimentConfig, Side};
use crate::sweep;

/// One benchmark's data-side miss rates under each organization.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AssocRow {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// Bare direct-mapped.
    pub direct: f64,
    /// Direct-mapped + 1-entry victim cache.
    pub vc1: f64,
    /// Direct-mapped + 4-entry victim cache.
    pub vc4: f64,
    /// 2-way set-associative (LRU).
    pub two_way: f64,
    /// 4-way set-associative (LRU).
    pub four_way: f64,
}

/// Results of the associativity ablation (4KB data caches, 16B lines).
#[derive(Clone, Debug, PartialEq)]
pub struct ExtAssociativity {
    /// One row per benchmark.
    pub rows: Vec<AssocRow>,
}

/// Runs the ablation.
///
/// The three *pure* LRU columns (direct, 2-way, 4-way) come from one
/// set-refined [`LruSweep`] pass over the 4KB geometries' set counts —
/// bit-identical rates to the replaced per-cell simulations (same miss
/// counts over the same denominator, pinned by the
/// `single_pass_matches_per_cell_simulation` test). The victim-cache
/// columns are augmented organizations, which the single-pass engine
/// cannot express; they stay on [`run_side`]'s simulator.
pub fn run(cfg: &ExperimentConfig) -> ExtAssociativity {
    let dm = CacheGeometry::direct_mapped(4096, 16).expect("valid");
    let geoms = [
        dm,
        CacheGeometry::new(4096, 16, 2).expect("valid"),
        CacheGeometry::new(4096, 16, 4).expect("valid"),
    ];
    let cells: Vec<(u64, u64)> = geoms
        .iter()
        .map(|g| (g.num_sets(), g.associativity()))
        .collect();
    let rows = per_benchmark(cfg, |b, trace| {
        let lines = Side::Data
            .view(trace)
            .lines_for(16)
            .expect("16B lines are pre-derived for the baseline line size");
        let mut pure = LruSweep::bounded(&cells).expect("valid cells");
        for &line in lines {
            pure.observe(line);
        }
        sweep::note_single_pass_refs(lines.len() as u64);
        let pure_rate = |geom: &CacheGeometry| pure.miss_rate_for_geometry(geom).expect("tracked");
        let miss_rate = |aug: AugmentedConfig| {
            let s = run_side(trace, Side::Data, aug);
            s.demand_miss_rate()
        };
        AssocRow {
            benchmark: b,
            direct: pure_rate(&geoms[0]),
            vc1: miss_rate(AugmentedConfig::new(dm).victim_cache(1)),
            vc4: miss_rate(AugmentedConfig::new(dm).victim_cache(4)),
            two_way: pure_rate(&geoms[1]),
            four_way: pure_rate(&geoms[2]),
        }
    })
    .into_iter()
    .map(|(_, r)| r)
    .collect();
    ExtAssociativity { rows }
}

impl ExtAssociativity {
    /// Average miss rates `(direct, vc1, vc4, 2-way, 4-way)`.
    pub fn averages(&self) -> (f64, f64, f64, f64, f64) {
        let pick = |f: fn(&AssocRow) -> f64| average(&self.rows.iter().map(f).collect::<Vec<_>>());
        (
            pick(|r| r.direct),
            pick(|r| r.vc1),
            pick(|r| r.vc4),
            pick(|r| r.two_way),
            pick(|r| r.four_way),
        )
    }

    /// How much of the direct-mapped→2-way miss-rate gap a 4-entry victim
    /// cache closes, on average (1.0 = all of it).
    pub fn gap_closed_by_vc4(&self) -> f64 {
        let per_bench: Vec<f64> = self
            .rows
            .iter()
            .filter(|r| r.direct > r.two_way)
            .map(|r| (r.direct - r.vc4) / (r.direct - r.two_way))
            .collect();
        average(&per_bench)
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut t = Table::new(["program", "direct", "+VC(1)", "+VC(4)", "2-way", "4-way"]);
        for r in &self.rows {
            t.row([
                r.benchmark.name().to_owned(),
                rate(r.direct),
                rate(r.vc1),
                rate(r.vc4),
                rate(r.two_way),
                rate(r.four_way),
            ]);
        }
        let (d, v1, v4, s2, s4) = self.averages();
        t.row([
            "average".to_owned(),
            rate(d),
            rate(v1),
            rate(v4),
            rate(s2),
            rate(s4),
        ]);
        format!(
            "Ablation: DM + victim cache vs set-associativity (4KB D-cache, 16B lines)\n{}\
             \n4-entry VC closes {:.0}% of the DM→2-way miss-rate gap on average\n\
             (without adding associativity's hit-time cost — §3's argument)\n",
            t.render(),
            100.0 * self.gap_closed_by_vc4()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn victim_cache_approaches_two_way_miss_rates() {
        let cfg = ExperimentConfig::with_scale(60_000);
        let e = run(&cfg);
        let (d, _, v4, s2, s4) = e.averages();
        assert!(s2 <= d, "2-way should not miss more than DM on average");
        assert!(s4 <= s2 + 1e-9);
        assert!(v4 < d, "VC(4) must improve on bare DM");
        // The headline: a 4-entry VC recovers a solid majority of the gap.
        let closed = e.gap_closed_by_vc4();
        assert!(closed > 0.5, "gap closed only {closed}");
        assert!(e.render().contains("2-way"));
    }

    #[test]
    fn single_pass_matches_per_cell_simulation() {
        // The pure columns' rates must be bit-identical to what the
        // demoted per-cell simulator computes for the same geometries.
        let cfg = ExperimentConfig::with_scale(20_000);
        let e = run(&cfg);
        let oracle = per_benchmark(&cfg, |_, trace| {
            let miss_rate =
                |geom| run_side(trace, Side::Data, AugmentedConfig::new(geom)).demand_miss_rate();
            (
                miss_rate(CacheGeometry::direct_mapped(4096, 16).unwrap()),
                miss_rate(CacheGeometry::new(4096, 16, 2).unwrap()),
                miss_rate(CacheGeometry::new(4096, 16, 4).unwrap()),
            )
        });
        for (row, (b, (direct, two_way, four_way))) in e.rows.iter().zip(oracle) {
            assert_eq!(row.direct, direct, "{b} direct");
            assert_eq!(row.two_way, two_way, "{b} 2-way");
            assert_eq!(row.four_way, four_way, "{b} 4-way");
        }
    }

    #[test]
    fn per_benchmark_vc_is_monotone() {
        let cfg = ExperimentConfig::with_scale(30_000);
        let e = run(&cfg);
        for r in &e.rows {
            assert!(r.vc1 <= r.direct + 1e-12, "{:?}", r);
            assert!(r.vc4 <= r.vc1 + 1e-12, "{:?}", r);
        }
    }
}
