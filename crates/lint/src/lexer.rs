//! A hand-rolled Rust lexer, just deep enough for linting.
//!
//! The lints in this crate match *token* patterns (`Instant`, `.unwrap()`,
//! `HashMap<…>`), so the lexer's one job is to produce an honest token
//! stream: identifiers and punctuation with line numbers, with every kind
//! of literal and comment recognized and set aside. That is what keeps
//! the checker from being fooled by `"Instant::now()"` inside a string,
//! `unwrap` in a doc example, or a `panic!` spelled out in a comment.
//!
//! Handled: line and (nested) block comments, doc comments, string
//! literals with escapes, raw strings with any number of `#`s, byte and
//! C-string variants (`b"…"`, `br#"…"#`, `c"…"`, `cr"…"`), byte and char
//! literals, lifetimes vs. char literals, and numeric literals including
//! decimal exponents. Everything else is an identifier or a one-character
//! punctuation token.

/// What a token is; literal payloads are deliberately discarded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword, e.g. `unwrap`, `fn`, `HashMap`.
    Ident(String),
    /// A single punctuation character, e.g. `.` `!` `<` `:`.
    Punct(char),
    /// Any string, raw-string, byte-string, char, or byte literal.
    Literal,
    /// A numeric literal.
    Num,
    /// A lifetime such as `'a` (distinct from a char literal).
    Lifetime,
}

/// One lexed token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// The token's kind (and identifier text, when an identifier).
    pub kind: TokKind,
    /// 1-based source line the token starts on.
    pub line: u32,
    /// Byte offset of the token's first character (used to detect
    /// adjacency, e.g. telling the `>` of `->` from a generic close).
    pub pos: usize,
}

impl Token {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// Whether this token is the given punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

/// A comment, kept separate from the token stream (suppression
/// directives live in comments).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Comment text including the `//` / `/*` introducer.
    pub text: String,
    /// Whether only whitespace precedes the comment on its line (a
    /// "standalone" comment; directives in one apply to the next line
    /// of code rather than their own line).
    pub owns_line: bool,
}

/// The result of lexing one source file.
#[derive(Clone, Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src` into tokens and comments. Never fails: malformed input
/// (e.g. an unterminated string) is consumed to end of file, which is
/// the most conservative behavior for a linter.
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<(usize, char)> = src.char_indices().collect();
    let n = chars.len();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    // True until the first non-whitespace character of the current line.
    let mut at_line_start = true;

    let at = |i: usize| -> Option<char> { chars.get(i).map(|&(_, c)| c) };

    while i < n {
        let (pos, c) = chars[i];
        match c {
            '\n' => {
                line += 1;
                at_line_start = true;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if at(i + 1) == Some('/') => {
                while i < n && chars[i].1 != '\n' {
                    i += 1;
                }
                let end = chars.get(i).map_or(src.len(), |&(p, _)| p);
                out.comments.push(Comment {
                    line,
                    text: src[pos..end].to_owned(),
                    owns_line: at_line_start,
                });
                at_line_start = false;
            }
            '/' if at(i + 1) == Some('*') => {
                let owns_line = at_line_start;
                let start_line = line;
                let start_pos = pos;
                let mut depth = 1;
                i += 2;
                while i < n && depth > 0 {
                    match (chars[i].1, at(i + 1)) {
                        ('/', Some('*')) => {
                            depth += 1;
                            i += 2;
                        }
                        ('*', Some('/')) => {
                            depth -= 1;
                            i += 2;
                        }
                        ('\n', _) => {
                            line += 1;
                            i += 1;
                        }
                        _ => i += 1,
                    }
                }
                let end = chars.get(i).map_or(src.len(), |&(p, _)| p);
                out.comments.push(Comment {
                    line: start_line,
                    text: src[start_pos..end].to_owned(),
                    owns_line,
                });
                at_line_start = false;
            }
            '"' => {
                out.tokens.push(Token {
                    kind: TokKind::Literal,
                    line,
                    pos,
                });
                i = consume_string(&chars, i + 1, &mut line);
                at_line_start = false;
            }
            '\'' => {
                // Lifetime (`'a`) vs. char literal (`'x'`, `'\n'`, `'_'`).
                let next = at(i + 1);
                let after = at(i + 2);
                let is_lifetime = next.is_some_and(is_ident_start) && after != Some('\'');
                if is_lifetime {
                    i += 2;
                    while i < n && is_ident_continue(chars[i].1) {
                        i += 1;
                    }
                    out.tokens.push(Token {
                        kind: TokKind::Lifetime,
                        line,
                        pos,
                    });
                } else {
                    out.tokens.push(Token {
                        kind: TokKind::Literal,
                        line,
                        pos,
                    });
                    i += 1;
                    while i < n {
                        match chars[i].1 {
                            '\\' => i += 2,
                            '\'' => {
                                i += 1;
                                break;
                            }
                            '\n' => {
                                // Unterminated char literal; stop at EOL.
                                break;
                            }
                            _ => i += 1,
                        }
                    }
                }
                at_line_start = false;
            }
            c if c.is_ascii_digit() => {
                out.tokens.push(Token {
                    kind: TokKind::Num,
                    line,
                    pos,
                });
                i = consume_number(&chars, i);
                at_line_start = false;
            }
            c if is_ident_start(c) => {
                let start = i;
                while i < n && is_ident_continue(chars[i].1) {
                    i += 1;
                }
                let word: String = chars[start..i].iter().map(|&(_, c)| c).collect();
                let next = at(i);
                let raw_intro = matches!(word.as_str(), "r" | "br" | "cr")
                    && matches!(next, Some('"') | Some('#'));
                let plain_intro = matches!(word.as_str(), "b" | "c") && next == Some('"');
                let byte_char = word == "b" && next == Some('\'');
                if raw_intro && raw_string_follows(&chars, i) {
                    out.tokens.push(Token {
                        kind: TokKind::Literal,
                        line,
                        pos,
                    });
                    i = consume_raw_string(&chars, i, &mut line);
                } else if plain_intro {
                    out.tokens.push(Token {
                        kind: TokKind::Literal,
                        line,
                        pos,
                    });
                    i = consume_string(&chars, i + 1, &mut line);
                } else if byte_char {
                    out.tokens.push(Token {
                        kind: TokKind::Literal,
                        line,
                        pos,
                    });
                    i += 1; // opening quote
                    while i < n {
                        match chars[i].1 {
                            '\\' => i += 2,
                            '\'' => {
                                i += 1;
                                break;
                            }
                            '\n' => break,
                            _ => i += 1,
                        }
                    }
                } else {
                    out.tokens.push(Token {
                        kind: TokKind::Ident(word),
                        line,
                        pos,
                    });
                }
                at_line_start = false;
            }
            other => {
                out.tokens.push(Token {
                    kind: TokKind::Punct(other),
                    line,
                    pos,
                });
                i += 1;
                at_line_start = false;
            }
        }
    }
    out
}

/// Consumes a non-raw string body starting just past the opening `"`;
/// returns the index past the closing quote. Tracks embedded newlines.
fn consume_string(chars: &[(usize, char)], mut i: usize, line: &mut u32) -> usize {
    while i < chars.len() {
        match chars[i].1 {
            '\\' => i += 2,
            '"' => return i + 1,
            '\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Whether `#*` followed by `"` starts at `i` (after an `r`/`br`/`cr`
/// introducer) — distinguishes `r"…"` / `r#"…"#` from `r#raw_ident`.
fn raw_string_follows(chars: &[(usize, char)], mut i: usize) -> bool {
    while i < chars.len() && chars[i].1 == '#' {
        i += 1;
    }
    i < chars.len() && chars[i].1 == '"'
}

/// Consumes a raw string starting at the `#`s/quote after the introducer;
/// returns the index past the closing delimiter.
fn consume_raw_string(chars: &[(usize, char)], mut i: usize, line: &mut u32) -> usize {
    let mut hashes = 0usize;
    while i < chars.len() && chars[i].1 == '#' {
        hashes += 1;
        i += 1;
    }
    i += 1; // opening quote (guaranteed by raw_string_follows)
    while i < chars.len() {
        match chars[i].1 {
            '\n' => {
                *line += 1;
                i += 1;
            }
            '"' => {
                let mut j = i + 1;
                let mut seen = 0usize;
                while seen < hashes && j < chars.len() && chars[j].1 == '#' {
                    seen += 1;
                    j += 1;
                }
                if seen == hashes {
                    return j;
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Consumes a numeric literal starting at a digit; returns the index
/// past it. Handles `1_000`, `0xff`, `1.5`, `1e-5`, `2.5e+10`, suffixes
/// — and leaves range dots (`0..n`) alone.
fn consume_number(chars: &[(usize, char)], mut i: usize) -> usize {
    let start = i;
    let mut hex = false;
    if chars[i].1 == '0' {
        if let Some(&(_, c)) = chars.get(i + 1) {
            if c == 'x' || c == 'X' || c == 'o' || c == 'b' {
                hex = true;
            }
        }
    }
    let mut last = '0';
    while i < chars.len() {
        let c = chars[i].1;
        let digit_next = || chars.get(i + 1).is_some_and(|&(_, d)| d.is_ascii_digit());
        let continues = is_ident_continue(c)
            || (c == '.' && !hex && digit_next())
            || ((c == '+' || c == '-')
                && (last == 'e' || last == 'E')
                && !hex
                && i > start
                && digit_next());
        if !continues {
            break;
        }
        last = c;
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| t.ident().map(str::to_owned))
            .collect()
    }

    #[test]
    fn strings_hide_their_contents() {
        let src = r##"let s = "Instant::now()"; let r = r#"panic!("x")"#;"##;
        let ids = idents(src);
        assert_eq!(ids, ["let", "s", "let", "r"]);
    }

    #[test]
    fn comments_hide_their_contents_and_are_collected() {
        let src = "// Instant::now()\nlet x = 1; /* unwrap() /* nested */ still */\n";
        let lexed = lex(src);
        assert_eq!(
            lexed
                .tokens
                .iter()
                .filter_map(|t| t.ident())
                .collect::<Vec<_>>(),
            ["let", "x"]
        );
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[0].owns_line);
        assert!(!lexed.comments[1].owns_line);
        assert_eq!(lexed.comments[0].line, 1);
        assert_eq!(lexed.comments[1].line, 2);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) { let c = 'x'; let u = '_'; }";
        let lexed = lex(src);
        let lifetimes = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .count();
        let literals = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Literal)
            .count();
        assert_eq!(lifetimes, 2);
        assert_eq!(literals, 2);
    }

    #[test]
    fn escaped_quotes_and_char_escapes() {
        let src = r#"let a = "he said \"hi\""; let b = '\''; let c = '\u{1F600}';"#;
        assert_eq!(idents(src), ["let", "a", "let", "b", "let", "c"]);
    }

    #[test]
    fn byte_and_c_strings() {
        let src = r##"let a = b"bytes"; let b = br#"raw"#; let c = c"cstr"; let d = b'x';"##;
        assert_eq!(
            idents(src),
            ["let", "a", "let", "b", "let", "c", "let", "d"]
        );
    }

    #[test]
    fn raw_identifier_lookalike_is_an_ident() {
        // `r` followed by something that is not a string is an ident.
        let src = "let r = 1; r + 2";
        assert_eq!(idents(src), ["let", "r", "r"]);
    }

    #[test]
    fn numbers_do_not_eat_range_dots() {
        let src = "for i in 0..n { let x = 1.5e-3; let y = 0xff; }";
        let ids = idents(src);
        assert!(ids.contains(&"n".to_owned()));
        // `e` and `ff` must not appear as stray identifiers.
        assert!(!ids.contains(&"e".to_owned()));
        assert!(!ids.contains(&"ff".to_owned()));
    }

    #[test]
    fn line_numbers_survive_multiline_literals() {
        let src = "let a = \"two\nlines\";\nlet b = 1;";
        let lexed = lex(src);
        let b = lexed
            .tokens
            .iter()
            .find(|t| t.ident() == Some("b"))
            .expect("b token");
        assert_eq!(b.line, 3);
    }

    #[test]
    fn punct_positions_expose_adjacency() {
        let lexed = lex("a->b - >c");
        let puncts: Vec<(char, usize)> = lexed
            .tokens
            .iter()
            .filter_map(|t| match t.kind {
                TokKind::Punct(c) => Some((c, t.pos)),
                _ => None,
            })
            .collect();
        // `->` is adjacent; `- >` is not.
        assert_eq!(puncts[0].0, '-');
        assert_eq!(puncts[1].0, '>');
        assert_eq!(puncts[1].1, puncts[0].1 + 1);
        assert!(puncts[3].1 > puncts[2].1 + 1);
    }
}
