//! Tables 1-1, 2-1, and 2-2 of the paper.

use jouppi_report::{rate, Table};
use jouppi_workloads::Benchmark;

use crate::common::{baseline_l1, classify_side, per_benchmark, ExperimentConfig, Side};

/// One machine row of Table 1-1 ("the increasing cost of cache misses").
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MachineRow {
    /// Machine name.
    pub machine: &'static str,
    /// Average machine cycles per instruction.
    pub cycles_per_instr: f64,
    /// Processor cycle time in nanoseconds.
    pub cycle_time_ns: f64,
    /// Main-memory access time in nanoseconds.
    pub mem_time_ns: f64,
}

impl MachineRow {
    /// Miss cost in machine cycles: memory time over cycle time.
    pub fn miss_cost_cycles(&self) -> f64 {
        self.mem_time_ns / self.cycle_time_ns
    }

    /// Miss cost in instruction times: cycles over CPI.
    pub fn miss_cost_instr(&self) -> f64 {
        self.miss_cost_cycles() / self.cycles_per_instr
    }
}

/// Result of regenerating Table 1-1.
#[derive(Clone, Debug, PartialEq)]
pub struct Table11 {
    /// The three machines of the paper's table.
    pub rows: Vec<MachineRow>,
}

/// Regenerates Table 1-1 from the machine parameters the paper lists.
pub fn table_1_1() -> Table11 {
    Table11 {
        rows: vec![
            MachineRow {
                machine: "VAX 11/780",
                cycles_per_instr: 10.0,
                cycle_time_ns: 200.0,
                mem_time_ns: 1200.0,
            },
            MachineRow {
                machine: "WRL Titan",
                cycles_per_instr: 1.4,
                cycle_time_ns: 45.0,
                mem_time_ns: 540.0,
            },
            MachineRow {
                machine: "? (future)",
                cycles_per_instr: 0.5,
                cycle_time_ns: 4.0,
                mem_time_ns: 280.0,
            },
        ],
    }
}

impl Table11 {
    /// Renders the table with the derived miss-cost columns.
    pub fn render(&self) -> String {
        let mut t = Table::new([
            "machine",
            "cycles/instr",
            "cycle time (ns)",
            "mem time (ns)",
            "miss cost (cycles)",
            "miss cost (instr)",
        ]);
        for r in &self.rows {
            t.row([
                r.machine.to_owned(),
                format!("{:.1}", r.cycles_per_instr),
                format!("{:.1}", r.cycle_time_ns),
                format!("{:.0}", r.mem_time_ns),
                format!("{:.0}", r.miss_cost_cycles()),
                format!("{:.1}", r.miss_cost_instr()),
            ]);
        }
        format!("Table 1-1: the increasing cost of cache misses\n{t}")
    }
}

/// One benchmark row of the regenerated Table 2-1.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Table21Row {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// Dynamic instructions generated.
    pub dynamic_instr: u64,
    /// Data references generated.
    pub data_refs: u64,
    /// Total references generated.
    pub total_refs: u64,
    /// Distinct instruction bytes touched (16B granularity).
    pub instr_footprint: u64,
    /// Distinct data bytes touched (16B granularity).
    pub data_footprint: u64,
}

/// Result of regenerating Table 2-1 (test program characteristics).
#[derive(Clone, Debug, PartialEq)]
pub struct Table21 {
    /// One row per benchmark.
    pub rows: Vec<Table21Row>,
}

/// Regenerates Table 2-1 by generating and measuring each trace.
pub fn table_2_1(cfg: &ExperimentConfig) -> Table21 {
    let rows = per_benchmark(cfg, |b, trace| {
        let s = trace.stats();
        let mut fp = jouppi_trace::Footprint::new(16);
        fp.observe_all(trace.as_slice().iter().copied());
        Table21Row {
            benchmark: b,
            dynamic_instr: s.instruction_refs,
            data_refs: s.data_refs(),
            total_refs: s.total_refs(),
            instr_footprint: fp.instr_bytes(),
            data_footprint: fp.data_bytes(),
        }
    })
    .into_iter()
    .map(|(_, r)| r)
    .collect();
    Table21 { rows }
}

impl Table21 {
    /// Renders the table, with the paper's (millions-scale) counts beside
    /// the synthetic trace's counts.
    pub fn render(&self) -> String {
        let mut t = Table::new([
            "program",
            "dyn. instr",
            "data refs",
            "total refs",
            "data/instr",
            "paper d/i",
            "code KB",
            "data KB",
            "type",
        ]);
        for r in &self.rows {
            let row = r.benchmark.paper_row();
            t.row([
                r.benchmark.name().to_owned(),
                r.dynamic_instr.to_string(),
                r.data_refs.to_string(),
                r.total_refs.to_string(),
                format!("{:.3}", r.data_refs as f64 / r.dynamic_instr as f64),
                format!("{:.3}", r.benchmark.data_per_instr()),
                (r.instr_footprint / 1024).to_string(),
                (r.data_footprint / 1024).to_string(),
                row.program_type.to_owned(),
            ]);
        }
        format!("Table 2-1: test program characteristics (synthetic traces)\n{t}")
    }
}

/// One row of the regenerated Table 2-2.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Table22Row {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// Measured baseline instruction-cache miss rate.
    pub instr_miss_rate: f64,
    /// Measured baseline data-cache miss rate.
    pub data_miss_rate: f64,
}

/// Result of regenerating Table 2-2 (baseline first-level miss rates).
#[derive(Clone, Debug, PartialEq)]
pub struct Table22 {
    /// One row per benchmark.
    pub rows: Vec<Table22Row>,
}

/// Regenerates Table 2-2: baseline 4KB/16B direct-mapped miss rates.
pub fn table_2_2(cfg: &ExperimentConfig) -> Table22 {
    let geom = baseline_l1();
    let rows = per_benchmark(cfg, |b, trace| {
        let (i_misses, _) = classify_side(trace, Side::Instruction, geom);
        let (d_misses, _) = classify_side(trace, Side::Data, geom);
        let s = trace.stats();
        Table22Row {
            benchmark: b,
            instr_miss_rate: i_misses as f64 / s.instruction_refs.max(1) as f64,
            data_miss_rate: d_misses as f64 / s.data_refs().max(1) as f64,
        }
    })
    .into_iter()
    .map(|(_, r)| r)
    .collect();
    Table22 { rows }
}

impl Table22 {
    /// Renders measured-vs-paper miss rates.
    pub fn render(&self) -> String {
        let mut t = Table::new([
            "program",
            "I-miss (ours)",
            "I-miss (paper)",
            "D-miss (ours)",
            "D-miss (paper)",
        ]);
        for r in &self.rows {
            let p = r.benchmark.paper_row();
            t.row([
                r.benchmark.name().to_owned(),
                rate(r.instr_miss_rate),
                rate(p.baseline_instr_miss_rate),
                rate(r.data_miss_rate),
                rate(p.baseline_data_miss_rate),
            ]);
        }
        format!("Table 2-2: baseline system first-level cache miss rates\n{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_1_1_matches_paper_numbers() {
        let t = table_1_1();
        assert_eq!(t.rows.len(), 3);
        let vax = &t.rows[0];
        assert!((vax.miss_cost_cycles() - 6.0).abs() < 0.01);
        assert!((vax.miss_cost_instr() - 0.6).abs() < 0.01);
        let titan = &t.rows[1];
        assert!((titan.miss_cost_cycles() - 12.0).abs() < 0.01);
        assert!((titan.miss_cost_instr() - 8.57).abs() < 0.01);
        let future = &t.rows[2];
        assert!((future.miss_cost_cycles() - 70.0).abs() < 0.01);
        assert!((future.miss_cost_instr() - 140.0).abs() < 0.01);
        assert!(t.render().contains("VAX 11/780"));
    }

    #[test]
    fn table_2_1_counts_are_consistent() {
        let cfg = ExperimentConfig::with_scale(5_000);
        let t = table_2_1(&cfg);
        assert_eq!(t.rows.len(), 6);
        for r in &t.rows {
            assert_eq!(r.total_refs, r.dynamic_instr + r.data_refs);
            assert_eq!(r.dynamic_instr, 5_000);
            assert!(r.data_footprint > 0, "{}: no data footprint", r.benchmark);
        }
        assert!(t.render().contains("linpack"));
    }

    #[test]
    fn table_2_2_rates_are_plausible() {
        let cfg = ExperimentConfig::with_scale(60_000);
        let t = table_2_2(&cfg);
        for r in &t.rows {
            assert!(r.instr_miss_rate < 0.3, "{}", r.benchmark);
            assert!(r.data_miss_rate < 0.5, "{}", r.benchmark);
        }
        // Numeric codes have near-zero instruction miss rates.
        let linpack = t.rows.iter().find(|r| r.benchmark == Benchmark::Linpack);
        assert!(linpack.unwrap().instr_miss_rate < 0.01);
        assert!(t.render().contains("paper"));
    }
}
