//! Figures 3-6 and 3-7: victim-cache effectiveness as the data cache's
//! size or line size varies.

use jouppi_cache::CacheGeometry;
use jouppi_core::AugmentedConfig;
use jouppi_report::{Chart, Series, Table};

use crate::common::{
    average, classify_side, pct_of_conflicts_removed, per_benchmark, run_side, ExperimentConfig,
    Side,
};

/// Which geometry dimension a sweep varies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GeometryAxis {
    /// Vary total data-cache size (Figure 3-6), 16B lines.
    CacheSize,
    /// Vary line size at 4KB (Figure 3-7).
    LineSize,
}

/// Victim-cache entry counts the paper plots.
pub const VC_ENTRIES: [usize; 4] = [1, 2, 4, 15];

/// A victim-cache geometry sweep (data side, averaged over benchmarks).
#[derive(Clone, Debug, PartialEq)]
pub struct VictimGeometrySweep {
    /// Which axis varies.
    pub axis: GeometryAxis,
    /// Axis values in bytes (cache sizes or line sizes).
    pub points: Vec<u64>,
    /// `removed[e][p]` = average % of conflict misses removed with
    /// `VC_ENTRIES[e]` entries at axis point `p`.
    pub removed: Vec<Vec<f64>>,
    /// Average % of all misses that are conflict misses at each point
    /// (the reference line in the paper's figures).
    pub conflict_pct: Vec<f64>,
}

fn geometry(axis: GeometryAxis, point: u64) -> CacheGeometry {
    let (size, line) = match axis {
        GeometryAxis::CacheSize => (point, 16),
        GeometryAxis::LineSize => (4096, point),
    };
    CacheGeometry::direct_mapped(size, line).expect("sweep geometry is valid")
}

/// Chart x-coordinate for an axis point: log2 of KB for cache sizes
/// (0 = 1KB), log2 of bytes for line sizes.
pub(crate) fn axis_chart_coord(axis: GeometryAxis, point: u64) -> f64 {
    match axis {
        GeometryAxis::CacheSize => (point as f64 / 1024.0).log2(),
        GeometryAxis::LineSize => (point as f64).log2(),
    }
}

/// Runs the sweep over the given axis points.
pub fn run(cfg: &ExperimentConfig, axis: GeometryAxis, points: &[u64]) -> VictimGeometrySweep {
    // Accumulate per-benchmark percentages, then average.
    let mut removed_acc = vec![vec![Vec::new(); points.len()]; VC_ENTRIES.len()];
    let mut conflict_acc = vec![Vec::new(); points.len()];
    per_benchmark(cfg, |_, trace| {
        for (p, &point) in points.iter().enumerate() {
            let geom = geometry(axis, point);
            let (misses, breakdown) = classify_side(trace, Side::Data, geom);
            conflict_acc[p].push(if misses == 0 {
                0.0
            } else {
                100.0 * breakdown.conflict as f64 / misses as f64
            });
            for (e, &entries) in VC_ENTRIES.iter().enumerate() {
                let stats = run_side(
                    trace,
                    Side::Data,
                    AugmentedConfig::new(geom).victim_cache(entries),
                );
                removed_acc[e][p].push(pct_of_conflicts_removed(
                    stats.removed_misses(),
                    breakdown.conflict,
                ));
            }
        }
    });
    VictimGeometrySweep {
        axis,
        points: points.to_vec(),
        removed: removed_acc
            .into_iter()
            .map(|per_point| per_point.iter().map(|v| average(v)).collect())
            .collect(),
        conflict_pct: conflict_acc.iter().map(|v| average(v)).collect(),
    }
}

/// The paper's Figure 3-6 axis: 1KB through 128KB.
pub fn cache_size_points() -> Vec<u64> {
    (0..8).map(|i| 1024u64 << i).collect()
}

/// The paper's Figure 3-7 axis: 8B through 256B lines.
pub fn line_size_points() -> Vec<u64> {
    (3..=8).map(|i| 1u64 << i).collect()
}

impl VictimGeometrySweep {
    /// Average % removed for a given entry count and axis point.
    pub fn removed_at(&self, entries: usize, point: u64) -> f64 {
        let e = VC_ENTRIES.iter().position(|&x| x == entries);
        let p = self.points.iter().position(|&x| x == point);
        match (e, p) {
            (Some(e), Some(p)) => self.removed[e][p],
            _ => 0.0,
        }
    }

    /// Renders table plus chart.
    pub fn render(&self) -> String {
        let (fig, axis_name) = match self.axis {
            GeometryAxis::CacheSize => ("Figure 3-6", "cache size (KB)"),
            GeometryAxis::LineSize => ("Figure 3-7", "line size (B)"),
        };
        let mut header: Vec<String> = vec![axis_name.into()];
        header.extend(VC_ENTRIES.iter().map(|e| format!("{e}-entry VC")));
        header.push("% conflict misses".into());
        let mut t = Table::new(header);
        for (p, &point) in self.points.iter().enumerate() {
            let label = match self.axis {
                GeometryAxis::CacheSize => format!("{}", point / 1024),
                GeometryAxis::LineSize => format!("{point}"),
            };
            let mut row = vec![label];
            row.extend((0..VC_ENTRIES.len()).map(|e| format!("{:.0}", self.removed[e][p])));
            row.push(format!("{:.0}", self.conflict_pct[p]));
            t.row(row);
        }
        let mut chart = Chart::new(
            format!("{fig}: % data conflict misses removed vs {axis_name}"),
            60,
            16,
        )
        .y_range(0.0, 100.0);
        let markers = ['1', '2', '4', 'F'];
        for (e, &entries) in VC_ENTRIES.iter().enumerate() {
            let pts = self
                .points
                .iter()
                .enumerate()
                .map(|(p, &x)| (axis_chart_coord(self.axis, x), self.removed[e][p]))
                .collect();
            chart = chart.series(Series::new(
                format!("{entries}-entry victim cache"),
                markers[e],
                pts,
            ));
        }
        format!("{fig}\n{}\n{}", t.render(), chart.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_caches_benefit_most_from_victim_caching() {
        let cfg = ExperimentConfig::with_scale(50_000);
        let sweep = run(&cfg, GeometryAxis::CacheSize, &[1024, 4096, 32 << 10]);
        // Paper: "In general smaller direct-mapped caches benefit the most
        // from the addition of a victim cache."
        let small = sweep.removed_at(4, 1024);
        let large = sweep.removed_at(4, 32 << 10);
        assert!(
            small >= large - 10.0,
            "4-entry VC: 1KB {small} should (roughly) exceed 32KB {large}"
        );
        assert!(sweep.render().contains("Figure 3-6"));
    }

    #[test]
    fn bigger_victim_caches_remove_more() {
        let cfg = ExperimentConfig::with_scale(40_000);
        let sweep = run(&cfg, GeometryAxis::CacheSize, &[4096]);
        let one = sweep.removed_at(1, 4096);
        let four = sweep.removed_at(4, 4096);
        let fifteen = sweep.removed_at(15, 4096);
        assert!(one <= four + 1e-9 && four <= fifteen + 1e-9);
        assert!(fifteen > 0.0);
    }

    #[test]
    fn line_size_sweep_reports_conflict_growth() {
        let cfg = ExperimentConfig::with_scale(40_000);
        let sweep = run(&cfg, GeometryAxis::LineSize, &[16, 128]);
        // Paper: "as the line size increases, the number of conflict
        // misses also increases."
        assert!(
            sweep.conflict_pct[1] > sweep.conflict_pct[0] * 0.7,
            "conflict % at 128B ({}) vs 16B ({})",
            sweep.conflict_pct[1],
            sweep.conflict_pct[0]
        );
        assert!(sweep.render().contains("Figure 3-7"));
    }

    #[test]
    fn axis_point_helpers() {
        assert_eq!(
            cache_size_points(),
            vec![1024, 2048, 4096, 8192, 16384, 32768, 65536, 131072]
        );
        assert_eq!(line_size_points(), vec![8, 16, 32, 64, 128, 256]);
        let cfg = ExperimentConfig::with_scale(10_000);
        let sweep = run(&cfg, GeometryAxis::CacheSize, &[4096]);
        assert_eq!(sweep.removed_at(3, 4096), 0.0); // unknown entry count
        assert_eq!(sweep.removed_at(4, 9999), 0.0); // unknown point
    }
}
