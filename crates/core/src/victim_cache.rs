//! The victim cache of §3.2.

use jouppi_cache::ReplacementPolicy;
use jouppi_trace::LineAddr;

/// A small fully-associative cache loaded with the **victim** of each
/// first-level replacement rather than the requested line (§3.2).
///
/// With victim caching no line is ever resident in both the direct-mapped
/// cache and the victim cache: the victim cache holds only lines thrown out
/// of the upper cache, and on a victim-cache hit the two lines swap places.
/// This doubles the number of tight conflicts that can be captured compared
/// to a [miss cache](crate::MissCache) of the same size, and makes even a
/// one-entry victim cache useful.
///
/// The paper's victim caches replace LRU; FIFO and random replacement are
/// supported for ablations ([`VictimCache::with_policy`]). Storage is a
/// small linear array searched in full — exactly what the hardware's
/// parallel comparators do, and efficient at the 1-16 entries studied.
///
/// # Examples
///
/// ```
/// use jouppi_core::VictimCache;
/// use jouppi_trace::LineAddr;
///
/// let mut vc = VictimCache::new(1);
/// let (a, b) = (LineAddr::new(0), LineAddr::new(256));
/// // `b` misses and evicts `a` from the upper cache; `a` becomes the victim.
/// vc.insert_victim(a);
/// // The next reference to `a` misses in the upper cache but hits here and
/// // swaps with the new victim `b`:
/// assert!(vc.probe_swap(a, Some(b)));
/// assert!(vc.contains(b));
/// assert!(!vc.contains(a));
/// ```
#[derive(Clone, Debug)]
pub struct VictimCache {
    entries: Vec<Entry>,
    capacity: usize,
    policy: ReplacementPolicy,
    tick: u64,
    rng_state: u64,
}

#[derive(Clone, Copy, Debug)]
struct Entry {
    line: LineAddr,
    last_use: u64,
    inserted: u64,
}

impl VictimCache {
    /// Creates a victim cache with `entries` lines and LRU replacement
    /// (the paper studies 1-15 entries, recommending 1-5).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero.
    pub fn new(entries: usize) -> Self {
        VictimCache::with_policy(entries, ReplacementPolicy::Lru)
    }

    /// Creates a victim cache with an explicit replacement policy (for
    /// ablation studies; the paper uses LRU).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero.
    pub fn with_policy(entries: usize, policy: ReplacementPolicy) -> Self {
        assert!(entries > 0, "victim cache capacity must be nonzero");
        VictimCache {
            entries: Vec::with_capacity(entries),
            capacity: entries,
            policy,
            tick: 0,
            rng_state: 0x853c_49e6_748f_ea9b,
        }
    }

    /// Number of entries the victim cache can hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The replacement policy in use.
    pub fn policy(&self) -> ReplacementPolicy {
        self.policy
    }

    /// Number of currently valid entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no entries are valid.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Checks residency without updating recency (for overlap statistics
    /// and invariant checks).
    pub fn contains(&self, line: LineAddr) -> bool {
        self.entries.iter().any(|e| e.line == line)
    }

    /// Probes for `requested` on an upper-cache miss and performs the swap
    /// on a hit: `requested` leaves the victim cache (it moves into the
    /// upper cache) and `upper_victim` — the line it displaced there —
    /// takes its place as the most-recently-used entry.
    ///
    /// Returns `true` on a victim-cache hit. On a miss nothing changes;
    /// call [`VictimCache::insert_victim`] with the line evicted by the
    /// off-chip refill instead.
    pub fn probe_swap(&mut self, requested: LineAddr, upper_victim: Option<LineAddr>) -> bool {
        let Some(idx) = self.entries.iter().position(|e| e.line == requested) else {
            return false;
        };
        self.tick += 1;
        match upper_victim {
            Some(victim) => {
                debug_assert_ne!(
                    victim, requested,
                    "a line cannot be its own conflict victim"
                );
                // Under correct composition the upper cache's victim is
                // never already resident here (exclusivity); tolerate the
                // case by refreshing the existing entry instead of
                // creating a duplicate.
                let already = self
                    .entries
                    .iter()
                    .position(|e| e.line == victim)
                    .filter(|&i| i != idx);
                if let Some(existing) = already {
                    self.entries[existing].last_use = self.tick;
                    self.entries[existing].inserted = self.tick;
                    self.entries.swap_remove(idx);
                } else {
                    self.entries[idx] = Entry {
                        line: victim,
                        last_use: self.tick,
                        inserted: self.tick,
                    };
                }
            }
            None => {
                self.entries.swap_remove(idx);
            }
        }
        true
    }

    /// Records the victim of an off-chip refill, replacing an entry chosen
    /// by the policy if full. Returns the displaced entry, if any.
    pub fn insert_victim(&mut self, victim: LineAddr) -> Option<LineAddr> {
        self.tick += 1;
        // The upper cache never holds duplicates, so a victim can only be
        // resident here if the composition is misused; keep the structure
        // consistent by refreshing it.
        if let Some(existing) = self.entries.iter_mut().find(|e| e.line == victim) {
            existing.last_use = self.tick;
            existing.inserted = self.tick;
            return None;
        }
        let entry = Entry {
            line: victim,
            last_use: self.tick,
            inserted: self.tick,
        };
        if self.entries.len() < self.capacity {
            self.entries.push(entry);
            return None;
        }
        let idx = match self.policy {
            ReplacementPolicy::Lru => self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_use)
                .map(|(i, _)| i)
                .expect("nonempty"),
            ReplacementPolicy::Fifo => self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.inserted)
                .map(|(i, _)| i)
                .expect("nonempty"),
            ReplacementPolicy::Random => {
                // xorshift64*: deterministic, dependency-free.
                let mut x = self.rng_state;
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                self.rng_state = x;
                (x.wrapping_mul(0x2545_f491_4f6c_dd1d) % self.capacity as u64) as usize
            }
        };
        let displaced = self.entries[idx].line;
        self.entries[idx] = entry;
        Some(displaced)
    }

    /// Iterates over the resident lines, most-recently used first.
    pub fn iter(&self) -> impl Iterator<Item = LineAddr> + '_ {
        let mut ordered: Vec<&Entry> = self.entries.iter().collect();
        ordered.sort_by_key(|e| std::cmp::Reverse(e.last_use));
        ordered.into_iter().map(|e| e.line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(n: u64) -> LineAddr {
        LineAddr::new(n)
    }

    #[test]
    fn one_entry_victim_cache_captures_tight_pair() {
        // The §3.2 motivating case: with one victim entry, the two
        // conflicting lines ping-pong between upper cache and victim cache.
        let mut vc = VictimCache::new(1);
        vc.insert_victim(l(1)); // b displaced a
        for _ in 0..10 {
            assert!(vc.probe_swap(l(1), Some(l(2))));
            assert!(vc.probe_swap(l(2), Some(l(1))));
        }
    }

    #[test]
    fn probe_miss_leaves_state_unchanged() {
        let mut vc = VictimCache::new(2);
        vc.insert_victim(l(5));
        assert!(!vc.probe_swap(l(9), Some(l(10))));
        assert!(vc.contains(l(5)));
        assert!(!vc.contains(l(10)));
        assert_eq!(vc.len(), 1);
    }

    #[test]
    fn swap_with_no_upper_victim() {
        let mut vc = VictimCache::new(2);
        vc.insert_victim(l(1));
        assert!(vc.probe_swap(l(1), None));
        assert!(vc.is_empty());
    }

    #[test]
    fn insert_victim_evicts_lru() {
        let mut vc = VictimCache::new(2);
        vc.insert_victim(l(1));
        vc.insert_victim(l(2));
        assert_eq!(vc.insert_victim(l(3)), Some(l(1)));
        assert_eq!(vc.len(), 2);
        assert_eq!(vc.capacity(), 2);
    }

    #[test]
    fn hit_line_is_removed_not_duplicated() {
        let mut vc = VictimCache::new(4);
        vc.insert_victim(l(1));
        vc.insert_victim(l(2));
        assert!(vc.probe_swap(l(1), Some(l(3))));
        let resident: Vec<_> = vc.iter().collect();
        assert_eq!(resident, vec![l(3), l(2)]);
    }

    #[test]
    fn doubles_capturable_conflicts_vs_miss_cache() {
        // Loop body A0,A1 conflicts with procedure B0,B1 (two conflicting
        // sets); with a 2-entry victim cache the four lines fit: two in the
        // upper cache, two in the victim cache.
        let mut vc = VictimCache::new(2);
        vc.insert_victim(l(0)); // A0 displaced by B0
        vc.insert_victim(l(1)); // A1 displaced by B1
        let mut misses = 0;
        for _ in 0..10 {
            for (req, vic) in [(0u64, 100u64), (1, 101), (100, 0), (101, 1)] {
                if !vc.probe_swap(l(req), Some(l(vic))) {
                    misses += 1;
                }
            }
        }
        assert_eq!(misses, 0);
    }

    #[test]
    fn fifo_policy_ignores_swap_recency() {
        let mut vc = VictimCache::with_policy(2, ReplacementPolicy::Fifo);
        assert_eq!(vc.policy(), ReplacementPolicy::Fifo);
        vc.insert_victim(l(1));
        vc.insert_victim(l(2));
        // Under FIFO, 1 is oldest regardless of use.
        assert_eq!(vc.insert_victim(l(3)), Some(l(1)));
    }

    #[test]
    fn random_policy_is_deterministic_and_bounded() {
        let run = || {
            let mut vc = VictimCache::with_policy(4, ReplacementPolicy::Random);
            let mut evictions = Vec::new();
            for i in 0..50 {
                if let Some(e) = vc.insert_victim(l(i)) {
                    evictions.push(e.get());
                }
            }
            (vc.len(), evictions)
        };
        let (len_a, ev_a) = run();
        let (_len_b, ev_b) = run();
        assert_eq!(len_a, 4);
        assert_eq!(ev_a, ev_b, "random policy must be deterministic");
        assert_eq!(ev_a.len(), 46);
    }

    #[test]
    fn reinserting_resident_victim_refreshes_it() {
        let mut vc = VictimCache::new(2);
        vc.insert_victim(l(1));
        vc.insert_victim(l(2));
        assert_eq!(vc.insert_victim(l(1)), None); // refresh, not duplicate
        assert_eq!(vc.len(), 2);
        // 2 is now LRU.
        assert_eq!(vc.insert_victim(l(3)), Some(l(2)));
    }

    #[test]
    fn swap_with_already_resident_victim_does_not_duplicate() {
        let mut vc = VictimCache::new(4);
        vc.insert_victim(l(1));
        vc.insert_victim(l(2));
        // Misused composition: victim 2 is already resident.
        assert!(vc.probe_swap(l(1), Some(l(2))));
        assert!(!vc.contains(l(1)));
        assert!(vc.contains(l(2)));
        assert_eq!(vc.len(), 1, "no duplicate entries");
        // And the refreshed entry still swaps out cleanly.
        assert!(vc.probe_swap(l(2), Some(l(3))));
        assert!(!vc.contains(l(2)));
    }

    #[test]
    #[should_panic(expected = "capacity must be nonzero")]
    fn zero_capacity_panics() {
        let _ = VictimCache::new(0);
    }
}
