//! Trace sources: producers of memory-reference streams.

use crate::{MemRef, TraceStats};

/// A producer of a memory-reference stream.
///
/// `TraceSource` is the interface between workload generators and the
/// simulators: a source hands out a fresh iterator over its references each
/// time [`TraceSource::refs`] is called, so the same (deterministic, seeded)
/// trace can be replayed against many cache configurations — exactly how the
/// paper sweeps cache parameters over fixed traces.
///
/// The trait is object-safe; experiment drivers hold `Box<dyn TraceSource>`.
///
/// # Examples
///
/// ```
/// use jouppi_trace::{Addr, MemRef, RecordedTrace, TraceSource};
///
/// let trace = RecordedTrace::from_iter(vec![
///     MemRef::instr(Addr::new(0)),
///     MemRef::load(Addr::new(64)),
/// ]);
/// // Replays identically every time.
/// let first: Vec<_> = trace.refs().collect();
/// let second: Vec<_> = trace.refs().collect();
/// assert_eq!(first, second);
/// ```
pub trait TraceSource {
    /// Returns a fresh iterator over the trace, from the beginning.
    fn refs(&self) -> Box<dyn Iterator<Item = MemRef> + '_>;

    /// A short human-readable name for reports (e.g. `"ccom"`).
    fn name(&self) -> &str {
        "trace"
    }
}

/// An in-memory recorded trace, replayable any number of times.
///
/// Useful for tests and for capturing a generator's output once and
/// replaying it against many cache configurations without regenerating.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecordedTrace {
    name: String,
    refs: Vec<MemRef>,
}

impl RecordedTrace {
    /// Creates an empty trace with the default name.
    pub fn new() -> Self {
        RecordedTrace::default()
    }

    /// Creates a trace from recorded references.
    pub fn from_refs(name: impl Into<String>, refs: Vec<MemRef>) -> Self {
        RecordedTrace {
            name: name.into(),
            refs,
        }
    }

    /// Records everything a source produces.
    pub fn record(source: &dyn TraceSource) -> Self {
        RecordedTrace {
            name: source.name().to_owned(),
            refs: source.refs().collect(),
        }
    }

    /// Number of references in the trace.
    pub fn len(&self) -> usize {
        self.refs.len()
    }

    /// Returns `true` if the trace holds no references.
    pub fn is_empty(&self) -> bool {
        self.refs.is_empty()
    }

    /// The recorded references as a slice.
    pub fn as_slice(&self) -> &[MemRef] {
        &self.refs
    }

    /// Computes Table 2-1-style statistics for the trace.
    pub fn stats(&self) -> TraceStats {
        TraceStats::from_refs(self.refs.iter().copied())
    }
}

impl TraceSource for RecordedTrace {
    fn refs(&self) -> Box<dyn Iterator<Item = MemRef> + '_> {
        Box::new(self.refs.iter().copied())
    }

    fn name(&self) -> &str {
        &self.name
    }
}

impl FromIterator<MemRef> for RecordedTrace {
    fn from_iter<I: IntoIterator<Item = MemRef>>(iter: I) -> Self {
        RecordedTrace {
            name: String::from("recorded"),
            refs: iter.into_iter().collect(),
        }
    }
}

impl Extend<MemRef> for RecordedTrace {
    fn extend<I: IntoIterator<Item = MemRef>>(&mut self, iter: I) {
        self.refs.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Addr;

    fn sample() -> Vec<MemRef> {
        vec![
            MemRef::instr(Addr::new(0)),
            MemRef::instr(Addr::new(4)),
            MemRef::load(Addr::new(1024)),
            MemRef::store(Addr::new(1032)),
        ]
    }

    #[test]
    fn replay_is_deterministic() {
        let t = RecordedTrace::from_refs("t", sample());
        assert_eq!(t.refs().collect::<Vec<_>>(), t.refs().collect::<Vec<_>>());
        assert_eq!(t.len(), 4);
        assert!(!t.is_empty());
    }

    #[test]
    fn record_copies_source() {
        let t = RecordedTrace::from_refs("orig", sample());
        let copy = RecordedTrace::record(&t);
        assert_eq!(copy.name(), "orig");
        assert_eq!(copy.as_slice(), t.as_slice());
    }

    #[test]
    fn stats_match_contents() {
        let t = RecordedTrace::from_refs("t", sample());
        let s = t.stats();
        assert_eq!(s.instruction_refs, 2);
        assert_eq!(s.loads, 1);
        assert_eq!(s.stores, 1);
    }

    #[test]
    fn collect_and_extend() {
        let mut t: RecordedTrace = sample().into_iter().collect();
        assert_eq!(t.len(), 4);
        t.extend(sample());
        assert_eq!(t.len(), 8);
        assert_eq!(t.name(), "recorded");
    }

    #[test]
    fn empty_trace() {
        let t = RecordedTrace::new();
        assert!(t.is_empty());
        assert_eq!(t.stats().total_refs(), 0);
    }
}
