//! The request router: maps `(method, path)` to handlers.
//!
//! Every handler returns a [`Response`]; nothing here panics on bad
//! input — malformed bodies, unknown sweeps, and bogus job ids all
//! become 4xx documents. The returned endpoint label feeds the metrics
//! registry.

use std::sync::Arc;

use jouppi_experiments::common::refs_simulated;
use jouppi_experiments::sweep::{cells_executed, single_pass_refs};

use crate::http::{Request, Response};
use crate::json::Json;
use crate::metrics::Sampled;
use crate::queue::{Job, JobState, QueueFull};
use crate::result_cache::{content_key, Lookup, TryLookup};
use crate::server::Ctx;
use crate::sim;
use crate::sweeps::{self, DEFAULT_SWEEP_SCALE, NAMED_SWEEPS};

/// Response header reporting what the result cache did for a request.
const CACHE_HEADER: &str = "x-jouppi-cache";

/// Whether the request carries the per-request bypass knob
/// (`?cache=bypass` in the query string).
fn wants_bypass(req: &Request) -> bool {
    req.query()
        .is_some_and(|q| q.split('&').any(|kv| kv == "cache=bypass"))
}

/// Tags `resp` with the cache-observability header, when there is one
/// (cache mode `off` serves unheadered responses).
fn with_cache_note(resp: Response, note: Option<&'static str>) -> Response {
    match note {
        Some(note) => resp.header(CACHE_HEADER, note),
        None => resp,
    }
}

/// Routes one request, returning the metrics endpoint label and the
/// response to send.
pub(crate) fn route(ctx: &Ctx, req: &Request) -> (&'static str, Response) {
    match req.path() {
        "/healthz" => ("healthz", expect_get(req, healthz(ctx))),
        "/metrics" => ("metrics", expect_get(req, metrics(ctx))),
        "/v1/simulate" => ("simulate", expect_post(req, |r| simulate(ctx, r))),
        "/v1/sweep" => ("sweep", expect_post(req, |r| sweep(ctx, r))),
        path => match path.strip_prefix("/v1/jobs/") {
            Some(id) => ("jobs", expect_get(req, job_status(ctx, id))),
            None => ("other", Response::error(404, "no such endpoint")),
        },
    }
}

fn expect_get(req: &Request, resp: Response) -> Response {
    if req.method == "GET" {
        resp
    } else {
        Response::error(405, "use GET").header("Allow", "GET")
    }
}

fn expect_post(req: &Request, handler: impl FnOnce(&Request) -> Response) -> Response {
    if req.method == "POST" {
        handler(req)
    } else {
        Response::error(405, "use POST").header("Allow", "POST")
    }
}

fn healthz(ctx: &Ctx) -> Response {
    if ctx.is_shutting_down() {
        Response::text(503, "draining\n")
    } else {
        Response::text(200, "ok\n")
    }
}

fn metrics(ctx: &Ctx) -> Response {
    let queue = ctx.queue.stats();
    let cache = ctx.result_cache.counters();
    let sampled = Sampled {
        queue_depth: queue.depth,
        jobs_inflight: queue.running,
        jobs_completed: queue.completed,
        connections: ctx.open_connections(),
        refs_simulated: refs_simulated(),
        sweep_cells: cells_executed(),
        single_pass_refs: single_pass_refs(),
        refs_per_second: sweeps::last_sweep_refs_per_second(),
        result_cache_hits: cache.hits,
        result_cache_misses: cache.misses,
        result_cache_evictions: cache.evictions,
        result_cache_coalesced: cache.coalesced,
        result_cache_bytes: cache.bytes_resident,
    };
    let mut resp = Response::text(200, ctx.metrics.render(&sampled));
    resp.content_type = "text/plain; version=0.0.4; charset=utf-8";
    resp
}

fn parse_body(req: &Request) -> Result<Json, Response> {
    let text =
        std::str::from_utf8(&req.body).map_err(|_| Response::error(400, "body is not UTF-8"))?;
    Json::parse(text).map_err(|e| Response::error(400, format!("invalid JSON: {e}")))
}

fn simulate(ctx: &Ctx, req: &Request) -> Response {
    let body = match parse_body(req) {
        Ok(body) => body,
        Err(resp) => return resp,
    };
    // Simulations are bounded (`MAX_SIMULATE_SCALE`) and sub-second, so
    // the synchronous path can afford the *blocking* singleflight: a
    // thundering herd of identical POSTs parks here and costs exactly
    // one simulation.
    let key = content_key("simulate", &body);
    match ctx.result_cache.begin(key, wants_bypass(req)) {
        Lookup::Disabled => match sim::simulate(&body) {
            Ok(result) => Response::json(200, &result),
            Err(msg) => Response::error(400, msg),
        },
        Lookup::Bypass => match sim::simulate(&body) {
            Ok(result) => Response::json(200, &result).header(CACHE_HEADER, "bypass"),
            Err(msg) => Response::error(400, msg),
        },
        Lookup::Hit(doc) => Response::json(200, &doc).header(CACHE_HEADER, "hit"),
        Lookup::Coalesced(doc) => Response::json(200, &doc).header(CACHE_HEADER, "coalesced"),
        Lookup::Miss(leader) => match sim::simulate(&body) {
            Ok(result) => {
                let doc = Arc::new(result);
                leader.complete(&doc);
                Response::json(200, &doc).header(CACHE_HEADER, "miss")
            }
            Err(msg) => {
                // Errors are never cached: waiters re-elect and fail on
                // their own (each gets its own 400).
                leader.abandon();
                Response::error(400, msg)
            }
        },
    }
}

fn sweep(ctx: &Ctx, req: &Request) -> Response {
    let body = match parse_body(req) {
        Ok(body) => body,
        Err(resp) => return resp,
    };
    let Some(name) = body.get("sweep").and_then(Json::as_str) else {
        return Response::error(
            400,
            format!(
                "'sweep' is required; known sweeps: {}",
                NAMED_SWEEPS.join(", ")
            ),
        );
    };
    if !NAMED_SWEEPS.contains(&name) {
        return Response::error(
            400,
            format!(
                "unknown sweep '{name}'; known sweeps: {}",
                NAMED_SWEEPS.join(", ")
            ),
        );
    }
    let engines = sweeps::engines_for(name);
    let engine = match body.get("engine").and_then(Json::as_str) {
        None => engines[0],
        Some(requested) => match engines.iter().find(|&&e| e == requested) {
            Some(&engine) => engine,
            None => {
                return Response::error(
                    400,
                    format!(
                        "unknown engine '{requested}' for sweep '{name}'; \
                         valid engines: {}",
                        engines.join(", ")
                    ),
                );
            }
        },
    };
    let scale = match sim::get_u64(&body, "scale", DEFAULT_SWEEP_SCALE) {
        Ok(scale) => scale,
        Err(msg) => return Response::error(400, msg),
    };
    let seed = match sim::get_u64(&body, "seed", 42) {
        Ok(seed) => seed,
        Err(msg) => return Response::error(400, msg),
    };
    let cfg = match sweeps::sweep_config(scale, seed) {
        Ok(cfg) => cfg,
        Err(msg) => return Response::error(400, msg),
    };
    let wait = body.get("wait").and_then(Json::as_bool).unwrap_or(false);

    // Sweeps are keyed on the *semantic* tuple, not the raw body, so
    // requests that differ only in defaulted fields or the `wait` knob
    // share one cache entry.
    let key = content_key(
        "sweep",
        &Json::obj([
            ("sweep", Json::str(name)),
            ("engine", Json::str(engine)),
            ("scale", Json::Int(scale as i64)),
            ("seed", Json::Int(seed as i64)),
        ]),
    );
    // The queued path must never park a connection thread behind an
    // in-flight leader, so it uses the non-blocking lookup: duplicates
    // coalesce onto the leader's job id instead of waiting on a slot.
    let (leader, cache_note) = match ctx.result_cache.try_begin(key, wants_bypass(req)) {
        TryLookup::Disabled => (None, None),
        TryLookup::Bypass => (None, Some("bypass")),
        TryLookup::Hit(doc) => {
            if wait {
                return Response::json(200, &doc).header(CACHE_HEADER, "hit");
            }
            // A hit on the async path still mints a pollable ticket,
            // but consumes no queue slot and wakes no worker.
            return match ctx.queue.insert_completed(name, (*doc).clone()) {
                Ok(id) => ticket(id, name, "done").header(CACHE_HEADER, "hit"),
                Err(QueueFull) => Response::error(503, "job queue is full; retry later")
                    .header("Retry-After", "1"),
            };
        }
        TryLookup::InFlight(Some(id)) => {
            if wait {
                return match ctx.queue.wait(id, ctx.cfg.job_wait_timeout) {
                    Some((_, JobState::Done(result))) => {
                        Response::json(200, &result).header(CACHE_HEADER, "coalesced")
                    }
                    Some((_, JobState::Failed(msg))) => Response::error(500, msg),
                    _ => ticket(id, name, "running").header(CACHE_HEADER, "coalesced"),
                };
            }
            let status = ctx
                .queue
                .status(id)
                .map_or("queued", |(_, state)| state.label());
            return ticket(id, name, status).header(CACHE_HEADER, "coalesced");
        }
        // A leader exists but has not published its job id yet (the
        // window between election and submit). Rather than wait, run
        // our own uncached copy — correct, merely not deduplicated.
        TryLookup::InFlight(None) => (None, Some("miss")),
        TryLookup::Miss(leader) => (Some(leader), Some("miss")),
    };

    let job_name = name.to_owned();
    let led = leader.is_some();
    let job: Job = {
        let job_name = job_name.clone();
        match leader {
            // The leader guard rides inside the job closure: success
            // memoizes the document, failure (or a worker panic, via
            // the guard's Drop) abandons so waiters re-elect.
            Some(leader) => {
                Box::new(
                    move || match sweeps::run_named_engine(&job_name, &cfg, engine) {
                        Some(result) => {
                            leader.complete(&Arc::new(result.clone()));
                            Ok(result)
                        }
                        None => {
                            leader.abandon();
                            Err("sweep vanished".to_owned())
                        }
                    },
                )
            }
            None => Box::new(move || {
                sweeps::run_named_engine(&job_name, &cfg, engine)
                    .ok_or_else(|| "sweep vanished".to_owned())
            }),
        }
    };
    let id = match ctx.queue.submit(job_name.clone(), job) {
        Ok(id) => id,
        // Dropping the rejected job drops the leader guard inside it,
        // which abandons the flight — no key is left stranded.
        Err(QueueFull) => {
            return Response::error(503, "job queue is full; retry later")
                .header("Retry-After", "1");
        }
    };
    if led {
        ctx.result_cache.publish_ticket(key, id);
    }
    if wait {
        match ctx.queue.wait(id, ctx.cfg.job_wait_timeout) {
            Some((_, JobState::Done(result))) => {
                return with_cache_note(Response::json(200, &result), cache_note);
            }
            Some((_, JobState::Failed(msg))) => return Response::error(500, msg),
            _ => {} // still running: fall through to the 202 ticket
        }
    }
    with_cache_note(ticket(id, &job_name, "queued"), cache_note)
}

/// The 202 ticket document for an accepted (or cached) sweep job.
fn ticket(id: u64, sweep: &str, status: &str) -> Response {
    Response::json(
        202,
        &Json::obj([
            ("job", Json::Int(id as i64)),
            ("sweep", Json::str(sweep)),
            ("status", Json::str(status)),
            ("poll", Json::str(format!("/v1/jobs/{id}"))),
        ]),
    )
}

fn job_status(ctx: &Ctx, id_text: &str) -> Response {
    let Ok(id) = id_text.parse::<u64>() else {
        return Response::error(400, "job id must be an integer");
    };
    let Some((name, state)) = ctx.queue.status(id) else {
        return Response::error(404, format!("no such job {id}"));
    };
    let mut doc = vec![
        ("job".to_owned(), Json::Int(id as i64)),
        ("sweep".to_owned(), Json::str(name)),
        ("status".to_owned(), Json::str(state.label())),
    ];
    match state {
        JobState::Done(result) => doc.push(("result".to_owned(), result)),
        JobState::Failed(msg) => doc.push(("error".to_owned(), Json::str(msg))),
        JobState::Queued | JobState::Running => {}
    }
    Response::json(200, &Json::Obj(doc))
}
