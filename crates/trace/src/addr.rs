//! Byte and cache-line address newtypes.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A byte address in the simulated address space.
///
/// Addresses are 64-bit; the paper's traces were 32-bit but nothing in the
/// mechanisms depends on the width, and 64 bits lets workload generators lay
/// regions out sparsely without worrying about collisions.
///
/// # Examples
///
/// ```
/// use jouppi_trace::Addr;
///
/// let a = Addr::new(0x1234);
/// assert_eq!(a.get(), 0x1234);
/// assert_eq!((a + 4).get(), 0x1238);
/// assert_eq!(a.line(16).get(), 0x123);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Addr(u64);

impl Addr {
    /// Creates an address from a raw byte value.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Addr(raw)
    }

    /// Returns the raw byte address.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Returns the cache-line address for a given line size in bytes.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `line_size` is not a power of two.
    #[inline]
    pub fn line(self, line_size: u64) -> LineAddr {
        debug_assert!(
            line_size.is_power_of_two(),
            "line size {line_size} must be a power of two"
        );
        LineAddr(self.0 >> line_size.trailing_zeros())
    }

    /// Returns the byte offset of this address within its cache line.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `line_size` is not a power of two.
    #[inline]
    pub fn line_offset(self, line_size: u64) -> u64 {
        debug_assert!(line_size.is_power_of_two());
        self.0 & (line_size - 1)
    }
}

impl From<u64> for Addr {
    #[inline]
    fn from(raw: u64) -> Self {
        Addr(raw)
    }
}

impl From<Addr> for u64 {
    #[inline]
    fn from(addr: Addr) -> Self {
        addr.0
    }
}

impl Add<u64> for Addr {
    type Output = Addr;

    #[inline]
    fn add(self, rhs: u64) -> Addr {
        Addr(self.0.wrapping_add(rhs))
    }
}

impl AddAssign<u64> for Addr {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        self.0 = self.0.wrapping_add(rhs);
    }
}

impl Sub<Addr> for Addr {
    type Output = u64;

    #[inline]
    fn sub(self, rhs: Addr) -> u64 {
        self.0.wrapping_sub(rhs.0)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

/// A cache-line address: a byte address divided by the line size.
///
/// Cache models operate on line addresses exclusively; the line size that
/// produced a `LineAddr` is tracked by the cache, not the address. Sequential
/// lines (used by stream buffers) are obtained with [`LineAddr::next`].
///
/// # Examples
///
/// ```
/// use jouppi_trace::{Addr, LineAddr};
///
/// let line = Addr::new(0x1238).line(16);
/// assert_eq!(line, LineAddr::new(0x123));
/// assert_eq!(line.next(), LineAddr::new(0x124));
/// assert_eq!(line.byte_addr(16), Addr::new(0x1230));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LineAddr(u64);

impl LineAddr {
    /// Creates a line address from a raw line number.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        LineAddr(raw)
    }

    /// Returns the raw line number.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Returns the immediately following line (what a sequential stream
    /// buffer prefetches next).
    #[inline]
    pub const fn next(self) -> LineAddr {
        LineAddr(self.0.wrapping_add(1))
    }

    /// Returns the line `n` positions after this one.
    #[inline]
    pub const fn offset(self, n: u64) -> LineAddr {
        LineAddr(self.0.wrapping_add(n))
    }

    /// Converts back to the byte address of the first byte in the line.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `line_size` is not a power of two.
    #[inline]
    pub fn byte_addr(self, line_size: u64) -> Addr {
        debug_assert!(line_size.is_power_of_two());
        Addr(self.0 << line_size.trailing_zeros())
    }
}

impl From<u64> for LineAddr {
    #[inline]
    fn from(raw: u64) -> Self {
        LineAddr(raw)
    }
}

impl From<LineAddr> for u64 {
    #[inline]
    fn from(line: LineAddr) -> Self {
        line.0
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line:{:#x}", self.0)
    }
}

impl fmt::LowerHex for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_extraction_strips_offset_bits() {
        assert_eq!(Addr::new(0x0).line(16), LineAddr::new(0));
        assert_eq!(Addr::new(0xf).line(16), LineAddr::new(0));
        assert_eq!(Addr::new(0x10).line(16), LineAddr::new(1));
        assert_eq!(Addr::new(0x1fff).line(32), LineAddr::new(0xff));
    }

    #[test]
    fn line_offset_is_modulo_line_size() {
        assert_eq!(Addr::new(0x1234).line_offset(16), 4);
        assert_eq!(Addr::new(0x1230).line_offset(16), 0);
        assert_eq!(Addr::new(0x12ff).line_offset(256), 0xff);
    }

    #[test]
    fn arithmetic_wraps_and_roundtrips() {
        let a = Addr::new(u64::MAX);
        assert_eq!((a + 1).get(), 0);
        assert_eq!(Addr::new(100) - Addr::new(60), 40);
        let l = Addr::new(0x4560).line(16);
        assert_eq!(l.byte_addr(16), Addr::new(0x4560));
    }

    #[test]
    fn sequential_lines() {
        let l = LineAddr::new(7);
        assert_eq!(l.next().get(), 8);
        assert_eq!(l.offset(3).get(), 10);
    }

    #[test]
    fn display_formats_hex() {
        assert_eq!(Addr::new(0xbeef).to_string(), "0xbeef");
        assert_eq!(format!("{:x}", Addr::new(0xbeef)), "beef");
        assert_eq!(LineAddr::new(0x12).to_string(), "line:0x12");
    }

    #[test]
    fn conversions() {
        let a: Addr = 42u64.into();
        let raw: u64 = a.into();
        assert_eq!(raw, 42);
        let l: LineAddr = 9u64.into();
        let raw: u64 = l.into();
        assert_eq!(raw, 9);
    }
}
