//! The parallel sweep executor.
//!
//! Every figure in the paper is a sweep: benchmarks × cache sides × many
//! configurations, each cell an independent replay of a recorded trace
//! against a fresh cache model. This module fans those cells across a
//! `std::thread::scope` job pool:
//!
//! * **Zero-copy** — worker closures borrow the recorded traces (`&`);
//!   nothing is cloned per cell.
//! * **Deterministic** — results are returned in job-index order no
//!   matter which worker computed them or when it finished, so report
//!   output is byte-identical to a sequential run (verified by the
//!   `sequential_parallel_equivalence` integration test).
//! * **Controllable** — the `JOUPPI_THREADS` environment variable caps
//!   the worker count (default: all cores; `1` forces the sequential
//!   in-place path). [`set_thread_count`] is the programmatic override
//!   used by benchmarks and tests.
//!
//! # Examples
//!
//! ```
//! let squares = jouppi_experiments::sweep::map_jobs(8, |i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::thread;

/// Programmatic thread-count override; 0 means "not set".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Process-wide count of sweep cells executed (observability hook for
/// `jouppi serve`'s `/metrics`); monotonically increasing.
static CELLS_EXECUTED: AtomicU64 = AtomicU64::new(0);

/// Process-wide count of references answered by the single-pass
/// multi-geometry engine (`jouppi_single_pass_refs_total` on `/metrics`);
/// monotonically increasing.
static SINGLE_PASS_REFS: AtomicU64 = AtomicU64::new(0);

/// Total jobs run through [`map_jobs`] since process start.
pub fn cells_executed() -> u64 {
    // jouppi-lint: allow(relaxed-ordering) — point-in-time sample of a
    // monotone observability counter; exact under any ordering.
    CELLS_EXECUTED.load(Ordering::Relaxed)
}

/// Total references answered by single-pass engines since process start.
pub fn single_pass_refs() -> u64 {
    // jouppi-lint: allow(relaxed-ordering) — point-in-time sample of a
    // monotone observability counter; exact under any ordering.
    SINGLE_PASS_REFS.load(Ordering::Relaxed)
}

/// Records `n` references answered by a single-pass engine.
pub fn note_single_pass_refs(n: u64) {
    // jouppi-lint: allow(relaxed-ordering) — atomic RMW on a monotone
    // counter loses no increments; ordering only affects when other
    // threads see them, not the total.
    SINGLE_PASS_REFS.fetch_add(n, Ordering::Relaxed);
}

/// Overrides the worker count for all subsequent sweeps in this process,
/// taking precedence over `JOUPPI_THREADS`. Pass 0 to clear the override.
///
/// Exists so benchmarks and equivalence tests can compare sequential and
/// parallel execution without mutating the process environment.
pub fn set_thread_count(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::SeqCst);
}

/// The number of worker threads a sweep will use:
/// [`set_thread_count`] override if set, else `JOUPPI_THREADS` if parsable,
/// else all available cores.
pub fn thread_count() -> usize {
    let forced = THREAD_OVERRIDE.load(Ordering::SeqCst);
    if forced > 0 {
        return forced;
    }
    // jouppi-lint: allow(transitive-purity) — worker count shapes scheduling only; sweep results merge in job-index order, identical at any thread count
    if let Ok(raw) = std::env::var("JOUPPI_THREADS") {
        if let Ok(n) = raw.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    available_cores()
}

/// The machine's available parallelism (1 if it cannot be determined).
pub fn available_cores() -> usize {
    thread::available_parallelism().map_or(1, |n| n.get())
}

/// Runs jobs `0..n` through `f`, fanning them over [`thread_count`]
/// scoped worker threads, and returns the results in job-index order.
///
/// With one worker (or one job) this degenerates to a plain sequential
/// loop on the calling thread — no threads are spawned, so
/// `JOUPPI_THREADS=1` reproduces the pre-sweep-engine behavior exactly.
/// Workers pull jobs from a shared atomic counter (cheap work stealing:
/// cells vary wildly in cost — a 15-entry victim cache replay is much
/// slower than a 1-entry one — so static chunking would leave cores
/// idle).
///
/// # Panics
///
/// Propagates a panic from any job.
pub fn map_jobs<T: Send>(n: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
    // jouppi-lint: allow(relaxed-ordering) — atomic RMW on a monotone
    // counter loses no increments; ordering only affects when other
    // threads see them, not the total.
    CELLS_EXECUTED.fetch_add(n as u64, Ordering::Relaxed);
    let workers = thread_count().min(n);
    if workers <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, T)>();
    thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            scope.spawn(move || loop {
                // jouppi-lint: allow(relaxed-ordering) — fetch_add claims
                // each index exactly once by RMW atomicity; results are
                // ordered by the carried index, not by visibility.
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                // A send only fails if the receiver is gone, which means
                // another worker panicked; stop quietly and let the scope
                // propagate that panic.
                if tx.send((i, f(i))).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
        let mut received = 0;
        for (i, out) in rx {
            slots[i] = Some(out);
            received += 1;
        }
        if received == n {
            Some(slots.into_iter().map(|s| s.expect("counted")).collect())
        } else {
            // A worker died before finishing; scope join will re-raise its
            // panic when this closure returns.
            None
        }
    })
    .expect("a sweep worker panicked")
}

/// Below this many references per job, thread spawn/channel overhead
/// outweighs the parallel win and a sweep runs faster sequentially
/// (BENCH_sweep.json showed the fig_3_1 fused schedule *losing* ~19% at
/// 2 threads on a 60k-scale run whose jobs replay ~42k references each).
pub const MIN_PARALLEL_REFS_PER_JOB: u64 = 150_000;

/// Like [`map_jobs`], but sized: `refs_per_job` is the approximate
/// number of trace references each job will replay. Sweeps whose jobs
/// fall below [`MIN_PARALLEL_REFS_PER_JOB`] run sequentially on the
/// calling thread — same results in the same order (pinned by the
/// `sized_schedule_is_bit_identical` test), without paying thread
/// startup for work that finishes in microseconds.
pub fn map_jobs_sized<T: Send>(
    n: usize,
    refs_per_job: u64,
    f: impl Fn(usize) -> T + Sync,
) -> Vec<T> {
    if refs_per_job < MIN_PARALLEL_REFS_PER_JOB {
        // jouppi-lint: allow(relaxed-ordering) — atomic RMW on a monotone
        // counter loses no increments; ordering only affects when other
        // threads see them, not the total.
        CELLS_EXECUTED.fetch_add(n as u64, Ordering::Relaxed);
        return (0..n).map(f).collect();
    }
    map_jobs(n, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Serializes the tests that reprogram the global thread override.
    static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn results_are_in_job_order() {
        let out = map_jobs(100, |i| i * 3);
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn zero_jobs_is_empty() {
        let out: Vec<u32> = map_jobs(0, |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn sequential_override_matches_parallel() {
        let _guard = OVERRIDE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let work = |i: usize| (0..1000).fold(i as u64, |a, x| a.wrapping_mul(31).wrapping_add(x));
        set_thread_count(1);
        let seq = map_jobs(32, work);
        set_thread_count(4);
        let par = map_jobs(32, work);
        set_thread_count(0);
        assert_eq!(seq, par);
    }

    #[test]
    fn thread_count_respects_override() {
        let _guard = OVERRIDE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_thread_count(3);
        assert_eq!(thread_count(), 3);
        set_thread_count(0);
        assert!(thread_count() >= 1);
    }

    #[test]
    fn sized_schedule_is_bit_identical() {
        let _guard = OVERRIDE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let work = |i: usize| (0..500).fold(i as u64, |a, x| a.wrapping_mul(31).wrapping_add(x));
        set_thread_count(4);
        let parallel = map_jobs(24, work);
        // Tiny jobs: runs sequentially despite the 4-thread override...
        let small = map_jobs_sized(24, MIN_PARALLEL_REFS_PER_JOB - 1, work);
        // ...big jobs: delegates to the parallel pool.
        let big = map_jobs_sized(24, MIN_PARALLEL_REFS_PER_JOB, work);
        set_thread_count(0);
        assert_eq!(small, parallel);
        assert_eq!(big, parallel);
    }

    #[test]
    fn sized_schedule_counts_cells_and_single_pass_refs() {
        let before = cells_executed();
        let _ = map_jobs_sized(5, 0, |i| i);
        assert_eq!(cells_executed() - before, 5);
        let before = single_pass_refs();
        note_single_pass_refs(123);
        assert_eq!(single_pass_refs() - before, 123);
    }

    #[test]
    fn borrows_shared_data_by_reference() {
        let data: Vec<u64> = (0..1000).collect();
        let sums = map_jobs(10, |i| data.iter().skip(i).sum::<u64>());
        assert_eq!(sums[0], 499_500);
        assert!(sums.windows(2).all(|w| w[0] >= w[1]));
    }
}
