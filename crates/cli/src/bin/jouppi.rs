//! `jouppi` — the umbrella command.
//!
//! ```text
//! jouppi serve [OPTIONS]   run the simulation-as-a-service daemon
//! jouppi sim [OPTIONS]     one-shot simulation (same flags as jouppi-sim)
//! jouppi lint [OPTIONS]    check the workspace invariants (jouppi-lint)
//! ```

#![forbid(unsafe_code)]

use std::process::ExitCode;

const USAGE: &str = "\
usage: jouppi <command> [OPTIONS]

commands:
  serve   run the HTTP simulation service (see 'jouppi serve --help')
  sim     simulate one cache organization (see 'jouppi sim --help')
  lint    check determinism/robustness invariants (see 'jouppi lint --help')";

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("serve") => match jouppi_cli::serve_cmd::parse_serve_args(args) {
            Ok(opts) => match jouppi_cli::serve_cmd::run_serve(&opts) {
                Ok(report) => {
                    println!("{report}");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            },
            Err(e) => {
                eprintln!("{e}");
                ExitCode::FAILURE
            }
        },
        Some("sim") => match jouppi_cli::parse_args(args) {
            Ok(opts) => match jouppi_cli::run(&opts) {
                Ok(report) => {
                    println!("{report}");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            },
            Err(e) => {
                eprintln!("{e}");
                ExitCode::FAILURE
            }
        },
        Some("lint") => {
            let result = jouppi_lint::cli::run(args);
            print!("{}", result.stdout);
            eprint!("{}", result.stderr);
            ExitCode::from(result.code)
        }
        Some("--help" | "-h") | None => {
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
        Some(other) => {
            eprintln!("unknown command '{other}'\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}
