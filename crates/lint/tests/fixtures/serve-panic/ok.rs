//! Fixture: the fix — malformed input becomes an error, not a panic.

pub fn parse_id(path: &str) -> Result<u64, String> {
    path.strip_prefix("/v1/jobs/")
        .ok_or_else(|| "not a job path".to_owned())?
        .parse()
        .map_err(|e| format!("bad job id: {e}"))
}
