//! Support file: the serve-side entrypoint that makes the fixture's
//! panic site reachable.

use jouppi_core::lookup;

pub fn handler() {
    lookup();
}
