//! Randomized equivalence of the two `LruSet` backends.
//!
//! `LruSet` picks a compact ordered-vector backend for capacities up to
//! `SMALL_CAPACITY_MAX` and a hash-map + intrusive-list backend above it.
//! The backend is an implementation detail: driving both with the same
//! operation sequence must produce identical hits, evictions, recency
//! order, and observer results at every step. The small backend is the
//! sweep hot path (miss caches, victim-cache shadows), so divergence here
//! would silently skew every paper figure.

use jouppi_cache::{LruSet, SMALL_CAPACITY_MAX};
use jouppi_trace::{LineAddr, SmallRng};

/// One randomized op applied to both backends, with full observer checks.
fn step(rng: &mut SmallRng, small: &mut LruSet, hashed: &mut LruSet, line_space: u64) {
    let line = LineAddr::new(rng.below(line_space as usize) as u64);
    match rng.below(6) {
        0 => assert_eq!(small.touch(line), hashed.touch(line), "touch {line:?}"),
        1 => assert_eq!(small.insert(line), hashed.insert(line), "insert {line:?}"),
        2 => assert_eq!(small.remove(line), hashed.remove(line), "remove {line:?}"),
        3 => assert_eq!(
            small.contains(line),
            hashed.contains(line),
            "contains {line:?}"
        ),
        _ => assert_eq!(
            small.touch_or_insert(line),
            hashed.touch_or_insert(line),
            "touch_or_insert {line:?}"
        ),
    }
    assert_eq!(small.len(), hashed.len());
    assert_eq!(small.lru(), hashed.lru());
    assert_eq!(small.mru(), hashed.mru());
}

#[test]
fn backends_agree_on_random_op_sequences() {
    let mut rng = SmallRng::seed_from_u64(0x1a2b_3c4d);
    for capacity in [1usize, 2, 3, 4, 8, 15, 64] {
        assert!(capacity <= SMALL_CAPACITY_MAX);
        let mut small = LruSet::new(capacity);
        let mut hashed = LruSet::new_hashed(capacity);
        assert!(small.is_small_backend());
        assert!(!hashed.is_small_backend());
        // Line space ~2× capacity keeps eviction pressure high.
        let line_space = (2 * capacity).max(4) as u64;
        for _ in 0..20_000 {
            step(&mut rng, &mut small, &mut hashed, line_space);
        }
        // Final recency order must match element for element.
        let a: Vec<LineAddr> = small.iter().collect();
        let b: Vec<LineAddr> = hashed.iter().collect();
        assert_eq!(a, b, "capacity {capacity}: iteration order diverged");
    }
}

#[test]
fn backends_agree_under_sparse_addresses() {
    // Widely spread line addresses exercise hashing rather than the dense
    // low-value keys of the main test.
    let mut rng = SmallRng::seed_from_u64(7);
    let mut small = LruSet::new(8);
    let mut hashed = LruSet::new_hashed(8);
    for _ in 0..20_000 {
        let line = LineAddr::new((rng.below(32) as u64) << 40 | rng.below(16) as u64);
        assert_eq!(small.touch_or_insert(line), hashed.touch_or_insert(line));
    }
    assert_eq!(
        small.iter().collect::<Vec<_>>(),
        hashed.iter().collect::<Vec<_>>()
    );
}

#[test]
fn capacity_switch_point_is_respected() {
    assert!(LruSet::new(SMALL_CAPACITY_MAX).is_small_backend());
    assert!(!LruSet::new(SMALL_CAPACITY_MAX + 1).is_small_backend());
    // Forcing the hash backend at a small capacity is what this test
    // suite relies on; make sure the override holds.
    assert!(!LruSet::new_hashed(2).is_small_backend());
}

#[test]
fn clear_resets_both_backends_identically() {
    let mut small = LruSet::new(4);
    let mut hashed = LruSet::new_hashed(4);
    for n in 0..10 {
        small.insert(LineAddr::new(n));
        hashed.insert(LineAddr::new(n));
    }
    small.clear();
    hashed.clear();
    assert!(small.is_empty() && hashed.is_empty());
    assert_eq!(small.insert(LineAddr::new(99)), None);
    assert_eq!(hashed.insert(LineAddr::new(99)), None);
    assert_eq!(small.len(), hashed.len());
}
