//! Fixture: ambient entropy in a simulation crate.

pub fn roll() -> u32 {
    let mut r = rand::thread_rng();
    r.gen_range(0..6)
}
