//! The `jouppi serve` subcommand: flag parsing and daemon driving.
//!
//! Parsing lives here (unit-testable); the `jouppi` binary is a thin
//! shell. The daemon itself is [`jouppi_serve::Server`].

use std::time::Duration;

use jouppi_serve::http::Limits;
use jouppi_serve::result_cache::CacheMode;
use jouppi_serve::server::ServerConfig;
use jouppi_serve::Server;

use crate::UsageError;

/// The usage text for `jouppi serve --help`.
pub const SERVE_USAGE: &str = "\
usage: jouppi serve [OPTIONS]
  --host ADDR            bind address (default 127.0.0.1)
  --port N               TCP port, 0 = ephemeral (default 7090)
  --workers N            sweep job workers (default 2)
  --queue-depth N        max queued sweep jobs before 503 (default 16)
  --max-body BYTES       request body size limit (default 1048576)
  --idle-timeout-ms N    keep-alive idle timeout (default 10000)
  --request-timeout-ms N whole-request receive timeout (default 30000)
  --cache-mode MODE      result cache: on, off, or bypass (default on)
  --cache-capacity N     max memoized result documents (default 256)
  --max-runtime-secs N   serve for N seconds then drain and exit (0 = forever)
  --help                 show this message

endpoints: POST /v1/simulate, POST /v1/sweep, GET /v1/jobs/<id>,
           GET /healthz, GET /metrics (Prometheus text format)";

/// Parsed `jouppi serve` options.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// The daemon configuration.
    pub config: ServerConfig,
    /// Seconds to serve before draining; 0 = until killed.
    pub max_runtime_secs: u64,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            config: ServerConfig {
                addr: "127.0.0.1:7090".to_owned(),
                ..ServerConfig::default()
            },
            max_runtime_secs: 0,
        }
    }
}

fn err(msg: impl Into<String>) -> UsageError {
    UsageError(msg.into())
}

/// Parses `jouppi serve` arguments (everything after the subcommand).
///
/// # Errors
///
/// Returns [`UsageError`] describing the first invalid argument.
pub fn parse_serve_args<I: IntoIterator<Item = String>>(
    args: I,
) -> Result<ServeOptions, UsageError> {
    let mut opts = ServeOptions::default();
    let mut host = "127.0.0.1".to_owned();
    let mut port: u16 = 7090;
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| err(format!("{name} needs a value")))
        };
        let parse_u64 = |name: &str, raw: String| {
            raw.parse::<u64>()
                .map_err(|_| err(format!("{name} wants an integer, got '{raw}'")))
        };
        let parse_usize = |name: &str, raw: String| {
            raw.parse::<usize>()
                .map_err(|_| err(format!("{name} wants an integer, got '{raw}'")))
        };
        match arg.as_str() {
            "--host" => host = value("--host")?,
            "--port" => {
                port = value("--port")?
                    .parse()
                    .map_err(|_| err("--port wants 0..=65535"))?;
            }
            "--workers" => {
                opts.config.workers = parse_usize("--workers", value("--workers")?)?.max(1);
            }
            "--queue-depth" => {
                opts.config.queue_depth =
                    parse_usize("--queue-depth", value("--queue-depth")?)?.max(1);
            }
            "--max-body" => {
                opts.config.limits = Limits {
                    max_body_bytes: parse_usize("--max-body", value("--max-body")?)?,
                    ..opts.config.limits
                };
            }
            "--idle-timeout-ms" => {
                opts.config.idle_timeout = Duration::from_millis(parse_u64(
                    "--idle-timeout-ms",
                    value("--idle-timeout-ms")?,
                )?);
            }
            "--request-timeout-ms" => {
                opts.config.request_timeout = Duration::from_millis(parse_u64(
                    "--request-timeout-ms",
                    value("--request-timeout-ms")?,
                )?);
            }
            "--cache-mode" => {
                let raw = value("--cache-mode")?;
                opts.config.cache.mode = CacheMode::parse(&raw)
                    .ok_or_else(|| err(format!("--cache-mode wants on|off|bypass, got '{raw}'")))?;
            }
            "--cache-capacity" => {
                opts.config.cache.capacity =
                    parse_usize("--cache-capacity", value("--cache-capacity")?)?.max(1);
            }
            "--max-runtime-secs" => {
                opts.max_runtime_secs =
                    parse_u64("--max-runtime-secs", value("--max-runtime-secs")?)?;
            }
            "--help" | "-h" => return Err(err(SERVE_USAGE)),
            other => return Err(err(format!("unknown argument '{other}'\n{SERVE_USAGE}"))),
        }
    }
    opts.config.addr = format!("{host}:{port}");
    Ok(opts)
}

/// Boots the daemon and serves until the runtime limit (if any) expires,
/// then drains gracefully.
///
/// # Errors
///
/// Propagates bind failures.
pub fn run_serve(opts: &ServeOptions) -> Result<String, Box<dyn std::error::Error>> {
    let handle = Server::start(opts.config.clone())?;
    // jouppi-lint: allow(debug-print) — the listening banner must appear
    // before the blocking serve loop; there is no caller to return it to
    // until shutdown.
    eprintln!(
        "jouppi serve: listening on http://{} ({} workers, queue depth {})",
        handle.addr(),
        opts.config.workers,
        opts.config.queue_depth
    );
    if opts.max_runtime_secs == 0 {
        // Serve until the process is killed.
        loop {
            std::thread::sleep(Duration::from_secs(3600));
        }
    }
    std::thread::sleep(Duration::from_secs(opts.max_runtime_secs));
    let stats = handle.shutdown();
    Ok(format!(
        "drained after {}s: {} job(s) completed",
        opts.max_runtime_secs, stats.jobs_completed
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<ServeOptions, UsageError> {
        parse_serve_args(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_bind_loopback_7090() {
        let o = parse(&[]).unwrap();
        assert_eq!(o.config.addr, "127.0.0.1:7090");
        assert_eq!(o.config.workers, 2);
        assert_eq!(o.config.queue_depth, 16);
        assert_eq!(o.config.cache.mode, CacheMode::On);
        assert_eq!(o.config.cache.capacity, 256);
        assert_eq!(o.max_runtime_secs, 0);
    }

    #[test]
    fn full_flag_set_parses() {
        let o = parse(&[
            "--host",
            "0.0.0.0",
            "--port",
            "8080",
            "--workers",
            "4",
            "--queue-depth",
            "32",
            "--max-body",
            "4096",
            "--idle-timeout-ms",
            "500",
            "--request-timeout-ms",
            "2000",
            "--cache-mode",
            "bypass",
            "--cache-capacity",
            "64",
            "--max-runtime-secs",
            "3",
        ])
        .unwrap();
        assert_eq!(o.config.addr, "0.0.0.0:8080");
        assert_eq!(o.config.workers, 4);
        assert_eq!(o.config.queue_depth, 32);
        assert_eq!(o.config.limits.max_body_bytes, 4096);
        assert_eq!(o.config.idle_timeout, Duration::from_millis(500));
        assert_eq!(o.config.request_timeout, Duration::from_secs(2));
        assert_eq!(o.config.cache.mode, CacheMode::Bypass);
        assert_eq!(o.config.cache.capacity, 64);
        assert_eq!(o.max_runtime_secs, 3);
    }

    #[test]
    fn rejects_bad_flags() {
        assert!(parse(&["--port", "huge"]).is_err());
        assert!(parse(&["--workers"]).is_err());
        assert!(parse(&["--frobnicate"]).is_err());
        assert!(parse(&["--cache-mode", "sometimes"]).is_err());
        assert!(parse(&["--cache-capacity", "many"]).is_err());
        let e = parse(&["--help"]).unwrap_err();
        assert!(e.to_string().contains("usage: jouppi serve"));
    }

    #[test]
    fn zero_workers_and_depth_are_clamped() {
        let o = parse(&[
            "--workers",
            "0",
            "--queue-depth",
            "0",
            "--cache-capacity",
            "0",
        ])
        .unwrap();
        assert_eq!(o.config.workers, 1);
        assert_eq!(o.config.queue_depth, 1);
        assert_eq!(o.config.cache.capacity, 1);
    }

    #[test]
    fn timed_run_serves_and_drains() {
        let opts = ServeOptions {
            config: ServerConfig {
                addr: "127.0.0.1:0".to_owned(),
                ..ServerConfig::default()
            },
            max_runtime_secs: 1,
        };
        let out = run_serve(&opts).unwrap();
        assert!(out.contains("drained after 1s"), "{out}");
    }
}
