//! Fixture: the same log, bounded — old entries are evicted before new
//! ones are recorded.

pub struct Sessions {
    log: Vec<u64>,
}

impl Sessions {
    pub fn record(&mut self, id: u64) {
        if self.log.len() >= 64 {
            self.log.remove(0);
        }
        self.log.push(id);
    }
}
