//! `POST /v1/simulate`: one cache organization over one workload.
//!
//! Decodes a JSON request body into a cache configuration, replays the
//! named synthetic benchmark through it synchronously (these are cheap
//! at service scales — the scale cap keeps them so), and returns the
//! miss/removal statistics. All validation failures are `Err(String)`
//! (surfaced as HTTP 400), never panics.
//!
//! Request shape (everything but `workload` optional):
//!
//! ```json
//! {
//!   "workload": "ccom", "scale": 100000, "seed": 42,
//!   "cache": {"size": 4096, "line": 16, "assoc": 1},
//!   "victim": 4, "miss_cache": 0,
//!   "stream": {"ways": 4, "depth": 4}, "stride_detect": 0,
//!   "side": "d", "classify": true
//! }
//! ```

use jouppi_cache::{CacheGeometry, MissClassifier};
use jouppi_core::{AugmentedCache, AugmentedConfig, StreamBufferConfig};
use jouppi_experiments::common::note_refs_simulated;
use jouppi_trace::{RecordedTrace, TraceSource};
use jouppi_workloads::{Benchmark, Scale};

use crate::json::Json;

/// Hard cap on `scale` (instructions) for a synchronous simulate call.
pub const MAX_SIMULATE_SCALE: u64 = 2_000_000;

/// Hard cap on request-chosen buffer entry counts (`victim`,
/// `miss_cache`, `stream.ways`, `stream.depth`). The paper's
/// fully-associative buffers top out at 16 entries; 1024 leaves
/// headroom for design-space exploration while keeping an
/// attacker-chosen count from sizing an allocation.
pub const MAX_BUFFER_ENTRIES: usize = 1024;

/// Default `scale` when the request omits it.
pub const DEFAULT_SIMULATE_SCALE: u64 = 100_000;

pub(crate) fn get_u64(body: &Json, key: &str, default: u64) -> Result<u64, String> {
    match body.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_i64()
            .filter(|&n| n >= 0)
            .map(|n| n as u64)
            .ok_or_else(|| format!("'{key}' must be a non-negative integer")),
    }
}

fn get_usize(body: &Json, key: &str, default: usize) -> Result<usize, String> {
    let n = get_u64(body, key, default as u64)?;
    usize::try_from(n).map_err(|_| format!("'{key}' does not fit in usize"))
}

/// Parses the request body into `(config, workload, scale, seed, side,
/// classify)`, then runs the replay and encodes the stats.
///
/// # Errors
///
/// A human-readable validation message (the router maps it to 400).
pub fn simulate(body: &Json) -> Result<Json, String> {
    if !matches!(body, Json::Obj(_)) {
        return Err("request body must be a JSON object".to_owned());
    }
    let workload = body
        .get("workload")
        .and_then(Json::as_str)
        .ok_or("'workload' is required (ccom, grr, yacc, met, linpack, liver)")?;
    let bench =
        Benchmark::from_name(workload).ok_or_else(|| format!("unknown workload '{workload}'"))?;
    let scale = get_u64(body, "scale", DEFAULT_SIMULATE_SCALE)?;
    if scale == 0 || scale > MAX_SIMULATE_SCALE {
        return Err(format!("'scale' must be in 1..={MAX_SIMULATE_SCALE}"));
    }
    let seed = get_u64(body, "seed", 42)?;

    let geometry = match body.get("cache") {
        None => {
            CacheGeometry::direct_mapped(4096, 16).map_err(|e| format!("default geometry: {e}"))?
        }
        Some(spec) => {
            let size = get_u64(spec, "size", 4096)?;
            let line = get_u64(spec, "line", 16)?;
            let assoc = get_u64(spec, "assoc", 1)?;
            CacheGeometry::new(size, line, assoc).map_err(|e| format!("'cache': {e}"))?
        }
    };

    let victim = get_usize(body, "victim", 0)?;
    let miss_cache = get_usize(body, "miss_cache", 0)?;
    if victim > MAX_BUFFER_ENTRIES || miss_cache > MAX_BUFFER_ENTRIES {
        return Err(format!(
            "'victim' and 'miss_cache' must be at most {MAX_BUFFER_ENTRIES} entries"
        ));
    }
    if victim > 0 && miss_cache > 0 {
        return Err("'victim' and 'miss_cache' are mutually exclusive".to_owned());
    }
    let stride_detect = get_u64(body, "stride_detect", 0)? as i64;

    let mut cfg = AugmentedConfig::new(geometry);
    if victim > 0 {
        cfg = cfg.victim_cache(victim);
    }
    if miss_cache > 0 {
        cfg = cfg.miss_cache(miss_cache);
    }
    if let Some(stream) = body.get("stream") {
        let ways = get_usize(stream, "ways", 1)?;
        let depth = get_usize(stream, "depth", 4)?;
        if ways == 0 || depth == 0 {
            return Err("'stream.ways' and 'stream.depth' must be nonzero".to_owned());
        }
        if ways > MAX_BUFFER_ENTRIES || depth > MAX_BUFFER_ENTRIES {
            return Err(format!(
                "'stream.ways' and 'stream.depth' must be at most {MAX_BUFFER_ENTRIES}"
            ));
        }
        let sb = StreamBufferConfig::new(depth);
        cfg = if stride_detect > 0 {
            cfg.strided_stream_buffer(ways, sb, stride_detect)
        } else {
            cfg.multi_way_stream_buffer(ways, sb)
        };
    }

    let side = match body.get("side").map(|v| v.as_str()) {
        None => "d",
        Some(Some(s)) if matches!(s, "i" | "d" | "all") => s,
        _ => return Err("'side' must be \"i\", \"d\", or \"all\"".to_owned()),
    };
    let classify = match body.get("classify") {
        None => false,
        Some(v) => v.as_bool().ok_or("'classify' must be a boolean")?,
    };

    let trace = RecordedTrace::record(&bench.source(Scale::new(scale), seed));
    let mut cache = AugmentedCache::new(cfg);
    let mut classifier = classify.then(|| MissClassifier::new(geometry));
    let mut replayed = 0u64;
    for r in trace.refs() {
        let wanted = match side {
            "i" => r.kind.is_instr(),
            "d" => r.kind.is_data(),
            _ => true,
        };
        if !wanted {
            continue;
        }
        replayed += 1;
        let outcome = cache.access(r.addr);
        if let Some(cls) = classifier.as_mut() {
            cls.observe(geometry.line_of(r.addr), !outcome.is_l1_hit());
        }
    }
    note_refs_simulated(replayed);

    let s = cache.stats();
    let mut out = vec![
        ("workload".to_owned(), Json::str(bench.name())),
        ("scale".to_owned(), Json::Int(scale as i64)),
        ("seed".to_owned(), Json::Int(seed as i64)),
        ("geometry".to_owned(), Json::str(geometry.to_string())),
        ("side".to_owned(), Json::str(side)),
        ("accesses".to_owned(), Json::Int(s.accesses as i64)),
        ("l1_hits".to_owned(), Json::Int(s.l1_hits as i64)),
        ("l1_misses".to_owned(), Json::Int(s.l1_misses() as i64)),
        ("victim_hits".to_owned(), Json::Int(s.victim_hits as i64)),
        (
            "miss_cache_hits".to_owned(),
            Json::Int(s.miss_cache_hits as i64),
        ),
        ("stream_hits".to_owned(), Json::Int(s.stream_hits as i64)),
        ("full_misses".to_owned(), Json::Int(s.full_misses as i64)),
        ("l1_miss_rate".to_owned(), Json::Float(s.l1_miss_rate())),
        (
            "demand_miss_rate".to_owned(),
            Json::Float(s.demand_miss_rate()),
        ),
        (
            "removed_pct".to_owned(),
            Json::Float(100.0 * s.removed_fraction()),
        ),
    ];
    if let Some(cls) = classifier {
        let b = cls.breakdown();
        out.push((
            "classification".to_owned(),
            Json::obj([
                ("compulsory", Json::Int(b.compulsory as i64)),
                ("capacity", Json::Int(b.capacity as i64)),
                ("conflict", Json::Int(b.conflict as i64)),
            ]),
        ));
    }
    Ok(Json::Obj(out))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(text: &str) -> Result<Json, String> {
        simulate(&Json::parse(text).expect("test request is valid JSON"))
    }

    #[test]
    fn minimal_request_simulates() {
        let out = req(r#"{"workload":"ccom","scale":5000}"#).unwrap();
        assert_eq!(out.get("workload").unwrap(), &Json::str("ccom"));
        assert!(out.get("accesses").unwrap().as_i64().unwrap() > 0);
        let rate = out.get("l1_miss_rate").unwrap().as_f64().unwrap();
        assert!((0.0..=1.0).contains(&rate));
    }

    #[test]
    fn victim_cache_removes_misses() {
        let out = req(r#"{"workload":"met","scale":20000,"victim":4,"classify":true}"#).unwrap();
        assert!(out.get("victim_hits").unwrap().as_i64().unwrap() > 0);
        let cls = out.get("classification").unwrap();
        assert!(cls.get("conflict").unwrap().as_i64().unwrap() > 0);
    }

    #[test]
    fn stream_request_parses() {
        let out =
            req(r#"{"workload":"liver","scale":10000,"stream":{"ways":4,"depth":4},"side":"all"}"#)
                .unwrap();
        assert!(out.get("stream_hits").unwrap().as_i64().unwrap() > 0);
    }

    #[test]
    fn validation_errors_are_clean() {
        for (body, needle) in [
            (r#"[1,2]"#, "object"),
            (r#"{}"#, "'workload'"),
            (r#"{"workload":"doom"}"#, "unknown workload"),
            (r#"{"workload":"ccom","scale":0}"#, "'scale'"),
            (r#"{"workload":"ccom","scale":999999999}"#, "'scale'"),
            (r#"{"workload":"ccom","scale":-3}"#, "'scale'"),
            (
                r#"{"workload":"ccom","cache":{"size":4096,"line":17,"assoc":1}}"#,
                "'cache'",
            ),
            (
                r#"{"workload":"ccom","victim":2,"miss_cache":2}"#,
                "mutually exclusive",
            ),
            (r#"{"workload":"ccom","victim":1000000000}"#, "at most"),
            (r#"{"workload":"ccom","miss_cache":99999}"#, "at most"),
            (
                r#"{"workload":"ccom","stream":{"ways":0,"depth":4}}"#,
                "nonzero",
            ),
            (
                r#"{"workload":"ccom","stream":{"ways":4,"depth":1000000000}}"#,
                "at most",
            ),
            (
                r#"{"workload":"ccom","stream":{"ways":1000000000,"depth":4}}"#,
                "at most",
            ),
            (r#"{"workload":"ccom","side":"x"}"#, "'side'"),
            (r#"{"workload":"ccom","classify":3}"#, "'classify'"),
        ] {
            let err = req(body).unwrap_err();
            assert!(err.contains(needle), "{body}: {err}");
        }
    }
}
