//! Named paper sweeps for `POST /v1/sweep`.
//!
//! Each name maps to one of `jouppi_experiments`' figure sweeps, run at
//! the requested scale/seed and encoded as a deterministic [`Json`]
//! document. The encoding lives here — not in the HTTP layer — so the
//! integration test can run the same sweep in-process and require the
//! served bytes to match **bit-for-bit**.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use jouppi_experiments::common::{refs_simulated, ExperimentConfig};
use jouppi_experiments::sweep::single_pass_refs;
use jouppi_experiments::{conflict_sweep, fig_3_1, single_pass, stream_sweep};
use jouppi_workloads::Scale;

use crate::json::Json;

/// Replay throughput (references per second) of the most recently
/// completed named sweep; 0 until a sweep finishes. Concurrent sweeps
/// share the process-wide reference counter, so under overlap the gauge
/// reads combined throughput — fine for an operational gauge.
static LAST_SWEEP_REFS_PER_SECOND: AtomicU64 = AtomicU64::new(0);

/// The `jouppi_refs_per_second` gauge: throughput of the last completed
/// sweep.
pub fn last_sweep_refs_per_second() -> u64 {
    // jouppi-lint: allow(relaxed-ordering) — single-word operational
    // gauge; any published value is a complete, valid sample.
    LAST_SWEEP_REFS_PER_SECOND.load(Ordering::Relaxed)
}

/// The sweeps the service knows how to run.
pub const NAMED_SWEEPS: [&str; 6] = [
    "fig_3_1",
    "miss_cache_4",
    "victim_cache_4",
    "stream_single_8",
    "stream_four_8",
    "geometry_grid",
];

/// The execution engines a named sweep accepts (first = default).
///
/// Pure size × associativity sweeps route to the single-pass Mattson
/// engine; sweeps whose cells augment the L1 (victim caches, stream
/// buffers) stay on the fused gang engine, which is the only one that
/// can express them.
pub fn engines_for(name: &str) -> &'static [&'static str] {
    match name {
        "fig_3_1" => &["classify", "single_pass"],
        "geometry_grid" => &["single_pass", "per_cell"],
        _ => &["fused"],
    }
}

/// Hard cap on `scale` for a queued sweep.
pub const MAX_SWEEP_SCALE: u64 = 2_000_000;

/// Default `scale` when a sweep request omits it.
pub const DEFAULT_SWEEP_SCALE: u64 = 60_000;

/// Builds an [`ExperimentConfig`] from a sweep request's scale/seed.
///
/// # Errors
///
/// A validation message when `scale` is out of range.
pub fn sweep_config(scale: u64, seed: u64) -> Result<ExperimentConfig, String> {
    if scale == 0 || scale > MAX_SWEEP_SCALE {
        return Err(format!("'scale' must be in 1..={MAX_SWEEP_SCALE}"));
    }
    Ok(ExperimentConfig {
        scale: Scale::new(scale),
        seed,
    })
}

/// Runs the named sweep on its default engine. See [`run_named_engine`].
pub fn run_named(name: &str, cfg: &ExperimentConfig) -> Option<Json> {
    run_named_engine(name, cfg, engines_for(name).first()?)
}

/// Runs the named sweep on the given engine and encodes its result;
/// `None` for an unknown name or an engine the sweep does not accept
/// (the router 400s with the [`NAMED_SWEEPS`] / [`engines_for`]
/// catalogs).
pub fn run_named_engine(name: &str, cfg: &ExperimentConfig, engine: &str) -> Option<Json> {
    let refs_before = refs_simulated() + single_pass_refs();
    let start = Instant::now(); // jouppi-lint: allow(transitive-purity) — wall-clock feeds only the refs/sec throughput gauge below; the result document never includes it
    let body = match (name, engine) {
        ("fig_3_1", "classify") => fig31_json(&fig_3_1::run(cfg)),
        ("fig_3_1", "single_pass") => fig31_json(&fig_3_1::run_single_pass(cfg)),
        ("miss_cache_4", "fused") => conflict_json(&conflict_sweep::run(
            cfg,
            conflict_sweep::Mechanism::MissCache,
            4,
        )),
        ("victim_cache_4", "fused") => conflict_json(&conflict_sweep::run(
            cfg,
            conflict_sweep::Mechanism::VictimCache,
            4,
        )),
        ("stream_single_8", "fused") => stream_json(&stream_sweep::run(cfg, 1, 8)),
        ("stream_four_8", "fused") => stream_json(&stream_sweep::run(cfg, 4, 8)),
        ("geometry_grid", "single_pass") => geometry_json(&single_pass::run(cfg)),
        ("geometry_grid", "per_cell") => geometry_json(&single_pass::run_per_cell(cfg)),
        _ => return None,
    };
    let seconds = start.elapsed().as_secs_f64();
    // Both engine families feed the throughput gauge: per-cell replays
    // count via refs_simulated, one-pass traversals via single_pass_refs.
    let refs = (refs_simulated() + single_pass_refs()).saturating_sub(refs_before);
    if seconds > 0.0 && refs > 0 {
        // jouppi-lint: allow(relaxed-ordering) — single-word gauge store;
        // no other memory is published alongside it.
        LAST_SWEEP_REFS_PER_SECOND.store((refs as f64 / seconds) as u64, Ordering::Relaxed);
    }
    let mut doc = vec![
        ("sweep".to_owned(), Json::str(name)),
        ("engine".to_owned(), Json::str(engine)),
        ("scale".to_owned(), Json::Int(cfg.scale.instructions as i64)),
        ("seed".to_owned(), Json::Int(cfg.seed as i64)),
    ];
    doc.extend(body);
    Some(Json::Obj(doc))
}

fn breakdown_json(b: &jouppi_cache::MissBreakdown) -> Json {
    Json::obj([
        ("compulsory", Json::Int(b.compulsory as i64)),
        ("capacity", Json::Int(b.capacity as i64)),
        ("conflict", Json::Int(b.conflict as i64)),
        ("conflict_pct", Json::Float(100.0 * b.conflict_fraction())),
    ])
}

fn float_arr(values: &[f64]) -> Json {
    Json::Arr(values.iter().map(|&v| Json::Float(v)).collect())
}

fn fig31_json(f: &fig_3_1::Fig31) -> Vec<(String, Json)> {
    let rows = f
        .rows
        .iter()
        .map(|(b, i, d)| {
            Json::obj([
                ("benchmark", Json::str(b.name())),
                ("instr", breakdown_json(i)),
                ("data", breakdown_json(d)),
            ])
        })
        .collect();
    vec![
        ("rows".to_owned(), Json::Arr(rows)),
        (
            "avg_instr_conflict_pct".to_owned(),
            Json::Float(100.0 * f.avg_instr_conflict_fraction()),
        ),
        (
            "avg_data_conflict_pct".to_owned(),
            Json::Float(100.0 * f.avg_data_conflict_fraction()),
        ),
    ]
}

fn conflict_json(s: &conflict_sweep::ConflictSweep) -> Vec<(String, Json)> {
    let benchmarks = s
        .benchmarks
        .iter()
        .map(|b| {
            Json::obj([
                ("benchmark", Json::str(b.benchmark.name())),
                ("instr_pct_removed", float_arr(&b.instr)),
                ("data_pct_removed", float_arr(&b.data)),
            ])
        })
        .collect();
    vec![
        (
            "mechanism".to_owned(),
            Json::str(match s.mechanism {
                conflict_sweep::Mechanism::MissCache => "miss_cache",
                conflict_sweep::Mechanism::VictimCache => "victim_cache",
            }),
        ),
        (
            "entries".to_owned(),
            Json::Arr(s.entries.iter().map(|&e| Json::Int(e as i64)).collect()),
        ),
        ("benchmarks".to_owned(), Json::Arr(benchmarks)),
    ]
}

fn geometry_json(s: &single_pass::GeometrySweep) -> Vec<(String, Json)> {
    let cell_json = |c: &single_pass::GeometryCell| {
        Json::obj([
            ("size", Json::Int(c.size as i64)),
            ("assoc", Json::Int(c.associativity as i64)),
            ("lru_misses", Json::Int(c.lru_misses as i64)),
            ("fifo_misses", Json::Int(c.fifo_misses as i64)),
        ])
    };
    let rows = s
        .rows
        .iter()
        .map(|r| {
            Json::obj([
                ("benchmark", Json::str(r.benchmark.name())),
                ("instr_refs", Json::Int(r.instr_refs as i64)),
                ("data_refs", Json::Int(r.data_refs as i64)),
                ("instr", Json::Arr(r.instr.iter().map(cell_json).collect())),
                ("data", Json::Arr(r.data.iter().map(cell_json).collect())),
            ])
        })
        .collect();
    vec![
        (
            "sizes".to_owned(),
            Json::Arr(
                single_pass::SIZES
                    .iter()
                    .map(|&s| Json::Int(s as i64))
                    .collect(),
            ),
        ),
        (
            "assocs".to_owned(),
            Json::Arr(
                single_pass::ASSOCS
                    .iter()
                    .map(|&a| Json::Int(a as i64))
                    .collect(),
            ),
        ),
        ("rows".to_owned(), Json::Arr(rows)),
    ]
}

fn stream_json(s: &stream_sweep::StreamSweep) -> Vec<(String, Json)> {
    let benchmarks = s
        .benchmarks
        .iter()
        .map(|b| {
            Json::obj([
                ("benchmark", Json::str(b.benchmark.name())),
                ("instr_pct_removed", float_arr(&b.instr)),
                ("data_pct_removed", float_arr(&b.data)),
            ])
        })
        .collect();
    vec![
        ("ways".to_owned(), Json::Int(s.ways as i64)),
        (
            "run_lengths".to_owned(),
            Json::Arr(s.run_lengths.iter().map(|&r| Json::Int(r as i64)).collect()),
        ),
        ("benchmarks".to_owned(), Json::Arr(benchmarks)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_sweep_is_none() {
        let cfg = sweep_config(10_000, 42).unwrap();
        assert!(run_named("fig_9_9", &cfg).is_none());
    }

    #[test]
    fn sweep_config_validates_scale() {
        assert!(sweep_config(0, 42).is_err());
        assert!(sweep_config(MAX_SWEEP_SCALE + 1, 42).is_err());
        assert_eq!(
            sweep_config(5_000, 7).unwrap(),
            ExperimentConfig {
                scale: Scale::new(5_000),
                seed: 7
            }
        );
    }

    #[test]
    fn fig_3_1_encoding_is_deterministic_and_complete() {
        let cfg = sweep_config(10_000, 42).unwrap();
        let a = run_named("fig_3_1", &cfg).unwrap();
        let b = run_named("fig_3_1", &cfg).unwrap();
        assert_eq!(a.encode(), b.encode());
        assert_eq!(a.get("sweep").unwrap(), &Json::str("fig_3_1"));
        assert_eq!(a.get("rows").unwrap().as_arr().unwrap().len(), 6);
        assert!(a.get("avg_data_conflict_pct").unwrap().as_f64().unwrap() > 0.0);
        // The document survives a JSON round-trip.
        assert_eq!(Json::parse(&a.encode()).unwrap(), a);
    }

    #[test]
    fn conflict_and_stream_sweeps_encode() {
        let cfg = sweep_config(5_000, 42).unwrap();
        let v = run_named("victim_cache_4", &cfg).unwrap();
        assert_eq!(v.get("mechanism").unwrap(), &Json::str("victim_cache"));
        assert_eq!(v.get("entries").unwrap().as_arr().unwrap().len(), 4);
        let s = run_named("stream_single_8", &cfg).unwrap();
        assert_eq!(s.get("ways").unwrap().as_i64(), Some(1));
        assert_eq!(s.get("run_lengths").unwrap().as_arr().unwrap().len(), 9);
    }

    #[test]
    fn every_sweep_reports_its_default_engine() {
        for name in NAMED_SWEEPS {
            let default = engines_for(name)[0];
            assert!(
                ["classify", "single_pass", "fused", "per_cell"].contains(&default),
                "{name}: unexpected default {default}"
            );
        }
        let cfg = sweep_config(5_000, 42).unwrap();
        let v = run_named("victim_cache_4", &cfg).unwrap();
        assert_eq!(v.get("engine").unwrap(), &Json::str("fused"));
    }

    #[test]
    fn geometry_grid_engines_agree_and_encode() {
        let cfg = sweep_config(5_000, 42).unwrap();
        let fast = run_named_engine("geometry_grid", &cfg, "single_pass").unwrap();
        let oracle = run_named_engine("geometry_grid", &cfg, "per_cell").unwrap();
        assert_eq!(fast.get("engine").unwrap(), &Json::str("single_pass"));
        assert_eq!(oracle.get("engine").unwrap(), &Json::str("per_cell"));
        // Identical payload modulo the engine tag.
        assert_eq!(fast.get("rows"), oracle.get("rows"));
        assert_eq!(fast.get("rows").unwrap().as_arr().unwrap().len(), 6);
        assert_eq!(fast.get("sizes").unwrap().as_arr().unwrap().len(), 8);
        // Default engine is the single-pass one.
        assert_eq!(
            run_named("geometry_grid", &cfg).unwrap().encode(),
            fast.encode()
        );
        // The round trip survives.
        assert_eq!(Json::parse(&fast.encode()).unwrap(), fast);
    }

    #[test]
    fn fig_3_1_engines_agree() {
        let cfg = sweep_config(5_000, 42).unwrap();
        let classify = run_named_engine("fig_3_1", &cfg, "classify").unwrap();
        let single = run_named_engine("fig_3_1", &cfg, "single_pass").unwrap();
        assert_eq!(classify.get("rows"), single.get("rows"));
        // Engines a sweep does not accept are rejected.
        assert!(run_named_engine("fig_3_1", &cfg, "fused").is_none());
        assert!(run_named_engine("victim_cache_4", &cfg, "single_pass").is_none());
    }
}
