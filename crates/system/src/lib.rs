//! The baseline and improved system models of Jouppi (ISCA 1990).
//!
//! Section 2 of the paper defines the machine every experiment assumes: a
//! 1000-MIPS-peak processor with on-chip 4KB direct-mapped split I/D
//! caches (16B lines, 24-instruction-time miss penalty) in front of a 1MB
//! direct-mapped pipelined second-level cache (128B lines,
//! 320-instruction-time miss penalty to main memory). Section 5 improves
//! it with a four-entry data victim cache, a single instruction stream
//! buffer, and a four-way data stream buffer.
//!
//! This crate wires those organizations out of `jouppi-core` and
//! `jouppi-cache` parts and adds the instruction-time accounting behind
//! Figures 2-2 and 5-1 (performance lost per hierarchy level).
//!
//! # Examples
//!
//! ```
//! use jouppi_system::{SystemConfig, SystemModel};
//! use jouppi_workloads::{Benchmark, Scale};
//!
//! let mut base = SystemModel::new(SystemConfig::baseline());
//! let mut improved = SystemModel::new(SystemConfig::improved());
//! let src = Benchmark::Ccom.source(Scale::new(50_000), 42);
//! let b = base.run(&src);
//! let i = improved.run(&src);
//! assert!(i.performance_fraction() > b.performance_fraction());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod model;
mod perf;

pub use config::SystemConfig;
pub use model::{SystemModel, SystemReport};
pub use perf::TimeBreakdown;
