//! Figure 5-1: system performance with victim caches and stream buffers.

use jouppi_report::{percent, Bar, BarChart, Table};
use jouppi_system::{SystemConfig, SystemModel, SystemReport};
use jouppi_workloads::Benchmark;

use crate::common::{average, per_benchmark, ExperimentConfig};

/// Baseline-vs-improved runs for every benchmark.
#[derive(Clone, Debug, PartialEq)]
pub struct Fig51 {
    /// `(benchmark, baseline report, improved report)`.
    pub rows: Vec<(Benchmark, SystemReport, SystemReport)>,
}

/// Runs each benchmark through the §2 baseline and the §5 improved
/// machine.
pub fn run(cfg: &ExperimentConfig) -> Fig51 {
    let rows = per_benchmark(cfg, |_, trace| {
        let base = SystemModel::new(SystemConfig::baseline()).run(trace);
        let improved = SystemModel::new(SystemConfig::improved()).run(trace);
        (base, improved)
    })
    .into_iter()
    .map(|(b, (base, improved))| (b, base, improved))
    .collect();
    Fig51 { rows }
}

impl Fig51 {
    /// Average percent improvement in system performance (the paper
    /// reports 143% for its six benchmarks).
    pub fn avg_improvement_pct(&self) -> f64 {
        average(
            &self
                .rows
                .iter()
                .map(|(_, base, imp)| 100.0 * (imp.time.speedup_over(&base.time) - 1.0))
                .collect::<Vec<_>>(),
        )
    }

    /// Ratio of the improved system's combined L1 miss rate to the
    /// baseline's, averaged over benchmarks (paper: "less than half").
    pub fn avg_miss_rate_ratio(&self) -> f64 {
        average(
            &self
                .rows
                .iter()
                .map(|(_, base, imp)| {
                    if base.l1_miss_rate() == 0.0 {
                        1.0
                    } else {
                        imp.l1_miss_rate() / base.l1_miss_rate()
                    }
                })
                .collect::<Vec<_>>(),
        )
    }

    /// Renders the comparison.
    pub fn render(&self) -> String {
        let mut t = Table::new([
            "program",
            "base perf",
            "improved perf",
            "speedup",
            "base L1 miss",
            "improved L1 miss",
        ]);
        for (b, base, imp) in &self.rows {
            t.row([
                b.name().to_owned(),
                percent(base.performance_fraction()),
                percent(imp.performance_fraction()),
                format!("{:.2}x", imp.time.speedup_over(&base.time)),
                format!("{:.4}", base.l1_miss_rate()),
                format!("{:.4}", imp.l1_miss_rate()),
            ]);
        }
        let mut bars = BarChart::new("net performance: baseline (b) vs improved (I)", 50)
            .legend('b', "baseline net performance")
            .legend('I', "improved net performance");
        for (b, base, imp) in &self.rows {
            bars = bars
                .bar(Bar::new(
                    format!("{} base", b.name()),
                    vec![(base.performance_fraction(), 'b')],
                ))
                .bar(Bar::new(
                    format!("{} impr", b.name()),
                    vec![(imp.performance_fraction(), 'I')],
                ));
        }
        format!(
            "Figure 5-1: improved system performance \
             (4-entry data VC + I stream buffer + 4-way D stream buffer)\n{}\n{}\
             \naverage improvement: {:.0}% (paper: 143%)\n\
             average L1 miss-rate ratio: {:.2} (paper: < 0.5)\n",
            t.render(),
            bars.render(),
            self.avg_improvement_pct(),
            self.avg_miss_rate_ratio()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn improved_system_halves_miss_rate_and_speeds_up() {
        let cfg = ExperimentConfig::with_scale(80_000);
        let f = run(&cfg);
        assert_eq!(f.rows.len(), 6);
        for (b, base, imp) in &f.rows {
            assert!(
                imp.performance_fraction() >= base.performance_fraction(),
                "{b} got slower"
            );
        }
        // The two headline §5 claims (with generous bands for synthetic
        // workloads): miss rate cut around half or better, and a large
        // average performance improvement.
        let ratio = f.avg_miss_rate_ratio();
        assert!(ratio < 0.65, "miss-rate ratio {ratio} not < 0.65");
        let improvement = f.avg_improvement_pct();
        assert!(
            improvement > 40.0,
            "average improvement only {improvement}%"
        );
        assert!(f.render().contains("speedup"));
    }
}
