//! The mechanisms proposed in Jouppi (ISCA 1990): miss caches, victim
//! caches, and stream buffers, plus the prefetch baselines they are
//! compared against.
//!
//! All structures here sit *between a direct-mapped first-level cache and
//! its refill path*, exactly as the paper requires: they are consulted only
//! on first-level misses and therefore stay off the processor's critical
//! path.
//!
//! * [`MissCache`] — a 2-5 entry fully-associative cache loaded with the
//!   *requested* line on every L1 miss (§3.1).
//! * [`VictimCache`] — the improvement: loaded with the *victim* of the L1
//!   replacement instead, so no line is duplicated between L1 and the
//!   victim cache (§3.2).
//! * [`StreamBuffer`] — a sequential prefetch FIFO started at the line
//!   after a miss; only the head has a tag comparator (§4.1).
//! * [`MultiWayStreamBuffer`] — four stream buffers in parallel with LRU
//!   allocation, for interleaved data streams (§4.2).
//! * [`prefetch`] — prefetch-always, prefetch-on-miss, and tagged prefetch
//!   (Smith), used for the Figure 4-1 comparison.
//! * [`WriteBuffer`] — the write-through store path of §2, whose
//!   bandwidth argument motivates the pipelined second-level cache.
//! * [`AugmentedCache`] — a direct-mapped L1 composed with any of the
//!   above, producing the per-access outcomes and statistics every
//!   experiment consumes.
//! * [`Gang`] — many independent augmented organizations stepped in
//!   lockstep, so one pass over a trace drives a whole sweep row.
//!
//! # Examples
//!
//! The canonical tight conflict the paper opens §3.1 with — two lines that
//! alternate and map to the same cache line — is fully absorbed by a
//! one-entry victim cache:
//!
//! ```
//! use jouppi_cache::CacheGeometry;
//! use jouppi_core::{AccessOutcome, AugmentedCache, AugmentedConfig};
//! use jouppi_trace::Addr;
//!
//! # fn main() -> Result<(), jouppi_cache::GeometryError> {
//! let geom = CacheGeometry::direct_mapped(4096, 16)?;
//! let mut cache = AugmentedCache::new(AugmentedConfig::new(geom).victim_cache(1));
//! let (a, b) = (Addr::new(0x0000), Addr::new(0x1000)); // conflict partners
//! cache.access(a);
//! cache.access(b);
//! for _ in 0..100 {
//!     assert_eq!(cache.access(a), AccessOutcome::VictimHit);
//!     assert_eq!(cache.access(b), AccessOutcome::VictimHit);
//! }
//! assert_eq!(cache.stats().full_misses, 2); // only the two cold misses
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod augmented;
mod fused;
mod miss_cache;
mod multi_way;
pub mod prefetch;
mod stream_buffer;
pub mod stride;
mod victim_cache;
mod write_buffer;

pub use augmented::{AccessOutcome, AugmentedCache, AugmentedConfig, AugmentedStats, ConflictAid};
pub use fused::Gang;
pub use miss_cache::MissCache;
pub use multi_way::MultiWayStreamBuffer;
pub use stream_buffer::{StreamBuffer, StreamBufferConfig, StreamProbe};
pub use victim_cache::VictimCache;
pub use write_buffer::WriteBuffer;
