//! Stacked horizontal bar charts — the form of the paper's Figures 2-2
//! and 5-1 (performance with the lost fractions stacked above it).

use std::fmt;

/// One horizontal stacked bar: a label plus ordered segments that sum to
/// at most 1.0.
#[derive(Clone, Debug, PartialEq)]
pub struct Bar {
    /// Row label (e.g. a benchmark name).
    pub label: String,
    /// `(fraction, glyph)` segments, drawn left to right.
    pub segments: Vec<(f64, char)>,
}

impl Bar {
    /// Creates a bar.
    pub fn new(label: impl Into<String>, segments: Vec<(f64, char)>) -> Self {
        Bar {
            label: label.into(),
            segments,
        }
    }
}

/// A stacked horizontal bar chart with a shared 0..100% scale.
///
/// # Examples
///
/// ```
/// use jouppi_report::{Bar, BarChart};
///
/// let chart = BarChart::new("performance", 40)
///     .legend('#', "net performance")
///     .legend('.', "lost to misses")
///     .bar(Bar::new("ccom", vec![(0.10, '#'), (0.90, '.')]))
///     .bar(Bar::new("liver", vec![(0.16, '#'), (0.84, '.')]));
/// let text = chart.render();
/// assert!(text.contains("ccom"));
/// assert!(text.contains('#'));
/// ```
#[derive(Clone, Debug, Default)]
pub struct BarChart {
    title: String,
    width: usize,
    bars: Vec<Bar>,
    legend: Vec<(char, String)>,
}

impl BarChart {
    /// Creates an empty chart whose bars are `width` characters at 100%.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn new(title: impl Into<String>, width: usize) -> Self {
        assert!(width > 0, "bars need nonzero width");
        BarChart {
            title: title.into(),
            width,
            bars: Vec::new(),
            legend: Vec::new(),
        }
    }

    /// Adds a legend entry.
    #[must_use]
    pub fn legend(mut self, glyph: char, meaning: impl Into<String>) -> Self {
        self.legend.push((glyph, meaning.into()));
        self
    }

    /// Adds a bar.
    #[must_use]
    pub fn bar(mut self, bar: Bar) -> Self {
        self.bars.push(bar);
        self
    }

    /// Renders the chart.
    pub fn render(&self) -> String {
        let label_w = self
            .bars
            .iter()
            .map(|b| b.label.chars().count())
            .max()
            .unwrap_or(0);
        let mut out = String::new();
        out.push_str(&self.title);
        out.push('\n');
        for b in &self.bars {
            let mut row = String::new();
            let mut used = 0usize;
            for &(frac, glyph) in &b.segments {
                let cells = ((frac.clamp(0.0, 1.0)) * self.width as f64).round() as usize;
                let cells = cells.min(self.width - used);
                row.push_str(&glyph.to_string().repeat(cells));
                used += cells;
            }
            out.push_str(&format!(
                "{:<label_w$} |{row:<width$}|\n",
                b.label,
                width = self.width
            ));
        }
        out.push_str(&format!(
            "{:label_w$} 0%{:>width$}\n",
            "",
            "100%",
            width = self.width
        ));
        for (glyph, meaning) in &self.legend {
            out.push_str(&format!("  {glyph} {meaning}\n"));
        }
        out
    }
}

impl fmt::Display for BarChart {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chart() -> BarChart {
        BarChart::new("t", 20)
            .legend('#', "good")
            .legend('.', "bad")
            .bar(Bar::new("a", vec![(0.5, '#'), (0.5, '.')]))
            .bar(Bar::new("bb", vec![(0.25, '#'), (0.75, '.')]))
    }

    #[test]
    fn segments_fill_proportionally() {
        let text = chart().render();
        let a_line = text.lines().find(|l| l.starts_with("a ")).unwrap();
        assert_eq!(a_line.matches('#').count(), 10);
        assert_eq!(a_line.matches('.').count(), 10);
        let b_line = text.lines().find(|l| l.starts_with("bb")).unwrap();
        assert_eq!(b_line.matches('#').count(), 5);
        assert_eq!(b_line.matches('.').count(), 15);
    }

    #[test]
    fn labels_align_and_legend_prints() {
        let text = chart().render();
        let a = text.lines().find(|l| l.starts_with("a ")).unwrap();
        let b = text.lines().find(|l| l.starts_with("bb")).unwrap();
        assert_eq!(a.find('|'), b.find('|'));
        assert!(text.contains("# good"));
        assert!(text.contains(". bad"));
        assert!(text.contains("100%"));
    }

    #[test]
    fn overflow_is_clamped_to_width() {
        let c = BarChart::new("t", 10).bar(Bar::new("x", vec![(0.9, '#'), (0.9, '.')]));
        let line = c.render().lines().nth(1).unwrap().to_owned();
        let inner: String = line
            .chars()
            .skip_while(|&ch| ch != '|')
            .skip(1)
            .take_while(|&ch| ch != '|')
            .collect();
        assert_eq!(inner.chars().count(), 10);
    }

    #[test]
    fn empty_chart_renders() {
        let c = BarChart::new("empty", 10);
        assert!(c.render().contains("empty"));
        assert!(c.to_string().contains("0%"));
    }

    #[test]
    #[should_panic(expected = "nonzero width")]
    fn zero_width_panics() {
        let _ = BarChart::new("x", 0);
    }
}
