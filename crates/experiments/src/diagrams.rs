//! The paper's organization diagrams (Figures 2-1, 3-2, 3-4, 4-2, 4-4)
//! as ASCII art, so `repro` covers every numbered figure, not just the
//! measurement plots.

/// Figure 2-1: the baseline design.
pub const FIG_2_1: &str = r#"
Figure 2-1: baseline design

  +--------------------------------------------+
  |  CPU   FPU   MMU (TLB)                     |   instruction issue
  |   |           |                            |   250-1000 MIPS
  |  +---------+ +---------+                   |
  |  | L1 I $  | | L1 D $  |  4KB each,        |
  |  | direct- | | direct- |  16B lines        |
  |  | mapped  | | mapped  |                   |
  |  +----+----+ +----+----+                   |
  +-------|-----------|------------------------+  processor chip/module
          |           |            miss: 24 instruction times
  +-------+-----------+------------------------+
  |  L2 cache: 512KB-16MB direct-mapped,       |
  |  128-256B lines, pipelined (2-3 stages)    |
  +---------------------+----------------------+
                        |          miss: 320 instruction times
  +---------------------+----------------------+
  |  main memory: 512MB-4GB, ~1000 DRAMs       |
  +--------------------------------------------+
"#;

/// Figure 3-2: miss cache organization.
pub const FIG_3_2: &str = r#"
Figure 3-2: miss cache organization

     from processor        to processor
          |                     ^
          v                     |
  +-------+---------------------+-------+
  |      direct-mapped L1 cache         |
  +-------+---------------------^-------+
          | miss                | one-cycle reload
          v                     |
  +-------+---------------------+-------+
  |  miss cache: 2-5 entries,           |   loaded with the
  |  fully associative, LRU             | REQUESTED line on
  +-------+---------------------^-------+   every L1 miss
          | miss                | fill (also fills L1)
          v                     |
       to second-level cache ---+
"#;

/// Figure 3-4: victim cache organization.
pub const FIG_3_4: &str = r#"
Figure 3-4: victim cache organization

     from processor        to processor
          |                     ^
          v                     |
  +-------+---------------------+-------+
  |      direct-mapped L1 cache         |
  +---+---+---------------------^-------+
      |   | miss                | swap: victim-cache hit
      |   v                     v exchanges the two lines
      | +-+---------------------+-----+
      | | victim cache: 1-5 entries,  |   loaded with the
      +>| fully associative, LRU      |  VICTIM of each L1
 victim | +-------+-------------^-----+   replacement -- no
        |         | miss        |          duplication
        |         v             | fill (L1 only)
        +--> to second-level ---+
"#;

/// Figure 4-2: sequential stream buffer design.
pub const FIG_4_2: &str = r#"
Figure 4-2: sequential stream buffer design

     from processor        to processor
          |                     ^
          v                     |
  +-------+---------------------+-------+
  |      direct-mapped L1 cache         |
  +-------+---------------------^-------+
          | miss                | head hit: one-cycle reload,
          v                     | queue shifts up
  +-------+---------------------+-------+
  | stream buffer (FIFO, 4 entries)     |
  |  head -> | tag | avail | data |  <- only the head has
  |          | tag | avail | data |     a comparator; non-
  |          | tag | avail | data |     sequential misses
  |  tail -> | tag | avail | data |     flush + restart
  +-------+---------------------^-------+
          | miss (restart at    | prefetch successive lines
          v  miss+1)            | (pipelined, multiple in flight)
       to second-level cache ---+
"#;

/// Figure 4-4: four-way stream buffer design.
pub const FIG_4_4: &str = r#"
Figure 4-4: four-way stream buffer design

     from processor        to processor
          |                     ^
          v                     |
  +-------+---------------------+-------+
  |      direct-mapped L1 cache         |
  +-------+---------------------^-------+
          | miss                | hit in any way's head
          v                     |
  +---------+---------+---------+---------+
  | buffer0 | buffer1 | buffer2 | buffer3 |  all four head
  | (FIFO)  | (FIFO)  | (FIFO)  | (FIFO)  |  comparators checked
  +---------+---------+---------+---------+  in parallel
          | miss in all ways: the LEAST-RECENTLY-HIT way is
          v cleared and restarted at the miss address (LRU)
       to second-level cache
"#;

/// Renders all the organization diagrams.
pub fn render_all() -> String {
    format!("{FIG_2_1}{FIG_3_2}{FIG_3_4}{FIG_4_2}{FIG_4_4}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagrams_mention_their_key_design_points() {
        assert!(FIG_2_1.contains("pipelined"));
        assert!(FIG_2_1.contains("24 instruction times"));
        assert!(FIG_3_2.contains("REQUESTED"));
        assert!(FIG_3_4.contains("VICTIM"));
        assert!(FIG_3_4.contains("swap"));
        assert!(FIG_4_2.contains("only the head"));
        assert!(FIG_4_4.contains("LEAST-RECENTLY-HIT"));
    }

    #[test]
    fn render_all_concatenates_every_figure() {
        let all = render_all();
        for fig in [
            "Figure 2-1",
            "Figure 3-2",
            "Figure 3-4",
            "Figure 4-2",
            "Figure 4-4",
        ] {
            assert!(all.contains(fig), "missing {fig}");
        }
    }

    #[test]
    fn diagrams_are_plain_ascii() {
        for (name, fig) in [
            ("2-1", FIG_2_1),
            ("3-2", FIG_3_2),
            ("3-4", FIG_3_4),
            ("4-2", FIG_4_2),
            ("4-4", FIG_4_4),
        ] {
            assert!(fig.is_ascii(), "figure {name} contains non-ASCII");
            assert!(
                fig.lines().all(|l| l.len() <= 80),
                "figure {name} exceeds 80 columns"
            );
        }
    }
}
