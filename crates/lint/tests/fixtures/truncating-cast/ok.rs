//! Fixture: the same narrowing made explicit — `try_from` saturates
//! instead of wrapping.

pub fn percent(hits: u64, total: u64) -> u32 {
    u32::try_from((100 * hits) / total.max(1)).unwrap_or(u32::MAX)
}
