//! One-pass multi-geometry miss-count engines.
//!
//! The per-cell simulators in [`crate::set_assoc`] pay one trace pass per
//! (size, associativity) cell. This module answers *every* cell from a
//! single traversal:
//!
//! * [`LruSweep`] — Mattson's stack-distance algorithm, generalized by
//!   *set refinement*: an S-set, A-way LRU cache hits exactly the
//!   references whose stack distance **within their set's substream** is
//!   ≤ A (sets partition the line space by the same shift/mask indexing
//!   as [`crate::CacheGeometry::set_of`], and LRU acts independently per
//!   set). Tracking within-set distances for one set count therefore
//!   yields the exact miss count of every associativity at that set
//!   count; tracking a list of set counts covers a whole size ×
//!   associativity grid in one pass. The 1-set level is classic Mattson:
//!   the fully-associative miss-rate curve for every capacity at once.
//!   Two backends share this theory: [`LruSweep::for_set_counts`]
//!   resolves *every* depth with per-set Fenwick trees (needed for
//!   capacity curves), while [`LruSweep::bounded`] resolves depths only
//!   up to each level's largest queried associativity with capped
//!   per-set MRU arrays — still exact for those queries (hit ⇔ depth ≤
//!   ways) at a fraction of the per-reference cost.
//!
//! * [`FifoSweep`] — FIFO has no inclusion property (Belady's anomaly:
//!   more frames can miss *more*), so no histogram shortcut exists. The
//!   DEW observation (Wires et al., arXiv:1506.03181) still collapses
//!   the sweep into one pass: FIFO state changes **only on misses**, so
//!   each cell can be kept as a tiny ring of per-set cursors, advanced
//!   lazily, with a per-line presence bitmask selecting in O(1) which
//!   cells miss. Work per reference is O(1 + #cells-that-miss) instead
//!   of O(#cells).
//!
//! Both engines are exact — equal to the [`crate::Cache`] oracle miss
//! for miss, which the unit tests here and the cross-crate equivalence
//! suites pin on random, cyclic, and Belady-anomaly streams.

use std::error::Error;
use std::fmt;

use jouppi_trace::LineAddr;

use crate::line_hash::{FxHashMap, FxHashSet};
use crate::CacheGeometry;

/// Why a single-pass engine could not be constructed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SinglePassError {
    /// No geometry cells were requested.
    Empty,
    /// A set count was zero or not a power of two (shift/mask indexing).
    BadSetCount(u64),
    /// An associativity was zero.
    BadAssociativity(u64),
    /// More FIFO cells than the presence bitmask can index.
    TooManyCells {
        /// Cells requested.
        requested: usize,
        /// The [`FifoSweep::MAX_CELLS`] limit.
        max: usize,
    },
}

impl fmt::Display for SinglePassError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SinglePassError::Empty => write!(f, "at least one geometry cell is required"),
            SinglePassError::BadSetCount(v) => {
                write!(f, "set count must be a nonzero power of two, got {v}")
            }
            SinglePassError::BadAssociativity(v) => {
                write!(f, "associativity must be nonzero, got {v}")
            }
            SinglePassError::TooManyCells { requested, max } => {
                write!(
                    f,
                    "{requested} FIFO cells requested; the bitmask holds {max}"
                )
            }
        }
    }
}

impl Error for SinglePassError {}

/// One set count's tracking state: a Fenwick tree over *local* (per-set)
/// timestamps counting most-recent-access marks, plus the owner row of
/// each timestamp so compaction can test liveness.
///
/// Timestamps are set-local and compacted when the arena fills: live
/// stamps are renumbered 1..=live and capacity doubles over the live
/// count, so memory is O(footprint) and compaction is amortized O(1)
/// per insertion (each compaction buys `live` headroom and costs
/// O(live) — the same coin the doubling rebuild in
/// [`crate::StackDistanceProfile`] pays, but per set).
#[derive(Clone, Debug, Default)]
struct SetTracker {
    /// Fenwick tree, 1-based; `tree.len() == owner.len() + 1`.
    tree: Vec<u32>,
    /// `owner[t - 1]` = row that last claimed local timestamp `t`.
    owner: Vec<u32>,
    /// Highest local timestamp issued.
    now: u32,
    /// Marked (live) timestamps = distinct lines resident in this set's
    /// LRU stack.
    live: u32,
}

impl SetTracker {
    /// Sum of marks at timestamps `1..=idx`.
    fn prefix(&self, mut idx: u32) -> u32 {
        let mut sum = 0;
        while idx > 0 {
            sum += self.tree[idx as usize];
            idx &= idx - 1;
        }
        sum
    }

    /// Adds `delta` (±1) to the mark at timestamp `idx`.
    fn add(&mut self, mut idx: u32, delta: i32) {
        let cap = self.owner.len() as u32;
        while idx <= cap {
            self.tree[idx as usize] = self.tree[idx as usize].wrapping_add_signed(delta);
            idx += idx & idx.wrapping_neg();
        }
    }

    /// Renumbers live timestamps to `1..=live` (updating the rows' slots
    /// in `ts` at stride `nlevels`, offset `k`) and rebuilds the tree
    /// with doubled headroom.
    fn compact(&mut self, ts: &mut [u32], k: usize, nlevels: usize) {
        let mut kept: u32 = 0;
        for t in 1..=self.now {
            let row = self.owner[(t - 1) as usize];
            let slot = row as usize * nlevels + k;
            // A timestamp is live iff its owner row still points at it;
            // anything else was superseded by a later access.
            if ts[slot] == t {
                self.owner[kept as usize] = row;
                kept += 1;
                ts[slot] = kept;
            }
        }
        debug_assert_eq!(kept, self.live);
        self.now = kept;
        let cap = (kept as usize * 2).max(8);
        self.owner.resize(cap, 0);
        self.tree.clear();
        self.tree.resize(cap + 1, 0);
        for mark in &mut self.tree[1..=kept as usize] {
            *mark = 1;
        }
        for i in 1..=cap {
            let parent = i + (i & i.wrapping_neg());
            if parent <= cap {
                let v = self.tree[i];
                self.tree[parent] += v;
            }
        }
    }
}

/// One tracked set count: its mask, per-set trackers, and the shared
/// within-set stack-distance histogram.
#[derive(Clone, Debug)]
struct Level {
    /// `num_sets - 1`; line→set is one mask.
    mask: u64,
    /// `hist[d]` = references at within-set stack distance exactly `d`
    /// (1-based; index 0 unused).
    hist: Vec<u64>,
    /// One tracker per set.
    sets: Vec<SetTracker>,
}

/// Free-slot sentinel for bounded MRU arrays; line addresses must not
/// collide with it (real line addresses are byte addresses shifted
/// down, so they cannot).
const EMPTY_LINE: u64 = u64::MAX;

/// One tracked set count under the bounded backend: flattened per-set
/// MRU arrays truncated at the level's associativity bound.
///
/// A hit at array index `i` is within-set stack distance `i + 1`; a
/// warm reference absent from the array is deeper than the bound and
/// lands in one overflow bucket. Nothing is lost: an A-way set hits
/// exactly the references with depth ≤ A, so depths beyond the largest
/// associativity anyone will query never need resolving — and the
/// per-reference cost drops from two Fenwick traversals to a word scan
/// that usually ends at the first (most recent) slot.
#[derive(Clone, Debug)]
struct BoundedLevel {
    /// `num_sets - 1`; line→set is one mask.
    mask: u64,
    /// Largest associativity this level can answer.
    bound: u32,
    /// `hist[d]` = references at within-set stack distance exactly `d`
    /// (`2..=bound`; indices 0 and 1 unused — depth-1 hits are below
    /// every answerable associativity, so no query ever reads them and
    /// `observe` does not count them).
    hist: Vec<u64>,
    /// Warm references deeper than `bound` — a miss at every
    /// answerable associativity.
    deep: u64,
    /// Resident entries per set (each ≤ `bound`).
    lens: Vec<u32>,
    /// `entries[set * bound..][..lens[set]]`: the set's LRU stack, most
    /// recent first, truncated at `bound` (whatever falls off the end
    /// is exactly the set's least-recent tracked line).
    entries: Vec<u64>,
}

/// How a [`LruSweep`] tracks within-set stack distances.
#[derive(Clone, Debug)]
enum Backend {
    /// Fenwick trees over per-set timestamps: every depth resolved
    /// exactly, any associativity answerable.
    Exact {
        levels: Vec<Level>,
        /// Line → dense row index into `ts`.
        rows: FxHashMap<LineAddr, u32>,
        /// `ts[row * levels + k]` = the row's current local timestamp
        /// at level `k` (0 = not resident in that level's tracking).
        ts: Vec<u32>,
    },
    /// Capped per-set MRU arrays: exact for associativities up to each
    /// level's bound, `None` beyond it.
    Bounded {
        levels: Vec<BoundedLevel>,
        /// Lines ever observed (first-touch detection).
        seen: FxHashSet<LineAddr>,
    },
}

/// A single-pass LRU sweep: one trace traversal, exact miss counts for
/// every (set count in the tracked list) × (any associativity) cell.
///
/// # Examples
///
/// ```
/// use jouppi_cache::LruSweep;
/// use jouppi_trace::LineAddr;
///
/// // Track set counts 1 (fully associative) and 2.
/// let mut sweep = LruSweep::for_set_counts(&[1, 2]).unwrap();
/// for &n in &[0u64, 1, 2, 0, 1, 2] {
///     sweep.observe(LineAddr::new(n));
/// }
/// // FA-LRU with 3 lines holds the whole loop: only cold misses.
/// assert_eq!(sweep.misses(1, 3), Some(3));
/// // 2 lines thrash: every reference misses.
/// assert_eq!(sweep.misses(1, 2), Some(6));
/// // 2 sets × 2 ways: lines {0, 2} share set 0 but both fit.
/// assert_eq!(sweep.misses(2, 2), Some(3));
/// ```
#[derive(Clone, Debug)]
pub struct LruSweep {
    /// Tracked set counts, ascending and distinct.
    set_counts: Vec<u64>,
    backend: Backend,
    /// Scratch: within-set depth per level for the last `observe_depths`.
    depths: Vec<u32>,
    total: u64,
    cold: u64,
}

impl LruSweep {
    /// Creates a sweep tracking the given set counts (deduplicated and
    /// sorted; each must be a nonzero power of two).
    ///
    /// # Errors
    ///
    /// [`SinglePassError`] when the list is empty or a count is invalid.
    pub fn for_set_counts(set_counts: &[u64]) -> Result<Self, SinglePassError> {
        let counts = LruSweep::validated_counts(set_counts)?;
        let levels = counts
            .iter()
            .map(|&c| Level {
                mask: c - 1,
                hist: Vec::new(),
                sets: vec![SetTracker::default(); c as usize],
            })
            .collect();
        let n = counts.len();
        Ok(LruSweep {
            set_counts: counts,
            backend: Backend::Exact {
                levels,
                rows: FxHashMap::default(),
                ts: Vec::new(),
            },
            depths: vec![0; n],
            total: 0,
            cold: 0,
        })
    }

    /// Creates a *bounded* sweep over `(num_sets, max_associativity)`
    /// cells: each set count's within-set distances are resolved only up
    /// to the largest associativity listed for it. Queries at or below
    /// the bound stay exact — an A-way set hits iff the depth is ≤ A, so
    /// deeper depths never matter — while [`Self::misses`] returns
    /// `None` beyond it. The payoff is the per-reference cost: a short
    /// scan of a capped per-set MRU array instead of Fenwick-tree
    /// traversals, which is what lets one pass answer a whole geometry
    /// grid faster than simulating any single cell.
    ///
    /// # Examples
    ///
    /// ```
    /// use jouppi_cache::LruSweep;
    /// use jouppi_trace::LineAddr;
    ///
    /// // Fully associative up to 3 ways, 2 sets up to 2 ways.
    /// let mut sweep = LruSweep::bounded(&[(1, 3), (2, 2)]).unwrap();
    /// for &n in &[0u64, 1, 2, 0, 1, 2] {
    ///     sweep.observe(LineAddr::new(n));
    /// }
    /// assert_eq!(sweep.misses(1, 3), Some(3));
    /// assert_eq!(sweep.misses(1, 2), Some(6));
    /// assert_eq!(sweep.misses(2, 2), Some(3));
    /// // Beyond the tracked bound the sweep cannot answer.
    /// assert_eq!(sweep.misses(1, 4), None);
    /// ```
    ///
    /// # Errors
    ///
    /// [`SinglePassError`] when the list is empty, a set count is not a
    /// nonzero power of two, or an associativity bound is zero (or does
    /// not fit the `u32` the backend stores it in).
    pub fn bounded(cells: &[(u64, u64)]) -> Result<Self, SinglePassError> {
        let counts =
            LruSweep::validated_counts(&cells.iter().map(|&(s, _)| s).collect::<Vec<_>>())?;
        let mut bounds = vec![0u32; counts.len()];
        for &(sets, assoc) in cells {
            let bound = match u32::try_from(assoc) {
                Ok(b) if b > 0 => b,
                _ => return Err(SinglePassError::BadAssociativity(assoc)),
            };
            let k = counts
                .binary_search(&sets)
                .expect("counts were built from these cells");
            bounds[k] = bounds[k].max(bound);
        }
        let levels = counts
            .iter()
            .zip(&bounds)
            .map(|(&c, &bound)| BoundedLevel {
                mask: c - 1,
                bound,
                hist: vec![0; bound as usize + 1],
                deep: 0,
                lens: vec![0; c as usize],
                entries: vec![EMPTY_LINE; c as usize * bound as usize],
            })
            .collect();
        let n = counts.len();
        Ok(LruSweep {
            set_counts: counts,
            backend: Backend::Bounded {
                levels,
                seen: FxHashSet::default(),
            },
            depths: vec![0; n],
            total: 0,
            cold: 0,
        })
    }

    /// Validates, sorts, and deduplicates a set-count list.
    fn validated_counts(set_counts: &[u64]) -> Result<Vec<u64>, SinglePassError> {
        let mut counts = set_counts.to_vec();
        counts.sort_unstable();
        counts.dedup();
        if counts.is_empty() {
            return Err(SinglePassError::Empty);
        }
        for &c in &counts {
            if c == 0 || !c.is_power_of_two() {
                return Err(SinglePassError::BadSetCount(c));
            }
        }
        Ok(counts)
    }

    /// Creates a sweep tracking every power-of-two set count up to and
    /// including `max_sets`.
    ///
    /// # Errors
    ///
    /// [`SinglePassError`] when `max_sets` is not a power of two.
    pub fn up_to(max_sets: u64) -> Result<Self, SinglePassError> {
        if max_sets == 0 || !max_sets.is_power_of_two() {
            return Err(SinglePassError::BadSetCount(max_sets));
        }
        let counts: Vec<u64> = (0..=max_sets.trailing_zeros()).map(|s| 1u64 << s).collect();
        LruSweep::for_set_counts(&counts)
    }

    /// Observes one reference.
    pub fn observe(&mut self, line: LineAddr) {
        self.observe_depths(line);
    }

    /// Observes one reference and returns `(first touch, depths)`, where
    /// `depths[k]` is the within-set stack distance at the k-th tracked
    /// set count (in [`Self::set_counts`] order; 0 on first touch).
    ///
    /// The per-reference prediction: an S-set, A-way LRU cache hits this
    /// reference iff it is not a first touch and the depth at level S is
    /// ≤ A. On a [`Self::bounded`] sweep, depths deeper than a level's
    /// bound are reported as `bound + 1` — the prediction stays correct
    /// for every associativity the level can answer.
    pub fn observe_depths(&mut self, line: LineAddr) -> (bool, &[u32]) {
        self.total += 1;
        let nlevels = self.set_counts.len();
        let cold = match &mut self.backend {
            Backend::Exact { levels, rows, ts } => {
                let next = rows.len() as u32;
                let row = *rows.entry(line).or_insert(next);
                let cold = row == next;
                if cold {
                    ts.resize(ts.len() + nlevels, 0);
                }
                let base = row as usize * nlevels;
                for (k, level) in levels.iter_mut().enumerate() {
                    let set = (line.get() & level.mask) as usize;
                    let tracker = &mut level.sets[set];
                    let prev = ts[base + k];
                    let mut depth = 0u32;
                    if prev != 0 {
                        // Marks above `prev` are the distinct lines of
                        // this set touched since the previous access to
                        // this line.
                        depth = tracker.live - tracker.prefix(prev) + 1;
                        let d = depth as usize;
                        if level.hist.len() <= d {
                            level.hist.resize(d + 1, 0);
                        }
                        level.hist[d] += 1;
                        tracker.add(prev, -1);
                        tracker.live -= 1;
                        // Clear before any compaction so the stale stamp
                        // reads as dead.
                        ts[base + k] = 0;
                    }
                    if tracker.now as usize == tracker.owner.len() {
                        tracker.compact(ts, k, nlevels);
                    }
                    let t = tracker.now + 1;
                    tracker.owner[(t - 1) as usize] = row;
                    tracker.add(t, 1);
                    tracker.live += 1;
                    tracker.now = t;
                    ts[base + k] = t;
                    self.depths[k] = depth;
                }
                cold
            }
            Backend::Bounded { levels, seen } => {
                let raw = line.get();
                debug_assert_ne!(raw, EMPTY_LINE, "line collides with the free sentinel");
                // Fast path: the most recent line of its set at the
                // *coarsest* level is at depth 1 at every level (set
                // refinement: finer substreams are subsequences, so
                // depth is non-increasing in set count). A depth-1 hit
                // changes nothing — the line already fronts every MRU
                // array, it cannot be cold, and depth 1 is a hit at
                // every answerable associativity — so the whole
                // reference is one compare.
                {
                    let coarsest = &levels[0];
                    let set = (raw & coarsest.mask) as usize;
                    if coarsest.entries[set * coarsest.bound as usize] == raw {
                        self.depths.fill(1);
                        return (false, &self.depths);
                    }
                }
                let cold = seen.insert(line);
                for (k, level) in levels.iter_mut().enumerate() {
                    let bound = level.bound as usize;
                    let set = (raw & level.mask) as usize;
                    let base = set * bound;
                    // Depth-1 hit at this level: nothing to shift, and
                    // nothing to count — `misses` never reads depths a
                    // 1-way set already hits (`hist[1]` stays 0).
                    if level.entries[base] == raw {
                        self.depths[k] = 1;
                        continue;
                    }
                    // Search-and-shift from slot 1: the line moves to
                    // the front and each walked entry slides one slot
                    // down; when the line is found mid-array the walk
                    // has already rotated the prefix.
                    let len = level.lens[set] as usize;
                    let mut carry = level.entries[base];
                    level.entries[base] = raw;
                    let mut depth = 0u32;
                    let slots = level.entries[base + 1..base + len.max(1)].iter_mut();
                    for (slot, d) in slots.zip(2u32..) {
                        let cur = *slot;
                        *slot = carry;
                        if cur == raw {
                            depth = d;
                            break;
                        }
                        carry = cur;
                    }
                    if depth != 0 {
                        level.hist[depth as usize] += 1;
                    } else {
                        // Deeper than the bound, or a first touch. The
                        // carried-out line — the set's least-recent
                        // tracked entry — falls off unless there is
                        // still room for it.
                        if len == 0 {
                            level.lens[set] = 1;
                        } else if len < bound {
                            level.entries[base + len] = carry;
                            level.lens[set] += 1;
                        }
                        if !cold {
                            level.deep += 1;
                        }
                        depth = level.bound + 1;
                    }
                    self.depths[k] = if cold { 0 } else { depth };
                }
                cold
            }
        };
        if cold {
            self.cold += 1;
        }
        (cold, &self.depths)
    }

    /// The tracked set counts, ascending.
    pub fn set_counts(&self) -> &[u64] {
        &self.set_counts
    }

    /// Index of `num_sets` in [`Self::set_counts`], if tracked.
    pub fn level_of(&self, num_sets: u64) -> Option<usize> {
        // jouppi-lint: allow(swallowed-result) — Err here is just "not found", converted to the Option this accessor returns
        self.set_counts.binary_search(&num_sets).ok()
    }

    /// Exact misses of an LRU cache with `num_sets` sets of
    /// `associativity` ways on the observed stream; `None` when
    /// `num_sets` is not tracked, `associativity` is 0, or (on a
    /// [`Self::bounded`] sweep) `associativity` exceeds the level's
    /// bound.
    pub fn misses(&self, num_sets: u64, associativity: u64) -> Option<u64> {
        if associativity == 0 {
            return None;
        }
        let k = self.level_of(num_sets)?;
        match &self.backend {
            Backend::Exact { levels, .. } => {
                let deep: u64 = levels[k].hist.iter().skip(associativity as usize + 1).sum();
                Some(self.cold + deep)
            }
            Backend::Bounded { levels, .. } => {
                let level = &levels[k];
                if associativity > u64::from(level.bound) {
                    return None;
                }
                let above: u64 = level.hist.iter().skip(associativity as usize + 1).sum();
                Some(self.cold + level.deep + above)
            }
        }
    }

    /// Exact misses of an LRU cache with the given geometry.
    pub fn misses_for_geometry(&self, geom: &CacheGeometry) -> Option<u64> {
        self.misses(geom.num_sets(), geom.associativity())
    }

    /// Miss rate of an LRU cache with the given geometry.
    pub fn miss_rate_for_geometry(&self, geom: &CacheGeometry) -> Option<f64> {
        self.miss_rate(geom.num_sets(), geom.associativity())
    }

    /// Miss rate of an LRU cache with `num_sets` sets of `associativity`
    /// ways (0.0 on an empty stream).
    pub fn miss_rate(&self, num_sets: u64, associativity: u64) -> Option<f64> {
        let misses = self.misses(num_sets, associativity)?;
        Some(if self.total == 0 {
            0.0
        } else {
            misses as f64 / self.total as f64
        })
    }

    /// Total references observed.
    pub fn total_refs(&self) -> u64 {
        self.total
    }

    /// First-touch (compulsory) references.
    pub fn cold_refs(&self) -> u64 {
        self.cold
    }

    /// Number of distinct lines observed.
    pub fn distinct_lines(&self) -> usize {
        match &self.backend {
            Backend::Exact { rows, .. } => rows.len(),
            Backend::Bounded { seen, .. } => seen.len(),
        }
    }
}

/// One FIFO geometry cell: set-major rings of resident lines.
#[derive(Clone, Debug)]
struct FifoCell {
    /// `num_sets - 1`.
    set_mask: u64,
    assoc: u32,
    /// `slots[set * assoc + way]`; [`FifoSweep::EMPTY`] = free.
    slots: Vec<u64>,
    /// Next way to fill/evict per set (= insertion count mod assoc, so
    /// it always points at the oldest resident — exactly the
    /// [`crate::Cache`] FIFO fill order: free ways in index order, then
    /// minimum insertion stamp).
    cursors: Vec<u32>,
    misses: u64,
}

/// A single-pass FIFO sweep over an explicit list of geometry cells.
///
/// # Examples
///
/// Belady's anomaly, straight from the textbook stream — *more* frames,
/// *more* misses — which is why FIFO needs per-cell state rather than a
/// stack-distance histogram:
///
/// ```
/// use jouppi_cache::FifoSweep;
/// use jouppi_trace::LineAddr;
///
/// let mut sweep = FifoSweep::new(&[(1, 3), (1, 4)]).unwrap();
/// for &n in &[1u64, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5] {
///     sweep.observe(LineAddr::new(n));
/// }
/// assert_eq!(sweep.misses(1, 3), Some(9));
/// assert_eq!(sweep.misses(1, 4), Some(10));
/// ```
#[derive(Clone, Debug)]
pub struct FifoSweep {
    /// `(num_sets, associativity)` per cell, in construction order.
    keys: Vec<(u64, u64)>,
    cells: Vec<FifoCell>,
    /// Line → bitmask of cells the line is currently resident in.
    present: FxHashMap<LineAddr, u128>,
    /// Mask with one bit per cell.
    all: u128,
    total: u64,
}

impl FifoSweep {
    /// Most cells one sweep can track (the width of the per-line
    /// presence bitmask).
    pub const MAX_CELLS: usize = 128;

    /// Free-slot sentinel; line addresses must not collide with it (real
    /// line addresses are byte addresses shifted down, so they cannot).
    const EMPTY: u64 = u64::MAX;

    /// Creates a sweep over `(num_sets, associativity)` cells
    /// (duplicates removed, order preserved).
    ///
    /// # Errors
    ///
    /// [`SinglePassError`] when the list is empty or oversized, a set
    /// count is not a nonzero power of two, or an associativity is 0.
    pub fn new(cells: &[(u64, u64)]) -> Result<Self, SinglePassError> {
        let mut keys: Vec<(u64, u64)> = Vec::with_capacity(cells.len());
        for &cell in cells {
            if !keys.contains(&cell) {
                keys.push(cell);
            }
        }
        if keys.is_empty() {
            return Err(SinglePassError::Empty);
        }
        if keys.len() > FifoSweep::MAX_CELLS {
            return Err(SinglePassError::TooManyCells {
                requested: keys.len(),
                max: FifoSweep::MAX_CELLS,
            });
        }
        let cells = keys
            .iter()
            .map(|&(sets, assoc)| {
                if sets == 0 || !sets.is_power_of_two() {
                    return Err(SinglePassError::BadSetCount(sets));
                }
                if assoc == 0 {
                    return Err(SinglePassError::BadAssociativity(assoc));
                }
                Ok(FifoCell {
                    set_mask: sets - 1,
                    assoc: assoc as u32,
                    slots: vec![FifoSweep::EMPTY; (sets * assoc) as usize],
                    cursors: vec![0; sets as usize],
                    misses: 0,
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        let all = if keys.len() == FifoSweep::MAX_CELLS {
            u128::MAX
        } else {
            (1u128 << keys.len()) - 1
        };
        Ok(FifoSweep {
            keys,
            cells,
            present: FxHashMap::default(),
            all,
            total: 0,
        })
    }

    /// Observes one reference, returning the bitmask of cells (by
    /// construction order) that missed.
    pub fn observe(&mut self, line: LineAddr) -> u128 {
        self.total += 1;
        let raw = line.get();
        debug_assert_ne!(
            raw,
            FifoSweep::EMPTY,
            "line collides with the free sentinel"
        );
        let bits = self.present.get(&line).copied().unwrap_or(0);
        let missing = !bits & self.all;
        if missing == 0 {
            return 0;
        }
        let mut m = missing;
        while m != 0 {
            let idx = m.trailing_zeros() as usize;
            m &= m - 1;
            let cell = &mut self.cells[idx];
            cell.misses += 1;
            let set = (raw & cell.set_mask) as usize;
            let cursor = cell.cursors[set];
            let pos = set * cell.assoc as usize + cursor as usize;
            let evicted = cell.slots[pos];
            if evicted != FifoSweep::EMPTY {
                // The victim is resident in this cell, so its presence
                // entry exists; it cannot be `line` (we are missing here).
                let e = self
                    .present
                    .get_mut(&LineAddr::new(evicted))
                    .expect("evicted line was resident");
                *e &= !(1u128 << idx);
            }
            cell.slots[pos] = raw;
            cell.cursors[set] = if cursor + 1 == cell.assoc {
                0
            } else {
                cursor + 1
            };
        }
        *self.present.entry(line).or_insert(0) |= missing;
        missing
    }

    /// The tracked `(num_sets, associativity)` cells, in construction
    /// order (duplicates removed).
    pub fn cells(&self) -> &[(u64, u64)] {
        &self.keys
    }

    /// Exact FIFO misses for the `(num_sets, associativity)` cell;
    /// `None` when the cell is not tracked.
    pub fn misses(&self, num_sets: u64, associativity: u64) -> Option<u64> {
        let idx = self
            .keys
            .iter()
            .position(|&k| k == (num_sets, associativity))?;
        Some(self.cells[idx].misses)
    }

    /// Exact FIFO misses for the given geometry.
    pub fn misses_for_geometry(&self, geom: &CacheGeometry) -> Option<u64> {
        self.misses(geom.num_sets(), geom.associativity())
    }

    /// Total references observed.
    pub fn total_refs(&self) -> u64 {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cache, ReplacementPolicy};

    fn l(n: u64) -> LineAddr {
        LineAddr::new(n)
    }

    /// A pseudo-random stream with heavy reuse and phase shifts.
    fn mixed_stream() -> Vec<u64> {
        let mut v: Vec<u64> = (0..4000u64).map(|i| (i * 31 + i / 7) % 97).collect();
        v.extend((0..500u64).flat_map(|i| [i % 40, (i * 17) % 160]));
        v
    }

    /// Cyclic thrash: the classic LRU worst case, plus a conflict-heavy
    /// stride that lands every reference in set 0 of small set counts.
    fn adversarial_streams() -> Vec<Vec<u64>> {
        vec![
            (0..600u64).map(|i| i % 9).collect(),
            (0..600u64).map(|i| (i % 7) * 64).collect(),
            vec![1, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5],
            (0..400u64).map(|i| (i * i) % 53).collect(),
        ]
    }

    /// The per-cell oracle's misses for one geometry/policy.
    fn oracle(stream: &[u64], sets: u64, assoc: u64, policy: ReplacementPolicy) -> u64 {
        let geom = CacheGeometry::new(sets * assoc * 16, 16, assoc).expect("valid");
        assert_eq!(geom.num_sets(), sets);
        let mut cache = Cache::with_policy(geom, policy);
        let mut misses = 0;
        for &n in stream {
            if cache.access_line(l(n)).is_miss() {
                misses += 1;
            }
        }
        misses
    }

    const GRID: [(u64, u64); 12] = [
        (1, 1),
        (1, 4),
        (1, 16),
        (2, 2),
        (4, 1),
        (4, 4),
        (8, 2),
        (8, 8),
        (16, 1),
        (16, 4),
        (32, 2),
        (64, 1),
    ];

    #[test]
    fn lru_sweep_matches_cache_oracle_on_mixed_stream() {
        let stream = mixed_stream();
        let counts: Vec<u64> = GRID.iter().map(|&(s, _)| s).collect();
        let mut sweep = LruSweep::for_set_counts(&counts).unwrap();
        for &n in &stream {
            sweep.observe(l(n));
        }
        for &(sets, assoc) in &GRID {
            assert_eq!(
                sweep.misses(sets, assoc),
                Some(oracle(&stream, sets, assoc, ReplacementPolicy::Lru)),
                "LRU {sets} sets × {assoc} ways"
            );
        }
    }

    #[test]
    fn fifo_sweep_matches_cache_oracle_on_mixed_stream() {
        let stream = mixed_stream();
        let mut sweep = FifoSweep::new(&GRID).unwrap();
        for &n in &stream {
            sweep.observe(l(n));
        }
        for &(sets, assoc) in &GRID {
            assert_eq!(
                sweep.misses(sets, assoc),
                Some(oracle(&stream, sets, assoc, ReplacementPolicy::Fifo)),
                "FIFO {sets} sets × {assoc} ways"
            );
        }
    }

    #[test]
    fn both_engines_match_oracle_on_adversarial_streams() {
        for stream in adversarial_streams() {
            let counts: Vec<u64> = GRID.iter().map(|&(s, _)| s).collect();
            let mut lru = LruSweep::for_set_counts(&counts).unwrap();
            let mut fifo = FifoSweep::new(&GRID).unwrap();
            for &n in &stream {
                lru.observe(l(n));
                fifo.observe(l(n));
            }
            for &(sets, assoc) in &GRID {
                assert_eq!(
                    lru.misses(sets, assoc),
                    Some(oracle(&stream, sets, assoc, ReplacementPolicy::Lru)),
                    "LRU {sets}x{assoc} on {stream:?}"
                );
                assert_eq!(
                    fifo.misses(sets, assoc),
                    Some(oracle(&stream, sets, assoc, ReplacementPolicy::Fifo)),
                    "FIFO {sets}x{assoc} on {stream:?}"
                );
            }
        }
    }

    #[test]
    fn belady_anomaly_is_reproduced_exactly() {
        // FIFO at 4 frames misses MORE than at 3 on this stream — the
        // proof no inclusion/histogram shortcut exists for FIFO.
        let stream = [1u64, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5];
        let mut sweep = FifoSweep::new(&[(1, 3), (1, 4)]).unwrap();
        for &n in &stream {
            sweep.observe(l(n));
        }
        // The textbook counts: 9 misses at 3 frames, 10 at 4.
        assert_eq!(sweep.misses(1, 3), Some(9));
        assert_eq!(sweep.misses(1, 4), Some(10));
        // The 4-frame cell is a constructible power-of-two geometry, so
        // cross-check it against the per-cell oracle too (3 frames is a
        // 48-byte cache, which CacheGeometry rejects — the sweep is not
        // limited to constructible sizes).
        assert_eq!(
            sweep.misses(1, 4).unwrap(),
            oracle(&stream, 1, 4, ReplacementPolicy::Fifo)
        );
    }

    #[test]
    fn observe_depths_predicts_per_reference_hits() {
        let stream = mixed_stream();
        for (sets, assoc) in [(1u64, 8u64), (4, 2), (16, 1), (8, 4)] {
            let geom = CacheGeometry::new(sets * assoc * 16, 16, assoc).unwrap();
            let mut cache = Cache::new(geom);
            let mut sweep = LruSweep::for_set_counts(&[sets]).unwrap();
            for &n in &stream {
                let (cold, depths) = sweep.observe_depths(l(n));
                let predicted_hit = !cold && u64::from(depths[0]) <= assoc;
                assert_eq!(
                    cache.access_line(l(n)).is_hit(),
                    predicted_hit,
                    "{sets}x{assoc} at line {n}"
                );
            }
        }
    }

    #[test]
    fn one_set_level_is_classic_mattson() {
        // The 1-set level must agree with StackDistanceProfile (and
        // therefore FA-LRU) at every capacity.
        let stream = mixed_stream();
        let mut sweep = LruSweep::up_to(1).unwrap();
        let mut profile = crate::StackDistanceProfile::new();
        for &n in &stream {
            sweep.observe(l(n));
            profile.observe(l(n));
        }
        for cap in [1u64, 2, 4, 8, 16, 32, 64, 128] {
            assert_eq!(
                sweep.misses(1, cap),
                Some(profile.misses_for_capacity(cap as usize)),
                "capacity {cap}"
            );
        }
        assert_eq!(sweep.cold_refs(), profile.cold_refs());
        assert_eq!(sweep.total_refs(), profile.total_refs());
        assert_eq!(sweep.distinct_lines(), profile.distinct_lines());
    }

    #[test]
    fn up_to_tracks_all_powers_of_two() {
        let sweep = LruSweep::up_to(16).unwrap();
        assert_eq!(sweep.set_counts(), &[1, 2, 4, 8, 16]);
        assert_eq!(sweep.level_of(8), Some(3));
        assert_eq!(sweep.level_of(3), None);
    }

    #[test]
    fn geometry_queries_and_accessors() {
        let mut sweep = LruSweep::for_set_counts(&[4]).unwrap();
        let mut fifo = FifoSweep::new(&[(4, 2)]).unwrap();
        for &n in &[0u64, 4, 0, 8, 4, 0] {
            sweep.observe(l(n));
            fifo.observe(l(n));
        }
        let geom = CacheGeometry::new(4 * 2 * 16, 16, 2).unwrap();
        assert_eq!(
            sweep.misses_for_geometry(&geom),
            sweep.misses(4, 2),
            "geometry helper must agree"
        );
        assert_eq!(fifo.misses_for_geometry(&geom), fifo.misses(4, 2));
        assert_eq!(fifo.cells(), &[(4, 2)]);
        assert_eq!(fifo.total_refs(), 6);
        assert_eq!(
            sweep.miss_rate(4, 2).unwrap(),
            sweep.misses(4, 2).unwrap() as f64 / 6.0
        );
        assert_eq!(sweep.misses(3, 2), None);
        assert_eq!(sweep.misses(4, 0), None);
        assert_eq!(fifo.misses(9, 9), None);
    }

    #[test]
    fn constructors_reject_bad_shapes() {
        assert_eq!(
            LruSweep::for_set_counts(&[]).unwrap_err(),
            SinglePassError::Empty
        );
        assert_eq!(
            LruSweep::for_set_counts(&[3]).unwrap_err(),
            SinglePassError::BadSetCount(3)
        );
        assert_eq!(
            LruSweep::for_set_counts(&[0]).unwrap_err(),
            SinglePassError::BadSetCount(0)
        );
        assert_eq!(
            LruSweep::up_to(12).unwrap_err(),
            SinglePassError::BadSetCount(12)
        );
        assert_eq!(FifoSweep::new(&[]).unwrap_err(), SinglePassError::Empty);
        assert_eq!(
            FifoSweep::new(&[(6, 2)]).unwrap_err(),
            SinglePassError::BadSetCount(6)
        );
        assert_eq!(
            FifoSweep::new(&[(4, 0)]).unwrap_err(),
            SinglePassError::BadAssociativity(0)
        );
        let too_many: Vec<(u64, u64)> = (0..129).map(|i| (1u64, i + 1)).collect();
        assert!(matches!(
            FifoSweep::new(&too_many).unwrap_err(),
            SinglePassError::TooManyCells { requested: 129, .. }
        ));
        // Errors render.
        assert!(SinglePassError::BadSetCount(6)
            .to_string()
            .contains("power of two"));
        assert!(SinglePassError::Empty.to_string().contains("at least one"));
        assert!(SinglePassError::BadAssociativity(0)
            .to_string()
            .contains("nonzero"));
        assert!(SinglePassError::TooManyCells {
            requested: 129,
            max: 128
        }
        .to_string()
        .contains("128"));
    }

    #[test]
    fn bounded_sweep_matches_exact_and_oracle_within_bounds() {
        // The bounded backend must be bit-identical to the Fenwick
        // backend (and therefore the per-cell oracle) at every cell it
        // tracks, on both the mixed and the adversarial streams.
        let mut streams = adversarial_streams();
        streams.push(mixed_stream());
        for stream in streams {
            let counts: Vec<u64> = GRID.iter().map(|&(s, _)| s).collect();
            let mut exact = LruSweep::for_set_counts(&counts).unwrap();
            let mut bounded = LruSweep::bounded(&GRID).unwrap();
            for &n in &stream {
                exact.observe(l(n));
                bounded.observe(l(n));
            }
            for &(sets, assoc) in &GRID {
                assert_eq!(
                    bounded.misses(sets, assoc),
                    exact.misses(sets, assoc),
                    "bounded vs exact at {sets}x{assoc}"
                );
                assert_eq!(
                    bounded.misses(sets, assoc),
                    Some(oracle(&stream, sets, assoc, ReplacementPolicy::Lru)),
                    "bounded vs oracle at {sets}x{assoc}"
                );
            }
            assert_eq!(bounded.total_refs(), exact.total_refs());
            assert_eq!(bounded.cold_refs(), exact.cold_refs());
            assert_eq!(bounded.distinct_lines(), exact.distinct_lines());
        }
    }

    #[test]
    fn bounded_sweep_takes_the_largest_bound_per_set_count() {
        // (1, 2) and (1, 5) collapse into one level bounded at 5; both
        // associativities answer, 6 does not.
        let mut sweep = LruSweep::bounded(&[(1, 2), (1, 5)]).unwrap();
        let stream = mixed_stream();
        let mut exact = LruSweep::for_set_counts(&[1]).unwrap();
        for &n in &stream {
            sweep.observe(l(n));
            exact.observe(l(n));
        }
        assert_eq!(sweep.set_counts(), &[1]);
        for assoc in [1u64, 2, 3, 4, 5] {
            assert_eq!(sweep.misses(1, assoc), exact.misses(1, assoc), "{assoc}");
        }
        assert_eq!(sweep.misses(1, 6), None, "beyond the bound");
        assert!(exact.misses(1, 6).is_some());
    }

    #[test]
    fn bounded_depths_predict_per_reference_hits() {
        // Same per-reference contract as the exact backend, for every
        // associativity at or below the bound (deeper depths surface as
        // bound + 1, which correctly predicts a miss).
        let stream = mixed_stream();
        for (sets, bound) in [(1u64, 8u64), (4, 2), (16, 1), (8, 4)] {
            for assoc in [1u64, 2, 4, 8].into_iter().filter(|&a| a <= bound) {
                let geom = CacheGeometry::new(sets * assoc * 16, 16, assoc).unwrap();
                let mut cache = Cache::new(geom);
                let mut sweep = LruSweep::bounded(&[(sets, bound)]).unwrap();
                for &n in &stream {
                    let (cold, depths) = sweep.observe_depths(l(n));
                    let predicted_hit = !cold && u64::from(depths[0]) <= assoc;
                    assert_eq!(
                        cache.access_line(l(n)).is_hit(),
                        predicted_hit,
                        "{sets} sets, bound {bound}, {assoc} ways at line {n}"
                    );
                }
            }
        }
    }

    #[test]
    fn bounded_constructor_rejects_bad_cells() {
        assert_eq!(LruSweep::bounded(&[]).unwrap_err(), SinglePassError::Empty);
        assert_eq!(
            LruSweep::bounded(&[(3, 2)]).unwrap_err(),
            SinglePassError::BadSetCount(3)
        );
        assert_eq!(
            LruSweep::bounded(&[(4, 0)]).unwrap_err(),
            SinglePassError::BadAssociativity(0)
        );
        assert_eq!(
            LruSweep::bounded(&[(4, u64::from(u32::MAX) + 1)]).unwrap_err(),
            SinglePassError::BadAssociativity(u64::from(u32::MAX) + 1)
        );
    }

    #[test]
    fn fifo_duplicate_cells_are_deduplicated() {
        let sweep = FifoSweep::new(&[(1, 2), (1, 2), (2, 1)]).unwrap();
        assert_eq!(sweep.cells(), &[(1, 2), (2, 1)]);
    }

    #[test]
    fn compaction_keeps_memory_proportional_to_footprint() {
        // 100k references over 16 lines: timestamp arenas must stay tiny
        // (compaction renumbers live stamps instead of growing forever).
        let mut sweep = LruSweep::for_set_counts(&[1, 4]).unwrap();
        for i in 0..100_000u64 {
            sweep.observe(l((i * 7) % 16));
        }
        let Backend::Exact { levels, .. } = &sweep.backend else {
            panic!("for_set_counts builds the exact backend");
        };
        for level in levels {
            for tracker in &level.sets {
                assert!(
                    tracker.owner.len() <= 64,
                    "arena grew to {} entries for a 16-line footprint",
                    tracker.owner.len()
                );
            }
        }
        // Still exact after thousands of compactions.
        let stream: Vec<u64> = (0..100_000u64).map(|i| (i * 7) % 16).collect();
        assert_eq!(
            sweep.misses(4, 2),
            Some(oracle(&stream, 4, 2, ReplacementPolicy::Lru))
        );
    }
}
