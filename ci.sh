#!/usr/bin/env bash
# Offline CI gate: formatting, lints, and the tier-1 verify from
# ROADMAP.md. Everything here must pass with no network access.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets --release -- -D warnings

echo "==> jouppi-lint: determinism/robustness invariants (ratcheted)"
cargo build --release -p jouppi-lint
# The baseline ratchet fails on any finding beyond lint-baseline.json's
# grandfathered counts AND on stale entries the tree has outgrown;
# --timings keeps the gate's per-analysis cost (including the workspace
# call-graph build) visible, and --budget-ms fails the gate outright if
# the whole analysis blows its wall-time budget.
./target/release/jouppi-lint --root . --workspace --baseline lint-baseline.json --timings --budget-ms 15000
./target/release/jouppi-lint --root . --workspace --json --baseline lint-baseline.json > /tmp/jouppi_lint_ci.json

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> build examples and benchmark binaries"
cargo build --release --examples
cargo build --release -p jouppi-bench --bin loadgen --bin sweep-bench --bin json-check

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> serve integration tests"
cargo test --release -q -p jouppi-serve --test integration

echo "==> sweep-bench smoke: fused vs per-cell schedules must agree"
./target/release/sweep-bench --smoke

echo "==> sweep-bench smoke: single-pass engines vs per-cell oracle"
./target/release/sweep-bench --smoke --mode single_pass
echo "    lint status: $(grep -q '"ok":true' /tmp/jouppi_lint_ci.json && echo "at baseline" || echo DIRTY) (jouppi-lint --workspace --json --baseline lint-baseline.json)"

echo "==> refresh BENCH_sweep.json (timed sweep schedules)"
./target/release/sweep-bench 60000 BENCH_sweep.json

echo "==> result-cache smoke: repeat request hits, bypass does not"
./target/release/loadgen --cache-smoke

echo "==> refresh BENCH_serve.json (loadgen smoke run)"
./target/release/loadgen 120 4 BENCH_serve.json

echo "==> validate benchmark reports and the lint report against the shared JSON model"
./target/release/json-check BENCH_sweep.json BENCH_serve.json --lint /tmp/jouppi_lint_ci.json

echo "CI OK"
