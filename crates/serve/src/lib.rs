//! `jouppi-serve` — the simulator as a network service.
//!
//! A dependency-free (std-only) HTTP/1.1 daemon that puts a front door
//! on the Jouppi reproduction so design-space exploration clients don't
//! have to link the workspace:
//!
//! | Endpoint | What it does |
//! |---|---|
//! | `POST /v1/simulate` | one cache config + workload → miss/removal stats (synchronous) |
//! | `POST /v1/sweep` | run a named paper sweep (`fig_3_1`, `victim_cache_4`, ...) on the job queue |
//! | `GET /v1/jobs/<id>` | poll an async sweep job |
//! | `GET /healthz` | liveness (503 while draining) |
//! | `GET /metrics` | Prometheus text format: request counts, latency histograms, queue depth, refs simulated |
//!
//! Robustness is first-class: the job queue is bounded (overflow →
//! `503` + `Retry-After`), requests have head/body size limits and
//! idle/whole-request timeouts, malformed input yields 4xx documents
//! without ever panicking a worker, and shutdown drains both in-flight
//! requests and every accepted sweep job.
//!
//! Because every simulation is a pure function of its parameters,
//! `/v1/simulate` and `/v1/sweep` results are memoized in a bounded
//! content-addressed [`ResultCache`] with singleflight coalescing —
//! identical concurrent requests cost one computation, and responses
//! carry an `x-jouppi-cache: hit|miss|coalesced|bypass` header.
//!
//! # Examples
//!
//! ```no_run
//! use jouppi_serve::{Client, Server, ServerConfig};
//!
//! # fn main() -> std::io::Result<()> {
//! let handle = Server::start(ServerConfig::default())?;
//! let mut client = Client::connect(handle.addr())?;
//! let health = client.request("GET", "/healthz", None)?;
//! assert_eq!(health.status, 200);
//! handle.shutdown();
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod http;
pub mod json;
pub mod metrics;
pub mod queue;
pub mod result_cache;
mod routes;
pub mod server;
pub mod sim;
pub mod sweeps;

pub use client::{Client, ClientResponse};
pub use json::Json;
pub use result_cache::{CacheConfig, CacheMode, ResultCache};
pub use server::{Server, ServerConfig, ServerHandle, ShutdownStats};
