//! Aligned monospace tables.

use std::fmt;

/// A simple column-aligned table with a header row.
///
/// # Examples
///
/// ```
/// use jouppi_report::Table;
///
/// let mut t = Table::new(["name", "value"]);
/// t.row(["alpha", "1"]);
/// t.row(["beta", "22"]);
/// let text = t.render();
/// let lines: Vec<&str> = text.lines().collect();
/// assert_eq!(lines.len(), 4); // header, rule, two rows
/// assert!(lines[0].starts_with("name"));
/// ```
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(header: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row's length differs from the header's.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.header.len(),
            "row width must match the header"
        );
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                w[i] = w[i].max(cell.chars().count());
            }
        }
        w
    }

    /// Renders a plain-text table: header, a rule, then the rows. The
    /// first column is left-aligned, the rest right-aligned (numbers).
    pub fn render(&self) -> String {
        let w = self.widths();
        let mut out = String::new();
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                let pad = w[i].saturating_sub(cell.chars().count());
                if i == 0 {
                    line.push_str(cell);
                    line.push_str(&" ".repeat(pad));
                } else {
                    line.push_str(&" ".repeat(pad));
                    line.push_str(cell);
                }
            }
            line.trim_end().to_owned()
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        let rule_len = w.iter().sum::<usize>() + 2 * (w.len().saturating_sub(1));
        out.push_str(&"-".repeat(rule_len));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Renders a GitHub-flavored markdown table.
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("| {} |\n", self.header.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            self.header.iter().map(|_| "---|").collect::<String>()
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(["bench", "I-miss", "D-miss"]);
        t.row(["ccom", "0.096", "0.120"]);
        t.row(["liver", "0.000", "0.273"]);
        t
    }

    #[test]
    fn renders_aligned_columns() {
        let text = sample().render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        // Right-aligned numeric columns line up.
        let i0 = lines[2].rfind("0.120").unwrap();
        let i1 = lines[3].rfind("0.273").unwrap();
        assert_eq!(i0, i1);
    }

    #[test]
    fn markdown_has_separator_row() {
        let md = sample().render_markdown();
        let lines: Vec<&str> = md.lines().collect();
        assert!(lines[0].starts_with("| bench"));
        assert!(lines[1].contains("---"));
        assert_eq!(lines.len(), 4);
    }

    #[test]
    fn display_equals_render() {
        let t = sample();
        assert_eq!(t.to_string(), t.render());
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn deterministic_output() {
        assert_eq!(sample().render(), sample().render());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn unicode_widths_counted_by_chars() {
        let mut t = Table::new(["name", "v"]);
        t.row(["µ-bench", "1"]);
        let text = t.render();
        assert!(text.contains("µ-bench"));
    }
}
