#!/usr/bin/env bash
# Offline CI gate: formatting, lints, and the tier-1 verify from
# ROADMAP.md. Everything here must pass with no network access.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets --release -- -D warnings

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "CI OK"
