//! Robustness: sensitivity of the headline result to workload seeds.
//!
//! The synthetic workloads are seeded generators, so any particular seed
//! could in principle flatter the mechanisms. This experiment reruns the
//! Figure 5-1 headline (average system-performance improvement and L1
//! miss-rate ratio) across several seeds and reports mean and spread —
//! the reproduction's error bars.

use jouppi_report::Table;
use jouppi_system::{SystemConfig, SystemModel};

use crate::common::{average, per_benchmark, ExperimentConfig};

/// Seeds evaluated.
pub const SEEDS: [u64; 5] = [1, 2, 42, 1990, 0xdead_beef];

/// Results of the seed-sensitivity study.
#[derive(Clone, Debug, PartialEq)]
pub struct ExtSeed {
    /// `(seed, avg improvement %, avg miss-rate ratio)` per seed.
    pub points: Vec<(u64, f64, f64)>,
}

/// Runs Figure 5-1's summary metrics at each seed.
pub fn run(cfg: &ExperimentConfig) -> ExtSeed {
    let points = SEEDS
        .iter()
        .map(|&seed| {
            let seed_cfg = ExperimentConfig { seed, ..*cfg };
            let mut improvements = Vec::new();
            let mut ratios = Vec::new();
            per_benchmark(&seed_cfg, |_, trace| {
                let base = SystemModel::new(SystemConfig::baseline()).run(trace);
                let imp = SystemModel::new(SystemConfig::improved()).run(trace);
                improvements.push(100.0 * (imp.time.speedup_over(&base.time) - 1.0));
                ratios.push(if base.l1_miss_rate() == 0.0 {
                    1.0
                } else {
                    imp.l1_miss_rate() / base.l1_miss_rate()
                });
            });
            (seed, average(&improvements), average(&ratios))
        })
        .collect();
    ExtSeed { points }
}

impl ExtSeed {
    /// Mean and spread (max − min) of the improvement percentage.
    pub fn improvement_stats(&self) -> (f64, f64) {
        let vals: Vec<f64> = self.points.iter().map(|(_, i, _)| *i).collect();
        let mean = average(&vals);
        let spread = vals.iter().copied().fold(f64::MIN, f64::max)
            - vals.iter().copied().fold(f64::MAX, f64::min);
        (mean, spread)
    }

    /// Renders the per-seed table and the summary.
    pub fn render(&self) -> String {
        let mut t = Table::new(["seed", "avg improvement", "avg miss-rate ratio"]);
        for (seed, imp, ratio) in &self.points {
            t.row([
                format!("{seed:#x}"),
                format!("{imp:.0}%"),
                format!("{ratio:.2}"),
            ]);
        }
        let (mean, spread) = self.improvement_stats();
        format!(
            "Robustness: Figure 5-1 headline across workload seeds\n{}\
             \nimprovement {mean:.0}% ± {:.0}% across {} seeds (paper: 143%)\n",
            t.render(),
            spread / 2.0,
            self.points.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_is_stable_across_seeds() {
        let cfg = ExperimentConfig::with_scale(40_000);
        let e = run(&cfg);
        assert_eq!(e.points.len(), SEEDS.len());
        for (seed, improvement, ratio) in &e.points {
            assert!(
                *improvement > 50.0,
                "seed {seed:#x}: improvement only {improvement}%"
            );
            assert!(*ratio < 0.6, "seed {seed:#x}: ratio {ratio}");
        }
        let (mean, spread) = e.improvement_stats();
        assert!(
            spread < mean,
            "spread {spread} should be well under the mean {mean}"
        );
        assert!(e.render().contains("seeds"));
    }
}
