//! Calibration harness: measures each synthetic workload's baseline
//! 4KB/16B miss rates and conflict fractions against the paper's
//! Table 2-2 / Figure 3-1 targets.
//!
//! Run with `cargo run --release -p jouppi-workloads --example calibrate`.

use jouppi_cache::{CacheGeometry, ClassifiedCache};
use jouppi_trace::TraceSource;
use jouppi_workloads::{Benchmark, Scale};

fn main() {
    let scale = Scale::new(
        std::env::args()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(500_000),
    );
    let geom = CacheGeometry::direct_mapped(4096, 16).expect("valid geometry");
    println!(
        "{:<8} {:>8} {:>8} | {:>8} {:>8} | {:>7} {:>7}",
        "bench", "I-miss", "paper", "D-miss", "paper", "I-conf%", "D-conf%"
    );
    for b in Benchmark::ALL {
        let src = b.source(scale, 42);
        let mut icache = ClassifiedCache::new(geom);
        let mut dcache = ClassifiedCache::new(geom);
        for r in src.refs() {
            if r.kind.is_instr() {
                icache.access(r.addr);
            } else {
                dcache.access(r.addr);
            }
        }
        let row = b.paper_row();
        println!(
            "{:<8} {:>8.4} {:>8.4} | {:>8.4} {:>8.4} | {:>7.1} {:>7.1}",
            b.name(),
            icache.stats().miss_rate(),
            row.baseline_instr_miss_rate,
            dcache.stats().miss_rate(),
            row.baseline_data_miss_rate,
            100.0 * icache.breakdown().conflict_fraction(),
            100.0 * dcache.breakdown().conflict_fraction(),
        );
    }
}
