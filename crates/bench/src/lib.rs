//! Benchmark harness for the Jouppi (ISCA 1990) reproduction.
//!
//! The `sweep-bench` binary (`src/bin/sweep_bench.rs`) times whole
//! experiment sweeps through the parallel sweep engine — once with the
//! engine forced sequential and once at the configured worker count —
//! and writes the measurements to `BENCH_sweep.json`. Everything is
//! dependency-free: `std::time::Instant` for timing, hand-rolled JSON
//! for output.
//!
//! This library hosts the measurement record and its JSON rendering so
//! both can be unit-tested.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use jouppi_experiments::common::ExperimentConfig;

/// Trace scale used by the sweep benchmark: large enough that trace
/// replay dominates thread-pool overhead, small enough to finish in
/// seconds.
pub fn bench_config() -> ExperimentConfig {
    ExperimentConfig::with_scale(60_000)
}

/// One timed sweep run.
#[derive(Clone, Debug, PartialEq)]
pub struct Measurement {
    /// Which sweep was timed (e.g. `"fig_3_1"`).
    pub sweep: &'static str,
    /// How the worker count was chosen: `"forced_sequential"` or
    /// `"default"` (all cores unless `JOUPPI_THREADS` caps it).
    pub mode: &'static str,
    /// Worker threads the sweep engine actually used.
    pub threads: usize,
    /// Total memory references simulated across all cells.
    pub refs: u64,
    /// Wall-clock time in milliseconds.
    pub wall_ms: f64,
}

impl Measurement {
    /// References simulated per second of wall-clock time.
    pub fn refs_per_sec(&self) -> f64 {
        if self.wall_ms <= 0.0 {
            0.0
        } else {
            self.refs as f64 * 1000.0 / self.wall_ms
        }
    }

    fn json(&self) -> String {
        format!(
            "    {{ \"sweep\": \"{}\", \"mode\": \"{}\", \"threads\": {}, \"refs\": {}, \"wall_ms\": {:.3}, \"refs_per_sec\": {:.0} }}",
            self.sweep,
            self.mode,
            self.threads,
            self.refs,
            self.wall_ms,
            self.refs_per_sec()
        )
    }
}

/// Renders the full benchmark report as pretty-printed JSON.
pub fn render_json(cores: usize, cfg: &ExperimentConfig, runs: &[Measurement]) -> String {
    let rows: Vec<String> = runs.iter().map(Measurement::json).collect();
    format!(
        "{{\n  \"benchmark\": \"sweep-bench\",\n  \"cores\": {},\n  \"scale_instructions\": {},\n  \"seed\": {},\n  \"results\": [\n{}\n  ]\n}}\n",
        cores,
        cfg.scale.instructions,
        cfg.seed,
        rows.join(",\n")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Measurement {
        Measurement {
            sweep: "fig_3_1",
            mode: "default",
            threads: 4,
            refs: 2_000,
            wall_ms: 500.0,
        }
    }

    #[test]
    fn refs_per_sec_scales_from_millis() {
        assert_eq!(sample().refs_per_sec(), 4_000.0);
        let zero = Measurement {
            wall_ms: 0.0,
            ..sample()
        };
        assert_eq!(zero.refs_per_sec(), 0.0);
    }

    #[test]
    fn json_report_is_balanced_and_complete() {
        let cfg = bench_config();
        let text = render_json(2, &cfg, &[sample(), sample()]);
        assert_eq!(
            text.matches('{').count(),
            text.matches('}').count(),
            "unbalanced braces:\n{text}"
        );
        assert!(text.contains("\"cores\": 2"));
        assert!(text.contains("\"refs_per_sec\": 4000"));
        assert!(text.contains("\"scale_instructions\": 60000"));
        assert_eq!(text.matches("\"sweep\": \"fig_3_1\"").count(), 2);
    }
}
