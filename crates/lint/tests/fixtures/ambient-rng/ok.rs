//! Fixture: the fix — draw from the seeded jouppi PRNG instead.

use jouppi_trace::SmallRng;

pub fn roll(seed: u64) -> u32 {
    let mut r = SmallRng::seed_from_u64(seed);
    r.gen_range(0..6)
}
