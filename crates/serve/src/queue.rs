//! The bounded job queue behind `/v1/sweep`.
//!
//! Sweeps are heavyweight (seconds of CPU across all cores), so they
//! never run on connection threads. Instead they are enqueued here and
//! executed by a fixed pool of workers:
//!
//! * **Bounded** — [`JobQueue::submit`] fails with [`QueueFull`] once
//!   `capacity` jobs are waiting; the router turns that into
//!   `503 + Retry-After` (backpressure instead of memory growth).
//! * **Pollable** — every job gets a monotonically increasing id;
//!   [`JobQueue::status`] backs `GET /v1/jobs/<id>` and
//!   [`JobQueue::wait`] backs synchronous `"wait": true` requests.
//! * **Draining shutdown** — [`JobQueue::shutdown`] stops accepting
//!   work, lets workers finish everything already accepted (running
//!   *and* queued), then joins them: an accepted job is never dropped.
//! * **Panic-isolated** — a panicking job is recorded as `failed`; the
//!   worker thread survives.

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::json::Json;

/// A unit of queued work: returns the result document or an error text.
pub type Job = Box<dyn FnOnce() -> Result<Json, String> + Send + 'static>;

/// Where a job is in its lifecycle.
#[derive(Clone, Debug, PartialEq)]
pub enum JobState {
    /// Accepted, waiting for a worker.
    Queued,
    /// Executing on a worker.
    Running,
    /// Finished successfully with this result.
    Done(Json),
    /// Finished unsuccessfully with this error message.
    Failed(String),
}

impl JobState {
    /// The state's wire name (`queued`/`running`/`done`/`failed`).
    pub fn label(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done(_) => "done",
            JobState::Failed(_) => "failed",
        }
    }

    /// Whether the job has finished (successfully or not).
    pub fn is_terminal(&self) -> bool {
        matches!(self, JobState::Done(_) | JobState::Failed(_))
    }
}

/// Submit failed: `capacity` jobs are already waiting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueueFull;

/// Completed job records older than this many completions are pruned.
const RETAINED_COMPLETED: usize = 1024;

struct Inner {
    queue: VecDeque<(u64, Job)>,
    jobs: BTreeMap<u64, (String, JobState)>,
    finished_order: VecDeque<u64>,
    next_id: u64,
    running: usize,
    completed: u64,
    shutdown: bool,
}

/// Counters sampled for `/metrics`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Jobs waiting for a worker.
    pub depth: usize,
    /// Jobs executing right now.
    pub running: usize,
    /// Jobs finished since startup.
    pub completed: u64,
}

/// The bounded queue; share it as an `Arc` between the server and its
/// workers.
pub struct JobQueue {
    inner: Mutex<Inner>,
    work_ready: Condvar,
    job_done: Condvar,
    capacity: usize,
}

impl JobQueue {
    /// An empty queue that will hold at most `capacity` waiting jobs.
    pub fn new(capacity: usize) -> Arc<Self> {
        Arc::new(JobQueue {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                jobs: BTreeMap::new(),
                finished_order: VecDeque::new(),
                next_id: 1,
                running: 0,
                completed: 0,
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            job_done: Condvar::new(),
            capacity: capacity.max(1),
        })
    }

    /// Starts `n` worker threads that execute jobs until shutdown.
    ///
    /// # Errors
    ///
    /// Propagates thread-spawn failures (resource exhaustion at boot).
    pub fn spawn_workers(self: &Arc<Self>, n: usize) -> std::io::Result<Vec<JoinHandle<()>>> {
        (0..n.max(1))
            .map(|i| {
                let q = Arc::clone(self);
                std::thread::Builder::new()
                    .name(format!("jouppi-job-{i}"))
                    .spawn(move || q.worker_loop())
            })
            .collect()
    }

    /// Enqueues a job, returning its id.
    ///
    /// # Errors
    ///
    /// [`QueueFull`] when `capacity` jobs are already waiting, or when
    /// the queue is shutting down.
    pub fn submit(&self, name: impl Into<String>, job: Job) -> Result<u64, QueueFull> {
        let mut inner = self.lock();
        if inner.shutdown || inner.queue.len() >= self.capacity {
            return Err(QueueFull);
        }
        let id = inner.next_id;
        inner.next_id += 1;
        inner.jobs.insert(id, (name.into(), JobState::Queued));
        inner.queue.push_back((id, job));
        drop(inner);
        self.work_ready.notify_one();
        Ok(id)
    }

    /// Records an already-finished job — a result-cache hit served on
    /// the async path still needs a pollable ticket, but it must not
    /// consume a queue slot, wake a worker, or count as an executed
    /// job. The record is immediately `Done` and ages out of the
    /// completed-job window like any other finished job.
    ///
    /// # Errors
    ///
    /// [`QueueFull`] when the queue is shutting down (no new tickets
    /// while draining).
    pub fn insert_completed(
        &self,
        name: impl Into<String>,
        result: Json,
    ) -> Result<u64, QueueFull> {
        let mut inner = self.lock();
        if inner.shutdown {
            return Err(QueueFull);
        }
        let id = inner.next_id;
        inner.next_id += 1;
        inner.jobs.insert(id, (name.into(), JobState::Done(result)));
        inner.finished_order.push_back(id);
        while inner.finished_order.len() > RETAINED_COMPLETED {
            if let Some(old) = inner.finished_order.pop_front() {
                inner.jobs.remove(&old);
            }
        }
        Ok(id)
    }

    /// The job's name and current state, or `None` for an unknown id.
    pub fn status(&self, id: u64) -> Option<(String, JobState)> {
        self.lock().jobs.get(&id).cloned()
    }

    /// Blocks until the job reaches a terminal state or `timeout`
    /// elapses, then returns its latest snapshot (`None` = unknown id).
    pub fn wait(&self, id: u64, timeout: Duration) -> Option<(String, JobState)> {
        let deadline = std::time::Instant::now() + timeout;
        let mut inner = self.lock();
        loop {
            match inner.jobs.get(&id) {
                None => return None,
                Some(record) if record.1.is_terminal() => return Some(record.clone()),
                Some(_) => {}
            }
            let left = deadline.saturating_duration_since(std::time::Instant::now());
            if left.is_zero() {
                return inner.jobs.get(&id).cloned();
            }
            let (guard, _) = self
                .job_done
                .wait_timeout(inner, left)
                .unwrap_or_else(|e| e.into_inner());
            inner = guard;
        }
    }

    /// Current depth / running / completed counters.
    pub fn stats(&self) -> QueueStats {
        let inner = self.lock();
        QueueStats {
            depth: inner.queue.len(),
            running: inner.running,
            completed: inner.completed,
        }
    }

    /// Stops accepting new jobs and wakes all workers so they drain the
    /// backlog and exit. Call `join` on the worker handles afterwards to
    /// wait for the drain to finish.
    pub fn shutdown(&self) {
        self.lock().shutdown = true;
        self.work_ready.notify_all();
        self.job_done.notify_all();
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn worker_loop(&self) {
        loop {
            let mut inner = self.lock();
            let (id, job) = loop {
                if let Some(entry) = inner.queue.pop_front() {
                    break entry;
                }
                if inner.shutdown {
                    return;
                }
                inner = self
                    .work_ready
                    .wait(inner)
                    .unwrap_or_else(|e| e.into_inner());
            };
            if let Some(record) = inner.jobs.get_mut(&id) {
                record.1 = JobState::Running;
            }
            inner.running += 1;
            drop(inner);

            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job))
                .unwrap_or_else(|_| Err("job panicked".to_owned()));

            let mut inner = self.lock();
            inner.running -= 1;
            inner.completed += 1;
            if let Some(record) = inner.jobs.get_mut(&id) {
                record.1 = match outcome {
                    Ok(result) => JobState::Done(result),
                    Err(msg) => JobState::Failed(msg),
                };
            }
            inner.finished_order.push_back(id);
            while inner.finished_order.len() > RETAINED_COMPLETED {
                if let Some(old) = inner.finished_order.pop_front() {
                    inner.jobs.remove(&old);
                }
            }
            drop(inner);
            self.job_done.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jobs_run_and_are_pollable() {
        let q = JobQueue::new(8);
        let workers = q.spawn_workers(2).expect("spawn");
        let id = q.submit("double", Box::new(|| Ok(Json::Int(42)))).unwrap();
        let (name, state) = q.wait(id, Duration::from_secs(5)).unwrap();
        assert_eq!(name, "double");
        assert_eq!(state, JobState::Done(Json::Int(42)));
        assert_eq!(state.label(), "done");
        assert!(q.status(999).is_none());
        q.shutdown();
        for w in workers {
            w.join().unwrap();
        }
        assert_eq!(q.stats().completed, 1);
    }

    #[test]
    fn insert_completed_mints_done_tickets_without_queueing() {
        let q = JobQueue::new(2);
        let id = q
            .insert_completed("cached", Json::Int(7))
            .expect("ticket while accepting");
        let (name, state) = q.status(id).expect("ticket is pollable");
        assert_eq!(name, "cached");
        assert_eq!(state, JobState::Done(Json::Int(7)));
        // No slot consumed, no execution counted.
        assert_eq!(q.stats().depth, 0);
        assert_eq!(q.stats().completed, 0);
        q.shutdown();
        assert_eq!(q.insert_completed("late", Json::Null), Err(QueueFull));
    }

    #[test]
    fn overflow_is_rejected() {
        let q = JobQueue::new(2);
        // No workers: everything stays queued.
        q.submit("a", Box::new(|| Ok(Json::Null))).unwrap();
        q.submit("b", Box::new(|| Ok(Json::Null))).unwrap();
        assert_eq!(q.submit("c", Box::new(|| Ok(Json::Null))), Err(QueueFull));
        assert_eq!(q.stats().depth, 2);
    }

    #[test]
    fn shutdown_drains_accepted_jobs() {
        let q = JobQueue::new(16);
        let ids: Vec<u64> = (0..6)
            .map(|i| {
                q.submit(
                    format!("j{i}"),
                    Box::new(move || {
                        std::thread::sleep(Duration::from_millis(10));
                        Ok(Json::Int(i))
                    }),
                )
                .unwrap()
            })
            .collect();
        let workers = q.spawn_workers(2).expect("spawn");
        q.shutdown();
        assert_eq!(
            q.submit("late", Box::new(|| Ok(Json::Null))),
            Err(QueueFull)
        );
        for w in workers {
            w.join().unwrap();
        }
        for (i, id) in ids.iter().enumerate() {
            let (_, state) = q.status(*id).unwrap();
            assert_eq!(state, JobState::Done(Json::Int(i as i64)), "job {id}");
        }
        assert_eq!(q.stats().completed, 6);
    }

    #[test]
    fn panicking_job_fails_without_killing_worker() {
        let q = JobQueue::new(4);
        let workers = q.spawn_workers(1).expect("spawn");
        let bad = q.submit("bad", Box::new(|| panic!("boom"))).unwrap();
        let good = q.submit("good", Box::new(|| Ok(Json::Bool(true)))).unwrap();
        let (_, bad_state) = q.wait(bad, Duration::from_secs(5)).unwrap();
        assert_eq!(bad_state, JobState::Failed("job panicked".to_owned()));
        let (_, good_state) = q.wait(good, Duration::from_secs(5)).unwrap();
        assert_eq!(good_state, JobState::Done(Json::Bool(true)));
        q.shutdown();
        for w in workers {
            w.join().unwrap();
        }
    }
}
