//! Fixture: the same probe, justified as progress reporting.

pub fn elapsed_nanos() -> u64 {
    // jouppi-lint: allow(ambient-time) — progress telemetry only; the value
    // never feeds a simulated result
    let t = std::time::Instant::now();
    t.elapsed().as_nanos() as u64
}
