//! Trace-level statistics (the paper's Table 2-1).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign};

use crate::{AccessKind, MemRef};

/// Counters describing a trace, mirroring Table 2-1 of the paper
/// ("dynamic instr.", "data refs.", "total refs.").
///
/// # Examples
///
/// ```
/// use jouppi_trace::{Addr, MemRef, TraceStats};
///
/// let stats = TraceStats::from_refs([
///     MemRef::instr(Addr::new(0)),
///     MemRef::load(Addr::new(8)),
///     MemRef::store(Addr::new(16)),
/// ]);
/// assert_eq!(stats.data_refs(), 2);
/// assert_eq!(stats.total_refs(), 3);
/// assert!((stats.data_per_instr() - 2.0).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct TraceStats {
    /// Number of instruction fetches (dynamic instruction count).
    pub instruction_refs: u64,
    /// Number of data loads.
    pub loads: u64,
    /// Number of data stores.
    pub stores: u64,
}

impl TraceStats {
    /// Creates zeroed statistics.
    pub const fn new() -> Self {
        TraceStats {
            instruction_refs: 0,
            loads: 0,
            stores: 0,
        }
    }

    /// Tallies statistics over a reference stream.
    pub fn from_refs<I: IntoIterator<Item = MemRef>>(refs: I) -> Self {
        let mut stats = TraceStats::new();
        for r in refs {
            stats.record(r.kind);
        }
        stats
    }

    /// Records one reference of the given kind.
    #[inline]
    pub fn record(&mut self, kind: AccessKind) {
        match kind {
            AccessKind::InstrFetch => self.instruction_refs += 1,
            AccessKind::Load => self.loads += 1,
            AccessKind::Store => self.stores += 1,
        }
    }

    /// Total data references (loads + stores).
    #[inline]
    pub const fn data_refs(&self) -> u64 {
        self.loads + self.stores
    }

    /// Total references of all kinds.
    #[inline]
    pub const fn total_refs(&self) -> u64 {
        self.instruction_refs + self.data_refs()
    }

    /// Data references per instruction (the paper's traces run ~0.3-0.5).
    ///
    /// Returns 0.0 for an empty instruction stream rather than dividing by
    /// zero, so it is always safe to call on partial traces.
    pub fn data_per_instr(&self) -> f64 {
        if self.instruction_refs == 0 {
            0.0
        } else {
            self.data_refs() as f64 / self.instruction_refs as f64
        }
    }
}

impl Add for TraceStats {
    type Output = TraceStats;

    fn add(self, rhs: TraceStats) -> TraceStats {
        TraceStats {
            instruction_refs: self.instruction_refs + rhs.instruction_refs,
            loads: self.loads + rhs.loads,
            stores: self.stores + rhs.stores,
        }
    }
}

impl AddAssign for TraceStats {
    fn add_assign(&mut self, rhs: TraceStats) {
        *self = *self + rhs;
    }
}

impl Sum for TraceStats {
    fn sum<I: Iterator<Item = TraceStats>>(iter: I) -> Self {
        iter.fold(TraceStats::new(), Add::add)
    }
}

impl fmt::Display for TraceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} instr, {} data ({} loads, {} stores), {} total",
            self.instruction_refs,
            self.data_refs(),
            self.loads,
            self.stores,
            self.total_refs()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Addr;

    #[test]
    fn tallies_by_kind() {
        let mut s = TraceStats::new();
        s.record(AccessKind::InstrFetch);
        s.record(AccessKind::InstrFetch);
        s.record(AccessKind::Load);
        s.record(AccessKind::Store);
        assert_eq!(s.instruction_refs, 2);
        assert_eq!(s.loads, 1);
        assert_eq!(s.stores, 1);
        assert_eq!(s.data_refs(), 2);
        assert_eq!(s.total_refs(), 4);
    }

    #[test]
    fn data_per_instr_handles_zero() {
        assert_eq!(TraceStats::new().data_per_instr(), 0.0);
        let s = TraceStats {
            instruction_refs: 4,
            loads: 1,
            stores: 1,
        };
        assert!((s.data_per_instr() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn addition_and_sum() {
        let a = TraceStats {
            instruction_refs: 1,
            loads: 2,
            stores: 3,
        };
        let b = TraceStats {
            instruction_refs: 10,
            loads: 20,
            stores: 30,
        };
        let c = a + b;
        assert_eq!(c.instruction_refs, 11);
        assert_eq!(c.loads, 22);
        assert_eq!(c.stores, 33);
        let total: TraceStats = [a, b].into_iter().sum();
        assert_eq!(total, c);
        let mut d = a;
        d += b;
        assert_eq!(d, c);
    }

    #[test]
    fn display_mentions_all_counts() {
        let s = TraceStats::from_refs([MemRef::instr(Addr::new(0)), MemRef::load(Addr::new(8))]);
        let text = s.to_string();
        assert!(text.contains("1 instr"));
        assert!(text.contains("1 data"));
        assert!(text.contains("2 total"));
    }
}
