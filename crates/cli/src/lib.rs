//! Argument parsing and drive logic for `jouppi-sim`, the command-line
//! cache simulator.
//!
//! The binary simulates one cache organization over either a built-in
//! synthetic workload or a Dinero-format trace file:
//!
//! ```text
//! jouppi-sim --workload ccom --cache 4096:16:1 --victim 4 --stream 4x4
//! jouppi-sim --trace prog.din --side d --cache 8192:32:1 --classify
//! jouppi-sim --workload linpack --export linpack.din
//! jouppi-sim --workload met --system improved
//! ```
//!
//! Parsing lives in this library crate so it is unit-testable; `main` is
//! a thin shell around [`parse_args`] and [`run`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod serve_cmd;
pub mod stat;

use std::fmt;
use std::fs::File;
use std::io::{BufReader, BufWriter};

use jouppi_cache::{CacheGeometry, FifoSweep, LruSweep, MissClassifier};
use jouppi_core::{AugmentedCache, AugmentedConfig, StreamBufferConfig};
use jouppi_report::Table;
use jouppi_system::{SystemConfig, SystemModel};
use jouppi_trace::{io as trace_io, RecordedTrace, TraceSource};
use jouppi_workloads::{Benchmark, Scale};

/// Which references the simulated cache sees.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SideFilter {
    /// Instruction fetches only.
    Instruction,
    /// Loads and stores only (the default — most experiments are
    /// data-side).
    #[default]
    Data,
    /// Every reference through the one cache (a unified cache).
    All,
}

/// Full-system mode instead of a single cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SystemMode {
    /// The §2 baseline machine.
    Baseline,
    /// The §5 improved machine.
    Improved,
}

/// Where the reference stream comes from.
#[derive(Clone, Debug, PartialEq)]
pub enum Input {
    /// A built-in synthetic benchmark.
    Workload(Benchmark),
    /// A Dinero-format trace file.
    TraceFile(String),
}

/// Everything parsed from the command line.
#[derive(Clone, Debug, PartialEq)]
pub struct Options {
    /// Reference source.
    pub input: Input,
    /// Cache geometry (`size:line:assoc`).
    pub geometry: CacheGeometry,
    /// Victim-cache entries (0 = none).
    pub victim: usize,
    /// Miss-cache entries (0 = none; mutually exclusive with victim).
    pub miss_cache: usize,
    /// Stream buffer as `(ways, depth)`; `None` = no buffer.
    pub stream: Option<(usize, usize)>,
    /// Maximum detectable stride in lines (0 = sequential buffers).
    pub stride_detect: i64,
    /// Which references the cache sees.
    pub side: SideFilter,
    /// Synthetic workload scale in instructions.
    pub scale: u64,
    /// Synthetic workload seed.
    pub seed: u64,
    /// Also run the three-C classifier.
    pub classify: bool,
    /// Export the reference stream to a din file instead of simulating.
    pub export: Option<String>,
    /// Run the full two-level system instead of one cache.
    pub system: Option<SystemMode>,
    /// Sweep every power-of-two (size, associativity) cell under LRU and
    /// FIFO in one pass instead of simulating one cache.
    pub geometry_sweep: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            input: Input::Workload(Benchmark::Ccom),
            geometry: CacheGeometry::direct_mapped(4096, 16).expect("default geometry"),
            victim: 0,
            miss_cache: 0,
            stream: None,
            stride_detect: 0,
            side: SideFilter::default(),
            scale: 500_000,
            seed: 42,
            classify: false,
            export: None,
            system: None,
            geometry_sweep: false,
        }
    }
}

/// A fatal usage error; the message is shown to the user.
#[derive(Debug, PartialEq, Eq)]
pub struct UsageError(pub String);

impl fmt::Display for UsageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for UsageError {}

fn err(msg: impl Into<String>) -> UsageError {
    UsageError(msg.into())
}

/// The usage text printed for `--help`.
pub const USAGE: &str = "\
usage: jouppi-sim [OPTIONS]
  --workload NAME        built-in workload: ccom grr yacc met linpack liver
  --trace FILE           Dinero-format trace file instead of a workload
  --cache SIZE:LINE:ASSOC  cache geometry in bytes (default 4096:16:1)
  --victim N             add an N-entry victim cache
  --miss-cache N         add an N-entry miss cache
  --stream WAYSxDEPTH    add stream buffers, e.g. 4x4 or 1x4
  --stride-detect MAX    stream buffers detect strides up to MAX lines
  --side i|d|all         which references the cache sees (default d)
  --scale N              workload length in instructions (default 500000)
  --seed N               workload seed (default 42)
  --classify             also report the 3-C miss breakdown
  --export FILE          write the reference stream as a din file and exit
  --system baseline|improved  run the full two-level machine instead
  --geometry-sweep       miss rates for every 1K-128K size x 1-16 way cell
                         under LRU and FIFO, from one pass over the trace
  --help                 show this message";

/// Parses command-line arguments (excluding `argv[0]`).
///
/// # Errors
///
/// Returns [`UsageError`] describing the first invalid argument.
pub fn parse_args<I: IntoIterator<Item = String>>(args: I) -> Result<Options, UsageError> {
    let mut opts = Options::default();
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| err(format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--workload" => {
                let name = value("--workload")?;
                let bench = Benchmark::from_name(&name)
                    .ok_or_else(|| err(format!("unknown workload '{name}'")))?;
                opts.input = Input::Workload(bench);
            }
            "--trace" => opts.input = Input::TraceFile(value("--trace")?),
            "--cache" => {
                let spec = value("--cache")?;
                let parts: Vec<&str> = spec.split(':').collect();
                if parts.len() != 3 {
                    return Err(err(format!("--cache wants SIZE:LINE:ASSOC, got '{spec}'")));
                }
                let nums: Vec<u64> = parts
                    .iter()
                    .map(|p| p.parse::<u64>())
                    .collect::<Result<_, _>>()
                    .map_err(|_| err(format!("--cache: non-numeric field in '{spec}'")))?;
                opts.geometry = CacheGeometry::new(nums[0], nums[1], nums[2])
                    .map_err(|e| err(format!("--cache: {e}")))?;
            }
            "--victim" => {
                opts.victim = value("--victim")?
                    .parse()
                    .map_err(|_| err("--victim wants an integer"))?;
            }
            "--miss-cache" => {
                opts.miss_cache = value("--miss-cache")?
                    .parse()
                    .map_err(|_| err("--miss-cache wants an integer"))?;
            }
            "--stream" => {
                let spec = value("--stream")?;
                let (ways, depth) = spec
                    .split_once('x')
                    .ok_or_else(|| err(format!("--stream wants WAYSxDEPTH, got '{spec}'")))?;
                let ways = ways
                    .parse::<usize>()
                    .map_err(|_| err("--stream: bad way count"))?;
                let depth = depth
                    .parse::<usize>()
                    .map_err(|_| err("--stream: bad depth"))?;
                if ways == 0 || depth == 0 {
                    return Err(err("--stream: ways and depth must be nonzero"));
                }
                opts.stream = Some((ways, depth));
            }
            "--stride-detect" => {
                opts.stride_detect = value("--stride-detect")?
                    .parse()
                    .map_err(|_| err("--stride-detect wants an integer"))?;
            }
            "--side" => {
                opts.side = match value("--side")?.as_str() {
                    "i" => SideFilter::Instruction,
                    "d" => SideFilter::Data,
                    "all" => SideFilter::All,
                    other => return Err(err(format!("--side wants i|d|all, got '{other}'"))),
                };
            }
            "--scale" => {
                opts.scale = value("--scale")?
                    .parse()
                    .map_err(|_| err("--scale wants an integer"))?;
                if opts.scale == 0 {
                    return Err(err("--scale must be positive"));
                }
            }
            "--seed" => {
                opts.seed = value("--seed")?
                    .parse()
                    .map_err(|_| err("--seed wants an integer"))?;
            }
            "--classify" => opts.classify = true,
            "--export" => opts.export = Some(value("--export")?),
            "--system" => {
                opts.system = Some(match value("--system")?.as_str() {
                    "baseline" => SystemMode::Baseline,
                    "improved" => SystemMode::Improved,
                    other => {
                        return Err(err(format!(
                            "--system wants baseline|improved, got '{other}'"
                        )))
                    }
                });
            }
            "--geometry-sweep" => opts.geometry_sweep = true,
            "--help" | "-h" => return Err(err(USAGE)),
            other => return Err(err(format!("unknown argument '{other}'\n{USAGE}"))),
        }
    }
    if opts.victim > 0 && opts.miss_cache > 0 {
        return Err(err("--victim and --miss-cache are mutually exclusive"));
    }
    if opts.geometry_sweep && (opts.system.is_some() || opts.export.is_some()) {
        return Err(err(
            "--geometry-sweep is a whole-grid report; it cannot combine \
             with --system or --export",
        ));
    }
    Ok(opts)
}

/// Builds the augmented-cache configuration the options describe.
pub fn build_config(opts: &Options) -> AugmentedConfig {
    let mut cfg = AugmentedConfig::new(opts.geometry);
    if opts.victim > 0 {
        cfg = cfg.victim_cache(opts.victim);
    }
    if opts.miss_cache > 0 {
        cfg = cfg.miss_cache(opts.miss_cache);
    }
    if let Some((ways, depth)) = opts.stream {
        cfg = if opts.stride_detect > 0 {
            cfg.strided_stream_buffer(ways, StreamBufferConfig::new(depth), opts.stride_detect)
        } else {
            cfg.multi_way_stream_buffer(ways, StreamBufferConfig::new(depth))
        };
    }
    cfg
}

fn load_trace(opts: &Options) -> Result<RecordedTrace, Box<dyn std::error::Error>> {
    match &opts.input {
        Input::Workload(b) => Ok(RecordedTrace::record(
            &b.source(Scale::new(opts.scale), opts.seed),
        )),
        Input::TraceFile(path) => {
            let file = File::open(path).map_err(|e| err(format!("cannot open {path}: {e}")))?;
            Ok(trace_io::read_din(BufReader::new(file), path)?)
        }
    }
}

/// Runs the simulation the options describe, returning the report text.
///
/// # Errors
///
/// Returns any I/O or parse error from trace loading or export.
pub fn run(opts: &Options) -> Result<String, Box<dyn std::error::Error>> {
    let trace = load_trace(opts)?;

    if let Some(path) = &opts.export {
        let file = File::create(path).map_err(|e| err(format!("cannot create {path}: {e}")))?;
        trace_io::write_din(&trace, BufWriter::new(file))?;
        return Ok(format!(
            "wrote {} references from {} to {path}",
            trace.len(),
            trace.name()
        ));
    }

    if opts.geometry_sweep {
        return Ok(geometry_sweep_report(&trace, opts));
    }

    if let Some(mode) = opts.system {
        let cfg = match mode {
            SystemMode::Baseline => SystemConfig::baseline(),
            SystemMode::Improved => SystemConfig::improved(),
        };
        let report = SystemModel::new(cfg).run(&trace);
        return Ok(format!(
            "system ({}) over {}:\n{report}\n",
            match mode {
                SystemMode::Baseline => "baseline",
                SystemMode::Improved => "improved",
            },
            trace.name()
        ));
    }

    let mut cache = AugmentedCache::new(build_config(opts));
    let mut classifier = opts.classify.then(|| MissClassifier::new(opts.geometry));
    for r in trace.refs() {
        let wanted = match opts.side {
            SideFilter::Instruction => r.kind.is_instr(),
            SideFilter::Data => r.kind.is_data(),
            SideFilter::All => true,
        };
        if !wanted {
            continue;
        }
        let outcome = cache.access(r.addr);
        if let Some(cls) = classifier.as_mut() {
            cls.observe(opts.geometry.line_of(r.addr), !outcome.is_l1_hit());
        }
    }
    let s = cache.stats();
    let mut t = Table::new(["metric", "value"]);
    t.row(["trace".to_owned(), trace.name().to_owned()]);
    t.row(["geometry".to_owned(), opts.geometry.to_string()]);
    t.row(["accesses".to_owned(), s.accesses.to_string()]);
    t.row(["L1 hits".to_owned(), s.l1_hits.to_string()]);
    t.row([
        "L1 miss rate".to_owned(),
        format!("{:.4}", s.l1_miss_rate()),
    ]);
    t.row(["victim-cache hits".to_owned(), s.victim_hits.to_string()]);
    t.row(["miss-cache hits".to_owned(), s.miss_cache_hits.to_string()]);
    t.row(["stream-buffer hits".to_owned(), s.stream_hits.to_string()]);
    t.row(["full misses".to_owned(), s.full_misses.to_string()]);
    t.row([
        "demand miss rate".to_owned(),
        format!("{:.4}", s.demand_miss_rate()),
    ]);
    t.row([
        "misses removed".to_owned(),
        format!("{:.1}%", 100.0 * s.removed_fraction()),
    ]);
    let mut out = t.render();
    if let Some(cls) = classifier {
        out.push_str(&format!("\n3-C breakdown: {}\n", cls.breakdown()));
    }
    Ok(out)
}

/// Line size the geometry sweep uses (the paper's base line size).
const SWEEP_LINE: u64 = 16;

/// Cache sizes swept: every power of two from 1KB to 128KB.
const SWEEP_SIZES: [u64; 8] = [
    1 << 10,
    2 << 10,
    4 << 10,
    8 << 10,
    16 << 10,
    32 << 10,
    64 << 10,
    128 << 10,
];

/// Associativities swept at each size.
const SWEEP_ASSOCS: [u64; 5] = [1, 2, 4, 8, 16];

/// One pass over the trace, miss rates for every (size, associativity)
/// cell under both LRU (via set-refined stack distances) and FIFO.
fn geometry_sweep_report(trace: &RecordedTrace, opts: &Options) -> String {
    let lines: Vec<_> = trace
        .refs()
        .filter(|r| match opts.side {
            SideFilter::Instruction => r.kind.is_instr(),
            SideFilter::Data => r.kind.is_data(),
            SideFilter::All => true,
        })
        .map(|r| r.addr.line(SWEEP_LINE))
        .collect();
    let grid: Vec<CacheGeometry> = SWEEP_SIZES
        .iter()
        .flat_map(|&size| {
            SWEEP_ASSOCS
                .iter()
                .filter_map(move |&assoc| CacheGeometry::new(size, SWEEP_LINE, assoc).ok())
        })
        .collect();
    let cells: Vec<(u64, u64)> = grid
        .iter()
        .map(|g| (g.num_sets(), g.associativity()))
        .collect();
    let mut lru = LruSweep::bounded(&cells).expect("grid cells are valid");
    let mut fifo = FifoSweep::new(&cells).expect("grid is well within the cell limit");
    for &line in &lines {
        lru.observe(line);
        fifo.observe(line);
    }
    let total = lines.len() as u64;
    let rate = |misses: u64| {
        if total == 0 {
            "-".to_owned()
        } else {
            format!("{:.4}", misses as f64 / total as f64)
        }
    };
    let mut t = Table::new(["size", "assoc", "LRU miss rate", "FIFO miss rate"]);
    for g in &grid {
        t.row([
            format!("{}K", g.size() >> 10),
            g.associativity().to_string(),
            rate(lru.misses_for_geometry(g).expect("cell tracked")),
            rate(fifo.misses_for_geometry(g).expect("cell tracked")),
        ]);
    }
    format!(
        "geometry sweep over {} ({} refs, one pass per policy):\n{}",
        trace.name(),
        total,
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Options, UsageError> {
        parse_args(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_are_sane() {
        let o = parse(&[]).unwrap();
        assert_eq!(o, Options::default());
        assert_eq!(o.geometry.size(), 4096);
        assert_eq!(o.side, SideFilter::Data);
    }

    #[test]
    fn full_option_set_parses() {
        let o = parse(&[
            "--workload",
            "met",
            "--cache",
            "8192:32:2",
            "--victim",
            "4",
            "--stream",
            "4x8",
            "--stride-detect",
            "64",
            "--side",
            "all",
            "--scale",
            "1000",
            "--seed",
            "7",
            "--classify",
        ])
        .unwrap();
        assert_eq!(o.input, Input::Workload(Benchmark::Met));
        assert_eq!(o.geometry.size(), 8192);
        assert_eq!(o.geometry.associativity(), 2);
        assert_eq!(o.victim, 4);
        assert_eq!(o.stream, Some((4, 8)));
        assert_eq!(o.stride_detect, 64);
        assert_eq!(o.side, SideFilter::All);
        assert_eq!(o.scale, 1000);
        assert_eq!(o.seed, 7);
        assert!(o.classify);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(parse(&["--workload", "doom"]).is_err());
        assert!(parse(&["--cache", "4096:16"]).is_err());
        assert!(parse(&["--cache", "4096:17:1"]).is_err());
        assert!(parse(&["--stream", "4"]).is_err());
        assert!(parse(&["--stream", "0x4"]).is_err());
        assert!(parse(&["--side", "x"]).is_err());
        assert!(parse(&["--scale", "0"]).is_err());
        assert!(parse(&["--system", "nope"]).is_err());
        assert!(parse(&["--frobnicate"]).is_err());
        assert!(parse(&["--victim", "2", "--miss-cache", "2"]).is_err());
    }

    #[test]
    fn help_shows_usage() {
        let e = parse(&["--help"]).unwrap_err();
        assert!(e.to_string().contains("usage: jouppi-sim"));
    }

    #[test]
    fn build_config_reflects_options() {
        let o = parse(&["--victim", "2", "--stream", "1x4"]).unwrap();
        let cfg = build_config(&o);
        assert_eq!(cfg.conflict_aid(), jouppi_core::ConflictAid::VictimCache(2));
        assert_eq!(cfg.stream_ways(), 1);
        assert_eq!(cfg.stride_detection(), 0);
        let o = parse(&["--stream", "4x4", "--stride-detect", "32"]).unwrap();
        assert_eq!(build_config(&o).stride_detection(), 32);
    }

    #[test]
    fn run_workload_produces_report() {
        let mut o = parse(&["--workload", "yacc", "--victim", "4"]).unwrap();
        o.scale = 5_000;
        let out = run(&o).unwrap();
        assert!(out.contains("demand miss rate"));
        assert!(out.contains("yacc"));
    }

    #[test]
    fn run_with_classifier_appends_breakdown() {
        let mut o = parse(&["--workload", "met", "--classify"]).unwrap();
        o.scale = 5_000;
        let out = run(&o).unwrap();
        assert!(out.contains("3-C breakdown"));
        assert!(out.contains("conflict"));
    }

    #[test]
    fn run_system_mode() {
        let mut o = parse(&["--workload", "liver", "--system", "improved"]).unwrap();
        o.scale = 5_000;
        let out = run(&o).unwrap();
        assert!(out.contains("system (improved)"));
        assert!(out.contains("of peak"));
    }

    #[test]
    fn export_and_reimport_roundtrip() {
        let dir = std::env::temp_dir().join("jouppi-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.din").to_string_lossy().into_owned();
        let mut o = parse(&["--workload", "ccom", "--export", &path]).unwrap();
        o.scale = 2_000;
        let out = run(&o).unwrap();
        assert!(out.contains("wrote"));
        // Re-import through --trace.
        let o2 = parse(&["--trace", &path]).unwrap();
        let out2 = run(&o2).unwrap();
        assert!(out2.contains("demand miss rate"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn geometry_sweep_flag_parses_and_rejects_other_modes() {
        let o = parse(&["--geometry-sweep"]).unwrap();
        assert!(o.geometry_sweep);
        assert!(!Options::default().geometry_sweep);
        assert!(parse(&["--geometry-sweep", "--system", "baseline"]).is_err());
        assert!(parse(&["--geometry-sweep", "--export", "x.din"]).is_err());
    }

    #[test]
    fn geometry_sweep_reports_every_cell() {
        let mut o = parse(&["--workload", "met", "--geometry-sweep"]).unwrap();
        o.scale = 5_000;
        let out = run(&o).unwrap();
        assert!(out.contains("geometry sweep"));
        assert!(out.contains("FIFO miss rate"));
        // All 40 grid cells render: 8 sizes x 5 associativities.
        for size in ["1K", "2K", "4K", "8K", "16K", "32K", "64K", "128K"] {
            let rows = out
                .lines()
                .filter(|l| l.split_whitespace().next() == Some(size))
                .count();
            assert_eq!(rows, 5, "{size} rows");
        }
    }

    #[test]
    fn missing_trace_file_is_a_clean_error() {
        let o = parse(&["--trace", "/nonexistent/x.din"]).unwrap();
        let e = run(&o).unwrap_err();
        assert!(e.to_string().contains("cannot open"));
    }
}
