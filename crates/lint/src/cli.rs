//! The command-line driver shared by the `jouppi-lint` binary and the
//! `jouppi lint` subcommand.
//!
//! The driver returns rendered output instead of printing so library
//! code stays print-free (the `debug-print` lint applies to this crate
//! too — binaries do the printing).

use std::fs;
use std::path::PathBuf;

use crate::baseline::{compare, Baseline};
use crate::report::{self, BaselineStatus};
use crate::workspace::{find_root, scan_files, scan_workspace};

/// Usage text for `--help`.
pub const USAGE: &str = "\
usage: jouppi-lint [OPTIONS] [FILES...]
  --workspace        lint the whole workspace (default when no FILES given)
  --root DIR         workspace root (default: nearest [workspace] Cargo.toml)
  --json             machine-readable report on stdout
  --baseline FILE    ratchet mode: findings beyond FILE's grandfathered
                     counts fail, and entries the tree has outgrown fail
                     as stale until the baseline is regenerated
  --write-baseline   capture the current findings into --baseline FILE
  --timings          per-analysis wall-clock cost on stderr
  --budget-ms N      fail (exit 1) when the scan's total analysis time
                     exceeds N milliseconds — CI's cost ratchet
  --list             print the lint catalog and exit
  --help             show this message

FILES are workspace-relative .rs paths; exit status is 0 when clean
(or exactly at the baseline), 1 when findings exist (or the ratchet
fails), 2 on usage or I/O errors.";

/// What a CLI invocation produced.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CliResult {
    /// Text for stdout.
    pub stdout: String,
    /// Text for stderr.
    pub stderr: String,
    /// Process exit code: 0 clean, 1 findings, 2 error.
    pub code: u8,
}

fn error(msg: impl Into<String>) -> CliResult {
    CliResult {
        stdout: String::new(),
        stderr: format!("jouppi-lint: {}\n", msg.into()),
        code: 2,
    }
}

/// Parses arguments and runs the requested scan.
pub fn run<I: IntoIterator<Item = String>>(args: I) -> CliResult {
    let mut json = false;
    let mut root_override: Option<PathBuf> = None;
    let mut files: Vec<String> = Vec::new();
    let mut workspace = false;
    let mut baseline_path: Option<String> = None;
    let mut write_baseline = false;
    let mut want_timings = false;
    let mut budget_ms: Option<u64> = None;
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--json" => json = true,
            "--baseline" => match args.next() {
                Some(path) => baseline_path = Some(path),
                None => return error("--baseline needs a file path"),
            },
            "--write-baseline" => write_baseline = true,
            "--timings" => want_timings = true,
            "--budget-ms" => match args.next().map(|n| n.parse::<u64>()) {
                Some(Ok(ms)) => budget_ms = Some(ms),
                Some(Err(_)) => return error("--budget-ms needs a whole number of milliseconds"),
                None => return error("--budget-ms needs a whole number of milliseconds"),
            },
            "--list" => {
                return CliResult {
                    stdout: report::catalog(),
                    stderr: String::new(),
                    code: 0,
                }
            }
            "--root" => match args.next() {
                Some(dir) => root_override = Some(PathBuf::from(dir)),
                None => return error("--root needs a directory"),
            },
            "--help" | "-h" => {
                return CliResult {
                    stdout: format!("{USAGE}\n"),
                    stderr: String::new(),
                    code: 0,
                }
            }
            other if other.starts_with('-') => {
                return error(format!("unknown option '{other}'\n{USAGE}"))
            }
            file => files.push(file.to_owned()),
        }
    }
    if workspace && !files.is_empty() {
        return error("--workspace and explicit FILES are mutually exclusive");
    }
    if write_baseline && baseline_path.is_none() {
        return error("--write-baseline needs --baseline FILE for the destination");
    }
    let root = match root_override {
        Some(dir) => dir,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(cwd) => cwd,
                Err(e) => return error(format!("cannot determine cwd: {e}")),
            };
            match find_root(&cwd) {
                Some(root) => root,
                None => return error("no [workspace] Cargo.toml above the current directory"),
            }
        }
    };
    let result = if files.is_empty() {
        scan_workspace(&root)
    } else {
        scan_files(&root, &files)
    };
    let result = match result {
        Ok(r) => r,
        Err(e) => return error(format!("scan failed under {}: {e}", root.display())),
    };
    let mut stderr = String::new();
    if want_timings {
        stderr.push_str(&report::timings(&result));
    }
    let mut over_budget = false;
    if let Some(budget) = budget_ms {
        let total: std::time::Duration = result.timings.iter().map(|(_, d)| *d).sum();
        let total_ms = total.as_secs_f64() * 1e3;
        if total_ms > budget as f64 {
            over_budget = true;
            stderr.push_str(&format!(
                "jouppi-lint: analysis took {total_ms:.1}ms, over the {budget}ms budget\n"
            ));
        }
    }

    if let Some(rel) = baseline_path {
        let path = root.join(&rel);
        if write_baseline {
            let doc = Baseline::from_scan(&result).encode() + "\n";
            return match fs::write(&path, doc) {
                Ok(()) => CliResult {
                    stdout: format!(
                        "jouppi-lint: wrote baseline {rel} — {} findings grandfathered\n",
                        result.total_findings()
                    ),
                    stderr,
                    code: u8::from(over_budget),
                },
                Err(e) => error(format!("cannot write baseline {}: {e}", path.display())),
            };
        }
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => return error(format!("cannot read baseline {}: {e}", path.display())),
        };
        let base = match Baseline::parse(&text) {
            Ok(b) => b,
            Err(e) => return error(format!("{rel}: {e}")),
        };
        let ratchet = compare(&base, &result);
        let status = BaselineStatus {
            path: &rel,
            grandfathered: base.entries.values().sum(),
            ratchet: &ratchet,
        };
        let stdout = if json {
            report::to_json(&result, Some(&status)).encode() + "\n"
        } else {
            report::human(&result, Some(&status))
        };
        return CliResult {
            stdout,
            stderr,
            code: u8::from(!ratchet.is_ok() || over_budget),
        };
    }

    let stdout = if json {
        report::to_json(&result, None).encode() + "\n"
    } else {
        report::human(&result, None)
    };
    CliResult {
        stdout,
        stderr,
        code: u8::from(!result.is_clean() || over_budget),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| (*s).to_string()).collect()
    }

    fn repo_root() -> String {
        let here = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
        find_root(here)
            .expect("workspace root")
            .to_string_lossy()
            .into_owned()
    }

    #[test]
    fn list_and_help_exit_zero() {
        let r = run(args(&["--list"]));
        assert_eq!(r.code, 0);
        assert!(r.stdout.contains("ambient-time"));
        let r = run(args(&["--help"]));
        assert_eq!(r.code, 0);
        assert!(r.stdout.contains("usage:"));
    }

    #[test]
    fn bad_flags_exit_two() {
        assert_eq!(run(args(&["--frobnicate"])).code, 2);
        assert_eq!(run(args(&["--root"])).code, 2);
        assert_eq!(run(args(&["--workspace", "src/lib.rs"])).code, 2);
        assert_eq!(run(args(&["--budget-ms"])).code, 2);
        assert_eq!(run(args(&["--budget-ms", "soon"])).code, 2);
    }

    #[test]
    fn budget_gate_fails_only_when_exceeded() {
        let root = repo_root();
        let file = "crates/lint/src/lexer.rs";
        // Any real scan takes more than 0ms.
        let r = run(args(&["--root", &root, "--budget-ms", "0", file]));
        assert_eq!(r.code, 1, "stderr: {}", r.stderr);
        assert!(r.stderr.contains("budget"), "stderr: {}", r.stderr);
        // A minute covers a one-file scan on any machine.
        let r = run(args(&["--root", &root, "--budget-ms", "60000", file]));
        assert_eq!(r.code, 0, "stderr: {}", r.stderr);
        assert!(r.stderr.is_empty(), "stderr: {}", r.stderr);
    }

    #[test]
    fn single_file_scan_with_explicit_root() {
        let root = repo_root();
        let r = run(args(&["--root", &root, "crates/lint/src/lexer.rs"]));
        assert_eq!(r.code, 0, "stderr: {}", r.stderr);
        assert!(r.stdout.contains("clean"));
    }

    #[test]
    fn json_flag_emits_json() {
        let root = repo_root();
        let r = run(args(&[
            "--root",
            &root,
            "--json",
            "crates/lint/src/lexer.rs",
        ]));
        assert_eq!(r.code, 0, "stderr: {}", r.stderr);
        let doc = jouppi_serve::json::Json::parse(r.stdout.trim()).expect("valid JSON");
        assert_eq!(
            doc.get("clean"),
            Some(&jouppi_serve::json::Json::Bool(true))
        );
    }
}
