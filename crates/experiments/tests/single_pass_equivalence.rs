//! The single-pass multi-geometry engines must be exactly equal to the
//! demoted per-cell simulator — miss count for miss count, across the
//! full geometry grid, under both LRU and FIFO.
//!
//! Three layers of pinning:
//! * the full [`jouppi_experiments::single_pass`] sweep on real
//!   benchmark traces against its per-cell oracle;
//! * the fig_3_1 three-C breakdowns computed by stack depths against the
//!   classifying simulator;
//! * the raw engines on adversarial synthetic streams (cyclic thrash,
//!   Belady's-anomaly stream, conflict-heavy strides) against
//!   [`jouppi_cache::Cache`] oracles cell by cell.

use jouppi_cache::{Cache, CacheGeometry, FifoSweep, LruSweep, ReplacementPolicy};
use jouppi_experiments::common::ExperimentConfig;
use jouppi_experiments::{fig_3_1, single_pass};
use jouppi_trace::LineAddr;

fn smoke_cfg() -> ExperimentConfig {
    ExperimentConfig::with_scale(12_000)
}

#[test]
fn geometry_sweep_single_pass_equals_per_cell() {
    let cfg = smoke_cfg();
    assert_eq!(single_pass::run(&cfg), single_pass::run_per_cell(&cfg));
}

#[test]
fn fig_3_1_single_pass_equals_classifier() {
    let cfg = smoke_cfg();
    assert_eq!(fig_3_1::run(&cfg), fig_3_1::run_single_pass(&cfg));
}

/// Adversarial line streams: cyclic LRU thrash just past each capacity
/// class, the textbook Belady-anomaly stream, a conflict-heavy stride
/// that floods one set, and a phase-shifting pseudo-random mix.
fn adversarial_streams() -> Vec<Vec<LineAddr>> {
    let belady = vec![1u64, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5];
    let cyclic: Vec<u64> = (0..2_000).map(|i| i % 65).collect();
    let strided: Vec<u64> = (0..2_000).map(|i| (i % 9) * 64).collect();
    let mixed: Vec<u64> = (0..4_000)
        .map(|i: u64| (i * 31 + i / 7) % 211)
        .chain((0..500).flat_map(|i| [i % 40, (i * 17) % 160]))
        .collect();
    [belady, cyclic, strided, mixed]
        .into_iter()
        .map(|s| s.into_iter().map(LineAddr::new).collect())
        .collect()
}

#[test]
fn engines_match_cache_oracle_on_adversarial_streams() {
    let cells: Vec<(u64, u64)> = single_pass::grid()
        .iter()
        .map(|g| (g.num_sets(), g.associativity()))
        .collect();
    let set_counts: Vec<u64> = cells.iter().map(|&(s, _)| s).collect();
    for stream in adversarial_streams() {
        // Both LRU backends: the production bounded sweep and the
        // exact Fenwick sweep must each equal the oracle.
        let mut lru_exact = LruSweep::for_set_counts(&set_counts).expect("valid");
        let mut lru_bounded = LruSweep::bounded(&cells).expect("valid");
        let mut fifo = FifoSweep::new(&cells).expect("valid");
        for &line in &stream {
            lru_exact.observe(line);
            lru_bounded.observe(line);
            fifo.observe(line);
        }
        for geom in single_pass::grid() {
            for policy in [ReplacementPolicy::Lru, ReplacementPolicy::Fifo] {
                let mut cache = Cache::with_policy(geom, policy);
                let mut misses = 0u64;
                for &line in &stream {
                    if cache.access_line(line).is_miss() {
                        misses += 1;
                    }
                }
                let engines = match policy {
                    ReplacementPolicy::Lru => vec![
                        lru_exact.misses_for_geometry(&geom),
                        lru_bounded.misses_for_geometry(&geom),
                    ],
                    _ => vec![fifo.misses_for_geometry(&geom)],
                };
                for engine in engines {
                    assert_eq!(
                        engine,
                        Some(misses),
                        "{policy:?} at {}B {}-way on a {}-ref stream",
                        geom.size(),
                        geom.associativity(),
                        stream.len()
                    );
                }
            }
        }
    }
}

#[test]
fn engines_match_oracle_beyond_the_grid() {
    // Geometries the named sweep does not include (tiny, very wide,
    // fully associative) — the engines are general, not grid-shaped.
    let extra = [
        CacheGeometry::new(256, 16, 1).expect("valid"),
        CacheGeometry::new(512, 16, 16).expect("valid"),
        CacheGeometry::fully_associative(1024, 16).expect("valid"),
    ];
    let stream: Vec<LineAddr> = (0..3_000u64)
        .map(|i| LineAddr::new((i * 13 + i / 5) % 151))
        .collect();
    let cells: Vec<(u64, u64)> = extra
        .iter()
        .map(|g| (g.num_sets(), g.associativity()))
        .collect();
    let mut lru = LruSweep::for_set_counts(&cells.iter().map(|&(s, _)| s).collect::<Vec<_>>())
        .expect("valid");
    let mut fifo = FifoSweep::new(&cells).expect("valid");
    for &line in &stream {
        lru.observe(line);
        fifo.observe(line);
    }
    for geom in extra {
        for policy in [ReplacementPolicy::Lru, ReplacementPolicy::Fifo] {
            let mut cache = Cache::with_policy(geom, policy);
            let mut misses = 0u64;
            for &line in &stream {
                if cache.access_line(line).is_miss() {
                    misses += 1;
                }
            }
            let engine = match policy {
                ReplacementPolicy::Lru => lru.misses_for_geometry(&geom),
                _ => fifo.misses_for_geometry(&geom),
            };
            assert_eq!(engine, Some(misses), "{policy:?} {geom:?}");
        }
    }
}
