//! Extension: victim caches for second-level caches (§3.5).
//!
//! "Thus victim caches might be expected to be useful for second-level
//! caches as well… In investigating victim caches for second-level
//! caches, both configurations with and without first-level victim
//! caches will need to be considered." The paper could not run this (it
//! needed multi-billion-reference traces for a megabyte L2); our
//! synthetic traces exercise a scaled-down L2 (64KB, 128B lines) whose
//! conflict misses are visible at experiment scale.

use jouppi_cache::CacheGeometry;
use jouppi_report::Table;
use jouppi_system::{SystemConfig, SystemModel};
use jouppi_workloads::Benchmark;

use crate::common::{average, per_benchmark, ExperimentConfig};

/// The scaled-down L2 used by this experiment.
fn small_l2() -> CacheGeometry {
    CacheGeometry::direct_mapped(64 << 10, 128).expect("valid geometry")
}

/// One benchmark's L2 miss counts under the §3.5/§5 configurations.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct L2VictimRow {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// L2 misses with no victim caches anywhere.
    pub plain: u64,
    /// L2 misses with an 8-entry L2 victim cache only.
    pub l2_vc: u64,
    /// L2 misses with a 4-entry L1 data victim cache only.
    pub l1_vc: u64,
    /// L2 misses with both victim caches.
    pub both: u64,
    /// L2 misses with a 4-way stream buffer between L2 and memory.
    pub l2_stream: u64,
}

/// Results of the §3.5 extension.
#[derive(Clone, Debug, PartialEq)]
pub struct ExtL2Victim {
    /// One row per benchmark.
    pub rows: Vec<L2VictimRow>,
}

/// Runs the four configurations over every benchmark.
pub fn run(cfg: &ExperimentConfig) -> ExtL2Victim {
    let rows = per_benchmark(cfg, |b, trace| {
        let l2_misses = |sys_cfg: SystemConfig| {
            let report = SystemModel::new(sys_cfg).run(trace);
            report.l2_stats.full_misses
        };
        let base = {
            let mut c = SystemConfig::baseline();
            c.l2 = small_l2();
            c
        };
        let with_l1_vc = {
            let mut c = base;
            c.d_cache = c.d_cache.victim_cache(4);
            c
        };
        L2VictimRow {
            benchmark: b,
            plain: l2_misses(base),
            l2_vc: l2_misses(base.with_l2_victim(8)),
            l1_vc: l2_misses(with_l1_vc),
            both: l2_misses(with_l1_vc.with_l2_victim(8)),
            l2_stream: l2_misses(base.with_l2_stream(4)),
        }
    })
    .into_iter()
    .map(|(_, r)| r)
    .collect();
    ExtL2Victim { rows }
}

impl ExtL2Victim {
    /// Average % of L2 misses removed by the 8-entry L2 victim cache
    /// (without an L1 victim cache).
    pub fn avg_l2_vc_removal(&self) -> f64 {
        average(
            &self
                .rows
                .iter()
                .map(|r| {
                    if r.plain == 0 {
                        0.0
                    } else {
                        100.0 * (r.plain.saturating_sub(r.l2_vc)) as f64 / r.plain as f64
                    }
                })
                .collect::<Vec<_>>(),
        )
    }

    /// Renders the four-configuration comparison.
    pub fn render(&self) -> String {
        let mut t = Table::new([
            "program",
            "plain L2 misses",
            "+L2 VC(8)",
            "+L1 VC(4)",
            "both VCs",
            "+L2 SB(4-way)",
        ]);
        for r in &self.rows {
            t.row([
                r.benchmark.name().to_owned(),
                r.plain.to_string(),
                r.l2_vc.to_string(),
                r.l1_vc.to_string(),
                r.both.to_string(),
                r.l2_stream.to_string(),
            ]);
        }
        format!(
            "Extension (§3.5): victim caches for second-level caches \
             (64KB/128B L2 so conflicts are visible at trace scale)\n{}\
             \nL2 victim cache removes {:.0}% of L2 misses on average\n",
            t.render(),
            self.avg_l2_vc_removal()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l2_victim_cache_removes_l2_misses() {
        let cfg = ExperimentConfig::with_scale(60_000);
        let e = run(&cfg);
        assert_eq!(e.rows.len(), 6);
        for r in &e.rows {
            assert!(r.l2_vc <= r.plain, "{:?}", r);
            assert!(r.both <= r.l1_vc, "{:?}", r);
            assert!(r.l2_stream <= r.plain, "{:?}", r);
        }
        // With 128B lines §3.5 expects meaningful L2 conflict misses;
        // the victim cache should remove a visible share somewhere.
        assert!(e.avg_l2_vc_removal() > 1.0, "{}", e.avg_l2_vc_removal());
        assert!(e.render().contains("L2 VC(8)"));
    }

    #[test]
    fn l1_victim_cache_interacts_benignly_with_l2() {
        // §3.5 notes an L1 victim cache can reduce L2 conflict misses too
        // (it removes L1 conflict misses before they reach L2) — at
        // minimum it must not increase L2 misses catastrophically.
        let cfg = ExperimentConfig::with_scale(40_000);
        let e = run(&cfg);
        for r in &e.rows {
            assert!(
                r.l1_vc <= r.plain + r.plain / 4,
                "{}: L1 VC ballooned L2 misses {:?}",
                r.benchmark,
                r
            );
        }
    }
}
