//! Shared experiment infrastructure.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use jouppi_cache::CacheGeometry;
use jouppi_core::{AugmentedCache, AugmentedConfig, AugmentedStats, Gang};
use jouppi_trace::{AccessKind, MemRef, RecordedTrace, SideView};
use jouppi_workloads::{Benchmark, Scale};

use crate::sweep;

/// Which first-level cache a reference stream feeds.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Side {
    /// Instruction fetches → instruction cache.
    Instruction,
    /// Loads and stores → data cache.
    Data,
}

impl Side {
    /// Both sides, instruction first (the paper's convention).
    pub const BOTH: [Side; 2] = [Side::Instruction, Side::Data];

    /// Returns `true` if `r` belongs to this side.
    pub fn matches(self, r: &MemRef) -> bool {
        match self {
            Side::Instruction => r.kind == AccessKind::InstrFetch,
            Side::Data => r.kind != AccessKind::InstrFetch,
        }
    }

    /// Label used in reports ("L1 I-cache" / "L1 D-cache").
    pub fn label(self) -> &'static str {
        match self {
            Side::Instruction => "L1 I-cache",
            Side::Data => "L1 D-cache",
        }
    }

    /// This side's dense pre-partitioned view of a recorded trace.
    pub fn view(self, trace: &RecordedTrace) -> &SideView {
        match self {
            Side::Instruction => trace.instr_side(),
            Side::Data => trace.data_side(),
        }
    }
}

/// Scale and seed shared by every experiment run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ExperimentConfig {
    /// Trace length in dynamic instructions per benchmark.
    pub scale: Scale,
    /// Workload generation seed.
    pub seed: u64,
}

impl Default for ExperimentConfig {
    /// 500k instructions per benchmark, seed 42.
    fn default() -> Self {
        ExperimentConfig {
            scale: Scale::new(500_000),
            seed: 42,
        }
    }
}

impl ExperimentConfig {
    /// A configuration with the given scale and the default seed.
    pub fn with_scale(instructions: u64) -> Self {
        ExperimentConfig {
            scale: Scale::new(instructions),
            ..ExperimentConfig::default()
        }
    }
}

/// All six benchmark traces for one configuration, shared process-wide.
pub type TraceSet = Arc<Vec<(Benchmark, RecordedTrace)>>;

/// Recently recorded trace sets, LRU by configuration (MRU at the back).
///
/// Trace generation is pure in `(benchmark, scale, seed)`, yet it
/// dominated sweep wall time: every figure regenerated all six traces
/// from scratch. Memoizing the last few configurations turns repeat
/// sweeps — the `jouppi serve` daemon, `repro`'s figure sequence, the
/// benchmark harness — into pure replay. Capacity is small because a
/// trace set at default scale is tens of megabytes.
static TRACE_CACHE: Mutex<Vec<(ExperimentConfig, TraceSet)>> = Mutex::new(Vec::new());

const TRACE_CACHE_CAPACITY: usize = 3;

/// Records all six benchmark traces (in parallel when the sweep engine
/// has more than one worker) with their side partitions materialized.
///
/// Generation is deterministic per benchmark (each is seeded
/// independently), so the thread interleaving cannot affect the traces.
/// Results are memoized per configuration; repeat calls return the shared
/// recording without regenerating.
pub fn record_traces(cfg: &ExperimentConfig) -> TraceSet {
    let mut cache = TRACE_CACHE.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(pos) = cache.iter().position(|(k, _)| k == cfg) {
        let hit = cache.remove(pos);
        let set = hit.1.clone();
        cache.push(hit);
        return set;
    }
    // Generation runs under the lock: concurrent callers with the same
    // configuration (the common case in the serve daemon) would otherwise
    // duplicate the work. Sweep workers never call back into the cache,
    // so holding the lock across map_jobs cannot deadlock.
    let set: TraceSet = Arc::new(sweep::map_jobs(Benchmark::ALL.len(), |i| {
        let b = Benchmark::ALL[i];
        let trace = RecordedTrace::record(&b.source(cfg.scale, cfg.seed));
        // Build both side views here, on the worker, so the partition
        // cost is not paid lazily inside the first simulation cell.
        trace.materialize_sides();
        (b, trace)
    }));
    if cache.len() == TRACE_CACHE_CAPACITY {
        cache.remove(0);
    }
    cache.push((*cfg, set.clone()));
    set
}

/// Records each benchmark's trace once and maps `f` over them.
///
/// Recording amortizes generation across the many cache configurations an
/// experiment sweeps; the recording itself is fanned over the sweep
/// engine's workers. `f` runs sequentially in benchmark order (it may
/// mutate captured state) — experiments whose cells should also run in
/// parallel use [`record_traces`] + [`sweep::map_jobs`] directly.
pub fn per_benchmark<T>(
    cfg: &ExperimentConfig,
    mut f: impl FnMut(Benchmark, &RecordedTrace) -> T,
) -> Vec<(Benchmark, T)> {
    record_traces(cfg)
        .iter()
        .map(|(b, trace)| {
            let out = f(*b, trace);
            (*b, out)
        })
        .collect()
}

/// Process-wide count of memory references replayed through cache
/// models. Observability hook for `jouppi serve`'s `/metrics` endpoint;
/// monotonically increasing, never reset.
static REFS_SIMULATED: AtomicU64 = AtomicU64::new(0);

/// Total memory references replayed through [`run_side`],
/// [`classify_side`], and any caller of [`note_refs_simulated`] since
/// process start.
pub fn refs_simulated() -> u64 {
    // jouppi-lint: allow(relaxed-ordering) — point-in-time sample of a
    // monotone observability counter; exact under any ordering.
    REFS_SIMULATED.load(Ordering::Relaxed)
}

/// Adds `n` replayed references to the process-wide counter. Simulation
/// paths outside this module (e.g. the ad-hoc `/v1/simulate` endpoint)
/// call this so `/metrics` sees all traffic.
pub fn note_refs_simulated(n: u64) {
    // jouppi-lint: allow(relaxed-ordering) — atomic RMW on a monotone
    // counter loses no increments regardless of ordering.
    REFS_SIMULATED.fetch_add(n, Ordering::Relaxed);
}

/// Replays one side of a trace through an augmented cache organization.
///
/// Iterates the trace's dense side view — no per-reference kind branch —
/// and feeds pre-derived line addresses straight to the cache when the
/// configuration uses the baseline line size.
pub fn run_side(trace: &RecordedTrace, side: Side, cfg: AugmentedConfig) -> AugmentedStats {
    let mut cache = AugmentedCache::new(cfg);
    let view = side.view(trace);
    note_refs_simulated(view.addrs().len() as u64);
    if let Some(lines) = view.lines_for(cfg.geometry().line_size()) {
        for &line in lines {
            cache.access_line(line);
        }
    } else {
        for &addr in view.addrs() {
            cache.access(addr);
        }
    }
    *cache.stats()
}

/// Widest gang a fused sweep cell drives per trace pass.
///
/// Each member touches its own L1 slot array per reference, so very wide
/// gangs thrash the host's caches; eight members keeps the working set
/// modest while still amortizing one trace pass over a whole sweep row
/// (the conflict sweeps need four configurations, the stream sweeps
/// nine).
pub const GANG_WIDTH: usize = 8;

/// Replays one side of a trace through a gang of augmented organizations
/// in a single fused pass, returning per-configuration statistics in
/// `cfgs` order.
///
/// Gang members are independent, so the result is bit-identical to
/// calling [`run_side`] once per configuration; the trace is only
/// streamed through host memory once. Callers with more than
/// [`GANG_WIDTH`] configurations should chunk them.
pub fn run_side_gang(
    trace: &RecordedTrace,
    side: Side,
    cfgs: &[AugmentedConfig],
) -> Vec<AugmentedStats> {
    let mut gang = Gang::new(cfgs);
    let view = side.view(trace);
    note_refs_simulated(view.addrs().len() as u64 * cfgs.len() as u64);
    match gang
        .uniform_line_size()
        .and_then(|size| view.lines_for(size))
    {
        Some(lines) => {
            for &line in lines {
                gang.step_line(line);
            }
        }
        None => {
            for &addr in view.addrs() {
                gang.step_addr(addr);
            }
        }
    }
    gang.into_stats()
}

/// Replays one side through a classified direct-mapped cache, returning
/// `(misses, breakdown)`. Uses the same dense side views as [`run_side`].
pub fn classify_side(
    trace: &RecordedTrace,
    side: Side,
    geom: CacheGeometry,
) -> (u64, jouppi_cache::MissBreakdown) {
    let mut cache = jouppi_cache::ClassifiedCache::new(geom);
    let view = side.view(trace);
    note_refs_simulated(view.addrs().len() as u64);
    if let Some(lines) = view.lines_for(geom.line_size()) {
        for &line in lines {
            cache.access_line(line);
        }
    } else {
        for &addr in view.addrs() {
            cache.access(addr);
        }
    }
    (cache.stats().misses, cache.breakdown())
}

/// The paper's baseline L1 geometry: 4KB direct-mapped, 16B lines.
pub fn baseline_l1() -> CacheGeometry {
    CacheGeometry::direct_mapped(4096, 16).expect("baseline geometry is valid")
}

/// The paper's summary metric: the unweighted mean over benchmarks of each
/// benchmark's own percentage (see the §3.1 footnote — this weights every
/// program equally regardless of its miss rate).
pub fn average(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Percent of a benchmark's *conflict* misses removed by a mechanism:
/// `removed / conflict × 100`, clamped at 0 when there were no conflict
/// misses.
pub fn pct_of_conflicts_removed(removed: u64, conflict: u64) -> f64 {
    if conflict == 0 {
        0.0
    } else {
        100.0 * removed as f64 / conflict as f64
    }
}

/// Percent of a benchmark's total misses removed: `removed / misses × 100`.
pub fn pct_of_misses_removed(removed: u64, misses: u64) -> f64 {
    if misses == 0 {
        0.0
    } else {
        100.0 * removed as f64 / misses as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn side_filters_kinds() {
        let i = MemRef::instr(jouppi_trace::Addr::new(0));
        let l = MemRef::load(jouppi_trace::Addr::new(0));
        let s = MemRef::store(jouppi_trace::Addr::new(0));
        assert!(Side::Instruction.matches(&i));
        assert!(!Side::Instruction.matches(&l));
        assert!(Side::Data.matches(&l));
        assert!(Side::Data.matches(&s));
        assert_eq!(Side::Instruction.label(), "L1 I-cache");
    }

    #[test]
    fn averages() {
        assert_eq!(average(&[]), 0.0);
        assert_eq!(average(&[1.0, 3.0]), 2.0);
    }

    #[test]
    fn percentage_helpers_handle_zero() {
        assert_eq!(pct_of_conflicts_removed(5, 0), 0.0);
        assert_eq!(pct_of_conflicts_removed(5, 10), 50.0);
        assert_eq!(pct_of_misses_removed(0, 0), 0.0);
        assert_eq!(pct_of_misses_removed(3, 12), 25.0);
    }

    #[test]
    fn per_benchmark_covers_all_six() {
        let cfg = ExperimentConfig::with_scale(2_000);
        let out = per_benchmark(&cfg, |_, t| t.len());
        assert_eq!(out.len(), 6);
        assert!(out.iter().all(|(_, n)| *n >= 2_000));
    }

    #[test]
    fn run_side_only_sees_matching_refs() {
        let cfg = ExperimentConfig::with_scale(5_000);
        let trace = RecordedTrace::record(&Benchmark::Ccom.source(cfg.scale, cfg.seed));
        let stats = run_side(
            &trace,
            Side::Instruction,
            AugmentedConfig::new(baseline_l1()),
        );
        assert_eq!(stats.accesses, trace.stats().instruction_refs);
    }
}
