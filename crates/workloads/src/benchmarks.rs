//! The six benchmark programs of Table 2-1, as synthetic generators.

use std::fmt;

use jouppi_trace::{MemRef, SmallRng, TraceSource};

use crate::data::{
    Daxpy, HotConflictSet, InterleavedSweep, Mixture, PointerChase, StackFrames, StridedSweep,
    StringCompare, TableLookup,
};
use crate::exec::{CodeLayout, ExecConfig, Executor};
use crate::gen::{Scale, TraceGen};

/// The direct-mapped cache image size the paper's baseline L1 has
/// (4KB with 16B lines): addresses congruent modulo this collide.
const CACHE_SPAN: u64 = 4096;

/// Program code segment base.
const CODE_BASE: u64 = 0x0100_0000;

/// Stack top (frames grow down from here).
const STACK_TOP: u64 = 0x7FFF_F000;

/// Data-region bases, one per logical structure, far apart and
/// `CACHE_SPAN`-aligned.
const REGION: [u64; 6] = [
    0x1000_0000,
    0x2000_0000,
    0x3000_0000,
    0x4000_0000,
    0x5000_0000,
    0x6000_0000,
];

/// One of the six test programs from Table 2-1 of the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// `ccom` — a C compiler: call-heavy code, string compares, pointer
    /// chasing over ASTs and symbol tables.
    Ccom,
    /// `grr` — PC-board CAD (routing): grid traversals and routing tables.
    Grr,
    /// `yacc` — parser generator: DFA table walks and a parser stack.
    Yacc,
    /// `met` — PC-board CAD: alternating accesses to a few structures that
    /// collide in the cache (the suite's highest conflict ratio).
    Met,
    /// `linpack` — 100×100 numeric: `daxpy` column sweeps.
    Linpack,
    /// `liver` — Livermore loops: 14 sequential vector kernels over
    /// interleaved operand arrays.
    Liver,
}

/// Reference data from the paper for one benchmark (Tables 2-1 and 2-2).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PaperRow {
    /// Dynamic instructions in the original trace, in millions.
    pub dynamic_instr_m: f64,
    /// Data references in the original trace, in millions.
    pub data_refs_m: f64,
    /// The paper's "program type" column.
    pub program_type: &'static str,
    /// Baseline 4KB/16B instruction-cache miss rate (Table 2-2).
    pub baseline_instr_miss_rate: f64,
    /// Baseline 4KB/16B data-cache miss rate (Table 2-2).
    pub baseline_data_miss_rate: f64,
}

impl Benchmark {
    /// All six benchmarks in the paper's order.
    pub const ALL: [Benchmark; 6] = [
        Benchmark::Ccom,
        Benchmark::Grr,
        Benchmark::Yacc,
        Benchmark::Met,
        Benchmark::Linpack,
        Benchmark::Liver,
    ];

    /// The benchmark's name as printed in the paper.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Ccom => "ccom",
            Benchmark::Grr => "grr",
            Benchmark::Yacc => "yacc",
            Benchmark::Met => "met",
            Benchmark::Linpack => "linpack",
            Benchmark::Liver => "liver",
        }
    }

    /// Looks a benchmark up by its paper name (`"ccom"`, `"liver"`, …).
    ///
    /// # Examples
    ///
    /// ```
    /// use jouppi_workloads::Benchmark;
    /// assert_eq!(Benchmark::from_name("met"), Some(Benchmark::Met));
    /// assert_eq!(Benchmark::from_name("doom"), None);
    /// ```
    pub fn from_name(name: &str) -> Option<Benchmark> {
        Benchmark::ALL.into_iter().find(|b| b.name() == name)
    }

    /// The paper's published characteristics and baseline miss rates.
    pub fn paper_row(self) -> PaperRow {
        match self {
            Benchmark::Ccom => PaperRow {
                dynamic_instr_m: 31.5,
                data_refs_m: 14.0,
                program_type: "C compiler",
                baseline_instr_miss_rate: 0.096,
                baseline_data_miss_rate: 0.120,
            },
            Benchmark::Grr => PaperRow {
                dynamic_instr_m: 134.2,
                data_refs_m: 59.2,
                program_type: "PC board CAD",
                baseline_instr_miss_rate: 0.061,
                baseline_data_miss_rate: 0.062,
            },
            Benchmark::Yacc => PaperRow {
                dynamic_instr_m: 51.0,
                data_refs_m: 16.7,
                program_type: "Unix utility",
                baseline_instr_miss_rate: 0.028,
                baseline_data_miss_rate: 0.040,
            },
            Benchmark::Met => PaperRow {
                dynamic_instr_m: 99.4,
                data_refs_m: 50.3,
                program_type: "PC board CAD",
                baseline_instr_miss_rate: 0.017,
                baseline_data_miss_rate: 0.039,
            },
            Benchmark::Linpack => PaperRow {
                dynamic_instr_m: 144.8,
                data_refs_m: 40.7,
                program_type: "100x100 numeric",
                baseline_instr_miss_rate: 0.000,
                baseline_data_miss_rate: 0.144,
            },
            Benchmark::Liver => PaperRow {
                dynamic_instr_m: 23.6,
                data_refs_m: 7.4,
                program_type: "LFK (numeric)",
                baseline_instr_miss_rate: 0.000,
                baseline_data_miss_rate: 0.273,
            },
        }
    }

    /// Average data references per instruction in the original trace.
    pub fn data_per_instr(self) -> f64 {
        let row = self.paper_row();
        row.data_refs_m / row.dynamic_instr_m
    }

    /// Creates a deterministic, replayable trace source for this
    /// benchmark.
    pub fn source(self, scale: Scale, seed: u64) -> WorkloadSource {
        WorkloadSource {
            benchmark: self,
            scale,
            seed,
        }
    }

    fn build(self, scale: Scale, seed: u64) -> TraceGen {
        // Separate the seed per benchmark so a suite run at one seed does
        // not correlate across programs.
        let mut rng = SmallRng::seed_from_u64(seed ^ (self as u64).wrapping_mul(0x9e37_79b9));
        match self {
            Benchmark::Ccom => build_ccom(scale, &mut rng),
            Benchmark::Grr => build_grr(scale, &mut rng),
            Benchmark::Yacc => build_yacc(scale, &mut rng),
            Benchmark::Met => build_met(scale, &mut rng),
            Benchmark::Linpack => build_linpack(scale, &mut rng),
            Benchmark::Liver => build_liver(scale, &mut rng),
        }
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A replayable [`TraceSource`] for one benchmark at a fixed scale and
/// seed. Every call to [`TraceSource::refs`] regenerates the identical
/// trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct WorkloadSource {
    benchmark: Benchmark,
    scale: Scale,
    seed: u64,
}

impl WorkloadSource {
    /// The benchmark this source generates.
    pub fn benchmark(&self) -> Benchmark {
        self.benchmark
    }

    /// The scale (dynamic instruction count).
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// The generation seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

impl TraceSource for WorkloadSource {
    fn refs(&self) -> Box<dyn Iterator<Item = MemRef> + '_> {
        Box::new(self.benchmark.build(self.scale, self.seed))
    }

    fn name(&self) -> &str {
        self.benchmark.name()
    }
}

/// Draws `n` procedure lengths uniformly from `lo..=hi` instructions.
fn proc_lengths(rng: &mut SmallRng, n: usize, lo: u32, hi: u32) -> Vec<u32> {
    (0..n).map(|_| rng.gen_range(lo..=hi)).collect()
}

fn build_ccom(scale: Scale, rng: &mut SmallRng) -> TraceGen {
    // Call-heavy compiler: ~7k instructions of code (~28KB, 7 cache
    // images), moderate locality.
    let lengths = proc_lengths(rng, 48, 40, 240);
    let layout = CodeLayout::contiguous(CODE_BASE, &lengths);
    let exec = Executor::new(
        layout,
        ExecConfig {
            call_prob: 0.04,
            max_depth: 10,
            callee_skew: 1.38,
            sequential_dispatch: false,
        },
    );
    // Most data references go to hot, cache-resident state (stack frames,
    // small work buffers, a hot symbol-table fringe); the misses come from
    // string compares (part conflicting) and AST pointer chasing.
    let chase = PointerChase::new(REGION[2], 48, 4500, rng); // ~216KB AST heap
    let data = Mixture::new()
        .with_burst(
            1.05,
            48,
            StringCompare::new(REGION[0], REGION[1], 256 << 10, CACHE_SPAN, 0.13, 24, 120),
        )
        .with_burst(0.32, 8, chase)
        .with_burst(1.0, 4, TableLookup::new(REGION[3], 64, 16, 0.5)) // hot symtab fringe
        .with_burst(4.0, 8, StackFrames::new(STACK_TOP, 1 << 10, 96))
        .with_burst(3.0, 16, StridedSweep::new(REGION[4] + 1280, 8, 768)); // work buffers
    TraceGen::new(
        exec,
        Box::new(data),
        rng.clone(),
        scale,
        Benchmark::Ccom.data_per_instr(),
        0.35,
    )
}

fn build_grr(scale: Scale, rng: &mut SmallRng) -> TraceGen {
    // Router: medium code footprint, grid-plane sweeps plus routing
    // tables, above-average data conflicts.
    let lengths = proc_lengths(rng, 32, 40, 160);
    let layout = CodeLayout::contiguous(CODE_BASE, &lengths);
    let exec = Executor::new(
        layout,
        ExecConfig {
            call_prob: 0.03,
            max_depth: 8,
            callee_skew: 1.35,
            sequential_dispatch: false,
        },
    );
    let data = Mixture::new()
        .with_burst(
            0.32,
            12,
            HotConflictSet::new(REGION[2] + 0x140, CACHE_SPAN, 2, 3),
        )
        .with_burst(0.24, 16, StridedSweep::new(REGION[0], 16, 96 << 10)) // grid plane
        .with_burst(3.0, 4, TableLookup::new(REGION[1], 64, 16, 0.5)) // hot route tables
        .with_burst(5.0, 8, StackFrames::new(STACK_TOP, 1 << 10, 64))
        .with_burst(1.2, 16, StridedSweep::new(REGION[3] + 1280, 8, 768)); // reused net list
    TraceGen::new(
        exec,
        Box::new(data),
        rng.clone(),
        scale,
        Benchmark::Grr.data_per_instr(),
        0.30,
    )
}

fn build_yacc(scale: Scale, rng: &mut SmallRng) -> TraceGen {
    // Parser generator: small hot code, DFA tables, parser stack, token
    // buffer.
    let lengths = proc_lengths(rng, 24, 30, 120);
    let layout = CodeLayout::contiguous(CODE_BASE, &lengths);
    let exec = Executor::new(
        layout,
        ExecConfig {
            call_prob: 0.03,
            max_depth: 8,
            callee_skew: 1.55,
            sequential_dispatch: false,
        },
    );
    let data = Mixture::new()
        .with_burst(
            0.25,
            12,
            HotConflictSet::new(REGION[2] + 0xa20, CACHE_SPAN, 2, 3),
        )
        .with_burst(0.18, 16, StridedSweep::new(REGION[1], 4, 128 << 10)) // token scan
        .with_burst(0.12, 4, TableLookup::new(REGION[0], 3072, 8, 0.4)) // 24KB DFA cold part
        .with_burst(3.0, 4, TableLookup::new(REGION[3], 96, 8, 0.3)) // hot DFA rows
        .with_burst(3.0, 8, StackFrames::new(STACK_TOP, 1 << 10, 32))
        .with_burst(3.25, 8, StridedSweep::new(REGION[4] + 1280, 8, 768)); // value stack
    TraceGen::new(
        exec,
        Box::new(data),
        rng.clone(),
        scale,
        Benchmark::Yacc.data_per_instr(),
        0.25,
    )
}

fn build_met(scale: Scale, rng: &mut SmallRng) -> TraceGen {
    // The conflict-miss showcase: most references go to a handful of hot
    // structures; several of them collide in a 4KB direct-mapped image.
    let lengths = proc_lengths(rng, 20, 30, 110);
    let layout = CodeLayout::contiguous(CODE_BASE, &lengths);
    let exec = Executor::new(
        layout,
        ExecConfig {
            call_prob: 0.025,
            max_depth: 6,
            callee_skew: 1.45,
            sequential_dispatch: false,
        },
    );
    let data = Mixture::new()
        .with_burst(
            0.36,
            24,
            HotConflictSet::new(REGION[0] + 0x100, CACHE_SPAN, 3, 4),
        )
        .with_burst(
            0.25,
            8,
            HotConflictSet::new(REGION[1] + 0x980, CACHE_SPAN, 2, 2),
        )
        .with_burst(0.06, 16, StridedSweep::new(REGION[3], 16, 64 << 10))
        .with_burst(3.0, 4, TableLookup::new(REGION[2], 64, 16, 0.6)) // hot cell table
        .with_burst(4.0, 8, StackFrames::new(STACK_TOP, 1 << 10, 48))
        .with_burst(2.0, 16, StridedSweep::new(REGION[4] + 1280, 8, 768)); // wavefront
    TraceGen::new(
        exec,
        Box::new(data),
        rng.clone(),
        scale,
        Benchmark::Met.data_per_instr(),
        0.35,
    )
}

fn build_linpack(scale: Scale, rng: &mut SmallRng) -> TraceGen {
    // Tiny loop kernel, one big matrix: the inner daxpy dominates.
    let layout = CodeLayout::contiguous(CODE_BASE, &[40, 60, 24, 30])
        .with_loop(1, 10, 50, 20) // dgefa column loop
        .with_loop(2, 4, 20, 200); // daxpy inner loop
    let exec = Executor::new(
        layout,
        ExecConfig {
            call_prob: 0.015,
            max_depth: 6,
            callee_skew: 1.0,
            sequential_dispatch: false,
        },
    );
    let data = Mixture::new()
        .with_burst(3.6, 60, Daxpy::new(REGION[0], 100, 201))
        .with_burst(1.0, 8, StackFrames::new(STACK_TOP, 1 << 10, 64))
        .with_burst(2.9, 16, StridedSweep::new(REGION[1] + 2048, 8, 768)); // pivot bookkeeping
    TraceGen::new(
        exec,
        Box::new(data),
        rng.clone(),
        scale,
        Benchmark::Linpack.data_per_instr(),
        0.33,
    )
}

fn build_liver(scale: Scale, rng: &mut SmallRng) -> TraceGen {
    // 14 kernels executed in sequence, each a tight vector loop over
    // interleaved operand arrays larger than the cache.
    let lengths = proc_lengths(rng, 14, 40, 90);
    let mut layout = CodeLayout::contiguous(CODE_BASE, &lengths);
    for (i, &len) in lengths.iter().enumerate() {
        layout = layout.with_loop(i, 4, len - 2, 400);
    }
    let exec = Executor::new(
        layout,
        ExecConfig {
            call_prob: 0.0,
            max_depth: 2,
            callee_skew: 0.0,
            sequential_dispatch: true,
        },
    );
    // Operand arrays are staggered by a non-multiple of the 4KB cache
    // image so parallel streams do not alias each other's sets.
    let data = Mixture::new()
        .with_burst(
            2.7,
            48,
            InterleavedSweep::new(
                vec![
                    REGION[0],
                    REGION[0] + (1 << 20) + 1040,
                    REGION[0] + (2 << 20) + 2080,
                ],
                8,
                128 << 10,
            ),
        )
        .with_burst(
            1.8,
            32,
            InterleavedSweep::new(vec![REGION[1], REGION[1] + (1 << 20) + 1360], 8, 96 << 10),
        )
        .with_burst(4.5, 8, StridedSweep::new(REGION[2] + 1280, 8, 640)); // reused scalars
    TraceGen::new(
        exec,
        Box::new(data),
        rng.clone(),
        scale,
        Benchmark::Liver.data_per_instr(),
        0.28,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use jouppi_trace::TraceStats;

    #[test]
    fn all_benchmarks_generate_requested_instructions() {
        for b in Benchmark::ALL {
            let src = b.source(Scale::new(20_000), 1);
            let stats = TraceStats::from_refs(src.refs());
            assert_eq!(
                stats.instruction_refs, 20_000,
                "{b} wrong instruction count"
            );
        }
    }

    #[test]
    fn data_ratios_match_table_2_1() {
        for b in Benchmark::ALL {
            let src = b.source(Scale::new(100_000), 2);
            let stats = TraceStats::from_refs(src.refs());
            let want = b.data_per_instr();
            let got = stats.data_per_instr();
            assert!(
                (got - want).abs() < 0.02,
                "{b}: data/instr {got:.3} vs paper {want:.3}"
            );
        }
    }

    #[test]
    fn traces_are_deterministic() {
        for b in Benchmark::ALL {
            let src = b.source(Scale::new(5_000), 7);
            let a: Vec<_> = src.refs().collect();
            let b2: Vec<_> = src.refs().collect();
            assert_eq!(a, b2, "{b} trace not replayable");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a: Vec<_> = Benchmark::Ccom
            .source(Scale::new(5_000), 1)
            .refs()
            .collect();
        let b: Vec<_> = Benchmark::Ccom
            .source(Scale::new(5_000), 2)
            .refs()
            .collect();
        assert_ne!(a, b);
    }

    #[test]
    fn benchmarks_differ_from_each_other() {
        let a: Vec<_> = Benchmark::Ccom
            .source(Scale::new(5_000), 1)
            .refs()
            .collect();
        let b: Vec<_> = Benchmark::Yacc
            .source(Scale::new(5_000), 1)
            .refs()
            .collect();
        assert_ne!(a, b);
    }

    #[test]
    fn from_name_roundtrips() {
        for b in Benchmark::ALL {
            assert_eq!(Benchmark::from_name(b.name()), Some(b));
        }
        assert_eq!(Benchmark::from_name("nope"), None);
        assert_eq!(Benchmark::from_name(""), None);
    }

    #[test]
    fn paper_rows_are_complete() {
        let mut names = std::collections::HashSet::new();
        for b in Benchmark::ALL {
            let row = b.paper_row();
            assert!(row.dynamic_instr_m > 0.0);
            assert!(row.data_refs_m > 0.0);
            assert!(!row.program_type.is_empty());
            assert!(names.insert(b.name()));
            assert_eq!(b.to_string(), b.name());
        }
        assert_eq!(names.len(), 6);
    }

    #[test]
    fn source_accessors() {
        let src = Benchmark::Met.source(Scale::new(1_000), 9);
        assert_eq!(src.benchmark(), Benchmark::Met);
        assert_eq!(src.scale(), Scale::new(1_000));
        assert_eq!(src.seed(), 9);
        assert_eq!(jouppi_trace::TraceSource::name(&src), "met");
    }

    #[test]
    fn numeric_benchmarks_have_tiny_instruction_footprints() {
        use jouppi_trace::AccessKind;
        for b in [Benchmark::Linpack, Benchmark::Liver] {
            let src = b.source(Scale::new(50_000), 3);
            let distinct: std::collections::HashSet<u64> = src
                .refs()
                .filter(|r| r.kind == AccessKind::InstrFetch)
                .map(|r| r.addr.get() / 16)
                .collect();
            assert!(
                distinct.len() < 256,
                "{b}: {} instruction lines won't fit 4KB",
                distinct.len()
            );
        }
    }
}
