//! Fixture: an `as u32` narrowing a computed `u64` — values past
//! 2^32 wrap silently in the reported number.

pub fn percent(hits: u64, total: u64) -> u32 {
    ((100 * hits) / total.max(1)) as u32
}
