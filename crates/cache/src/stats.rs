//! Access and miss statistics.

use std::fmt;
use std::ops::{Add, AddAssign};

/// Demand-access counters for a cache.
///
/// # Examples
///
/// ```
/// use jouppi_cache::CacheStats;
///
/// let s = CacheStats { accesses: 10, hits: 7, misses: 3, evictions: 2 };
/// assert!((s.miss_rate() - 0.3).abs() < 1e-12);
/// assert!((s.hit_rate() - 0.7).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct CacheStats {
    /// Total demand accesses.
    pub accesses: u64,
    /// Demand hits.
    pub hits: u64,
    /// Demand misses.
    pub misses: u64,
    /// Fills that displaced a valid line.
    pub evictions: u64,
}

impl CacheStats {
    /// Creates zeroed counters.
    pub const fn new() -> Self {
        CacheStats {
            accesses: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Misses per access; 0.0 when there were no accesses.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Hits per access; 0.0 when there were no accesses.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

impl Add for CacheStats {
    type Output = CacheStats;

    fn add(self, rhs: CacheStats) -> CacheStats {
        CacheStats {
            accesses: self.accesses + rhs.accesses,
            hits: self.hits + rhs.hits,
            misses: self.misses + rhs.misses,
            evictions: self.evictions + rhs.evictions,
        }
    }
}

impl AddAssign for CacheStats {
    fn add_assign(&mut self, rhs: CacheStats) {
        *self = *self + rhs;
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} accesses, {} hits, {} misses (miss rate {:.4})",
            self.accesses,
            self.hits,
            self.misses,
            self.miss_rate()
        )
    }
}

/// Misses split into the three-C classes used throughout the paper.
///
/// `compulsory + capacity + conflict` always equals the total number of
/// classified misses (the classifier assigns exactly one class per miss).
///
/// # Examples
///
/// ```
/// use jouppi_cache::MissBreakdown;
///
/// let b = MissBreakdown { compulsory: 10, capacity: 50, conflict: 40 };
/// assert_eq!(b.total(), 100);
/// assert!((b.conflict_fraction() - 0.4).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct MissBreakdown {
    /// First-ever references to a line (cold misses).
    pub compulsory: u64,
    /// Misses a fully-associative LRU cache of the same capacity would also
    /// take.
    pub capacity: u64,
    /// Misses due only to the mapping (would hit fully-associative).
    pub conflict: u64,
}

impl MissBreakdown {
    /// Creates zeroed counters.
    pub const fn new() -> Self {
        MissBreakdown {
            compulsory: 0,
            capacity: 0,
            conflict: 0,
        }
    }

    /// Total classified misses.
    pub const fn total(&self) -> u64 {
        self.compulsory + self.capacity + self.conflict
    }

    /// Fraction of misses that are conflict misses (Figure 3-1's metric);
    /// 0.0 when there are no misses.
    pub fn conflict_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.conflict as f64 / total as f64
        }
    }
}

impl Add for MissBreakdown {
    type Output = MissBreakdown;

    fn add(self, rhs: MissBreakdown) -> MissBreakdown {
        MissBreakdown {
            compulsory: self.compulsory + rhs.compulsory,
            capacity: self.capacity + rhs.capacity,
            conflict: self.conflict + rhs.conflict,
        }
    }
}

impl AddAssign for MissBreakdown {
    fn add_assign(&mut self, rhs: MissBreakdown) {
        *self = *self + rhs;
    }
}

impl fmt::Display for MissBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} compulsory, {} capacity, {} conflict ({:.1}% conflict)",
            self.compulsory,
            self.capacity,
            self.conflict,
            100.0 * self.conflict_fraction()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_handle_zero_accesses() {
        let s = CacheStats::new();
        assert_eq!(s.miss_rate(), 0.0);
        assert_eq!(s.hit_rate(), 0.0);
    }

    #[test]
    fn stats_add() {
        let a = CacheStats {
            accesses: 1,
            hits: 1,
            misses: 0,
            evictions: 0,
        };
        let b = CacheStats {
            accesses: 3,
            hits: 1,
            misses: 2,
            evictions: 1,
        };
        let mut c = a;
        c += b;
        assert_eq!(c.accesses, 4);
        assert_eq!(c.misses, 2);
        assert!((c.miss_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn breakdown_partition_and_fraction() {
        let b = MissBreakdown {
            compulsory: 1,
            capacity: 2,
            conflict: 1,
        };
        assert_eq!(b.total(), 4);
        assert!((b.conflict_fraction() - 0.25).abs() < 1e-12);
        assert_eq!(MissBreakdown::new().conflict_fraction(), 0.0);
    }

    #[test]
    fn breakdown_add() {
        let a = MissBreakdown {
            compulsory: 1,
            capacity: 2,
            conflict: 3,
        };
        let mut b = a;
        b += a;
        assert_eq!(b.total(), 12);
    }

    #[test]
    fn displays() {
        let s = CacheStats {
            accesses: 4,
            hits: 3,
            misses: 1,
            evictions: 0,
        };
        assert!(s.to_string().contains("miss rate 0.2500"));
        let b = MissBreakdown {
            compulsory: 1,
            capacity: 1,
            conflict: 2,
        };
        assert!(b.to_string().contains("50.0% conflict"));
    }
}
