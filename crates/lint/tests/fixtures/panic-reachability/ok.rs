//! Fixture: the same lookup path with a documented contract.

pub fn lookup() {
    resolve();
}

fn resolve() {
    let found: Option<u32> = table_get();
    let _value = found.expect("table_get always returns an entry for seeded keys");
}

fn table_get() -> Option<u32> {
    Some(7)
}
