//! Fixture: timestamps flow in as data, not from ambient wall-clock.

pub fn stamp(now_ms: u64) -> u64 {
    now_ms
}
