//! Reading and writing traces in the Dinero ("din") text format.
//!
//! The din format — one reference per line, `LABEL ADDRESS` — is the
//! lingua franca of classic trace-driven cache simulators (Dinero III/IV
//! and the tooling around the very traces the paper used). Supporting it
//! lets this workspace consume real program traces and export its
//! synthetic ones for other simulators:
//!
//! ```text
//! 2 1000        # instruction fetch at 0x1000
//! 0 8fe0        # data read at 0x8fe0
//! 1 8fe8        # data write at 0x8fe8
//! ```
//!
//! Labels: `0` = read, `1` = write, `2` = instruction fetch. Addresses
//! are hexadecimal. Blank lines and `#` comments are tolerated on input
//! and never produced on output.

use std::error::Error;
use std::fmt;
use std::io::{BufRead, Write};

use crate::{AccessKind, Addr, MemRef, RecordedTrace, TraceSource};

/// Why a din-format trace failed to parse.
#[derive(Debug)]
pub enum ParseDinError {
    /// The line did not have the `LABEL ADDRESS` shape.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// The offending text.
        text: String,
    },
    /// The label was not 0, 1, or 2.
    BadLabel {
        /// 1-based line number.
        line: usize,
        /// The label found.
        label: String,
    },
    /// The address was not valid hexadecimal.
    BadAddress {
        /// 1-based line number.
        line: usize,
        /// The address text found.
        addr: String,
    },
    /// An underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for ParseDinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseDinError::Malformed { line, text } => {
                write!(f, "line {line}: expected 'LABEL ADDRESS', got {text:?}")
            }
            ParseDinError::BadLabel { line, label } => {
                write!(f, "line {line}: label must be 0, 1, or 2, got {label:?}")
            }
            ParseDinError::BadAddress { line, addr } => {
                write!(f, "line {line}: invalid hex address {addr:?}")
            }
            ParseDinError::Io(e) => write!(f, "I/O error reading trace: {e}"),
        }
    }
}

impl Error for ParseDinError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ParseDinError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ParseDinError {
    fn from(e: std::io::Error) -> Self {
        ParseDinError::Io(e)
    }
}

fn kind_label(kind: AccessKind) -> char {
    match kind {
        AccessKind::Load => '0',
        AccessKind::Store => '1',
        AccessKind::InstrFetch => '2',
    }
}

/// Parses a din-format trace from a reader.
///
/// A mutable reference can be passed as the reader (e.g. `&mut file`).
///
/// # Errors
///
/// Returns [`ParseDinError`] on the first malformed line or I/O failure.
///
/// # Examples
///
/// ```
/// use jouppi_trace::io::read_din;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let text = "2 1000\n0 8fe0\n# comment\n1 8fe8\n";
/// let trace = read_din(text.as_bytes(), "example")?;
/// assert_eq!(trace.len(), 3);
/// assert_eq!(trace.stats().stores, 1);
/// # Ok(())
/// # }
/// ```
pub fn read_din<R: BufRead>(reader: R, name: &str) -> Result<RecordedTrace, ParseDinError> {
    let mut refs = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line_no = idx + 1;
        let line = line?;
        let text = match line.split('#').next() {
            Some(t) => t.trim(),
            None => "",
        };
        if text.is_empty() {
            continue;
        }
        let mut parts = text.split_whitespace();
        let (label, addr_text) = match (parts.next(), parts.next()) {
            (Some(l), Some(a)) => (l, a),
            _ => {
                return Err(ParseDinError::Malformed {
                    line: line_no,
                    text: text.to_owned(),
                })
            }
        };
        let kind = match label {
            "0" => AccessKind::Load,
            "1" => AccessKind::Store,
            "2" => AccessKind::InstrFetch,
            other => {
                return Err(ParseDinError::BadLabel {
                    line: line_no,
                    label: other.to_owned(),
                })
            }
        };
        let raw = u64::from_str_radix(addr_text.trim_start_matches("0x"), 16).map_err(|_| {
            ParseDinError::BadAddress {
                line: line_no,
                addr: addr_text.to_owned(),
            }
        })?;
        refs.push(MemRef::new(Addr::new(raw), kind));
    }
    Ok(RecordedTrace::from_refs(name, refs))
}

/// Writes a trace source in din format.
///
/// A mutable reference can be passed as the writer (e.g. `&mut file`).
///
/// # Errors
///
/// Propagates any I/O failure from the writer.
///
/// # Examples
///
/// ```
/// use jouppi_trace::io::{read_din, write_din};
/// use jouppi_trace::{Addr, MemRef, RecordedTrace};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let trace = RecordedTrace::from_refs("t", vec![MemRef::load(Addr::new(0x10))]);
/// let mut out = Vec::new();
/// write_din(&trace, &mut out)?;
/// assert_eq!(String::from_utf8(out.clone())?, "0 10\n");
/// let back = read_din(out.as_slice(), "t")?;
/// assert_eq!(back.as_slice(), trace.as_slice());
/// # Ok(())
/// # }
/// ```
pub fn write_din<W: Write>(source: &dyn TraceSource, mut writer: W) -> std::io::Result<()> {
    for r in source.refs() {
        writeln!(writer, "{} {:x}", kind_label(r.kind), r.addr)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RecordedTrace {
        RecordedTrace::from_refs(
            "sample",
            vec![
                MemRef::instr(Addr::new(0x1000)),
                MemRef::load(Addr::new(0x8fe0)),
                MemRef::store(Addr::new(0x8fe8)),
                MemRef::instr(Addr::new(0x1004)),
            ],
        )
    }

    #[test]
    fn round_trip_preserves_refs() {
        let trace = sample();
        let mut buf = Vec::new();
        write_din(&trace, &mut buf).unwrap();
        let back = read_din(buf.as_slice(), "sample").unwrap();
        assert_eq!(back.as_slice(), trace.as_slice());
        assert_eq!(back.name(), "sample");
    }

    #[test]
    fn written_format_is_canonical() {
        let mut buf = Vec::new();
        write_din(&sample(), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text, "2 1000\n0 8fe0\n1 8fe8\n2 1004\n");
    }

    #[test]
    fn comments_blanks_and_0x_prefixes_are_tolerated() {
        let text = "# header\n\n2 0x1000   # fetch\n0 10\n";
        let t = read_din(text.as_bytes(), "x").unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.as_slice()[0], MemRef::instr(Addr::new(0x1000)));
        assert_eq!(t.as_slice()[1], MemRef::load(Addr::new(0x10)));
    }

    #[test]
    fn malformed_line_is_reported_with_number() {
        let err = read_din("2 1000\njunk\n".as_bytes(), "x").unwrap_err();
        match err {
            ParseDinError::Malformed { line, .. } => assert_eq!(line, 2),
            other => panic!("wrong error: {other}"),
        }
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn bad_label_and_address_errors() {
        match read_din("7 1000\n".as_bytes(), "x").unwrap_err() {
            ParseDinError::BadLabel { line: 1, label } => assert_eq!(label, "7"),
            other => panic!("wrong error: {other}"),
        }
        match read_din("0 zzz\n".as_bytes(), "x").unwrap_err() {
            ParseDinError::BadAddress { line: 1, addr } => assert_eq!(addr, "zzz"),
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn empty_input_is_an_empty_trace() {
        let t = read_din("".as_bytes(), "empty").unwrap();
        assert!(t.is_empty());
    }

    #[test]
    fn error_display_and_source() {
        let io_err = ParseDinError::from(std::io::Error::other("boom"));
        assert!(io_err.to_string().contains("boom"));
        assert!(Error::source(&io_err).is_some());
        let mal = ParseDinError::Malformed {
            line: 3,
            text: "x".into(),
        };
        assert!(Error::source(&mal).is_none());
    }
}
