//! Property tests pitting `Cache` against a naive reference
//! implementation: a per-set vector with explicit recency bookkeeping.

//
// Gated: requires the `proptest` feature (and re-adding the `proptest`
// dev-dependency, which the offline build environment cannot download).
#![cfg(feature = "proptest")]

use jouppi_cache::{AccessResult, Cache, CacheGeometry, ReplacementPolicy};
use jouppi_trace::LineAddr;
use proptest::prelude::*;

/// A deliberately simple model of a set-associative LRU cache.
struct NaiveLru {
    sets: Vec<Vec<LineAddr>>, // each set ordered MRU-first
    assoc: usize,
    num_sets: u64,
}

impl NaiveLru {
    fn new(num_sets: u64, assoc: usize) -> Self {
        NaiveLru {
            sets: vec![Vec::new(); num_sets as usize],
            assoc,
            num_sets,
        }
    }

    fn access(&mut self, line: LineAddr) -> (bool, Option<LineAddr>) {
        let set = &mut self.sets[(line.get() % self.num_sets) as usize];
        if let Some(pos) = set.iter().position(|&l| l == line) {
            set.remove(pos);
            set.insert(0, line);
            (true, None)
        } else {
            set.insert(0, line);
            let victim = (set.len() > self.assoc).then(|| set.pop().expect("overfull"));
            (false, victim)
        }
    }
}

fn line_stream(max_line: u64, len: usize) -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0..max_line, 1..len)
}

proptest! {
    #[test]
    fn set_associative_lru_matches_naive_model(
        stream in line_stream(256, 500),
        assoc_log in 0u32..4,
        sets_log in 0u32..4,
    ) {
        let assoc = 1u64 << assoc_log;
        let sets = 1u64 << sets_log;
        let line_size = 16u64;
        let geom = CacheGeometry::new(sets * assoc * line_size, line_size, assoc).unwrap();
        let mut cache = Cache::new(geom);
        let mut model = NaiveLru::new(sets, assoc as usize);
        for &n in &stream {
            let line = LineAddr::new(n);
            let (model_hit, model_victim) = model.access(line);
            match cache.access_line(line) {
                AccessResult::Hit => prop_assert!(model_hit, "cache hit, model missed"),
                AccessResult::Miss { victim } => {
                    prop_assert!(!model_hit, "cache missed, model hit");
                    prop_assert_eq!(victim, model_victim, "victim mismatch");
                }
            }
        }
        // Residency agrees exactly.
        let mut ours: Vec<u64> = cache.resident_lines().map(|l| l.get()).collect();
        let mut theirs: Vec<u64> = model
            .sets
            .iter()
            .flatten()
            .map(|l| l.get())
            .collect();
        ours.sort_unstable();
        theirs.sort_unstable();
        prop_assert_eq!(ours, theirs);
    }

    #[test]
    fn stats_count_exactly_the_observed_outcomes(stream in line_stream(64, 300)) {
        let geom = CacheGeometry::direct_mapped(16 * 16, 16).unwrap();
        let mut cache = Cache::new(geom);
        let (mut hits, mut misses, mut evictions) = (0u64, 0u64, 0u64);
        for &n in &stream {
            match cache.access_line(LineAddr::new(n)) {
                AccessResult::Hit => hits += 1,
                AccessResult::Miss { victim } => {
                    misses += 1;
                    if victim.is_some() {
                        evictions += 1;
                    }
                }
            }
        }
        let s = cache.stats();
        prop_assert_eq!(s.hits, hits);
        prop_assert_eq!(s.misses, misses);
        prop_assert_eq!(s.evictions, evictions);
        prop_assert_eq!(s.accesses, hits + misses);
    }

    #[test]
    fn fifo_eviction_order_is_insertion_order(stream in line_stream(64, 300)) {
        // In a 1-set FIFO cache, victims must come out in exactly the
        // order their lines were first inserted (reinsertions after
        // eviction count anew).
        let geom = CacheGeometry::new(4 * 16, 16, 4).unwrap(); // 1 set, 4-way
        let mut cache = Cache::with_policy(geom, ReplacementPolicy::Fifo);
        let mut inserted: Vec<u64> = Vec::new(); // queue of resident lines
        for &n in &stream {
            match cache.access_line(LineAddr::new(n)) {
                AccessResult::Hit => {}
                AccessResult::Miss { victim } => {
                    if let Some(v) = victim {
                        let expected = inserted.remove(0);
                        prop_assert_eq!(v.get(), expected);
                    }
                    inserted.push(n);
                }
            }
        }
    }

    #[test]
    fn invalidate_then_access_always_misses(stream in line_stream(32, 100)) {
        let geom = CacheGeometry::direct_mapped(8 * 16, 16).unwrap();
        let mut cache = Cache::new(geom);
        for &n in &stream {
            let line = LineAddr::new(n);
            cache.access_line(line);
            cache.invalidate(line);
            prop_assert!(!cache.probe(line));
            prop_assert!(cache.access_line(line).is_miss());
        }
    }
}
