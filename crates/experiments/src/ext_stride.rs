//! Extension: non-unit-stride reference streams (§5 future work).
//!
//! "The numeric programs used in this study used unit stride access
//! patterns. Numeric programs with non-unit stride and mixed stride
//! access patterns also need to be simulated." This experiment builds
//! those workloads — column-major matrices walked along the *row*
//! dimension, at several strides — and measures three data-side
//! organizations:
//!
//! * the paper's sequential 4-way stream buffer (which §4.1 predicts is
//!   "of little benefit"),
//! * the same buffer with a stride detector ([`jouppi_core::stride`]),
//! * no buffer at all.

use jouppi_core::{AugmentedConfig, StreamBufferConfig};
use jouppi_report::Table;
use jouppi_trace::{MemRef, RecordedTrace, SmallRng};
use jouppi_workloads::data::{DataPattern, GatherScatter, InterleavedSweep, StridedSweep};

use crate::common::{baseline_l1, pct_of_misses_removed, run_side, ExperimentConfig, Side};

/// Strides (in bytes) swept; 8 is the unit-stride control, the rest are
/// the row-walks of column-major matrices with line-multiple leading
/// dimensions (a 16B-line machine sees constant line strides of 16, 50,
/// and 100).
pub const STRIDES: [u64; 4] = [8, 256, 800, 1600];

/// One stride's results.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StrideRow {
    /// Element stride in bytes.
    pub stride_bytes: u64,
    /// % of misses removed by the sequential 4-way buffer.
    pub sequential_removed: f64,
    /// % of misses removed by the stride-detecting 4-way buffer.
    pub strided_removed: f64,
}

/// Results of the non-unit-stride extension experiment.
#[derive(Clone, Debug, PartialEq)]
pub struct ExtStride {
    /// One row per stride.
    pub rows: Vec<StrideRow>,
    /// The boundary case: data-dependent gathers, which neither buffer
    /// can predict. `(sequential removed %, strided removed %)`.
    pub gather: (f64, f64),
}

/// Builds a data-only trace: two interleaved constant-stride streams over
/// a large region, with `stride_bytes` between consecutive elements.
fn stride_trace(cfg: &ExperimentConfig, stride_bytes: u64) -> RecordedTrace {
    let refs = cfg.scale.instructions / 2;
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    // Region sized so the sweep wraps a few times regardless of stride.
    let region = (stride_bytes * 4096).max(1 << 20);
    let mut mix = InterleavedSweep::new(vec![0x1000_0000, 0x4000_0000], stride_bytes, region);
    let mut scalars = StridedSweep::new(0x7000_0000, 8, 512);
    let mut out = Vec::with_capacity(refs as usize);
    for i in 0..refs {
        // 3 stream refs, then 1 hot scalar ref — a plausible vector loop.
        let addr = if i % 4 == 3 {
            scalars.next_addr(&mut rng)
        } else {
            mix.next_addr(&mut rng)
        };
        out.push(MemRef::load(addr));
    }
    RecordedTrace::from_refs(format!("stride-{stride_bytes}"), out)
}

/// Builds a gather workload: sequential index loads driving random
/// target loads over a 2MB table.
fn gather_trace(cfg: &ExperimentConfig) -> RecordedTrace {
    let refs = cfg.scale.instructions / 2;
    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0xabcd);
    let mut g = GatherScatter::new(0x1000_0000, 0x4000_0000, (2 << 20) / 8, 8);
    let out = (0..refs)
        .map(|_| MemRef::load(g.next_addr(&mut rng)))
        .collect();
    RecordedTrace::from_refs("gather", out)
}

fn removal(trace: &RecordedTrace, cfg_aug: AugmentedConfig) -> f64 {
    let geom = baseline_l1();
    let misses = run_side(trace, Side::Data, AugmentedConfig::new(geom)).l1_misses();
    let stats = run_side(trace, Side::Data, cfg_aug);
    pct_of_misses_removed(stats.removed_misses(), misses)
}

/// Runs the stride sweep.
pub fn run(cfg: &ExperimentConfig) -> ExtStride {
    let geom = baseline_l1();
    let rows = STRIDES
        .iter()
        .map(|&stride_bytes| {
            let trace = stride_trace(cfg, stride_bytes);
            let misses = {
                let stats = run_side(&trace, Side::Data, AugmentedConfig::new(geom));
                stats.l1_misses()
            };
            let sequential = run_side(
                &trace,
                Side::Data,
                AugmentedConfig::new(geom).multi_way_stream_buffer(4, StreamBufferConfig::new(4)),
            );
            let strided = run_side(
                &trace,
                Side::Data,
                AugmentedConfig::new(geom).strided_stream_buffer(
                    4,
                    StreamBufferConfig::new(4),
                    256,
                ),
            );
            StrideRow {
                stride_bytes,
                sequential_removed: pct_of_misses_removed(sequential.removed_misses(), misses),
                strided_removed: pct_of_misses_removed(strided.removed_misses(), misses),
            }
        })
        .collect();
    let gtrace = gather_trace(cfg);
    let gather = (
        removal(
            &gtrace,
            AugmentedConfig::new(geom).multi_way_stream_buffer(4, StreamBufferConfig::new(4)),
        ),
        removal(
            &gtrace,
            AugmentedConfig::new(geom).strided_stream_buffer(4, StreamBufferConfig::new(4), 256),
        ),
    );
    ExtStride { rows, gather }
}

impl ExtStride {
    /// Looks up one stride's row.
    pub fn row(&self, stride_bytes: u64) -> Option<&StrideRow> {
        self.rows.iter().find(|r| r.stride_bytes == stride_bytes)
    }

    /// Renders the comparison table.
    pub fn render(&self) -> String {
        let mut t = Table::new([
            "stride (bytes)",
            "stride (lines)",
            "sequential SB removes",
            "strided SB removes",
        ]);
        for r in &self.rows {
            t.row([
                r.stride_bytes.to_string(),
                format!("{:.1}", r.stride_bytes as f64 / 16.0),
                format!("{:.0}%", r.sequential_removed),
                format!("{:.0}%", r.strided_removed),
            ]);
        }
        format!(
            "Extension (§5 future work): non-unit-stride streams, 4KB D-cache\n\
             (the paper predicts sequential buffers only help unit/near-unit stride)\n{t}\n\
             boundary case — data-dependent gather: sequential SB removes {:.0}%, \
             strided SB removes {:.0}% (unpredictable by construction)\n",
            self.gather.0, self.gather.1
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_buffers_fail_beyond_near_unit_stride() {
        let cfg = ExperimentConfig::with_scale(40_000);
        let e = run(&cfg);
        // Unit stride: both organizations remove most misses.
        let unit = e.row(8).unwrap();
        assert!(unit.sequential_removed > 60.0, "{unit:?}");
        // Large strides: sequential buffers are of little benefit (§4.1)…
        let large = e.row(800).unwrap();
        assert!(large.sequential_removed < 25.0, "{large:?}");
        // …but the stride-detecting extension still works.
        assert!(large.strided_removed > 60.0, "{large:?}");
        // Data-dependent gathers defeat both — the honest boundary.
        assert!(e.gather.0 < 10.0 && e.gather.1 < 10.0, "{:?}", e.gather);
        assert!(e.render().contains("strided SB"));
    }

    #[test]
    fn strided_buffer_never_does_worse() {
        let cfg = ExperimentConfig::with_scale(30_000);
        let e = run(&cfg);
        for r in &e.rows {
            assert!(
                r.strided_removed + 8.0 >= r.sequential_removed,
                "stride {}: strided {} vs sequential {}",
                r.stride_bytes,
                r.strided_removed,
                r.sequential_removed
            );
        }
    }
}
