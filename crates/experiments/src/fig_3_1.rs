//! Figure 3-1: percentage of direct-mapped cache misses due to conflicts.

use jouppi_cache::MissBreakdown;
use jouppi_report::{percent, Table};
use jouppi_workloads::Benchmark;

use crate::common::{average, baseline_l1, classify_side, record_traces, ExperimentConfig, Side};
use crate::sweep;

/// Per-benchmark conflict-miss fractions for 4KB I and D caches.
#[derive(Clone, Debug, PartialEq)]
pub struct Fig31 {
    /// `(benchmark, instruction breakdown, data breakdown)`.
    pub rows: Vec<(Benchmark, MissBreakdown, MissBreakdown)>,
}

/// Classifies every benchmark's baseline misses.
///
/// The 12 (benchmark × side) cells fan over the sweep engine (small
/// traces run sequentially — see [`sweep::map_jobs_sized`]); rows are
/// assembled in benchmark order regardless of completion order.
pub fn run(cfg: &ExperimentConfig) -> Fig31 {
    let geom = baseline_l1();
    let traces = record_traces(cfg);
    let jobs = traces.len() * 2;
    let total: u64 = traces.iter().map(|(_, t)| t.len() as u64).sum();
    let cells = sweep::map_jobs_sized(jobs, total / jobs as u64, |job| {
        let (_, trace) = &traces[job / 2];
        let side = Side::BOTH[job % 2];
        let (_, breakdown) = classify_side(trace, side, geom);
        breakdown
    });
    let rows = traces
        .iter()
        .enumerate()
        .map(|(i, (b, _))| (*b, cells[2 * i], cells[2 * i + 1]))
        .collect();
    Fig31 { rows }
}

/// [`run`] by the single-pass engine: one [`jouppi_cache::LruSweep`] over
/// levels {1, `num_sets`} per (benchmark, side) replaces the classified
/// simulator, reading the same three-C breakdown off stack depths —
/// compulsory ⇔ first touch; a direct-mapped miss ⇔ cold or within-set
/// depth > 1; capacity ⇔ a non-cold miss whose *global* depth exceeds the
/// cache's line count (i.e. the classifier's fully-associative shadow
/// would also have missed); conflict otherwise. Exactly equal to [`run`]
/// (pinned by the `single_pass_engine_matches_classifier` test and the
/// cross-crate equivalence suite).
pub fn run_single_pass(cfg: &ExperimentConfig) -> Fig31 {
    let geom = baseline_l1();
    let traces = record_traces(cfg);
    let jobs = traces.len() * 2;
    let total: u64 = traces.iter().map(|(_, t)| t.len() as u64).sum();
    let cells = sweep::map_jobs_sized(jobs, total / jobs as u64, |job| {
        let (_, trace) = &traces[job / 2];
        let side = Side::BOTH[job % 2];
        classify_side_single_pass(trace, side, geom)
    });
    let rows = traces
        .iter()
        .enumerate()
        .map(|(i, (b, _))| (*b, cells[2 * i], cells[2 * i + 1]))
        .collect();
    Fig31 { rows }
}

/// Three-C breakdown of one side via stack depths (see
/// [`run_single_pass`]).
fn classify_side_single_pass(
    trace: &jouppi_trace::RecordedTrace,
    side: Side,
    geom: jouppi_cache::CacheGeometry,
) -> MissBreakdown {
    let view = side.view(trace);
    let mut sweep_engine = jouppi_cache::LruSweep::for_set_counts(&[1, geom.num_sets()])
        .expect("baseline set counts are powers of two");
    let num_lines = geom.num_lines();
    let mut breakdown = MissBreakdown::new();
    let mut observe = |line| {
        let (cold, depths) = sweep_engine.observe_depths(line);
        let global_depth = u64::from(depths[0]);
        let set_depth = u64::from(depths[1]);
        if cold {
            breakdown.compulsory += 1;
        } else if set_depth > geom.associativity() {
            if global_depth > num_lines {
                breakdown.capacity += 1;
            } else {
                breakdown.conflict += 1;
            }
        }
    };
    if let Some(lines) = view.lines_for(geom.line_size()) {
        for &line in lines {
            observe(line);
        }
    } else {
        for &addr in view.addrs() {
            observe(addr.line(geom.line_size()));
        }
    }
    sweep::note_single_pass_refs(view.addrs().len() as u64);
    breakdown
}

impl Fig31 {
    /// Average fraction of instruction misses due to conflicts (the paper
    /// reports 29%).
    pub fn avg_instr_conflict_fraction(&self) -> f64 {
        average(
            &self
                .rows
                .iter()
                .map(|(_, i, _)| i.conflict_fraction())
                .collect::<Vec<_>>(),
        )
    }

    /// Average fraction of data misses due to conflicts (the paper
    /// reports 39%).
    pub fn avg_data_conflict_fraction(&self) -> f64 {
        average(
            &self
                .rows
                .iter()
                .map(|(_, _, d)| d.conflict_fraction())
                .collect::<Vec<_>>(),
        )
    }

    /// The benchmark with the highest data conflict fraction (the paper:
    /// `met`, "by far the highest").
    pub fn highest_data_conflict(&self) -> Benchmark {
        self.rows
            .iter()
            .max_by(|a, b| a.2.conflict_fraction().total_cmp(&b.2.conflict_fraction()))
            .expect("six benchmarks")
            .0
    }

    /// Renders the per-benchmark conflict percentages.
    pub fn render(&self) -> String {
        let mut t = Table::new(["program", "I-conflict %", "D-conflict %"]);
        for (b, i, d) in &self.rows {
            t.row([
                b.name().to_owned(),
                percent(i.conflict_fraction()),
                percent(d.conflict_fraction()),
            ]);
        }
        t.row([
            "average".to_owned(),
            percent(self.avg_instr_conflict_fraction()),
            percent(self.avg_data_conflict_fraction()),
        ]);
        format!(
            "Figure 3-1: conflict misses, 4KB I and D caches, 16B lines (paper avg: 29% I, 39% D)\n{t}"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conflict_fractions_match_paper_shape() {
        let cfg = ExperimentConfig::with_scale(80_000);
        let f = run(&cfg);
        // Paper: on average 39% of data misses and 29% of instruction
        // misses are conflicts; allow generous bands.
        let d = f.avg_data_conflict_fraction();
        let i = f.avg_instr_conflict_fraction();
        assert!((0.2..0.65).contains(&d), "data conflict avg {d}");
        assert!((0.1..0.5).contains(&i), "instr conflict avg {i}");
        // met has by far the highest data conflict ratio.
        assert_eq!(f.highest_data_conflict(), Benchmark::Met);
        assert!(f.render().contains("average"));
    }

    #[test]
    fn single_pass_engine_matches_classifier() {
        // Exact equality, not approximation: the Mattson-engine rework
        // must reproduce the classifier's breakdowns bit for bit.
        let cfg = ExperimentConfig::with_scale(30_000);
        assert_eq!(run(&cfg), run_single_pass(&cfg));
    }

    #[test]
    fn breakdowns_partition() {
        let cfg = ExperimentConfig::with_scale(30_000);
        let f = run(&cfg);
        for (b, i, d) in &f.rows {
            assert!(i.total() > 0 || d.total() > 0, "{b} had no misses at all");
            assert_eq!(
                i.total(),
                i.compulsory + i.capacity + i.conflict,
                "partition broken"
            );
            let _ = d;
        }
    }
}
