//! `jouppi-lint` — see [`jouppi_lint`] for the lint catalog and
//! suppression syntax.

#![forbid(unsafe_code)]

use std::process::ExitCode;

fn main() -> ExitCode {
    let result = jouppi_lint::cli::run(std::env::args().skip(1));
    print!("{}", result.stdout);
    eprint!("{}", result.stderr);
    ExitCode::from(result.code)
}
