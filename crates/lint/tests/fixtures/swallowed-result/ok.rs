//! Fixture: one discard justified with a reason, the other propagated.

use std::fs;
use std::path::Path;

pub fn cleanup(path: &Path) {
    // jouppi-lint: allow(swallowed-result) — best-effort temp-file cleanup; the file being gone already is success
    let _ = fs::remove_file(path);
}

pub fn touch(path: &Path) -> std::io::Result<()> {
    fs::write(path, b"x")
}
