//! A tolerant recursive-descent parser, just deep enough for the
//! structural analyses.
//!
//! The v1 lints match flat token patterns; the v2 analyses (lock-order,
//! blocking-under-lock, unbounded-growth, swallowed-result,
//! truncating-cast) need *structure*: which `let` binds what, where a
//! block ends, what a method-call chain's receiver is, what a cast's
//! target type is. This parser recovers exactly that much shape from the
//! lexer's token stream — items, blocks, statements, and expressions —
//! and deliberately nothing more: no types are resolved, no names
//! checked, no macro expanded.
//!
//! Design rules, in order:
//!
//! 1. **Never fail.** Unknown constructs are consumed token-by-token and
//!    folded into opaque [`Expr::Group`] nodes; a malformed region can
//!    only cost local precision, never the whole file.
//! 2. **Always make progress.** Every loop either consumes a token or
//!    returns; pathological input terminates.
//! 3. **Preserve lines.** Every node that an analysis might report on
//!    carries the 1-based source line of its first token.
//!
//! Known, accepted limitations (documented in DESIGN.md §10): macro
//! bodies are re-parsed best-effort as expression lists (non-expression
//! macro grammars degrade to opaque groups); match-arm *patterns* are
//! skipped, so a lock acquired inside a pattern (impossible) or a
//! sub-pattern guard is invisible; turbofish and generic argument lists
//! are skipped, not parsed.

// The scanning loops peek, then mutate `self` (bump/recover) mid-body;
// `while let` would hold the peek borrow across those calls.
#![allow(clippy::while_let_loop)]

use crate::lexer::{Lexed, TokKind, Token};

/// A parsed source file: its top-level items, flattened through
/// containers by [`Ast::functions`].
#[derive(Clone, Debug, Default)]
pub struct Ast {
    /// Top-level items in source order.
    pub items: Vec<Item>,
}

impl Ast {
    /// Every function item in the file, at any nesting depth
    /// (free functions, methods in `impl`/`trait` blocks, functions in
    /// inline modules).
    pub fn functions(&self) -> Vec<&FnItem> {
        let mut out = Vec::new();
        collect_fns(&self.items, &mut out);
        out
    }

    /// Every struct item in the file, at any nesting depth.
    pub fn structs(&self) -> Vec<&StructItem> {
        let mut out = Vec::new();
        collect_structs(&self.items, &mut out);
        out
    }

    /// Every `static`/`const` item in the file, at any nesting depth.
    pub fn statics(&self) -> Vec<&StaticItem> {
        let mut out = Vec::new();
        collect_statics(&self.items, &mut out);
        out
    }
}

fn collect_fns<'a>(items: &'a [Item], out: &mut Vec<&'a FnItem>) {
    for item in items {
        match item {
            Item::Fn(f) => {
                out.push(f);
                // Nested fns inside the body are reachable through the
                // body's statements; analyses walk those in place.
            }
            Item::Container { items, .. } => collect_fns(items, out),
            _ => {}
        }
    }
}

fn collect_structs<'a>(items: &'a [Item], out: &mut Vec<&'a StructItem>) {
    for item in items {
        match item {
            Item::Struct(s) => out.push(s),
            Item::Container { items, .. } => collect_structs(items, out),
            _ => {}
        }
    }
}

fn collect_statics<'a>(items: &'a [Item], out: &mut Vec<&'a StaticItem>) {
    for item in items {
        match item {
            Item::Static(s) => out.push(s),
            Item::Container { items, .. } => collect_statics(items, out),
            _ => {}
        }
    }
}

/// One top-level or nested item.
#[derive(Clone, Debug)]
pub enum Item {
    /// A function with a parsed body.
    Fn(FnItem),
    /// A struct with named fields (tuple structs have none).
    Struct(StructItem),
    /// A `static` or `const` with its type and initializer.
    Static(StaticItem),
    /// One import flattened out of a `use` tree.
    Use(UseItem),
    /// An `impl`/`trait`/`mod` block: a transparent container of items.
    Container {
        /// What kind of container this is.
        kind: ContainerKind,
        /// The container's name: the `impl` block's self-type (last
        /// segment of the final type path), or the `trait`/`mod` name.
        name: String,
        /// The items inside the container.
        items: Vec<Item>,
    },
}

/// What kind of item container a [`Item::Container`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ContainerKind {
    /// An `impl` block (inherent or trait impl).
    Impl,
    /// A `trait` definition.
    Trait,
    /// An inline `mod` block.
    Mod,
}

/// One import produced by flattening a `use` tree: `use a::{b, c as d};`
/// yields two [`UseItem`]s.
#[derive(Clone, Debug)]
pub struct UseItem {
    /// Full path segments (`["crate", "json", "Json"]`).
    pub path: Vec<String>,
    /// The name the import binds locally: the last path segment, or the
    /// `as` alias. Empty for glob imports.
    pub alias: String,
    /// Whether this is a `::*` glob import.
    pub glob: bool,
    /// Line of the `use` keyword.
    pub line: u32,
}

/// A function item.
#[derive(Clone, Debug)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Parameter names in declaration order (`self` excluded; the first
    /// bound identifier of each pattern parameter).
    pub params: Vec<String>,
    /// Whether the parameter list starts with a `self` receiver.
    pub has_self: bool,
    /// The body; `None` for bodyless trait-method declarations.
    pub body: Option<Block>,
}

/// One named struct field.
#[derive(Clone, Debug)]
pub struct Field {
    /// The field name.
    pub name: String,
    /// The field's type as its identifier words, space-joined
    /// (e.g. `"Mutex Vec ExperimentConfig TraceSet"`). Enough to ask
    /// "does this type mention `Vec`?" without a type grammar.
    pub ty: String,
    /// Line of the field name.
    pub line: u32,
}

/// A struct item and its named fields.
#[derive(Clone, Debug)]
pub struct StructItem {
    /// The struct's name.
    pub name: String,
    /// Line of the `struct` keyword.
    pub line: u32,
    /// Named fields (empty for tuple/unit structs).
    pub fields: Vec<Field>,
}

/// A `static` or `const` item.
#[derive(Clone, Debug)]
pub struct StaticItem {
    /// The item's name.
    pub name: String,
    /// The type's identifier words, space-joined (see [`Field::ty`]).
    pub ty: String,
    /// Line of the item keyword.
    pub line: u32,
    /// The initializer expression, when one parsed.
    pub init: Option<Expr>,
}

/// A `{ … }` block of statements.
#[derive(Clone, Debug, Default)]
pub struct Block {
    /// Statements in source order.
    pub stmts: Vec<Stmt>,
    /// Line of the closing `}` (scope end for guard liveness).
    pub end_line: u32,
}

/// One statement.
#[derive(Clone, Debug)]
pub enum Stmt {
    /// A `let` binding.
    Let(LetStmt),
    /// An expression statement (with or without trailing `;`).
    Expr(Expr),
    /// A nested item (`fn`, `struct`, `use`, …) inside a block.
    Item(Item),
}

/// A `let` statement.
#[derive(Clone, Debug)]
pub struct LetStmt {
    /// Lower-case identifiers bound by the pattern (constructor path
    /// segments and keywords excluded).
    pub names: Vec<String>,
    /// Whether the pattern is exactly the wildcard `_`.
    pub underscore: bool,
    /// The initializer, when present.
    pub init: Option<Expr>,
    /// The `else { … }` block of a let-else, when present.
    pub else_block: Option<Block>,
    /// Line of the `let` keyword.
    pub line: u32,
}

/// An expression, reduced to the shapes the analyses consume.
#[derive(Clone, Debug)]
pub enum Expr {
    /// A postfix chain: root plus `.field` / `.method(…)` / `(…)` /
    /// `[…]` / `?` steps. The workhorse node.
    Chain(Chain),
    /// A block expression.
    Block(Block),
    /// `if` / `if let`, with the else branch (block or chained `if`).
    If {
        /// The condition (the scrutinee, for `if let`).
        cond: Box<Expr>,
        /// The then-block.
        then_block: Block,
        /// `else` branch: a [`Expr::Block`] or a nested [`Expr::If`].
        else_branch: Option<Box<Expr>>,
    },
    /// `while` / `while let`.
    While {
        /// The condition (the scrutinee, for `while let`).
        cond: Box<Expr>,
        /// The loop body.
        body: Block,
    },
    /// `loop { … }`.
    Loop {
        /// The loop body.
        body: Block,
    },
    /// `for pat in iter { … }` (the pattern is not retained).
    For {
        /// The iterated expression.
        iter: Box<Expr>,
        /// The loop body.
        body: Block,
    },
    /// `match scrutinee { … }`; arms carry guards and bodies only.
    Match {
        /// The matched expression.
        scrutinee: Box<Expr>,
        /// One expression per arm: the body, or a group of
        /// `[guard, body]` when the arm has an `if` guard.
        arms: Vec<Expr>,
        /// Line of the match's closing `}` (scrutinee temporaries live
        /// this long).
        end_line: u32,
    },
    /// A closure; parameters are not retained.
    Closure {
        /// The closure body.
        body: Box<Expr>,
        /// Line of the opening `|`.
        line: u32,
    },
    /// `expr as Ty`.
    Cast {
        /// The cast operand.
        inner: Box<Expr>,
        /// Last segment of the target type path (`u32`, `usize`, …).
        ty: String,
        /// Line of the `as` keyword.
        line: u32,
    },
    /// A macro invocation with best-effort re-parsed arguments.
    Macro {
        /// The macro name (last path segment, without `!`).
        name: String,
        /// Comma/semicolon-separated argument expressions.
        args: Vec<Expr>,
        /// Line of the macro name.
        line: u32,
    },
    /// Anything structural but opaque: binary operations, tuples,
    /// arrays, struct literals, `return`/`break` operands. Children are
    /// walked; the operator itself is discarded.
    Group(Vec<Expr>),
    /// A literal, number, or lifetime.
    Lit(u32),
    /// `()`, or an elided/empty expression.
    Unit(u32),
}

impl Expr {
    /// The line of the expression's first token.
    pub fn line(&self) -> u32 {
        match self {
            Expr::Chain(c) => c.line,
            Expr::Block(b) => b.stmts.first().map_or(b.end_line, Stmt::line),
            Expr::If { cond, .. } => cond.line(),
            Expr::While { cond, .. } => cond.line(),
            Expr::Loop { body } => body.stmts.first().map_or(body.end_line, Stmt::line),
            Expr::For { iter, .. } => iter.line(),
            Expr::Match { scrutinee, .. } => scrutinee.line(),
            Expr::Closure { line, .. }
            | Expr::Cast { line, .. }
            | Expr::Macro { line, .. }
            | Expr::Lit(line)
            | Expr::Unit(line) => *line,
            Expr::Group(children) => children.first().map_or(0, Expr::line),
        }
    }
}

impl Stmt {
    /// The line of the statement's first token.
    pub fn line(&self) -> u32 {
        match self {
            Stmt::Let(l) => l.line,
            Stmt::Expr(e) => e.line(),
            Stmt::Item(Item::Fn(f)) => f.line,
            Stmt::Item(Item::Struct(s)) => s.line,
            Stmt::Item(Item::Static(s)) => s.line,
            Stmt::Item(Item::Use(u)) => u.line,
            Stmt::Item(Item::Container { .. }) => 0,
        }
    }
}

/// A postfix chain: `root.step.step…`.
#[derive(Clone, Debug)]
pub struct Chain {
    /// What the chain starts from.
    pub root: Root,
    /// Postfix steps in application order.
    pub steps: Vec<Step>,
    /// Line of the chain's first token.
    pub line: u32,
}

impl Chain {
    /// The root's path segments, when the root is a plain path.
    pub fn root_path(&self) -> Option<&[String]> {
        match &self.root {
            Root::Path(segments) => Some(segments),
            Root::Grouped(_) => None,
        }
    }
}

/// A chain's starting point.
#[derive(Clone, Debug)]
pub enum Root {
    /// A path: `x`, `self`, `a::b::C`.
    Path(Vec<String>),
    /// A parenthesized/block/macro expression being chained from.
    Grouped(Box<Expr>),
}

/// One postfix step in a chain.
#[derive(Clone, Debug)]
pub enum Step {
    /// `.name` (fields and tuple indices; `.0` becomes `"0"`).
    Field(String, u32),
    /// `.name(args)`, turbofish skipped.
    Method {
        /// The method name.
        name: String,
        /// Parsed argument expressions.
        args: Vec<Expr>,
        /// Line of the method name.
        line: u32,
    },
    /// `(args)` applied to the chain so far (a path call).
    Call {
        /// Parsed argument expressions.
        args: Vec<Expr>,
        /// Line of the opening parenthesis.
        line: u32,
    },
    /// `[index]`.
    Index(Box<Expr>, u32),
    /// `?`.
    Try(u32),
}

/// Parses a lexed file. Infallible: see the module docs.
pub fn parse(lexed: &Lexed) -> Ast {
    let mut p = P {
        t: &lexed.tokens,
        i: 0,
        depth: 0,
    };
    Ast {
        items: p.items(false),
    }
}

/// Maximum expression nesting before the parser degrades to opaque
/// consumption (stack-overflow guard on pathological input).
const MAX_DEPTH: u32 = 160;

struct P<'a> {
    t: &'a [Token],
    i: usize,
    depth: u32,
}

impl<'a> P<'a> {
    fn peek(&self) -> Option<&'a Token> {
        self.t.get(self.i)
    }

    fn peek_at(&self, k: usize) -> Option<&'a Token> {
        self.t.get(self.i + k)
    }

    fn bump(&mut self) -> Option<&'a Token> {
        let tok = self.t.get(self.i);
        if tok.is_some() {
            self.i += 1;
        }
        tok
    }

    fn at_punct(&self, c: char) -> bool {
        self.peek().is_some_and(|t| t.is_punct(c))
    }

    fn at_ident(&self, s: &str) -> bool {
        self.peek().and_then(Token::ident) == Some(s)
    }

    fn eat_punct(&mut self, c: char) -> bool {
        if self.at_punct(c) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn eat_ident(&mut self, s: &str) -> bool {
        if self.at_ident(s) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn line(&self) -> u32 {
        self.peek().or_else(|| self.t.last()).map_or(1, |t| t.line)
    }

    /// Whether the `>` punct at index `k` is really the tail of `->`
    /// (adjacent to a preceding `-`).
    fn is_arrow_tail(&self, k: usize) -> bool {
        k > 0
            && self.t[k].is_punct('>')
            && self.t[k - 1].is_punct('-')
            && self.t[k - 1].pos + 1 == self.t[k].pos
    }

    /// Whether two puncts at `i` and `i+1` are adjacent in the source.
    fn adjacent(&self, a: usize, b: usize) -> bool {
        match (self.t.get(a), self.t.get(b)) {
            (Some(x), Some(y)) => x.pos + 1 == y.pos,
            _ => false,
        }
    }

    // ---------------------------------------------------------------
    // Items
    // ---------------------------------------------------------------

    /// Parses items until end of input (or the container's closing `}`
    /// when `in_container`).
    fn items(&mut self, in_container: bool) -> Vec<Item> {
        let mut items = Vec::new();
        while let Some(tok) = self.peek() {
            if in_container && tok.is_punct('}') {
                break;
            }
            self.skip_attributes();
            let Some(tok) = self.peek() else { break };
            if in_container && tok.is_punct('}') {
                break;
            }
            match tok.ident() {
                Some("pub") => {
                    self.bump();
                    if self.at_punct('(') {
                        self.skip_balanced('(', ')');
                    }
                }
                Some("unsafe" | "async" | "default" | "extern") => {
                    self.bump();
                    // `extern "C"` — the ABI literal rides along.
                    if matches!(self.peek().map(|t| &t.kind), Some(TokKind::Literal)) {
                        self.bump();
                    }
                }
                Some("fn") => items.push(Item::Fn(self.fn_item())),
                Some("struct") => items.push(Item::Struct(self.struct_item())),
                Some("static") => {
                    if let Some(s) = self.static_item() {
                        items.push(Item::Static(s));
                    }
                }
                Some("const") => {
                    // `const fn` is a function; `const NAME: T = …` an item.
                    if self.peek_at(1).and_then(Token::ident) == Some("fn") {
                        self.bump();
                    } else if let Some(s) = self.static_item() {
                        items.push(Item::Static(s));
                    }
                }
                Some("impl" | "trait") => {
                    if let Some(c) = self.container() {
                        items.push(c);
                    }
                }
                Some("mod") => {
                    self.bump();
                    let name = self.bump().and_then(Token::ident).unwrap_or("?").to_owned();
                    if self.eat_punct('{') {
                        let inner = self.items(true);
                        self.eat_punct('}');
                        items.push(Item::Container {
                            kind: ContainerKind::Mod,
                            name,
                            items: inner,
                        });
                    } else {
                        self.eat_punct(';');
                    }
                }
                Some("enum" | "union") => {
                    self.skip_to_body_open();
                    if self.at_punct('{') {
                        self.skip_balanced('{', '}');
                    } else {
                        self.eat_punct(';');
                    }
                }
                Some("use") => {
                    for u in self.use_item() {
                        items.push(Item::Use(u));
                    }
                }
                Some("type") => self.skip_past(';'),
                Some("macro_rules") => {
                    self.bump();
                    self.eat_punct('!');
                    self.bump(); // name
                    if self.at_punct('{') {
                        self.skip_balanced('{', '}');
                    } else {
                        self.skip_past(';');
                    }
                }
                _ => {
                    // Unknown construct at item level: consume one token
                    // and keep going (error recovery).
                    self.bump();
                }
            }
        }
        items
    }

    /// Skips `#[…]` / `#![…]` attribute runs.
    fn skip_attributes(&mut self) {
        while self.at_punct('#') {
            let hash = self.i;
            self.bump();
            self.eat_punct('!');
            if self.at_punct('[') {
                self.skip_balanced('[', ']');
            } else {
                // A stray `#` (not an attribute): restore and bail so the
                // caller's recovery path consumes it.
                self.i = hash;
                break;
            }
        }
    }

    /// Consumes a balanced `open … close` region, including both
    /// delimiters. Counts only the given pair.
    fn skip_balanced(&mut self, open: char, close: char) {
        let mut depth = 0usize;
        while let Some(tok) = self.bump() {
            if tok.is_punct(open) {
                depth += 1;
            } else if tok.is_punct(close) {
                depth -= 1;
                if depth == 0 {
                    return;
                }
            }
        }
    }

    /// Consumes tokens through the next `c` at bracket depth 0.
    fn skip_past(&mut self, c: char) {
        let mut round = 0i32;
        let mut square = 0i32;
        let mut curly = 0i32;
        while let Some(tok) = self.bump() {
            match tok.kind {
                TokKind::Punct('(') => round += 1,
                TokKind::Punct(')') => round -= 1,
                TokKind::Punct('[') => square += 1,
                TokKind::Punct(']') => square -= 1,
                TokKind::Punct('{') => curly += 1,
                TokKind::Punct('}') => curly -= 1,
                _ => {}
            }
            if tok.is_punct(c) && round <= 0 && square <= 0 && curly <= 0 {
                return;
            }
        }
    }

    /// Skips an item header (generics, bounds, where clause) up to its
    /// body `{` or terminating `;` — whichever comes first at depth 0.
    /// Leaves the `{`/`;` unconsumed.
    fn skip_to_body_open(&mut self) {
        let mut angle = 0i32;
        let mut round = 0i32;
        let mut square = 0i32;
        while let Some(tok) = self.peek() {
            match tok.kind {
                TokKind::Punct('{') | TokKind::Punct(';')
                    if angle <= 0 && round == 0 && square == 0 =>
                {
                    return;
                }
                TokKind::Punct('<') => angle += 1,
                TokKind::Punct('>') if !self.is_arrow_tail(self.i) => angle -= 1,
                TokKind::Punct('(') => round += 1,
                TokKind::Punct(')') => round -= 1,
                TokKind::Punct('[') => square += 1,
                TokKind::Punct(']') => square -= 1,
                _ => {}
            }
            self.bump();
        }
    }

    /// Parses an `impl`/`trait` container with its kind and name (the
    /// `impl` keyword is next). Returns `None` when no body follows.
    fn container(&mut self) -> Option<Item> {
        let is_impl = self.at_ident("impl");
        self.bump(); // `impl` / `trait`
        let (kind, name) = if is_impl {
            if self.at_punct('<') {
                self.skip_generics();
            }
            (ContainerKind::Impl, self.impl_self_type())
        } else {
            let name = self.peek().and_then(Token::ident).unwrap_or("?").to_owned();
            (ContainerKind::Trait, name)
        };
        self.skip_to_body_open();
        if self.eat_punct('{') {
            let inner = self.items(true);
            self.eat_punct('}');
            Some(Item::Container {
                kind,
                name,
                items: inner,
            })
        } else {
            self.eat_punct(';');
            None
        }
    }

    /// Scans ahead (without consuming) to the impl body's `{`/`;` and
    /// returns the self-type name: the last angle-depth-0 identifier of
    /// the final type path. `for` resets the candidate (so `impl Trait
    /// for Type` yields `Type`), `where` stops the scan, and type-syntax
    /// keywords are skipped.
    fn impl_self_type(&self) -> String {
        let mut angle = 0i32;
        let mut round = 0i32;
        let mut square = 0i32;
        let mut name = String::from("?");
        let mut k = self.i;
        while let Some(tok) = self.t.get(k) {
            match &tok.kind {
                TokKind::Punct('{') | TokKind::Punct(';')
                    if angle <= 0 && round == 0 && square == 0 =>
                {
                    break;
                }
                TokKind::Punct('<') => angle += 1,
                TokKind::Punct('>') if !self.is_arrow_tail(k) => angle -= 1,
                TokKind::Punct('(') => round += 1,
                TokKind::Punct(')') => round -= 1,
                TokKind::Punct('[') => square += 1,
                TokKind::Punct(']') => square -= 1,
                TokKind::Ident(word) if angle <= 0 && round == 0 && square == 0 => {
                    match word.as_str() {
                        "where" => break,
                        "for" => name = String::from("?"),
                        "dyn" | "mut" | "const" | "unsafe" | "crate" | "self" | "super" => {}
                        _ => name.clone_from(word),
                    }
                }
                _ => {}
            }
            k += 1;
        }
        name
    }

    /// Parses a `use` item (the `use` keyword is next) into its
    /// flattened imports, consuming through the terminating `;`.
    fn use_item(&mut self) -> Vec<UseItem> {
        let line = self.line();
        self.eat_ident("use");
        let mut out = Vec::new();
        self.use_tree(Vec::new(), line, &mut out);
        self.eat_punct(';');
        out
    }

    /// Parses one branch of a `use` tree starting from `prefix`,
    /// stopping (unconsumed) at `,` / `}` / `;`.
    fn use_tree(&mut self, prefix: Vec<String>, line: u32, out: &mut Vec<UseItem>) {
        let mut path = prefix;
        let start_len = path.len();
        loop {
            let Some(tok) = self.peek() else { break };
            match &tok.kind {
                TokKind::Punct(';' | ',' | '}') => break,
                TokKind::Punct('*') => {
                    self.bump();
                    out.push(UseItem {
                        path,
                        alias: String::new(),
                        glob: true,
                        line,
                    });
                    return;
                }
                TokKind::Punct('{') => {
                    self.bump();
                    while let Some(t) = self.peek() {
                        if t.is_punct('}') {
                            self.bump();
                            break;
                        }
                        if t.is_punct(',') {
                            self.bump();
                            continue;
                        }
                        if t.is_punct(';') {
                            // Unbalanced tree; let the caller's `;` eat it.
                            break;
                        }
                        let before = self.i;
                        self.use_tree(path.clone(), line, out);
                        if self.i == before {
                            self.bump();
                        }
                    }
                    return;
                }
                TokKind::Ident(word) if word == "as" => {
                    self.bump();
                    let alias = self.bump().and_then(Token::ident).unwrap_or("_").to_owned();
                    out.push(UseItem {
                        path,
                        alias,
                        glob: false,
                        line,
                    });
                    return;
                }
                TokKind::Ident(word) => {
                    path.push(word.clone());
                    self.bump();
                }
                TokKind::Punct(':') => {
                    self.bump();
                }
                _ => {
                    // Unknown token in a use tree: consume and bail.
                    self.bump();
                    break;
                }
            }
        }
        if path.len() > start_len {
            // `use a::{self, b}` binds `a` itself for the `self` leaf.
            if path.last().is_some_and(|s| s == "self") {
                path.pop();
            }
            if let Some(last) = path.last() {
                let alias = last.clone();
                out.push(UseItem {
                    path,
                    alias,
                    glob: false,
                    line,
                });
            }
        }
    }

    fn fn_item(&mut self) -> FnItem {
        let line = self.line();
        self.eat_ident("fn");
        let name = self.bump().and_then(Token::ident).unwrap_or("?").to_owned();
        if self.at_punct('<') {
            self.skip_generics();
        }
        let (params, has_self) = if self.at_punct('(') {
            self.fn_params()
        } else {
            (Vec::new(), false)
        };
        self.skip_to_body_open();
        let body = if self.at_punct('{') {
            Some(self.block())
        } else {
            self.eat_punct(';');
            None
        };
        FnItem {
            name,
            line,
            params,
            has_self,
            body,
        }
    }

    /// Parses a parameter list (the `(` is next) into parameter names:
    /// the first bound identifier of each parameter's pattern. Returns
    /// the names and whether the list starts with a `self` receiver.
    fn fn_params(&mut self) -> (Vec<String>, bool) {
        self.eat_punct('(');
        let mut params = Vec::new();
        let mut has_self = false;
        let mut first = true;
        loop {
            if self.at_punct(')') || self.peek().is_none() {
                self.eat_punct(')');
                break;
            }
            let before = self.i;
            let name = self.param_pattern_name();
            if self.eat_punct(':') {
                self.type_words_until(&[',', ')']);
            }
            self.eat_punct(',');
            match name {
                Some(n) if first && n == "self" => has_self = true,
                Some(n) => params.push(n),
                None => {}
            }
            first = false;
            if self.i == before {
                self.bump();
            }
        }
        (params, has_self)
    }

    /// Scans one parameter's pattern up to its `:` / `,` / `)` at depth
    /// 0 (stop unconsumed) and returns the first identifier it binds
    /// (`mut`/`ref` and `_` excluded).
    fn param_pattern_name(&mut self) -> Option<String> {
        let mut round = 0i32;
        let mut square = 0i32;
        let mut curly = 0i32;
        let mut name = None;
        while let Some(tok) = self.peek() {
            if round == 0 && square == 0 && curly == 0 {
                if let TokKind::Punct(c) = tok.kind {
                    if matches!(c, ':' | ',' | ')') {
                        break;
                    }
                }
            }
            match &tok.kind {
                TokKind::Punct('(') => round += 1,
                TokKind::Punct(')') => round -= 1,
                TokKind::Punct('[') => square += 1,
                TokKind::Punct(']') => square -= 1,
                TokKind::Punct('{') => curly += 1,
                TokKind::Punct('}') => curly -= 1,
                TokKind::Ident(word) => {
                    let lower = word
                        .chars()
                        .next()
                        .is_some_and(|c| c.is_lowercase() || c == '_');
                    if name.is_none()
                        && lower
                        && !matches!(word.as_str(), "mut" | "ref" | "box" | "_" | "dyn")
                    {
                        name = Some(word.clone());
                    }
                }
                _ => {}
            }
            self.bump();
        }
        name
    }

    /// Skips a `<…>` generics list, arrow-aware.
    fn skip_generics(&mut self) {
        let mut depth = 0i32;
        while let Some(tok) = self.peek() {
            match tok.kind {
                TokKind::Punct('<') => depth += 1,
                TokKind::Punct('>') if !self.is_arrow_tail(self.i) => {
                    depth -= 1;
                    if depth == 0 {
                        self.bump();
                        return;
                    }
                }
                _ => {}
            }
            self.bump();
        }
    }

    fn struct_item(&mut self) -> StructItem {
        let line = self.line();
        self.eat_ident("struct");
        let name = self.bump().and_then(Token::ident).unwrap_or("?").to_owned();
        if self.at_punct('<') {
            self.skip_generics();
        }
        // `where` bounds before the body.
        self.skip_to_body_open();
        let mut fields = Vec::new();
        if self.eat_punct('{') {
            loop {
                self.skip_attributes();
                if self.at_punct('}') || self.peek().is_none() {
                    break;
                }
                if self.eat_ident("pub") && self.at_punct('(') {
                    self.skip_balanced('(', ')');
                }
                let field_line = self.line();
                let Some(fname) = self.bump().and_then(Token::ident) else {
                    continue;
                };
                if !self.eat_punct(':') {
                    continue;
                }
                let ty = self.type_words_until(&[',', '}']);
                fields.push(Field {
                    name: fname.to_owned(),
                    ty,
                    line: field_line,
                });
                self.eat_punct(',');
            }
            self.eat_punct('}');
        } else if self.at_punct('(') {
            self.skip_balanced('(', ')');
            self.eat_punct(';');
        } else {
            self.eat_punct(';');
        }
        StructItem { name, line, fields }
    }

    fn static_item(&mut self) -> Option<StaticItem> {
        let line = self.line();
        self.bump(); // `static` / `const`
        self.eat_ident("mut"); // `static mut` (forbidden by unsafe anyway)
        let name = self.bump().and_then(Token::ident)?.to_owned();
        if !self.eat_punct(':') {
            self.skip_past(';');
            return None;
        }
        let ty = self.type_words_until(&['=', ';']);
        let init = if self.eat_punct('=') {
            Some(self.expr(false))
        } else {
            None
        };
        self.eat_punct(';');
        Some(StaticItem {
            name,
            ty,
            line,
            init,
        })
    }

    /// Collects a type region's identifier words until one of `stops`
    /// appears at bracket depth 0 (angle/round/square aware). Leaves the
    /// stop token unconsumed.
    fn type_words_until(&mut self, stops: &[char]) -> String {
        let mut angle = 0i32;
        let mut round = 0i32;
        let mut square = 0i32;
        let mut words: Vec<&str> = Vec::new();
        while let Some(tok) = self.peek() {
            if angle <= 0 && round == 0 && square == 0 {
                if let TokKind::Punct(c) = tok.kind {
                    if stops.contains(&c) {
                        break;
                    }
                }
            }
            match tok.kind {
                TokKind::Punct('<') => angle += 1,
                TokKind::Punct('>') if !self.is_arrow_tail(self.i) => angle -= 1,
                TokKind::Punct('(') => round += 1,
                TokKind::Punct(')') => round -= 1,
                TokKind::Punct('[') => square += 1,
                TokKind::Punct(']') => square -= 1,
                TokKind::Ident(_) => {
                    if let Some(word) = tok.ident() {
                        words.push(word);
                    }
                }
                _ => {}
            }
            self.bump();
        }
        words.join(" ")
    }

    // ---------------------------------------------------------------
    // Blocks and statements
    // ---------------------------------------------------------------

    /// Parses a `{ … }` block (the `{` must be next).
    fn block(&mut self) -> Block {
        self.eat_punct('{');
        let mut stmts = Vec::new();
        let mut end_line = self.line();
        loop {
            self.skip_attributes();
            let Some(tok) = self.peek() else {
                end_line = self.t.last().map_or(end_line, |t| t.line);
                break;
            };
            if tok.is_punct('}') {
                end_line = tok.line;
                self.bump();
                break;
            }
            if tok.is_punct(';') {
                self.bump();
                continue;
            }
            match tok.ident() {
                Some("let") => stmts.push(Stmt::Let(self.let_stmt())),
                Some("fn") => stmts.push(Stmt::Item(Item::Fn(self.fn_item()))),
                Some("struct") => stmts.push(Stmt::Item(Item::Struct(self.struct_item()))),
                Some("use" | "type") => self.skip_past(';'),
                Some("static") => {
                    if let Some(s) = self.static_item() {
                        stmts.push(Stmt::Item(Item::Static(s)));
                    }
                }
                Some("const") if self.peek_at(1).and_then(Token::ident) != Some("fn") => {
                    if let Some(s) = self.static_item() {
                        stmts.push(Stmt::Item(Item::Static(s)));
                    }
                }
                Some("impl" | "trait" | "mod" | "enum") => {
                    // Items in blocks: reuse the item parser for one item.
                    let before = self.i;
                    let mut inner = self.items_one();
                    stmts.extend(inner.drain(..).map(Stmt::Item));
                    if self.i == before {
                        self.bump();
                    }
                }
                _ => {
                    let expr = self.expr(false);
                    self.eat_punct(';');
                    stmts.push(Stmt::Expr(expr));
                }
            }
        }
        Block { stmts, end_line }
    }

    /// Parses at most one item (used for items embedded in blocks).
    fn items_one(&mut self) -> Vec<Item> {
        // The generic item loop, bounded to one iteration's worth of
        // progress: delegate and trim.
        let Some(tok) = self.peek() else {
            return Vec::new();
        };
        match tok.ident() {
            Some("impl" | "trait") => self.container().into_iter().collect(),
            Some("mod") => {
                self.bump();
                let name = self.bump().and_then(Token::ident).unwrap_or("?").to_owned();
                if self.eat_punct('{') {
                    let inner = self.items(true);
                    self.eat_punct('}');
                    return vec![Item::Container {
                        kind: ContainerKind::Mod,
                        name,
                        items: inner,
                    }];
                }
                self.eat_punct(';');
                Vec::new()
            }
            Some("enum") => {
                self.skip_to_body_open();
                if self.at_punct('{') {
                    self.skip_balanced('{', '}');
                } else {
                    self.eat_punct(';');
                }
                Vec::new()
            }
            _ => Vec::new(),
        }
    }

    fn let_stmt(&mut self) -> LetStmt {
        let line = self.line();
        self.eat_ident("let");
        let (names, underscore) = self.pattern_names(&['=', ':', ';']);
        if self.eat_punct(':') {
            self.type_words_until(&['=', ';']);
        }
        let init = if self.eat_punct('=') {
            Some(self.expr(false))
        } else {
            None
        };
        let else_block = if self.at_ident("else") {
            self.bump();
            if self.at_punct('{') {
                Some(self.block())
            } else {
                None
            }
        } else {
            None
        };
        self.eat_punct(';');
        LetStmt {
            names,
            underscore,
            init,
            else_block,
            line,
        }
    }

    /// Collects the names a pattern binds, consuming tokens until one of
    /// `stops` at bracket depth 0 (the stop is left unconsumed). Returns
    /// the bound lower-case names and whether the pattern was exactly
    /// `_`.
    fn pattern_names(&mut self, stops: &[char]) -> (Vec<String>, bool) {
        let mut names = Vec::new();
        let mut round = 0i32;
        let mut square = 0i32;
        let mut curly = 0i32;
        let mut token_count = 0usize;
        let mut lone_underscore = false;
        while let Some(tok) = self.peek() {
            if round == 0 && square == 0 && curly == 0 {
                if let TokKind::Punct(c) = tok.kind {
                    if stops.contains(&c) {
                        break;
                    }
                }
            }
            match &tok.kind {
                TokKind::Punct('(') => round += 1,
                TokKind::Punct(')') => round -= 1,
                TokKind::Punct('[') => square += 1,
                TokKind::Punct(']') => square -= 1,
                TokKind::Punct('{') => curly += 1,
                TokKind::Punct('}') => curly -= 1,
                TokKind::Ident(word) => {
                    let lower_start = word
                        .chars()
                        .next()
                        .is_some_and(|c| c.is_lowercase() || c == '_');
                    let keyword = matches!(word.as_str(), "mut" | "ref" | "box" | "_");
                    // A lower-case ident followed by `::` or `(` is a
                    // path/constructor, not a binding.
                    let next = self.peek_at(1);
                    let path_like = next.is_some_and(|n| n.is_punct(':') || n.is_punct('('));
                    if word == "_" && token_count == 0 {
                        lone_underscore = true;
                    }
                    if lower_start && !keyword && !path_like {
                        names.push(word.clone());
                    }
                }
                _ => {}
            }
            if !tok.is_punct('_') {
                // (never a punct — `_` lexes as an ident; counter is for
                // the lone-underscore check)
            }
            token_count += 1;
            self.bump();
        }
        let underscore = lone_underscore && token_count == 1;
        (names, underscore)
    }

    // ---------------------------------------------------------------
    // Expressions
    // ---------------------------------------------------------------

    /// Parses one expression. `no_struct` suppresses struct-literal
    /// parsing (condition/scrutinee positions, where `{` opens a body).
    fn expr(&mut self, no_struct: bool) -> Expr {
        if self.depth >= MAX_DEPTH {
            // Degrade: consume one token so callers keep making progress.
            let line = self.line();
            self.bump();
            return Expr::Unit(line);
        }
        self.depth += 1;
        let result = self.expr_inner(no_struct);
        self.depth -= 1;
        result
    }

    fn expr_inner(&mut self, no_struct: bool) -> Expr {
        let first = self.unary(no_struct);
        let mut parts = vec![first];
        loop {
            let Some(tok) = self.peek() else { break };
            match tok.kind {
                // Range `..` / `..=`: consume, then parse the (optional)
                // right side.
                TokKind::Punct('.')
                    if self.peek_at(1).is_some_and(|n| n.is_punct('.'))
                        && self.adjacent(self.i, self.i + 1) =>
                {
                    self.bump();
                    self.bump();
                    self.eat_punct('=');
                    if self.expr_continues(no_struct) {
                        parts.push(self.unary(no_struct));
                    }
                }
                TokKind::Punct('+' | '-' | '*' | '/' | '%' | '^' | '|' | '&' | '<' | '>' | '=') => {
                    self.bump();
                    // Swallow compound-operator tails (`==`, `+=`, `<<`,
                    // `&&`, …).
                    while self.peek().is_some_and(|t| {
                        matches!(t.kind, TokKind::Punct('=' | '<' | '>' | '&' | '|'))
                    }) && self.adjacent(self.i - 1, self.i)
                    {
                        self.bump();
                    }
                    if self.expr_continues(no_struct) {
                        parts.push(self.unary(no_struct));
                    }
                }
                TokKind::Punct('!')
                    if self.peek_at(1).is_some_and(|n| n.is_punct('='))
                        && self.adjacent(self.i, self.i + 1) =>
                {
                    self.bump();
                    self.bump();
                    parts.push(self.unary(no_struct));
                }
                _ => break,
            }
        }
        if parts.len() == 1 {
            parts.pop().expect("one part")
        } else {
            Expr::Group(parts)
        }
    }

    /// Whether another operand plausibly follows (not a terminator).
    fn expr_continues(&self, no_struct: bool) -> bool {
        match self.peek() {
            None => false,
            Some(tok) => match tok.kind {
                TokKind::Punct(';' | ',' | ')' | ']' | '}') => false,
                TokKind::Punct('{') => !no_struct,
                _ => true,
            },
        }
    }

    /// Prefix operators, then a postfix chain, then `as` casts.
    fn unary(&mut self, no_struct: bool) -> Expr {
        // Prefix: `& && * ! -` (fold — analyses don't care).
        while let Some(tok) = self.peek() {
            match tok.kind {
                TokKind::Punct('&' | '*' | '!' | '-') => {
                    self.bump();
                    self.eat_ident("mut");
                }
                _ => break,
            }
        }
        let mut expr = self.postfix(no_struct);
        while self.at_ident("as") {
            let line = self.line();
            self.bump();
            let ty = self.cast_type();
            expr = Expr::Cast {
                inner: Box::new(expr),
                ty,
                line,
            };
        }
        expr
    }

    /// The target type of an `as` cast: consumes a path (with optional
    /// generics) and returns its last segment.
    fn cast_type(&mut self) -> String {
        let mut last = String::new();
        while let Some(word) = self.peek().and_then(Token::ident) {
            last = word.to_owned();
            self.bump();
            if self.at_punct('<') {
                self.skip_generics();
            }
            if self.at_punct(':') && self.peek_at(1).is_some_and(|t| t.is_punct(':')) {
                self.bump();
                self.bump();
            } else {
                break;
            }
        }
        last
    }

    fn postfix(&mut self, no_struct: bool) -> Expr {
        let line = self.line();
        let primary = self.primary(no_struct);
        // Only chains continue with postfix steps; control-flow and
        // literal primaries are returned as-is (`.await`-style chaining
        // off a block is rare and safely ignored).
        let root = match primary {
            Expr::Chain(chain) => return self.chain_steps(chain),
            Expr::Macro { .. } | Expr::Group(_) | Expr::Unit(_)
                if self.at_punct('.') || self.at_punct('?') =>
            {
                Root::Grouped(Box::new(primary))
            }
            other => return other,
        };
        self.chain_steps(Chain {
            root,
            steps: Vec::new(),
            line,
        })
    }

    /// Applies postfix steps to a chain until none remain.
    fn chain_steps(&mut self, mut chain: Chain) -> Expr {
        loop {
            let Some(tok) = self.peek() else { break };
            match tok.kind {
                TokKind::Punct('?') => {
                    chain.steps.push(Step::Try(tok.line));
                    self.bump();
                }
                TokKind::Punct('(') => {
                    let line = tok.line;
                    let args = self.paren_args();
                    chain.steps.push(Step::Call { args, line });
                }
                TokKind::Punct('[') => {
                    let line = tok.line;
                    self.bump();
                    let index = if self.at_punct(']') {
                        Expr::Unit(line)
                    } else {
                        self.expr(false)
                    };
                    // Tolerate `[a; b]`-style contents.
                    while !self.at_punct(']') && self.peek().is_some() {
                        self.bump();
                    }
                    self.eat_punct(']');
                    chain.steps.push(Step::Index(Box::new(index), line));
                }
                TokKind::Punct('.') => {
                    // Range `..` ends the chain.
                    if self.peek_at(1).is_some_and(|n| n.is_punct('.'))
                        && self.adjacent(self.i, self.i + 1)
                    {
                        break;
                    }
                    self.bump();
                    match self.peek().map(|t| t.kind.clone()) {
                        Some(TokKind::Ident(name)) => {
                            let line = self.line();
                            self.bump();
                            // Method turbofish: `.collect::<…>()`.
                            if self.at_punct(':')
                                && self.peek_at(1).is_some_and(|t| t.is_punct(':'))
                            {
                                self.bump();
                                self.bump();
                                if self.at_punct('<') {
                                    self.skip_generics();
                                }
                            }
                            if self.at_punct('(') {
                                let args = self.paren_args();
                                chain.steps.push(Step::Method { name, args, line });
                            } else {
                                chain.steps.push(Step::Field(name, line));
                            }
                        }
                        Some(TokKind::Num) => {
                            let line = self.line();
                            self.bump();
                            chain.steps.push(Step::Field("#tuple".to_owned(), line));
                        }
                        _ => break,
                    }
                }
                _ => break,
            }
        }
        Expr::Chain(chain)
    }

    /// Parses a parenthesized, comma-separated argument list (the `(`
    /// must be next); consumes through the matching `)`.
    fn paren_args(&mut self) -> Vec<Expr> {
        self.eat_punct('(');
        let mut args = Vec::new();
        loop {
            match self.peek() {
                None => break,
                Some(tok) if tok.is_punct(')') => {
                    self.bump();
                    break;
                }
                Some(tok) if tok.is_punct(',') => {
                    self.bump();
                }
                Some(_) => {
                    let before = self.i;
                    args.push(self.expr(false));
                    if self.i == before {
                        self.bump();
                    }
                }
            }
        }
        args
    }

    fn primary(&mut self, no_struct: bool) -> Expr {
        let line = self.line();
        let Some(tok) = self.peek() else {
            return Expr::Unit(line);
        };
        match &tok.kind {
            TokKind::Literal | TokKind::Num | TokKind::Lifetime => {
                self.bump();
                Expr::Lit(line)
            }
            TokKind::Punct('{') => Expr::Block(self.block()),
            TokKind::Punct('(') => {
                let args = self.paren_args();
                match args.len() {
                    0 => Expr::Unit(line),
                    1 => {
                        let inner = args.into_iter().next().expect("one arg");
                        Expr::Chain(Chain {
                            root: Root::Grouped(Box::new(inner)),
                            steps: Vec::new(),
                            line,
                        })
                    }
                    _ => Expr::Group(args),
                }
            }
            TokKind::Punct('[') => {
                self.bump();
                let mut items = Vec::new();
                loop {
                    match self.peek() {
                        None => break,
                        Some(t) if t.is_punct(']') => {
                            self.bump();
                            break;
                        }
                        Some(t) if t.is_punct(',') || t.is_punct(';') => {
                            self.bump();
                        }
                        Some(_) => {
                            let before = self.i;
                            items.push(self.expr(false));
                            if self.i == before {
                                self.bump();
                            }
                        }
                    }
                }
                Expr::Group(items)
            }
            TokKind::Punct('|') => self.closure(line),
            TokKind::Punct(_) => {
                // Unknown punctuation in expression position: consume it
                // (recovery) and try again via Unit.
                self.bump();
                Expr::Unit(line)
            }
            TokKind::Ident(word) => match word.as_str() {
                "move" => {
                    self.bump();
                    if self.at_punct('|') {
                        self.closure(line)
                    } else {
                        Expr::Unit(line)
                    }
                }
                "if" => self.if_expr(),
                "while" => {
                    self.bump();
                    let cond = self.condition();
                    let body = self.block_or_empty();
                    Expr::While {
                        cond: Box::new(cond),
                        body,
                    }
                }
                "loop" => {
                    self.bump();
                    Expr::Loop {
                        body: self.block_or_empty(),
                    }
                }
                "for" => {
                    self.bump();
                    // Skip the pattern to `in` at depth 0.
                    let mut round = 0i32;
                    while let Some(t) = self.peek() {
                        if round == 0 && t.ident() == Some("in") {
                            break;
                        }
                        if t.is_punct('(') {
                            round += 1;
                        } else if t.is_punct(')') {
                            round -= 1;
                        }
                        self.bump();
                    }
                    self.eat_ident("in");
                    let iter = self.expr(true);
                    let body = self.block_or_empty();
                    Expr::For {
                        iter: Box::new(iter),
                        body,
                    }
                }
                "match" => self.match_expr(),
                "unsafe" | "async" => {
                    self.bump();
                    if self.at_punct('{') {
                        Expr::Block(self.block())
                    } else {
                        Expr::Unit(line)
                    }
                }
                "return" | "break" | "continue" | "yield" => {
                    self.bump();
                    // `break 'label`:
                    if matches!(self.peek().map(|t| &t.kind), Some(TokKind::Lifetime)) {
                        self.bump();
                    }
                    if self.expr_continues(no_struct) {
                        Expr::Group(vec![self.expr(no_struct)])
                    } else {
                        Expr::Unit(line)
                    }
                }
                "let" => {
                    // `let` in expression position (inside `if let`
                    // chains handled by condition(); this is recovery).
                    self.bump();
                    let (_, _) = self.pattern_names(&['=', ';', ')', '{']);
                    if self.eat_punct('=') {
                        self.expr(true)
                    } else {
                        Expr::Unit(line)
                    }
                }
                _ => self.path_expr(no_struct),
            },
        }
    }

    fn closure(&mut self, line: u32) -> Expr {
        // `|params|` or `||`.
        self.eat_punct('|');
        if !self.at_punct('|') || !self.adjacent(self.i - 1, self.i) {
            // Non-empty parameter list: skip to the closing `|` at
            // bracket depth 0 (types may contain angles).
            let mut angle = 0i32;
            let mut round = 0i32;
            let mut square = 0i32;
            while let Some(tok) = self.peek() {
                match tok.kind {
                    TokKind::Punct('|') if angle <= 0 && round == 0 && square == 0 => break,
                    TokKind::Punct('<') => angle += 1,
                    TokKind::Punct('>') if !self.is_arrow_tail(self.i) => angle -= 1,
                    TokKind::Punct('(') => round += 1,
                    TokKind::Punct(')') => round -= 1,
                    TokKind::Punct('[') => square += 1,
                    TokKind::Punct(']') => square -= 1,
                    _ => {}
                }
                self.bump();
            }
        }
        self.eat_punct('|');
        // Optional `-> Type` before a braced body.
        if self.at_punct('-') && self.peek_at(1).is_some_and(|t| t.is_punct('>')) {
            self.bump();
            self.bump();
            self.type_words_until(&['{']);
        }
        let body = self.expr(false);
        Expr::Closure {
            body: Box::new(body),
            line,
        }
    }

    fn if_expr(&mut self) -> Expr {
        self.eat_ident("if");
        let cond = self.condition();
        let then_block = self.block_or_empty();
        let else_branch = if self.at_ident("else") {
            self.bump();
            if self.at_ident("if") {
                Some(Box::new(self.if_expr()))
            } else if self.at_punct('{') {
                Some(Box::new(Expr::Block(self.block())))
            } else {
                None
            }
        } else {
            None
        };
        Expr::If {
            cond: Box::new(cond),
            then_block,
            else_branch,
        }
    }

    /// An `if`/`while` condition: handles the `let PAT = scrutinee`
    /// form, returning the scrutinee (what matters for guard tracking).
    fn condition(&mut self) -> Expr {
        if self.at_ident("let") {
            self.bump();
            let (_, _) = self.pattern_names(&['=']);
            self.eat_punct('=');
        }
        self.expr(true)
    }

    fn block_or_empty(&mut self) -> Block {
        if self.at_punct('{') {
            self.block()
        } else {
            Block::default()
        }
    }

    fn match_expr(&mut self) -> Expr {
        self.eat_ident("match");
        let scrutinee = self.expr(true);
        let mut arms = Vec::new();
        let mut end_line = self.line();
        if self.eat_punct('{') {
            loop {
                self.skip_attributes();
                let Some(tok) = self.peek() else { break };
                if tok.is_punct('}') {
                    end_line = tok.line;
                    self.bump();
                    break;
                }
                if tok.is_punct(',') {
                    self.bump();
                    continue;
                }
                // Skip the arm pattern to its `=>` (or a depth-0 `if`
                // guard, which we parse as an expression).
                let guard = self.skip_arm_pattern();
                self.eat_punct('=');
                self.eat_punct('>');
                let body = self.expr(false);
                arms.push(match guard {
                    Some(guard) => Expr::Group(vec![guard, body]),
                    None => body,
                });
            }
        }
        Expr::Match {
            scrutinee: Box::new(scrutinee),
            arms,
            end_line,
        }
    }

    /// Consumes a match-arm pattern up to (not including) its `=>`;
    /// parses and returns a depth-0 `if` guard when present.
    fn skip_arm_pattern(&mut self) -> Option<Expr> {
        let mut round = 0i32;
        let mut square = 0i32;
        let mut curly = 0i32;
        while let Some(tok) = self.peek() {
            if round == 0 && square == 0 && curly == 0 {
                if tok.is_punct('=')
                    && self.peek_at(1).is_some_and(|n| n.is_punct('>'))
                    && self.adjacent(self.i, self.i + 1)
                {
                    return None;
                }
                if tok.ident() == Some("if") {
                    self.bump();
                    return Some(self.expr(true));
                }
            }
            match tok.kind {
                TokKind::Punct('(') => round += 1,
                TokKind::Punct(')') => round -= 1,
                TokKind::Punct('[') => square += 1,
                TokKind::Punct(']') => square -= 1,
                TokKind::Punct('{') => curly += 1,
                TokKind::Punct('}') => curly -= 1,
                _ => {}
            }
            self.bump();
        }
        None
    }

    /// A path expression: `a::b::c` (turbofish skipped), then struct
    /// literal or macro handling.
    fn path_expr(&mut self, no_struct: bool) -> Expr {
        let line = self.line();
        let mut segments = Vec::new();
        loop {
            let Some(word) = self.peek().and_then(Token::ident) else {
                break;
            };
            segments.push(word.to_owned());
            self.bump();
            // `::` continuation (possibly turbofish).
            if self.at_punct(':') && self.peek_at(1).is_some_and(|t| t.is_punct(':')) {
                self.bump();
                self.bump();
                if self.at_punct('<') {
                    self.skip_generics();
                    // A turbofish may be followed by `::` again
                    // (`Vec::<u8>::new`).
                    if self.at_punct(':') && self.peek_at(1).is_some_and(|t| t.is_punct(':')) {
                        self.bump();
                        self.bump();
                    } else {
                        break;
                    }
                }
            } else {
                break;
            }
        }
        if segments.is_empty() {
            self.bump();
            return Expr::Unit(line);
        }
        // Macro invocation: `name!(…)` / `name![…]` / `name!{…}`.
        if self.at_punct('!') {
            let open = self.peek_at(1).map(|t| t.kind.clone());
            if let Some(TokKind::Punct(open_c @ ('(' | '[' | '{'))) = open {
                self.bump(); // `!`
                let close_c = match open_c {
                    '(' => ')',
                    '[' => ']',
                    _ => '}',
                };
                let args = self.macro_args(open_c, close_c);
                return Expr::Macro {
                    name: segments.last().cloned().unwrap_or_default(),
                    args,
                    line,
                };
            }
        }
        // Struct literal: `Path { field: expr, … }`.
        if !no_struct && self.at_punct('{') && starts_uppercase(segments.last()) {
            return self.struct_literal(line);
        }
        Expr::Chain(Chain {
            root: Root::Path(segments),
            steps: Vec::new(),
            line,
        })
    }

    /// Best-effort macro arguments: the balanced token region is
    /// isolated first, then re-parsed as a `,`/`;`-separated expression
    /// list (so a misparse can never escape the macro).
    fn macro_args(&mut self, open: char, close: char) -> Vec<Expr> {
        // Find the end of the balanced region.
        let start = self.i;
        let mut depth = 0usize;
        let mut end = self.i;
        while let Some(tok) = self.t.get(end) {
            if tok.is_punct(open) {
                depth += 1;
            } else if tok.is_punct(close) {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            end += 1;
        }
        let inner = &self.t[(start + 1).min(end)..end];
        self.i = (end + 1).min(self.t.len());
        let mut sub = P {
            t: inner,
            i: 0,
            depth: self.depth,
        };
        let mut args = Vec::new();
        while sub.peek().is_some() {
            if sub.at_punct(',') || sub.at_punct(';') {
                sub.bump();
                continue;
            }
            let before = sub.i;
            args.push(sub.expr(false));
            if sub.i == before {
                sub.bump();
            }
        }
        args
    }

    fn struct_literal(&mut self, line: u32) -> Expr {
        self.eat_punct('{');
        let mut children = Vec::new();
        loop {
            let Some(tok) = self.peek() else { break };
            if tok.is_punct('}') {
                self.bump();
                break;
            }
            if tok.is_punct(',') {
                self.bump();
                continue;
            }
            // `..base`:
            if tok.is_punct('.') {
                self.bump();
                self.eat_punct('.');
                let before = self.i;
                children.push(self.expr(false));
                if self.i == before {
                    self.bump();
                }
                continue;
            }
            // `name: expr` or shorthand `name`.
            let before = self.i;
            if self.peek().and_then(Token::ident).is_some()
                && self.peek_at(1).is_some_and(|t| t.is_punct(':'))
                && !self.peek_at(2).is_some_and(|t| t.is_punct(':'))
            {
                self.bump();
                self.bump();
                children.push(self.expr(false));
            } else {
                children.push(self.expr(false));
            }
            if self.i == before {
                self.bump();
            }
        }
        let _ = line;
        Expr::Group(children)
    }
}

fn starts_uppercase(segment: Option<&String>) -> bool {
    segment
        .and_then(|s| s.chars().next())
        .is_some_and(char::is_uppercase)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Ast {
        parse(&lex(src))
    }

    /// Renders every chain in the AST as `root.step.step` strings, for
    /// compact structural assertions.
    fn chains(ast: &Ast) -> Vec<String> {
        let mut out = Vec::new();
        for f in ast.functions() {
            if let Some(body) = &f.body {
                walk_block(body, &mut out);
            }
        }
        out
    }

    fn walk_block(b: &Block, out: &mut Vec<String>) {
        for s in &b.stmts {
            match s {
                Stmt::Let(l) => {
                    if let Some(e) = &l.init {
                        walk_expr(e, out);
                    }
                    if let Some(e) = &l.else_block {
                        walk_block(e, out);
                    }
                }
                Stmt::Expr(e) => walk_expr(e, out),
                Stmt::Item(_) => {}
            }
        }
    }

    fn walk_expr(e: &Expr, out: &mut Vec<String>) {
        match e {
            Expr::Chain(c) => {
                let mut text = match &c.root {
                    Root::Path(p) => p.join("::"),
                    Root::Grouped(inner) => {
                        walk_expr(inner, out);
                        "(…)".to_owned()
                    }
                };
                for step in &c.steps {
                    match step {
                        Step::Field(name, _) => text.push_str(&format!(".{name}")),
                        Step::Method { name, args, .. } => {
                            text.push_str(&format!(".{name}({})", args.len()));
                            for a in args {
                                walk_expr(a, out);
                            }
                        }
                        Step::Call { args, .. } => {
                            text.push_str(&format!("({})", args.len()));
                            for a in args {
                                walk_expr(a, out);
                            }
                        }
                        Step::Index(i, _) => {
                            text.push_str("[…]");
                            walk_expr(i, out);
                        }
                        Step::Try(_) => text.push('?'),
                    }
                }
                out.push(text);
            }
            Expr::Block(b) => walk_block(b, out),
            Expr::If {
                cond,
                then_block,
                else_branch,
            } => {
                walk_expr(cond, out);
                walk_block(then_block, out);
                if let Some(e) = else_branch {
                    walk_expr(e, out);
                }
            }
            Expr::While { cond, body } => {
                walk_expr(cond, out);
                walk_block(body, out);
            }
            Expr::Loop { body } => walk_block(body, out),
            Expr::For { iter, body } => {
                walk_expr(iter, out);
                walk_block(body, out);
            }
            Expr::Match {
                scrutinee, arms, ..
            } => {
                walk_expr(scrutinee, out);
                for a in arms {
                    walk_expr(a, out);
                }
            }
            Expr::Closure { body, .. } => walk_expr(body, out),
            Expr::Cast { inner, .. } => walk_expr(inner, out),
            Expr::Macro { args, .. } => {
                for a in args {
                    walk_expr(a, out);
                }
            }
            Expr::Group(children) => {
                for c in children {
                    walk_expr(c, out);
                }
            }
            Expr::Lit(_) | Expr::Unit(_) => {}
        }
    }

    #[test]
    fn method_chains_survive() {
        let ast = parse_src("fn f() { self.inner.lock().unwrap_or_else(|e| e.into_inner()); }");
        let c = chains(&ast);
        assert!(
            c.contains(&"self.inner.lock(0).unwrap_or_else(1)".to_owned()),
            "{c:?}"
        );
        assert!(c.contains(&"e.into_inner(0)".to_owned()), "{c:?}");
    }

    #[test]
    fn let_bindings_capture_names() {
        let src = "fn f() { let mut cache = x.lock(); let (tx, rx) = channel(); let Some((id, job)) = q.pop() else { return; }; let _ = g(); }";
        let ast = parse_src(src);
        let f = &ast.functions()[0];
        let lets: Vec<&LetStmt> = f
            .body
            .as_ref()
            .unwrap()
            .stmts
            .iter()
            .filter_map(|s| match s {
                Stmt::Let(l) => Some(l),
                _ => None,
            })
            .collect();
        assert_eq!(lets[0].names, vec!["cache"]);
        assert_eq!(lets[1].names, vec!["tx", "rx"]);
        assert_eq!(lets[2].names, vec!["id", "job"]);
        assert!(lets[2].else_block.is_some());
        assert!(lets[3].underscore);
        assert!(!lets[0].underscore);
    }

    #[test]
    fn nested_closures_parse() {
        let src = "fn f() { outer(move || { inner(|x| x.lock().go(|y| y + 1)); }); }";
        let c = chains(&parse_src(src));
        assert!(c.contains(&"x.lock(0).go(1)".to_owned()), "{c:?}");
        assert!(c.iter().any(|s| s.starts_with("outer(")), "{c:?}");
    }

    #[test]
    fn turbofish_is_skipped_not_mangled() {
        let src = "fn f() { let v = iter.collect::<Vec<FxHashMap<u64, u32>>>(); Vec::<u8>::new(); q.wait::<T>(x); }";
        let c = chains(&parse_src(src));
        assert!(c.contains(&"iter.collect(0)".to_owned()), "{c:?}");
        assert!(c.contains(&"Vec::new(0)".to_owned()), "{c:?}");
        assert!(c.contains(&"q.wait(1)".to_owned()), "{c:?}");
    }

    #[test]
    fn raw_strings_and_literals_stay_opaque() {
        let src = r####"fn f() { let s = r#"x.lock() { nope"#; m.insert(s, "y.read()"); }"####;
        let c = chains(&parse_src(src));
        assert_eq!(c, vec!["s", "m.insert(2)"]);
    }

    #[test]
    fn match_arms_and_guards_parse() {
        let src = "fn f(x: Option<u8>) { match q.lock() { Some(v) if v.check() => v.go(), None => other(), } }";
        let c = chains(&parse_src(src));
        assert!(c.contains(&"q.lock(0)".to_owned()), "{c:?}");
        assert!(c.contains(&"v.check(0)".to_owned()), "{c:?}");
        assert!(c.contains(&"v.go(0)".to_owned()), "{c:?}");
        assert!(c.contains(&"other(0)".to_owned()), "{c:?}");
    }

    #[test]
    fn casts_capture_target_type() {
        let src = "fn f(n: u64) -> u32 { (n + 1) as u32 }";
        let ast = parse_src(src);
        let mut casts = Vec::new();
        fn find_casts(e: &Expr, out: &mut Vec<String>) {
            if let Expr::Cast { ty, inner, .. } = e {
                out.push(ty.clone());
                find_casts(inner, out);
            }
            match e {
                Expr::Chain(c) => {
                    if let Root::Grouped(g) = &c.root {
                        find_casts(g, out);
                    }
                    for s in &c.steps {
                        match s {
                            Step::Method { args, .. } | Step::Call { args, .. } => {
                                for a in args {
                                    find_casts(a, out);
                                }
                            }
                            _ => {}
                        }
                    }
                }
                Expr::Group(children) => {
                    for c in children {
                        find_casts(c, out);
                    }
                }
                Expr::Cast { inner, .. } => find_casts(inner, out),
                _ => {}
            }
        }
        for f in ast.functions() {
            if let Some(b) = &f.body {
                for s in &b.stmts {
                    if let Stmt::Expr(e) = s {
                        find_casts(e, &mut casts);
                    }
                }
            }
        }
        assert_eq!(casts, vec!["u32"]);
    }

    #[test]
    fn struct_fields_and_statics_capture_types() {
        let src = "
static CACHE: Mutex<Vec<(Config, TraceSet)>> = Mutex::new(Vec::new());
struct Inner {
    queue: VecDeque<(u64, Job)>,
    jobs: BTreeMap<u64, (String, JobState)>,
    running: usize,
}
";
        let ast = parse_src(src);
        let statics = ast.statics();
        assert_eq!(statics.len(), 1);
        assert_eq!(statics[0].name, "CACHE");
        assert!(statics[0].ty.contains("Vec"), "{}", statics[0].ty);
        let structs = ast.structs();
        assert_eq!(structs.len(), 1);
        assert_eq!(structs[0].fields.len(), 3);
        assert_eq!(structs[0].fields[0].name, "queue");
        assert!(structs[0].fields[0].ty.contains("VecDeque"));
        assert!(structs[0].fields[2].ty.contains("usize"));
    }

    #[test]
    fn impl_and_mod_containers_are_transparent() {
        let src = "
impl<T: Send> Foo<T> where T: Clone {
    pub fn a(&self) { self.x.lock(); }
}
mod inner {
    fn b() { Q.read(); }
}
trait Tr {
    fn decl(&self);
    fn with_default(&self) { self.y.write(); }
}
";
        let ast = parse_src(src);
        let fns: Vec<&str> = ast.functions().iter().map(|f| f.name.as_str()).collect();
        assert_eq!(fns, vec!["a", "b", "decl", "with_default"]);
        assert!(ast.functions()[2].body.is_none());
    }

    #[test]
    fn macros_reparse_their_arguments() {
        let src = r#"fn f() { assert_eq!(q.lock().len(), 3, "queue {}", depth); format!("{}", x.read()); }"#;
        let c = chains(&parse_src(src));
        assert!(c.contains(&"q.lock(0).len(0)".to_owned()), "{c:?}");
        assert!(c.contains(&"x.read(0)".to_owned()), "{c:?}");
    }

    #[test]
    fn struct_literals_and_ranges_do_not_derail() {
        let src = "
fn f() -> S {
    for i in 0..n {
        go(i);
    }
    S { a: x.make(), b: 2, ..base.clone() }
}
";
        let c = chains(&parse_src(src));
        assert!(c.contains(&"go(1)".to_owned()), "{c:?}");
        assert!(c.contains(&"x.make(0)".to_owned()), "{c:?}");
        assert!(c.contains(&"base.clone(0)".to_owned()), "{c:?}");
    }

    #[test]
    fn if_let_and_while_let_yield_scrutinees() {
        let src = "
fn f() {
    if let Some(v) = q.lock().front() { v.go(); }
    while let Ok(m) = rx.recv() { m.go(); }
}
";
        let c = chains(&parse_src(src));
        assert!(c.contains(&"q.lock(0).front(0)".to_owned()), "{c:?}");
        assert!(c.contains(&"rx.recv(0)".to_owned()), "{c:?}");
    }

    #[test]
    fn pathological_input_terminates() {
        // Unbalanced everything; the parser must terminate and not panic.
        let src = "fn f( { ) } ] => let x = = 3 |||| as as u32 fn fn { { {";
        let _ = parse_src(src);
        let deep = format!("fn f() {{ {}1{} }}", "(".repeat(500), ")".repeat(500));
        let _ = parse_src(&deep);
    }

    #[test]
    fn blocks_record_end_lines() {
        let src = "fn f() {\n    let g = m.lock();\n    g.use_it();\n}\n";
        let ast = parse_src(src);
        let body = ast.functions()[0].body.as_ref().unwrap();
        assert_eq!(body.end_line, 4);
    }

    #[test]
    fn shift_and_comparison_operators_are_binary() {
        let src = "fn f() { let a = x << 2; let b = m.len() >= cap; let c = p < q && r > s; }";
        let c = chains(&parse_src(src));
        assert!(c.contains(&"m.len(0)".to_owned()), "{c:?}");
    }
}
