//! Figure 4-1: limited time for prefetch — how soon prefetched
//! instruction lines are needed during `ccom`.

use jouppi_core::prefetch::{PrefetchSimulator, PrefetchTechnique};
use jouppi_report::{Chart, Series, Table};
use jouppi_trace::RecordedTrace;
use jouppi_workloads::Benchmark;

use crate::common::{baseline_l1, ExperimentConfig};
use crate::sweep;

/// Maximum lead time plotted (instruction issues), as in the paper.
pub const MAX_LEAD: u64 = 26;

/// Lead-time distributions for the three classical prefetch techniques on
/// `ccom`'s instruction stream.
#[derive(Clone, Debug, PartialEq)]
pub struct Fig41 {
    /// `(technique, cdf)` where `cdf[t]` is the fraction of useful
    /// prefetches demanded within `t` instruction issues of being issued.
    pub curves: Vec<(PrefetchTechnique, Vec<f64>)>,
}

/// Runs `ccom`'s instruction stream through each prefetch technique.
///
/// The trace is recorded once; the three techniques replay its dense
/// instruction-side view as independent sweep-engine cells.
pub fn run(cfg: &ExperimentConfig) -> Fig41 {
    let trace = RecordedTrace::record(&Benchmark::Ccom.source(cfg.scale, cfg.seed));
    let techniques = [
        PrefetchTechnique::OnMiss,
        PrefetchTechnique::Tagged,
        PrefetchTechnique::Always,
    ];
    let curves = sweep::map_jobs(techniques.len(), |t| {
        let tech = techniques[t];
        let mut sim = PrefetchSimulator::new(baseline_l1(), tech);
        for (i, &addr) in trace.instr_side().addrs().iter().enumerate() {
            sim.access(addr, i as u64 + 1);
        }
        (tech, sim.lead_time_cdf(MAX_LEAD))
    });
    Fig41 { curves }
}

impl Fig41 {
    /// Fraction of useful prefetches needed within `t` issues for a
    /// technique (0.0 if the technique is missing or `t` out of range).
    pub fn within(&self, tech: PrefetchTechnique, t: u64) -> f64 {
        self.curves
            .iter()
            .find(|(x, _)| *x == tech)
            .and_then(|(_, cdf)| cdf.get(t as usize))
            .copied()
            .unwrap_or(0.0)
    }

    /// Renders the cumulative distributions.
    pub fn render(&self) -> String {
        let mut t = Table::new(["technique", "≤1 instr", "≤2", "≤4", "≤8", "≤16", "≤24"]);
        for (tech, _) in &self.curves {
            t.row([
                tech.to_string(),
                format!("{:.0}%", 100.0 * self.within(*tech, 1)),
                format!("{:.0}%", 100.0 * self.within(*tech, 2)),
                format!("{:.0}%", 100.0 * self.within(*tech, 4)),
                format!("{:.0}%", 100.0 * self.within(*tech, 8)),
                format!("{:.0}%", 100.0 * self.within(*tech, 16)),
                format!("{:.0}%", 100.0 * self.within(*tech, 24)),
            ]);
        }
        let mut chart = Chart::new(
            "Figure 4-1: % of useful prefetches needed within N instruction issues (ccom, I-stream)",
            60,
            16,
        )
        .y_range(0.0, 100.0);
        for (tech, cdf) in &self.curves {
            let marker = match tech {
                PrefetchTechnique::OnMiss => 'm',
                PrefetchTechnique::Tagged => 't',
                PrefetchTechnique::Always => 'a',
            };
            let pts = cdf
                .iter()
                .enumerate()
                .map(|(i, &f)| (i as f64, 100.0 * f))
                .collect();
            chart = chart.series(Series::new(tech.to_string(), marker, pts));
        }
        format!("Figure 4-1\n{}\n{}", t.render(), chart.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetched_lines_are_needed_within_a_few_instructions() {
        let cfg = ExperimentConfig::with_scale(60_000);
        let f = run(&cfg);
        assert_eq!(f.curves.len(), 3);
        // The paper's point: with 4-instruction lines, sequential code
        // demands a prefetched line within ~4 issues — far less than the
        // 24-cycle L2 latency. Most useful prefetches arrive "too late".
        let tagged_soon = f.within(PrefetchTechnique::Tagged, 6);
        assert!(
            tagged_soon > 0.5,
            "tagged prefetch: {tagged_soon} needed within 6 issues"
        );
        // CDFs are monotone.
        for (_, cdf) in &f.curves {
            for w in cdf.windows(2) {
                assert!(w[1] + 1e-12 >= w[0]);
            }
        }
        assert!(f.render().contains("tagged"));
    }

    #[test]
    fn missing_technique_yields_zero() {
        let f = Fig41 { curves: vec![] };
        assert_eq!(f.within(PrefetchTechnique::Tagged, 4), 0.0);
    }
}
