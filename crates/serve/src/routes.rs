//! The request router: maps `(method, path)` to handlers.
//!
//! Every handler returns a [`Response`]; nothing here panics on bad
//! input — malformed bodies, unknown sweeps, and bogus job ids all
//! become 4xx documents. The returned endpoint label feeds the metrics
//! registry.

use jouppi_experiments::common::refs_simulated;
use jouppi_experiments::sweep::{cells_executed, single_pass_refs};

use crate::http::{Request, Response};
use crate::json::Json;
use crate::metrics::Sampled;
use crate::queue::{JobState, QueueFull};
use crate::server::Ctx;
use crate::sim;
use crate::sweeps::{self, DEFAULT_SWEEP_SCALE, NAMED_SWEEPS};

/// Routes one request, returning the metrics endpoint label and the
/// response to send.
pub(crate) fn route(ctx: &Ctx, req: &Request) -> (&'static str, Response) {
    match req.path() {
        "/healthz" => ("healthz", expect_get(req, healthz(ctx))),
        "/metrics" => ("metrics", expect_get(req, metrics(ctx))),
        "/v1/simulate" => ("simulate", expect_post(req, |r| simulate(ctx, r))),
        "/v1/sweep" => ("sweep", expect_post(req, |r| sweep(ctx, r))),
        path => match path.strip_prefix("/v1/jobs/") {
            Some(id) => ("jobs", expect_get(req, job_status(ctx, id))),
            None => ("other", Response::error(404, "no such endpoint")),
        },
    }
}

fn expect_get(req: &Request, resp: Response) -> Response {
    if req.method == "GET" {
        resp
    } else {
        Response::error(405, "use GET").header("Allow", "GET")
    }
}

fn expect_post(req: &Request, handler: impl FnOnce(&Request) -> Response) -> Response {
    if req.method == "POST" {
        handler(req)
    } else {
        Response::error(405, "use POST").header("Allow", "POST")
    }
}

fn healthz(ctx: &Ctx) -> Response {
    if ctx.is_shutting_down() {
        Response::text(503, "draining\n")
    } else {
        Response::text(200, "ok\n")
    }
}

fn metrics(ctx: &Ctx) -> Response {
    let queue = ctx.queue.stats();
    let sampled = Sampled {
        queue_depth: queue.depth,
        jobs_inflight: queue.running,
        jobs_completed: queue.completed,
        connections: ctx.open_connections(),
        refs_simulated: refs_simulated(),
        sweep_cells: cells_executed(),
        single_pass_refs: single_pass_refs(),
        refs_per_second: sweeps::last_sweep_refs_per_second(),
    };
    let mut resp = Response::text(200, ctx.metrics.render(&sampled));
    resp.content_type = "text/plain; version=0.0.4; charset=utf-8";
    resp
}

fn parse_body(req: &Request) -> Result<Json, Response> {
    let text =
        std::str::from_utf8(&req.body).map_err(|_| Response::error(400, "body is not UTF-8"))?;
    Json::parse(text).map_err(|e| Response::error(400, format!("invalid JSON: {e}")))
}

fn simulate(_ctx: &Ctx, req: &Request) -> Response {
    let body = match parse_body(req) {
        Ok(body) => body,
        Err(resp) => return resp,
    };
    match sim::simulate(&body) {
        Ok(result) => Response::json(200, &result),
        Err(msg) => Response::error(400, msg),
    }
}

fn sweep(ctx: &Ctx, req: &Request) -> Response {
    let body = match parse_body(req) {
        Ok(body) => body,
        Err(resp) => return resp,
    };
    let Some(name) = body.get("sweep").and_then(Json::as_str) else {
        return Response::error(
            400,
            format!(
                "'sweep' is required; known sweeps: {}",
                NAMED_SWEEPS.join(", ")
            ),
        );
    };
    if !NAMED_SWEEPS.contains(&name) {
        return Response::error(
            400,
            format!(
                "unknown sweep '{name}'; known sweeps: {}",
                NAMED_SWEEPS.join(", ")
            ),
        );
    }
    let engines = sweeps::engines_for(name);
    let engine = match body.get("engine").and_then(Json::as_str) {
        None => engines[0],
        Some(requested) => match engines.iter().find(|&&e| e == requested) {
            Some(&engine) => engine,
            None => {
                return Response::error(
                    400,
                    format!(
                        "unknown engine '{requested}' for sweep '{name}'; \
                         valid engines: {}",
                        engines.join(", ")
                    ),
                );
            }
        },
    };
    let scale = match sim::get_u64(&body, "scale", DEFAULT_SWEEP_SCALE) {
        Ok(scale) => scale,
        Err(msg) => return Response::error(400, msg),
    };
    let seed = match sim::get_u64(&body, "seed", 42) {
        Ok(seed) => seed,
        Err(msg) => return Response::error(400, msg),
    };
    let cfg = match sweeps::sweep_config(scale, seed) {
        Ok(cfg) => cfg,
        Err(msg) => return Response::error(400, msg),
    };
    let wait = body.get("wait").and_then(Json::as_bool).unwrap_or(false);

    let job_name = name.to_owned();
    let job = {
        let job_name = job_name.clone();
        Box::new(move || {
            sweeps::run_named_engine(&job_name, &cfg, engine)
                .ok_or_else(|| "sweep vanished".to_owned())
        })
    };
    let id = match ctx.queue.submit(job_name.clone(), job) {
        Ok(id) => id,
        Err(QueueFull) => {
            return Response::error(503, "job queue is full; retry later")
                .header("Retry-After", "1");
        }
    };
    if wait {
        match ctx.queue.wait(id, ctx.cfg.job_wait_timeout) {
            Some((_, JobState::Done(result))) => return Response::json(200, &result),
            Some((_, JobState::Failed(msg))) => return Response::error(500, msg),
            _ => {} // still running: fall through to the 202 ticket
        }
    }
    Response::json(
        202,
        &Json::obj([
            ("job", Json::Int(id as i64)),
            ("sweep", Json::str(job_name)),
            ("status", Json::str("queued")),
            ("poll", Json::str(format!("/v1/jobs/{id}"))),
        ]),
    )
}

fn job_status(ctx: &Ctx, id_text: &str) -> Response {
    let Ok(id) = id_text.parse::<u64>() else {
        return Response::error(400, "job id must be an integer");
    };
    let Some((name, state)) = ctx.queue.status(id) else {
        return Response::error(404, format!("no such job {id}"));
    };
    let mut doc = vec![
        ("job".to_owned(), Json::Int(id as i64)),
        ("sweep".to_owned(), Json::str(name)),
        ("status".to_owned(), Json::str(state.label())),
    ];
    match state {
        JobState::Done(result) => doc.push(("result".to_owned(), result)),
        JobState::Failed(msg) => doc.push(("error".to_owned(), Json::str(msg))),
        JobState::Queued | JobState::Running => {}
    }
    Response::json(200, &Json::Obj(doc))
}
