//! Trace explorer: classify one benchmark's misses (compulsory /
//! capacity / conflict) across a range of cache sizes — the three-C
//! analysis the paper's §3 rests on.
//!
//! Run with `cargo run --release --example trace_explorer -- [bench]`.

use jouppi::cache::{CacheGeometry, ClassifiedCache, StackDistanceProfile};
use jouppi::report::Table;
use jouppi::trace::TraceSource;
use jouppi::workloads::{Benchmark, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "met".to_owned());
    let bench = Benchmark::from_name(&name).ok_or_else(|| {
        format!("unknown benchmark '{name}' (try ccom, grr, yacc, met, linpack, liver)")
    })?;

    let src = bench.source(Scale::new(300_000), 42);
    // One pass gives the fully-associative LRU miss rate for EVERY size
    // (Mattson's stack-distance algorithm).
    let mut profile = StackDistanceProfile::new();
    for r in src.refs().filter(|r| r.kind.is_data()) {
        profile.observe(r.addr.line(16));
    }
    println!("three-C data-miss classification for {}\n", bench.name());
    let mut table = Table::new([
        "cache size",
        "miss rate",
        "FA-LRU rate",
        "compulsory",
        "capacity",
        "conflict",
        "conflict %",
    ]);
    for exp in 0..8 {
        let size = 1024u64 << exp;
        let geom = CacheGeometry::direct_mapped(size, 16)?;
        let mut cache = ClassifiedCache::new(geom);
        for r in src.refs().filter(|r| r.kind.is_data()) {
            cache.access(r.addr);
        }
        let b = cache.breakdown();
        table.row([
            format!("{}KB", size / 1024),
            format!("{:.4}", cache.stats().miss_rate()),
            format!(
                "{:.4}",
                profile.miss_rate_for_capacity((size / 16) as usize)
            ),
            b.compulsory.to_string(),
            b.capacity.to_string(),
            b.conflict.to_string(),
            format!("{:.1}%", 100.0 * b.conflict_fraction()),
        ]);
    }
    println!("{table}");
    println!("(conflict misses are what victim caches remove; capacity and");
    println!(" compulsory misses are what stream buffers remove)");
    Ok(())
}
