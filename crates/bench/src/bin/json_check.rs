//! Validates benchmark report files against the shared JSON model.
//!
//! Usage: `json-check FILE...`
//!
//! Each FILE must parse with `jouppi_serve::json` — the same model the
//! daemon serves and the report tooling consumes — and carry a
//! top-level `"benchmark"` string plus at least one non-empty array of
//! result rows (`"results"` for sweep-bench, `"latency"` for loadgen).
//! An empty row array means the bench trajectory silently recorded
//! nothing, so it fails. A loadgen report must additionally carry the
//! Zipf result-cache fields (hit/miss/coalesce counters, hit rate, and
//! the cache-on vs cache-off speedup). Exits nonzero naming every file
//! that fails.

#![forbid(unsafe_code)]

use std::process::ExitCode;

use jouppi_serve::json::Json;

fn check(path: &str) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read failed: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("not valid JSON: {e}"))?;
    let benchmark = doc
        .get("benchmark")
        .and_then(Json::as_str)
        .ok_or("missing top-level \"benchmark\" string")?
        .to_owned();
    let Json::Obj(fields) = &doc else {
        return Err("top level is not an object".to_owned());
    };
    let rows: usize = fields
        .iter()
        .filter_map(|(_, v)| v.as_arr().map(<[Json]>::len))
        .sum();
    if rows == 0 {
        return Err("no result rows — the bench trajectory must never be empty".to_owned());
    }
    if benchmark == "loadgen" {
        check_zipf(&doc)?;
    }
    Ok(format!("benchmark \"{benchmark}\", {rows} result rows"))
}

/// Validates the result-cache fields a loadgen report must carry.
fn check_zipf(doc: &Json) -> Result<(), String> {
    let zipf = doc
        .get("zipf")
        .ok_or("loadgen report is missing the \"zipf\" object")?;
    for field in ["hits", "misses", "coalesced", "requests"] {
        zipf.get(field)
            .and_then(Json::as_i64)
            .ok_or(format!("\"zipf\" is missing integer field \"{field}\""))?;
    }
    for field in ["hit_rate", "coalesce_rate", "speedup", "skew"] {
        zipf.get(field)
            .and_then(Json::as_f64)
            .ok_or(format!("\"zipf\" is missing numeric field \"{field}\""))?;
    }
    let requests = zipf.get("requests").and_then(Json::as_i64).unwrap_or(0);
    let accounted = ["hits", "misses", "coalesced"]
        .iter()
        .filter_map(|f| zipf.get(f).and_then(Json::as_i64))
        .sum::<i64>();
    if accounted != requests {
        return Err(format!(
            "zipf counters do not account for the request stream: \
             hits+misses+coalesced = {accounted}, requests = {requests}"
        ));
    }
    Ok(())
}

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: json-check FILE...");
        return ExitCode::FAILURE;
    }
    let mut failures = 0usize;
    for path in &paths {
        match check(path) {
            Ok(summary) => eprintln!("ok   {path}: {summary}"),
            Err(why) => {
                eprintln!("FAIL {path}: {why}");
                failures += 1;
            }
        }
    }
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
