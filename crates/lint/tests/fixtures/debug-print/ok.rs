//! Fixture: the fix — return text; binaries do the printing.

pub fn announce(x: u32) -> String {
    format!("x = {x}")
}
