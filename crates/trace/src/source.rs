//! Trace sources: producers of memory-reference streams.

use std::sync::OnceLock;

use crate::{Addr, LineAddr, MemRef, TraceStats};

/// The baseline line size (bytes) for which [`SideView`] pre-derives
/// line addresses. Matches the paper's 16-byte baseline L1 lines.
pub const BASE_LINE_SIZE: u64 = 16;

/// A producer of a memory-reference stream.
///
/// `TraceSource` is the interface between workload generators and the
/// simulators: a source hands out a fresh iterator over its references each
/// time [`TraceSource::refs`] is called, so the same (deterministic, seeded)
/// trace can be replayed against many cache configurations — exactly how the
/// paper sweeps cache parameters over fixed traces.
///
/// The trait is object-safe; experiment drivers hold `Box<dyn TraceSource>`.
///
/// # Examples
///
/// ```
/// use jouppi_trace::{Addr, MemRef, RecordedTrace, TraceSource};
///
/// let trace = RecordedTrace::from_iter(vec![
///     MemRef::instr(Addr::new(0)),
///     MemRef::load(Addr::new(64)),
/// ]);
/// // Replays identically every time.
/// let first: Vec<_> = trace.refs().collect();
/// let second: Vec<_> = trace.refs().collect();
/// assert_eq!(first, second);
/// ```
pub trait TraceSource {
    /// Returns a fresh iterator over the trace, from the beginning.
    fn refs(&self) -> Box<dyn Iterator<Item = MemRef> + '_>;

    /// A short human-readable name for reports (e.g. `"ccom"`).
    fn name(&self) -> &str {
        "trace"
    }
}

/// A dense, single-side slice of a recorded trace.
///
/// Holds the byte addresses of every reference on one cache side
/// (instruction or data), in trace order, together with their line
/// addresses pre-derived for [`BASE_LINE_SIZE`]-byte lines. Simulation
/// hot loops iterate these flat vectors instead of re-filtering the
/// mixed I/D trace and re-deriving lines per configuration.
///
/// # Examples
///
/// ```
/// use jouppi_trace::{Addr, MemRef, RecordedTrace};
///
/// let trace = RecordedTrace::from_iter(vec![
///     MemRef::instr(Addr::new(0x1000)),
///     MemRef::load(Addr::new(0x8000)),
///     MemRef::store(Addr::new(0x8010)),
/// ]);
/// assert_eq!(trace.instr_side().len(), 1);
/// assert_eq!(trace.data_side().addrs(), &[Addr::new(0x8000), Addr::new(0x8010)]);
/// // Line addresses for the baseline 16-byte line are precomputed...
/// assert!(trace.data_side().lines_for(16).is_some());
/// // ...other line sizes fall back to deriving from `addrs()`.
/// assert!(trace.data_side().lines_for(32).is_none());
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SideView {
    addrs: Vec<Addr>,
    base_lines: Vec<LineAddr>,
}

impl SideView {
    fn build(refs: &[MemRef], instr: bool) -> SideView {
        let addrs: Vec<Addr> = refs
            .iter()
            .filter(|r| r.kind.is_instr() == instr)
            .map(|r| r.addr)
            .collect();
        let base_lines = addrs.iter().map(|a| a.line(BASE_LINE_SIZE)).collect();
        SideView { addrs, base_lines }
    }

    /// Byte addresses of this side's references, in trace order.
    pub fn addrs(&self) -> &[Addr] {
        &self.addrs
    }

    /// Line addresses pre-derived for [`BASE_LINE_SIZE`]-byte lines,
    /// parallel to [`SideView::addrs`].
    pub fn base_lines(&self) -> &[LineAddr] {
        &self.base_lines
    }

    /// The pre-derived line addresses, if they match `line_size`.
    ///
    /// Returns `None` for any line size other than [`BASE_LINE_SIZE`];
    /// callers then derive lines from [`SideView::addrs`] themselves.
    pub fn lines_for(&self, line_size: u64) -> Option<&[LineAddr]> {
        (line_size == BASE_LINE_SIZE).then_some(&self.base_lines[..])
    }

    /// Number of references on this side.
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// Returns `true` if this side has no references.
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }
}

#[derive(Debug)]
struct SidePartitions {
    instr: SideView,
    data: SideView,
}

/// An in-memory recorded trace, replayable any number of times.
///
/// Useful for tests and for capturing a generator's output once and
/// replaying it against many cache configurations without regenerating.
///
/// The trace lazily maintains per-side [`SideView`]s (see
/// [`RecordedTrace::instr_side`] / [`RecordedTrace::data_side`]); the
/// partition is computed once on first use and shared by every
/// configuration simulated against the trace.
#[derive(Debug, Default)]
pub struct RecordedTrace {
    name: String,
    refs: Vec<MemRef>,
    sides: OnceLock<SidePartitions>,
}

impl RecordedTrace {
    /// Creates an empty trace with the default name.
    pub fn new() -> Self {
        RecordedTrace::default()
    }

    /// Creates a trace from recorded references.
    pub fn from_refs(name: impl Into<String>, refs: Vec<MemRef>) -> Self {
        RecordedTrace {
            name: name.into(),
            refs,
            sides: OnceLock::new(),
        }
    }

    /// Records everything a source produces.
    pub fn record(source: &dyn TraceSource) -> Self {
        RecordedTrace {
            name: source.name().to_owned(),
            refs: source.refs().collect(),
            sides: OnceLock::new(),
        }
    }

    /// Number of references in the trace.
    pub fn len(&self) -> usize {
        self.refs.len()
    }

    /// Returns `true` if the trace holds no references.
    pub fn is_empty(&self) -> bool {
        self.refs.is_empty()
    }

    /// The recorded references as a slice.
    pub fn as_slice(&self) -> &[MemRef] {
        &self.refs
    }

    /// Computes Table 2-1-style statistics for the trace.
    pub fn stats(&self) -> TraceStats {
        TraceStats::from_refs(self.refs.iter().copied())
    }

    fn sides(&self) -> &SidePartitions {
        self.sides.get_or_init(|| SidePartitions {
            instr: SideView::build(&self.refs, true),
            data: SideView::build(&self.refs, false),
        })
    }

    /// The instruction-fetch side of the trace as a dense view.
    pub fn instr_side(&self) -> &SideView {
        &self.sides().instr
    }

    /// The data (load + store) side of the trace as a dense view.
    pub fn data_side(&self) -> &SideView {
        &self.sides().data
    }

    /// Eagerly builds both side views. Call this where the partition
    /// cost should be paid (e.g. on a recording worker) instead of
    /// lazily inside the first simulation that touches a side.
    pub fn materialize_sides(&self) {
        self.sides();
    }
}

impl Clone for RecordedTrace {
    /// Clones the name and references; the lazily-built side views are
    /// not copied and will be rebuilt on demand in the clone.
    fn clone(&self) -> Self {
        RecordedTrace {
            name: self.name.clone(),
            refs: self.refs.clone(),
            sides: OnceLock::new(),
        }
    }
}

impl PartialEq for RecordedTrace {
    /// Equality considers only the recorded contents, not whether the
    /// derived side views happen to be materialized yet.
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name && self.refs == other.refs
    }
}

impl Eq for RecordedTrace {}

impl TraceSource for RecordedTrace {
    fn refs(&self) -> Box<dyn Iterator<Item = MemRef> + '_> {
        Box::new(self.refs.iter().copied())
    }

    fn name(&self) -> &str {
        &self.name
    }
}

impl FromIterator<MemRef> for RecordedTrace {
    fn from_iter<I: IntoIterator<Item = MemRef>>(iter: I) -> Self {
        RecordedTrace {
            name: String::from("recorded"),
            refs: iter.into_iter().collect(),
            sides: OnceLock::new(),
        }
    }
}

impl Extend<MemRef> for RecordedTrace {
    fn extend<I: IntoIterator<Item = MemRef>>(&mut self, iter: I) {
        self.refs.extend(iter);
        // The cached partition no longer reflects the contents.
        self.sides = OnceLock::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Addr;

    fn sample() -> Vec<MemRef> {
        vec![
            MemRef::instr(Addr::new(0)),
            MemRef::instr(Addr::new(4)),
            MemRef::load(Addr::new(1024)),
            MemRef::store(Addr::new(1032)),
        ]
    }

    #[test]
    fn replay_is_deterministic() {
        let t = RecordedTrace::from_refs("t", sample());
        assert_eq!(t.refs().collect::<Vec<_>>(), t.refs().collect::<Vec<_>>());
        assert_eq!(t.len(), 4);
        assert!(!t.is_empty());
    }

    #[test]
    fn record_copies_source() {
        let t = RecordedTrace::from_refs("orig", sample());
        let copy = RecordedTrace::record(&t);
        assert_eq!(copy.name(), "orig");
        assert_eq!(copy.as_slice(), t.as_slice());
    }

    #[test]
    fn stats_match_contents() {
        let t = RecordedTrace::from_refs("t", sample());
        let s = t.stats();
        assert_eq!(s.instruction_refs, 2);
        assert_eq!(s.loads, 1);
        assert_eq!(s.stores, 1);
    }

    #[test]
    fn collect_and_extend() {
        let mut t: RecordedTrace = sample().into_iter().collect();
        assert_eq!(t.len(), 4);
        t.extend(sample());
        assert_eq!(t.len(), 8);
        assert_eq!(t.name(), "recorded");
    }

    #[test]
    fn empty_trace() {
        let t = RecordedTrace::new();
        assert!(t.is_empty());
        assert_eq!(t.stats().total_refs(), 0);
        assert!(t.instr_side().is_empty());
        assert!(t.data_side().is_empty());
    }

    #[test]
    fn side_views_partition_the_trace() {
        let t = RecordedTrace::from_refs("t", sample());
        let instr = t.instr_side();
        let data = t.data_side();
        assert_eq!(instr.addrs(), &[Addr::new(0), Addr::new(4)]);
        assert_eq!(data.addrs(), &[Addr::new(1024), Addr::new(1032)]);
        assert_eq!(instr.len() + data.len(), t.len());
    }

    #[test]
    fn side_views_prederive_baseline_lines() {
        let t = RecordedTrace::from_refs("t", sample());
        let data = t.data_side();
        let expected: Vec<LineAddr> = data
            .addrs()
            .iter()
            .map(|a| a.line(BASE_LINE_SIZE))
            .collect();
        assert_eq!(data.base_lines(), &expected[..]);
        assert_eq!(data.lines_for(BASE_LINE_SIZE), Some(&expected[..]));
        assert_eq!(data.lines_for(32), None);
        assert_eq!(data.lines_for(8), None);
    }

    #[test]
    fn extend_invalidates_side_views() {
        let mut t = RecordedTrace::from_refs("t", sample());
        assert_eq!(t.instr_side().len(), 2);
        t.extend([MemRef::instr(Addr::new(8))]);
        assert_eq!(t.instr_side().len(), 3);
        assert_eq!(t.data_side().len(), 2);
    }

    #[test]
    fn clone_and_eq_ignore_cached_views() {
        let t = RecordedTrace::from_refs("t", sample());
        let before_materialize = t.clone();
        let _ = t.instr_side();
        let after_materialize = t.clone();
        assert_eq!(t, before_materialize);
        assert_eq!(t, after_materialize);
        assert_eq!(after_materialize.instr_side().len(), 2);
    }
}
