//! Fixture: the fix — the reason makes the directive well-formed.

pub fn stamp_nanos() -> u64 {
    // jouppi-lint: allow(ambient-time) — fixture of a justified suppression
    let t = std::time::Instant::now();
    t.elapsed().as_nanos() as u64
}
