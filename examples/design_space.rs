//! Design-space exploration: sweep victim-cache sizes and stream-buffer
//! ways across all six workloads and print a recommendation, the way an
//! architect would use this library to size the paper's structures.
//!
//! Run with `cargo run --release --example design_space`.

use jouppi::cache::CacheGeometry;
use jouppi::core::{AugmentedCache, AugmentedConfig, StreamBufferConfig};
use jouppi::report::Table;
use jouppi::trace::TraceSource;
use jouppi::workloads::{Benchmark, Scale};

/// Simple cost model: fully-associative entries are expensive, stream
/// buffer ways moderately so. Returns an area estimate in "entry units".
fn area_cost(vc_entries: usize, sb_ways: usize) -> usize {
    2 * vc_entries + 3 * sb_ways
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let geom = CacheGeometry::direct_mapped(4096, 16)?;
    let scale = Scale::new(200_000);

    let mut table = Table::new(["VC entries", "SB ways", "avg D-miss", "area", "miss x area"]);
    let mut best: Option<(usize, usize, f64)> = None;

    for vc in [0usize, 1, 2, 4, 8] {
        for ways in [0usize, 1, 2, 4] {
            let mut rates = Vec::new();
            for b in Benchmark::ALL {
                let mut cfg = AugmentedConfig::new(geom);
                if vc > 0 {
                    cfg = cfg.victim_cache(vc);
                }
                if ways > 0 {
                    cfg = cfg.multi_way_stream_buffer(ways, StreamBufferConfig::new(4));
                }
                let mut cache = AugmentedCache::new(cfg);
                for r in b.source(scale, 7).refs().filter(|r| r.kind.is_data()) {
                    cache.access(r.addr);
                }
                rates.push(cache.stats().demand_miss_rate());
            }
            let avg = rates.iter().sum::<f64>() / rates.len() as f64;
            let area = area_cost(vc, ways);
            let score = avg * (1.0 + area as f64 / 40.0);
            table.row([
                vc.to_string(),
                ways.to_string(),
                format!("{avg:.4}"),
                area.to_string(),
                format!("{score:.4}"),
            ]);
            if best.is_none_or(|(_, _, s)| score < s) {
                best = Some((vc, ways, score));
            }
        }
    }

    println!("design-space sweep over all six workloads (data side)\n");
    println!("{table}");
    let (vc, ways, _) = best.expect("sweep is nonempty");
    println!("best miss-rate/area tradeoff: {vc}-entry victim cache + {ways}-way stream buffer");
    println!("(the paper settles on 4 + 4 — see Figure 5-1)");
    Ok(())
}
