//! Exact LRU stack-distance (reuse-distance) profiling.
//!
//! The *stack distance* of a reference is its depth in the LRU stack: the
//! number of distinct lines touched since the previous reference to the
//! same line, plus one. Mattson's classic result makes it the universal
//! currency of cache analysis: a fully-associative LRU cache of capacity
//! `C` hits exactly the references with stack distance ≤ `C`. One pass
//! over a trace therefore yields the miss rate of *every* cache size at
//! once — the curve underlying the paper's capacity-miss discussion and a
//! one-pass cross-check of the three-C classifier's shadow cache.
//!
//! The implementation is the standard O(n log n) Fenwick-tree algorithm
//! over access timestamps.

use jouppi_trace::LineAddr;

use crate::line_hash::FxHashMap;

/// A Fenwick (binary indexed) tree over timestamps, counting 0/1 marks.
///
/// Grows by doubling; growth rebuilds the tree from the kept point
/// values (a Fenwick tree cannot be extended in place, because new
/// parent nodes cover ranges of old elements).
#[derive(Clone, Debug)]
struct Fenwick {
    tree: Vec<u64>,
    raw: Vec<u8>,
}

impl Fenwick {
    fn new() -> Self {
        Fenwick {
            tree: vec![0; 2],
            raw: vec![0; 2],
        }
    }

    /// Preallocates for timestamps up to `max_timestamp`, so a profile
    /// over a stream of known length never pays a doubling rebuild.
    fn with_capacity(max_timestamp: usize) -> Self {
        let len = (max_timestamp + 1).next_power_of_two().max(2);
        Fenwick {
            tree: vec![0; len],
            raw: vec![0; len],
        }
    }

    fn grow_to(&mut self, idx: usize) {
        if idx < self.raw.len() {
            return;
        }
        let new_len = (idx + 1).next_power_of_two().max(self.raw.len() * 2);
        self.raw.resize(new_len, 0);
        // O(n) rebuild: seed with point values, then propagate each node
        // into its parent.
        self.tree = self.raw.iter().map(|&v| u64::from(v)).collect();
        for i in 1..new_len {
            let parent = i + (i & i.wrapping_neg());
            if parent < new_len {
                self.tree[parent] += self.tree[i];
            }
        }
    }

    /// Sets the 0/1 mark at 1-based position `idx`.
    fn set(&mut self, idx: usize, value: u8) {
        debug_assert!(idx >= 1 && value <= 1);
        self.grow_to(idx);
        let old = self.raw[idx];
        if old == value {
            return;
        }
        self.raw[idx] = value;
        let delta = i64::from(value) - i64::from(old);
        let mut i = idx;
        while i < self.tree.len() {
            self.tree[i] = self.tree[i].wrapping_add_signed(delta);
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of positions `1..=idx`.
    fn prefix(&self, mut idx: usize) -> u64 {
        let mut sum = 0;
        idx = idx.min(self.tree.len().saturating_sub(1));
        while idx > 0 {
            sum += self.tree[idx];
            idx -= idx & idx.wrapping_neg();
        }
        sum
    }
}

/// One-pass exact stack-distance profile of a reference stream.
///
/// # Examples
///
/// ```
/// use jouppi_cache::StackDistanceProfile;
/// use jouppi_trace::LineAddr;
///
/// let mut p = StackDistanceProfile::new();
/// for &n in &[1u64, 2, 3, 1, 2, 3] {
///     p.observe(LineAddr::new(n));
/// }
/// // Second round re-references at depth 3 each time.
/// assert_eq!(p.cold_refs(), 3);
/// assert_eq!(p.misses_for_capacity(3), 3);  // only the cold misses
/// assert_eq!(p.misses_for_capacity(2), 6);  // depth-3 reuses miss too
/// ```
#[derive(Clone, Debug, Default)]
pub struct StackDistanceProfile {
    /// `hist[d]` = references with stack distance exactly `d` (1-based;
    /// index 0 unused).
    hist: Vec<u64>,
    cold: u64,
    total: u64,
    last_access: FxHashMap<LineAddr, usize>,
    marks: Fenwick,
    now: usize,
}

impl Default for Fenwick {
    fn default() -> Self {
        Fenwick::new()
    }
}

impl StackDistanceProfile {
    /// Creates an empty profile.
    pub fn new() -> Self {
        StackDistanceProfile::default()
    }

    /// Creates an empty profile preallocated for `refs_hint` references.
    ///
    /// Timestamps advance once per [`Self::observe`], so a caller that
    /// knows the stream length (e.g. a memoized trace) can size the
    /// Fenwick tree once up front instead of paying O(n) doubling
    /// rebuilds as the pass runs. Observing more than `refs_hint`
    /// references is still correct — the tree falls back to growing.
    pub fn with_capacity(refs_hint: usize) -> Self {
        StackDistanceProfile {
            marks: Fenwick::with_capacity(refs_hint),
            ..StackDistanceProfile::default()
        }
    }

    /// Observes one reference.
    pub fn observe(&mut self, line: LineAddr) {
        self.now += 1;
        self.total += 1;
        match self.last_access.insert(line, self.now) {
            Some(prev) => {
                // Distinct lines since `prev` = marked timestamps in
                // (prev, now); each mark is some line's most recent access.
                let between = self.marks.prefix(self.now - 1) - self.marks.prefix(prev);
                let depth = between as usize + 1;
                if self.hist.len() <= depth {
                    self.hist.resize(depth + 1, 0);
                }
                self.hist[depth] += 1;
                self.marks.set(prev, 0);
            }
            None => self.cold += 1,
        }
        self.marks.set(self.now, 1);
    }

    /// Total references observed.
    pub fn total_refs(&self) -> u64 {
        self.total
    }

    /// First-touch (compulsory) references.
    pub fn cold_refs(&self) -> u64 {
        self.cold
    }

    /// Number of distinct lines observed.
    pub fn distinct_lines(&self) -> usize {
        self.last_access.len()
    }

    /// References with stack distance exactly `depth` (1-based).
    pub fn at_depth(&self, depth: usize) -> u64 {
        self.hist.get(depth).copied().unwrap_or(0)
    }

    /// Misses a fully-associative LRU cache holding `lines` lines would
    /// take on the observed stream (Mattson): cold references plus every
    /// reuse at depth greater than `lines`.
    pub fn misses_for_capacity(&self, lines: usize) -> u64 {
        let deep: u64 = self
            .hist
            .iter()
            .enumerate()
            .skip(lines + 1)
            .map(|(_, &c)| c)
            .sum();
        self.cold + deep
    }

    /// Miss rate of a fully-associative LRU cache of `lines` lines.
    pub fn miss_rate_for_capacity(&self, lines: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.misses_for_capacity(lines) as f64 / self.total as f64
        }
    }

    /// The full miss-rate curve over the given capacities (in lines).
    pub fn miss_rate_curve(&self, capacities: &[usize]) -> Vec<(usize, f64)> {
        capacities
            .iter()
            .map(|&c| (c, self.miss_rate_for_capacity(c)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cache, CacheGeometry};

    fn l(n: u64) -> LineAddr {
        LineAddr::new(n)
    }

    #[test]
    fn immediate_rereference_has_depth_one() {
        let mut p = StackDistanceProfile::new();
        p.observe(l(7));
        p.observe(l(7));
        assert_eq!(p.at_depth(1), 1);
        assert_eq!(p.cold_refs(), 1);
        assert_eq!(p.misses_for_capacity(1), 1);
    }

    #[test]
    fn cyclic_stream_depths() {
        let mut p = StackDistanceProfile::new();
        for _ in 0..3 {
            for n in 0..4 {
                p.observe(l(n));
            }
        }
        // After the cold round, every reuse is at depth 4.
        assert_eq!(p.cold_refs(), 4);
        assert_eq!(p.at_depth(4), 8);
        assert_eq!(p.misses_for_capacity(4), 4);
        assert_eq!(p.misses_for_capacity(3), 12);
        assert_eq!(p.total_refs(), 12);
        assert_eq!(p.distinct_lines(), 4);
    }

    #[test]
    fn matches_fully_associative_lru_cache_for_all_sizes() {
        // The Mattson property, on a pseudo-random stream with heavy
        // reuse: profile misses == simulated FA-LRU misses, all sizes.
        let stream: Vec<u64> = (0..3000u64).map(|i| (i * 31 + i / 7) % 97).collect();
        let mut p = StackDistanceProfile::new();
        for &n in &stream {
            p.observe(l(n));
        }
        for lines in [1u64, 2, 4, 8, 16, 32, 64, 128] {
            let geom = CacheGeometry::fully_associative(lines * 16, 16).unwrap();
            let mut cache = Cache::new(geom);
            let mut misses = 0;
            for &n in &stream {
                if cache.access_line(l(n)).is_miss() {
                    misses += 1;
                }
            }
            assert_eq!(
                p.misses_for_capacity(lines as usize),
                misses,
                "capacity {lines}"
            );
        }
    }

    #[test]
    fn miss_rate_curve_is_monotone_nonincreasing() {
        let stream: Vec<u64> = (0..2000u64).map(|i| (i * 13) % 211).collect();
        let mut p = StackDistanceProfile::new();
        for &n in &stream {
            p.observe(l(n));
        }
        let caps: Vec<usize> = (0..10).map(|i| 1 << i).collect();
        let curve = p.miss_rate_curve(&caps);
        for w in curve.windows(2) {
            assert!(w[1].1 <= w[0].1 + 1e-12, "{curve:?}");
        }
        // Very large capacity leaves only compulsory misses.
        let last = curve.last().unwrap().1;
        assert!((last - p.cold_refs() as f64 / p.total_refs() as f64).abs() < 1e-12);
    }

    #[test]
    fn with_capacity_is_identical_and_never_regrows() {
        let stream: Vec<u64> = (0..2000u64).map(|i| (i * 31 + i / 7) % 97).collect();
        let mut plain = StackDistanceProfile::new();
        let mut hinted = StackDistanceProfile::with_capacity(stream.len());
        let initial_len = hinted.marks.raw.len();
        assert!(initial_len > stream.len());
        for &n in &stream {
            plain.observe(l(n));
            hinted.observe(l(n));
        }
        assert_eq!(hinted.marks.raw.len(), initial_len, "hinted tree regrew");
        for cap in [1usize, 3, 8, 50, 97, 200] {
            assert_eq!(
                plain.misses_for_capacity(cap),
                hinted.misses_for_capacity(cap),
                "capacity {cap}"
            );
        }
        assert_eq!(plain.cold_refs(), hinted.cold_refs());
        // Under-hinting stays correct by falling back to growth.
        let mut tiny = StackDistanceProfile::with_capacity(4);
        for &n in &stream {
            tiny.observe(l(n));
        }
        assert_eq!(tiny.misses_for_capacity(50), plain.misses_for_capacity(50));
    }

    #[test]
    fn empty_profile_is_all_zero() {
        let p = StackDistanceProfile::new();
        assert_eq!(p.total_refs(), 0);
        assert_eq!(p.miss_rate_for_capacity(4), 0.0);
        assert_eq!(p.at_depth(3), 0);
    }
}
