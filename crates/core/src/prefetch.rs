//! Classical prefetch techniques (Smith), used as baselines in §4.
//!
//! The paper contrasts stream buffers with three earlier hardware prefetch
//! schemes that place prefetched lines *directly in the cache*:
//!
//! * **prefetch always** — every reference prefetches the successor line;
//! * **prefetch on miss** — each demand miss also fetches the next line;
//! * **tagged prefetch** — each line carries a tag bit, cleared when the
//!   line is prefetched and set on first use; the zero-to-one transition
//!   prefetches the successor.
//!
//! [`PrefetchSimulator`] models all three over a direct-mapped cache and
//! records the *lead time* of every useful prefetch — how many instruction
//! issues elapse between issuing a prefetch and the first demand for the
//! line. Figure 4-1 of the paper plots exactly this distribution for
//! `ccom` to show why prefetching into the cache cannot keep up with a
//! fast machine: most prefetched lines are needed within a handful of
//! instruction times, far less than the 24-cycle second-level access.

use std::fmt;

use jouppi_cache::{Cache, CacheGeometry, FxHashMap};
use jouppi_trace::{Addr, LineAddr};

/// Which classical prefetch policy to simulate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PrefetchTechnique {
    /// Fetch line `n+1` on a demand miss for line `n`.
    OnMiss,
    /// Tag-bit scheme: prefetch the successor when a prefetched line is
    /// used for the first time (and on demand fetches).
    Tagged,
    /// Fetch the successor of every referenced line.
    Always,
}

impl fmt::Display for PrefetchTechnique {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            PrefetchTechnique::OnMiss => "prefetch on miss",
            PrefetchTechnique::Tagged => "tagged prefetch",
            PrefetchTechnique::Always => "prefetch always",
        };
        f.write_str(name)
    }
}

/// Counters for a [`PrefetchSimulator`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PrefetchStats {
    /// Demand references.
    pub demand_accesses: u64,
    /// Demand references that hit.
    pub demand_hits: u64,
    /// Demand references that missed (even if a prefetch was in flight).
    pub demand_misses: u64,
    /// Prefetches issued to the next level.
    pub prefetches_issued: u64,
    /// Prefetched lines that were demanded before being evicted.
    pub prefetches_used: u64,
    /// Prefetched lines evicted unused (cache pollution).
    pub prefetches_wasted: u64,
}

impl PrefetchStats {
    /// Demand miss rate; 0.0 with no accesses.
    pub fn miss_rate(&self) -> f64 {
        if self.demand_accesses == 0 {
            0.0
        } else {
            self.demand_misses as f64 / self.demand_accesses as f64
        }
    }

    /// Fraction of issued prefetches that were used; 0.0 with none issued.
    pub fn accuracy(&self) -> f64 {
        if self.prefetches_issued == 0 {
            0.0
        } else {
            self.prefetches_used as f64 / self.prefetches_issued as f64
        }
    }
}

/// A direct-mapped cache driven by one of the classical prefetch policies,
/// recording prefetch lead times.
///
/// # Examples
///
/// Tagged prefetch reduces a purely sequential stream's misses to (nearly)
/// zero, as §4 notes — *if* fetching were fast enough:
///
/// ```
/// use jouppi_cache::CacheGeometry;
/// use jouppi_core::prefetch::{PrefetchSimulator, PrefetchTechnique};
/// use jouppi_trace::LineAddr;
///
/// # fn main() -> Result<(), jouppi_cache::GeometryError> {
/// let geom = CacheGeometry::direct_mapped(4096, 16)?;
/// let mut sim = PrefetchSimulator::new(geom, PrefetchTechnique::Tagged);
/// for n in 0..1000u64 {
///     sim.access_line(LineAddr::new(n), n);
/// }
/// assert_eq!(sim.stats().demand_misses, 1); // only the cold start
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct PrefetchSimulator {
    technique: PrefetchTechnique,
    cache: Cache,
    /// Prefetched lines not yet used, with their issue times. Doubles as
    /// the cleared tag bit for `Tagged`.
    pending: FxHashMap<LineAddr, u64>,
    stats: PrefetchStats,
    lead_times: Vec<u64>,
}

impl PrefetchSimulator {
    /// Creates a simulator over an empty cache of the given geometry.
    pub fn new(geom: CacheGeometry, technique: PrefetchTechnique) -> Self {
        PrefetchSimulator {
            technique,
            cache: Cache::new(geom),
            pending: FxHashMap::default(),
            stats: PrefetchStats::default(),
            lead_times: Vec::new(),
        }
    }

    /// The policy being simulated.
    pub fn technique(&self) -> PrefetchTechnique {
        self.technique
    }

    /// Accumulated counters.
    pub fn stats(&self) -> &PrefetchStats {
        &self.stats
    }

    /// Lead times (in the caller's time unit, typically instruction
    /// issues) of every prefetch that was later demanded.
    pub fn lead_times(&self) -> &[u64] {
        &self.lead_times
    }

    /// Cumulative distribution of lead times: element `i` is the fraction
    /// of useful prefetches demanded within `i` time units of issue.
    /// Returns an empty vector if no prefetch was ever used.
    pub fn lead_time_cdf(&self, max: u64) -> Vec<f64> {
        if self.lead_times.is_empty() {
            return Vec::new();
        }
        let total = self.lead_times.len() as f64;
        (0..=max)
            .map(|bound| self.lead_times.iter().filter(|&&t| t <= bound).count() as f64 / total)
            .collect()
    }

    /// Performs a demand reference to a byte address at time `now`.
    pub fn access(&mut self, addr: Addr, now: u64) {
        self.access_line(self.cache.geometry().line_of(addr), now);
    }

    /// Performs a demand reference to a line at time `now` (a monotone
    /// counter in whatever unit lead times should be reported in).
    pub fn access_line(&mut self, line: LineAddr, now: u64) {
        self.stats.demand_accesses += 1;
        if self.cache.lookup(line) {
            self.stats.demand_hits += 1;
            // First use of a prefetched line?
            if let Some(issued) = self.pending.remove(&line) {
                self.stats.prefetches_used += 1;
                self.lead_times.push(now.saturating_sub(issued));
                if self.technique == PrefetchTechnique::Tagged {
                    self.issue(line.next(), now);
                }
            }
        } else {
            self.stats.demand_misses += 1;
            self.fill_demand(line);
            match self.technique {
                PrefetchTechnique::OnMiss | PrefetchTechnique::Tagged => {
                    self.issue(line.next(), now);
                }
                PrefetchTechnique::Always => {}
            }
        }
        if self.technique == PrefetchTechnique::Always {
            self.issue(line.next(), now);
        }
    }

    fn fill_demand(&mut self, line: LineAddr) {
        // A demand fetch of a line with a prefetch in flight still counts
        // as a miss (the data hasn't arrived); the prefetch is subsumed.
        self.pending.remove(&line);
        if let Some(victim) = self.cache.fill(line) {
            self.drop_pending(victim);
        }
    }

    fn issue(&mut self, line: LineAddr, now: u64) {
        if self.cache.probe(line) {
            return; // already resident (or already prefetched)
        }
        self.stats.prefetches_issued += 1;
        if let Some(victim) = self.cache.fill(line) {
            self.drop_pending(victim);
        }
        self.pending.insert(line, now);
    }

    fn drop_pending(&mut self, victim: LineAddr) {
        if self.pending.remove(&victim).is_some() {
            self.stats.prefetches_wasted += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> CacheGeometry {
        CacheGeometry::direct_mapped(4096, 16).unwrap()
    }

    fn l(n: u64) -> LineAddr {
        LineAddr::new(n)
    }

    fn run_sequential(technique: PrefetchTechnique, n: u64) -> PrefetchStats {
        let mut sim = PrefetchSimulator::new(geom(), technique);
        for i in 0..n {
            sim.access_line(l(i), i);
        }
        *sim.stats()
    }

    #[test]
    fn on_miss_halves_sequential_misses() {
        let s = run_sequential(PrefetchTechnique::OnMiss, 1000);
        // §4: "It can cut the number of misses for a purely sequential
        // reference stream in half."
        assert_eq!(s.demand_misses, 500);
    }

    #[test]
    fn tagged_eliminates_sequential_misses() {
        let s = run_sequential(PrefetchTechnique::Tagged, 1000);
        // §4: "This can reduce the number of misses in a purely sequential
        // reference stream to zero, if fetching is fast enough."
        assert_eq!(s.demand_misses, 1);
    }

    #[test]
    fn always_eliminates_sequential_misses() {
        let s = run_sequential(PrefetchTechnique::Always, 1000);
        assert_eq!(s.demand_misses, 1);
        // ...at the cost of issuing a prefetch per line.
        assert!(s.prefetches_issued >= 999);
    }

    #[test]
    fn lead_times_measure_issue_to_use_gap() {
        let mut sim = PrefetchSimulator::new(geom(), PrefetchTechnique::OnMiss);
        sim.access_line(l(0), 100); // miss; prefetch of line 1 issued at t=100
        sim.access_line(l(1), 104); // used 4 units later
        assert_eq!(sim.lead_times(), &[4]);
        let cdf = sim.lead_time_cdf(8);
        assert_eq!(cdf.len(), 9);
        assert_eq!(cdf[3], 0.0);
        assert_eq!(cdf[4], 1.0);
        assert_eq!(cdf[8], 1.0);
    }

    #[test]
    fn empty_cdf_when_no_useful_prefetches() {
        let sim = PrefetchSimulator::new(geom(), PrefetchTechnique::OnMiss);
        assert!(sim.lead_time_cdf(10).is_empty());
        assert_eq!(sim.stats().miss_rate(), 0.0);
        assert_eq!(sim.stats().accuracy(), 0.0);
    }

    #[test]
    fn wasted_prefetches_are_counted_on_eviction() {
        let mut sim = PrefetchSimulator::new(geom(), PrefetchTechnique::OnMiss);
        // Miss on line 0 prefetches line 1. Then conflict-evict line 1 via
        // line 257 (257 % 256 == 1) without ever using it.
        sim.access_line(l(0), 0);
        sim.access_line(l(257), 1);
        assert_eq!(sim.stats().prefetches_wasted, 1);
        assert_eq!(sim.stats().prefetches_used, 0);
    }

    #[test]
    fn accuracy_reflects_used_fraction() {
        let mut sim = PrefetchSimulator::new(geom(), PrefetchTechnique::OnMiss);
        for i in 0..100 {
            sim.access_line(l(i), i);
        }
        let s = sim.stats();
        assert!(s.accuracy() > 0.9, "sequential stream: {:?}", s);
    }

    #[test]
    fn demand_fetch_subsumes_inflight_prefetch() {
        let mut sim = PrefetchSimulator::new(geom(), PrefetchTechnique::OnMiss);
        sim.access_line(l(0), 0); // prefetches 1
                                  // Evict line 1's frame? No — fill_demand when line 1 misses…
                                  // Actually line 1 is resident (functional model). Force the
                                  // "prefetched then demanded" path with Always and a strided ref:
        let mut sim2 = PrefetchSimulator::new(geom(), PrefetchTechnique::Always);
        sim2.access_line(l(0), 0); // prefetch 1
        sim2.access_line(l(1), 1); // hit; used
        assert_eq!(sim2.stats().prefetches_used, 1);
        let _ = sim;
    }

    #[test]
    fn pollution_can_cause_extra_misses() {
        // Prefetching into the cache evicts useful data: alternate between
        // line n and its conflict partner n+256 so each prefetch of n+1
        // lands on a set about to be needed… construct a simple case where
        // prefetch-always misses more than no-prefetch.
        let mut plain = Cache::new(geom());
        let mut pf = PrefetchSimulator::new(geom(), PrefetchTechnique::Always);
        // Pattern: 0, 256, 1, 257, ... each prefetch of (x+1) collides with
        // the upcoming (x+1+256) or vice versa.
        let mut plain_misses = 0;
        let mut t = 0;
        for round in 0..50u64 {
            for &base in &[0u64, 256] {
                let line = l(base + round % 8);
                if plain.access_line(line).is_miss() {
                    plain_misses += 1;
                }
                pf.access_line(line, t);
                t += 1;
            }
        }
        // Not asserting strict inequality universally — just that the
        // simulator tracks pollution (wasted prefetches exist here).
        assert!(pf.stats().prefetches_wasted > 0);
        let _ = plain_misses;
    }

    #[test]
    fn display_names() {
        assert_eq!(PrefetchTechnique::OnMiss.to_string(), "prefetch on miss");
        assert_eq!(PrefetchTechnique::Tagged.to_string(), "tagged prefetch");
        assert_eq!(PrefetchTechnique::Always.to_string(), "prefetch always");
    }

    #[test]
    fn byte_address_entry_point() {
        let mut sim = PrefetchSimulator::new(geom(), PrefetchTechnique::Tagged);
        sim.access(Addr::new(0x0), 0);
        sim.access(Addr::new(0x8), 1); // same line: hit
        assert_eq!(sim.stats().demand_hits, 1);
        assert_eq!(sim.technique(), PrefetchTechnique::Tagged);
    }
}
