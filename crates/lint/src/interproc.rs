//! The four interprocedural analyses riding the workspace call graph.
//!
//! All four follow the repo's conservatism stance — **fail toward false
//! negatives**: only resolved (non-ambiguous) call edges are traversed,
//! and constructs with a documented contract are accepted.
//!
//! * **panic-reachability** — every non-test function in `jouppi-serve`
//!   is a request-handling entrypoint; no function transitively
//!   reachable from one may contain an undocumented panic site
//!   (`panic!`/`todo!`/`unimplemented!`/`unreachable!` macro or a bare
//!   `.unwrap()`). `.expect("message")` is a documented invariant and is
//!   accepted — the serve-local `serve-panic` lint still bans it inside
//!   the crate itself.
//! * **transitive purity** — from the cache-keyed simulate path (serve
//!   functions named `simulate` or `run_named_engine`), no reachable
//!   function may touch ambient time, randomness, environment,
//!   filesystem, or default-hasher collections: the result cache
//!   memoizes on (organization, workload, scale, seed) alone, so any
//!   ambient input would poison cached documents.
//! * **untrusted-size taint** — integers parsed out of request bodies
//!   (`get_u64`/`get_usize`/`.as_u64()`/`.as_i64()` in serve) must be
//!   bounds-checked (`min`/`clamp`/`try_from` or an `if` comparison)
//!   before flowing into `with_capacity`/`reserve`/`vec![_; n]` — also
//!   when the flow passes through calls, via per-function parameter
//!   summaries folded to a fixpoint.
//! * **lock-held-across-call** — a call made while a `MutexGuard` is
//!   live, whose callee *transitively* reaches a blocking construct
//!   (`recv`, 0-argument `join`/`wait`, `thread::sleep`, …), convoys
//!   every thread behind the lock just like a direct blocking call.

use std::collections::BTreeSet;
use std::time::{Duration, Instant};

use crate::analyses::{is_blocking_method, is_blocking_path, GuardedCall};
use crate::callgraph::{call_sites, path_to, reach_forward, reaches_backward, CallGraph, Callee};
use crate::lint::{Finding, LintId};
use crate::parser::{Block, Expr, Root, Step, Stmt};

/// What the interprocedural pass produces: findings routed to graph
/// file indexes, plus per-analysis timings.
#[derive(Debug, Default)]
pub struct InterprocOutput {
    /// `(graph file index, finding)` pairs.
    pub findings: Vec<(usize, Finding)>,
    /// Wall-clock cost per analysis.
    pub timings: Vec<(&'static str, Duration)>,
}

/// The crate whose public functions are request-handling entrypoints.
const ENTRY_CRATE: &str = "serve";

/// Serve functions forming the cache-keyed simulate path.
const PURITY_ENTRIES: [&str; 2] = ["simulate", "run_named_engine"];

/// Runs the four analyses. `active` and `guarded_calls` are parallel to
/// the graph's file list: which lints policy activates per file, and the
/// calls captured under live guards per file.
pub fn run(
    graph: &CallGraph<'_>,
    active: &[Vec<LintId>],
    guarded_calls: &[Vec<GuardedCall>],
) -> InterprocOutput {
    let mut out = InterprocOutput::default();
    let t0 = Instant::now();
    let facts: Vec<NodeFacts> = (0..graph.nodes.len())
        .map(|n| NodeFacts::of(graph, n))
        .collect();
    out.timings.push(("interproc-facts", t0.elapsed()));

    let wants = |file: usize, lint: LintId| active.get(file).is_some_and(|a| a.contains(&lint));

    // --- panic-reachability -------------------------------------------
    let t0 = Instant::now();
    let entries: Vec<usize> = (0..graph.nodes.len())
        .filter(|&n| graph.files[graph.nodes[n].file].crate_name == ENTRY_CRATE)
        .collect();
    let parent = reach_forward(graph, &entries);
    for (n, facts_n) in facts.iter().enumerate() {
        let Some((line, what)) = &facts_n.panic_site else {
            continue;
        };
        if parent[n] == usize::MAX || !wants(graph.nodes[n].file, LintId::PanicReachability) {
            continue;
        }
        out.findings.push((
            graph.nodes[n].file,
            Finding {
                line: *line,
                lint: LintId::PanicReachability,
                message: format!(
                    "undocumented panic site `{what}` reachable from serve entrypoints \
                     via {} — return an error (or .expect(\"…\") a stated invariant)",
                    call_path(graph, &parent, n)
                ),
            },
        ));
    }
    out.timings.push(("panic-reachability", t0.elapsed()));

    // --- transitive purity --------------------------------------------
    let t0 = Instant::now();
    let entries: Vec<usize> = (0..graph.nodes.len())
        .filter(|&n| {
            graph.files[graph.nodes[n].file].crate_name == ENTRY_CRATE
                && PURITY_ENTRIES.contains(&graph.nodes[n].decl.name.as_str())
        })
        .collect();
    let parent = reach_forward(graph, &entries);
    for (n, facts_n) in facts.iter().enumerate() {
        let Some((line, what)) = &facts_n.impure_site else {
            continue;
        };
        if parent[n] == usize::MAX || !wants(graph.nodes[n].file, LintId::TransitivePurity) {
            continue;
        }
        out.findings.push((
            graph.nodes[n].file,
            Finding {
                line: *line,
                lint: LintId::TransitivePurity,
                message: format!(
                    "ambient source `{what}` reachable from the cache-keyed simulate \
                     path via {} — cached results must depend only on \
                     (organization, workload, scale, seed)",
                    call_path(graph, &parent, n)
                ),
            },
        ));
    }
    out.timings.push(("transitive-purity", t0.elapsed()));

    // --- untrusted-size taint -----------------------------------------
    let t0 = Instant::now();
    taint(graph, &wants, &mut out.findings);
    out.timings.push(("untrusted-size-taint", t0.elapsed()));

    // --- lock-held-across-call ----------------------------------------
    let t0 = Instant::now();
    let seeds: Vec<bool> = facts.iter().map(|f| f.direct_blocking).collect();
    let blocking = reaches_backward(graph, &seeds);
    for (file, calls) in guarded_calls.iter().enumerate() {
        if !wants(file, LintId::LockHeldAcrossCall) {
            continue;
        }
        let mut seen: BTreeSet<(u32, usize)> = BTreeSet::new();
        for gc in calls {
            let Some(caller) = graph.node_at(file, gc.fn_line) else {
                continue;
            };
            let Some(target) = graph.resolve_unique(caller, &gc.callee, gc.arity) else {
                continue;
            };
            if !blocking[target] || !seen.insert((gc.line, target)) {
                continue;
            }
            out.findings.push((
                file,
                Finding {
                    line: gc.line,
                    lint: LintId::LockHeldAcrossCall,
                    message: format!(
                        "call to `{}` while guard of `{}` is live — the callee \
                         (transitively) blocks; drop the guard before the call",
                        graph.label(target),
                        gc.held
                    ),
                },
            ));
        }
    }
    out.timings.push(("lock-held-across-call", t0.elapsed()));

    out
}

/// Renders an entry → … → node call path from a predecessor array.
fn call_path(graph: &CallGraph<'_>, parent: &[usize], node: usize) -> String {
    path_to(parent, node)
        .iter()
        .map(|&i| graph.label(i))
        .collect::<Vec<_>>()
        .join(" → ")
}

/// Per-node facts the reachability analyses consume.
struct NodeFacts {
    /// First undocumented panic site, if any.
    panic_site: Option<(u32, String)>,
    /// First ambient (time/RNG/env/fs/default-hasher) site, if any.
    impure_site: Option<(u32, String)>,
    /// Whether the body directly contains a blocking construct.
    direct_blocking: bool,
}

impl NodeFacts {
    fn of(graph: &CallGraph<'_>, n: usize) -> NodeFacts {
        let mut facts = NodeFacts {
            panic_site: None,
            impure_site: None,
            direct_blocking: false,
        };
        let Some(body) = graph.nodes[n].body else {
            return facts;
        };
        for site in call_sites(body) {
            if facts.direct_blocking {
                break;
            }
            facts.direct_blocking = match &site.callee {
                Callee::Method { name, .. } => is_blocking_method(name, site.arity),
                Callee::Path(path) => is_blocking_path(path),
            };
        }
        for_each_expr(body, &mut |e| match e {
            Expr::Macro { name, line, .. }
                if facts.panic_site.is_none()
                    && matches!(
                        name.as_str(),
                        "panic" | "todo" | "unimplemented" | "unreachable"
                    ) =>
            {
                facts.panic_site = Some((*line, format!("{name}!")));
            }
            Expr::Chain(chain) => {
                for step in &chain.steps {
                    if let Step::Method { name, args, line } = step {
                        if name == "unwrap" && args.is_empty() && facts.panic_site.is_none() {
                            facts.panic_site = Some((*line, ".unwrap()".to_owned()));
                        }
                    }
                }
                if facts.impure_site.is_none() {
                    if let Root::Path(path) = &chain.root {
                        if let Some(what) = impure_path(path) {
                            facts.impure_site = Some((chain.line, what));
                        }
                    }
                }
            }
            _ => {}
        });
        facts
    }
}

/// Ambient type/function names whose mere mention in a call path is an
/// impurity (mirrors the per-file determinism lints).
const IMPURE_SEGMENTS: [&str; 10] = [
    "Instant",
    "SystemTime",
    "UNIX_EPOCH",
    "RandomState",
    "DefaultHasher",
    "OsRng",
    "StdRng",
    "thread_rng",
    "from_entropy",
    "getrandom",
];

/// Whether a path expression is an ambient (impure) source; returns a
/// human label when it is.
fn impure_path(path: &[String]) -> Option<String> {
    for (i, seg) in path.iter().enumerate() {
        if IMPURE_SEGMENTS.contains(&seg.as_str()) {
            return Some(seg.clone());
        }
        let next = path.get(i + 1).map(String::as_str);
        match (seg.as_str(), next) {
            ("env", Some(v)) if v.starts_with("var") => return Some(format!("env::{v}")),
            ("fs", Some(f)) => return Some(format!("fs::{f}")),
            ("File", Some(m @ ("open" | "create" | "options"))) => {
                return Some(format!("File::{m}"))
            }
            (h @ ("HashMap" | "HashSet"), Some(c @ ("new" | "with_capacity" | "default"))) => {
                return Some(format!("{h}::{c}"))
            }
            _ => {}
        }
    }
    None
}

/// Calls `f` on every expression in the block, pre-order, including
/// chain arguments, closure bodies, and macro arguments.
fn for_each_expr(block: &Block, f: &mut impl FnMut(&Expr)) {
    for stmt in &block.stmts {
        match stmt {
            Stmt::Let(l) => {
                if let Some(init) = &l.init {
                    visit(init, f);
                }
                if let Some(b) = &l.else_block {
                    for_each_expr(b, f);
                }
            }
            Stmt::Expr(e) => visit(e, f),
            Stmt::Item(_) => {}
        }
    }
}

fn visit(expr: &Expr, f: &mut impl FnMut(&Expr)) {
    f(expr);
    match expr {
        Expr::Chain(chain) => {
            if let Root::Grouped(inner) = &chain.root {
                visit(inner, f);
            }
            for step in &chain.steps {
                match step {
                    Step::Method { args, .. } | Step::Call { args, .. } => {
                        for a in args {
                            visit(a, f);
                        }
                    }
                    Step::Index(inner, _) => visit(inner, f),
                    Step::Field(_, _) | Step::Try(_) => {}
                }
            }
        }
        Expr::Block(b) => for_each_expr(b, f),
        Expr::If {
            cond,
            then_block,
            else_branch,
        } => {
            visit(cond, f);
            for_each_expr(then_block, f);
            if let Some(e) = else_branch {
                visit(e, f);
            }
        }
        Expr::While { cond, body } => {
            visit(cond, f);
            for_each_expr(body, f);
        }
        Expr::Loop { body } => for_each_expr(body, f),
        Expr::For { iter, body } => {
            visit(iter, f);
            for_each_expr(body, f);
        }
        Expr::Match {
            scrutinee, arms, ..
        } => {
            visit(scrutinee, f);
            for a in arms {
                visit(a, f);
            }
        }
        Expr::Closure { body, .. } => visit(body, f),
        Expr::Cast { inner, .. } => visit(inner, f),
        Expr::Macro { args, .. } => {
            for a in args {
                visit(a, f);
            }
        }
        Expr::Group(children) => {
            for c in children {
                visit(c, f);
            }
        }
        Expr::Lit(_) | Expr::Unit(_) => {}
    }
}

// -------------------------------------------------------------------
// Untrusted-size taint
// -------------------------------------------------------------------

/// Methods/functions whose integer result is request-derived.
const TAINT_SOURCES: [&str; 5] = ["get_u64", "get_usize", "as_u64", "as_i64", "as_usize"];

/// Chain steps/paths that bound a value (make it trusted).
const GUARD_FNS: [&str; 6] = [
    "min",
    "clamp",
    "try_from",
    "checked_mul",
    "checked_add",
    "saturating_sub",
];

/// Allocation sinks taking a size argument.
const ALLOC_SINKS: [&str; 3] = ["with_capacity", "reserve", "reserve_exact"];

/// Taint-relevant facts of one function body.
#[derive(Default)]
struct TaintFacts {
    /// Names bounds-checked somewhere in the body (`if` conditions,
    /// `min`/`clamp`/`try_from`/checked-arithmetic uses).
    guarded: BTreeSet<String>,
    /// Alloc sinks: `(line, sink name, identifiers in its arguments)`.
    sinks: Vec<(u32, String, Vec<String>)>,
    /// Resolved workspace calls: `(line, target node, idents per arg)`.
    calls: Vec<(u32, usize, Vec<Vec<String>>)>,
    /// Request-derived local names (serve sources only).
    tainted: BTreeSet<String>,
}

fn taint(
    graph: &CallGraph<'_>,
    wants: &impl Fn(usize, LintId) -> bool,
    findings: &mut Vec<(usize, Finding)>,
) {
    let tf: Vec<TaintFacts> = (0..graph.nodes.len())
        .map(|n| taint_facts(graph, n))
        .collect();

    // Parameter summaries to a fixpoint: which parameter indices reach
    // an alloc sink unguarded, possibly through further calls.
    let mut sink_params: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); graph.nodes.len()];
    loop {
        let mut changed = false;
        for n in 0..graph.nodes.len() {
            for (p_idx, p_name) in graph.nodes[n].decl.params.iter().enumerate() {
                if sink_params[n].contains(&p_idx) || tf[n].guarded.contains(p_name) {
                    continue;
                }
                let hits_sink = tf[n]
                    .sinks
                    .iter()
                    .any(|(_, _, idents)| idents.iter().any(|i| i == p_name));
                let hits_call = tf[n].calls.iter().any(|(_, target, args)| {
                    args.iter().enumerate().any(|(j, idents)| {
                        idents.iter().any(|i| i == p_name) && sink_params[*target].contains(&j)
                    })
                });
                if hits_sink || hits_call {
                    sink_params[n].insert(p_idx);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Findings: a tainted, unguarded name reaching a sink directly or
    // through a sink-reaching parameter — reported once per function.
    for (n, t) in tf.iter().enumerate() {
        let file = graph.nodes[n].file;
        if !wants(file, LintId::UntrustedSizeTaint) {
            continue;
        }
        let live: Vec<&String> = t.tainted.difference(&t.guarded).collect();
        if live.is_empty() {
            continue;
        }
        let mut hit: Option<(u32, String)> = None;
        for (line, sink, idents) in &t.sinks {
            if let Some(name) = live.iter().find(|name| idents.contains(name)) {
                hit = Some((
                    *line,
                    format!("request-derived `{name}` flows into `{sink}`"),
                ));
                break;
            }
        }
        if hit.is_none() {
            'calls: for (line, target, args) in &t.calls {
                for (j, idents) in args.iter().enumerate() {
                    if !sink_params[*target].contains(&j) {
                        continue;
                    }
                    if let Some(name) = live.iter().find(|name| idents.contains(name)) {
                        hit = Some((
                            *line,
                            format!(
                                "request-derived `{name}` flows into an allocation via \
                                 `{}` parameter `{}`",
                                graph.label(*target),
                                graph.nodes[*target]
                                    .decl
                                    .params
                                    .get(j)
                                    .map_or("_", String::as_str)
                            ),
                        ));
                        break 'calls;
                    }
                }
            }
        }
        if let Some((line, what)) = hit {
            findings.push((
                file,
                Finding {
                    line,
                    lint: LintId::UntrustedSizeTaint,
                    message: format!(
                        "{what} without a bounds check — an attacker-chosen length is an \
                         allocation-size DoS; cap it (min/clamp or an explicit limit) first"
                    ),
                },
            ));
        }
    }
}

/// Collects every `let` statement in a block, recursively (nested
/// blocks, branches, loops, closures included).
fn lets_in<'a>(block: &'a Block, out: &mut Vec<&'a crate::parser::LetStmt>) {
    for stmt in &block.stmts {
        match stmt {
            Stmt::Let(l) => {
                out.push(l);
                if let Some(init) = &l.init {
                    lets_in_expr(init, out);
                }
                if let Some(b) = &l.else_block {
                    lets_in(b, out);
                }
            }
            Stmt::Expr(e) => lets_in_expr(e, out),
            Stmt::Item(_) => {}
        }
    }
}

fn lets_in_expr<'a>(expr: &'a Expr, out: &mut Vec<&'a crate::parser::LetStmt>) {
    match expr {
        Expr::Block(b) => lets_in(b, out),
        Expr::If {
            cond,
            then_block,
            else_branch,
        } => {
            lets_in_expr(cond, out);
            lets_in(then_block, out);
            if let Some(e) = else_branch {
                lets_in_expr(e, out);
            }
        }
        Expr::While { cond, body } => {
            lets_in_expr(cond, out);
            lets_in(body, out);
        }
        Expr::Loop { body } => lets_in(body, out),
        Expr::For { iter, body } => {
            lets_in_expr(iter, out);
            lets_in(body, out);
        }
        Expr::Match {
            scrutinee, arms, ..
        } => {
            lets_in_expr(scrutinee, out);
            for a in arms {
                lets_in_expr(a, out);
            }
        }
        Expr::Closure { body, .. } => lets_in_expr(body, out),
        Expr::Cast { inner, .. } => lets_in_expr(inner, out),
        Expr::Macro { args, .. } | Expr::Group(args) => {
            for a in args {
                lets_in_expr(a, out);
            }
        }
        Expr::Chain(chain) => {
            if let Root::Grouped(inner) = &chain.root {
                lets_in_expr(inner, out);
            }
            for step in &chain.steps {
                match step {
                    Step::Method { args, .. } | Step::Call { args, .. } => {
                        for a in args {
                            lets_in_expr(a, out);
                        }
                    }
                    Step::Index(inner, _) => lets_in_expr(inner, out),
                    Step::Field(_, _) | Step::Try(_) => {}
                }
            }
        }
        Expr::Lit(_) | Expr::Unit(_) => {}
    }
}

/// Collects the identifiers mentioned in an expression (single lowercase
/// path segments — variables, not types or literals).
fn idents_in(expr: &Expr) -> Vec<String> {
    let mut out = Vec::new();
    visit(expr, &mut |e| {
        if let Expr::Chain(chain) = e {
            if let Root::Path(path) = &chain.root {
                for seg in path {
                    if seg.chars().next().is_some_and(char::is_lowercase) {
                        out.push(seg.clone());
                    }
                }
            }
        }
    });
    out
}

fn taint_facts(graph: &CallGraph<'_>, n: usize) -> TaintFacts {
    let mut t = TaintFacts::default();
    let Some(body) = graph.nodes[n].body else {
        return t;
    };
    let in_serve = graph.files[graph.nodes[n].file].crate_name == ENTRY_CRATE;
    collect_taint(graph, n, body, in_serve, &mut t);
    t
}

fn collect_taint(
    graph: &CallGraph<'_>,
    n: usize,
    block: &Block,
    in_serve: bool,
    t: &mut TaintFacts,
) {
    // Let bindings initialized from a request-derived source taint the
    // bound names — unless the same chain already bounds the value.
    if in_serve {
        let mut lets = Vec::new();
        lets_in(block, &mut lets);
        for l in lets {
            let Some(init) = &l.init else { continue };
            let mut sourced = false;
            let mut bounded = false;
            visit(init, &mut |e| {
                if let Expr::Chain(chain) = e {
                    if let Root::Path(path) = &chain.root {
                        if path
                            .last()
                            .is_some_and(|s| TAINT_SOURCES.contains(&s.as_str()))
                        {
                            sourced = true;
                        }
                    }
                    for step in &chain.steps {
                        if let Step::Method { name, .. } = step {
                            if TAINT_SOURCES.contains(&name.as_str()) {
                                sourced = true;
                            }
                            if GUARD_FNS.contains(&name.as_str()) {
                                bounded = true;
                            }
                        }
                    }
                }
            });
            if sourced && !bounded {
                t.tainted.extend(l.names.iter().cloned());
            }
        }
    }

    // Guards, sinks, and resolved calls — over the whole body.
    for_each_expr(block, &mut |e| match e {
        Expr::If { cond, .. } | Expr::While { cond, .. } => {
            t.guarded.extend(idents_in(cond));
        }
        Expr::Chain(chain) => {
            for (k, step) in chain.steps.iter().enumerate() {
                match step {
                    Step::Method { name, args, line } => {
                        if GUARD_FNS.contains(&name.as_str()) {
                            if let Root::Path(path) = &chain.root {
                                for seg in path {
                                    if seg.chars().next().is_some_and(char::is_lowercase) {
                                        t.guarded.insert(seg.clone());
                                    }
                                }
                            }
                            for a in args {
                                t.guarded.extend(idents_in(a));
                            }
                        }
                        if ALLOC_SINKS.contains(&name.as_str()) {
                            let idents: Vec<String> = args.iter().flat_map(idents_in).collect();
                            t.sinks.push((*line, name.clone(), idents));
                        } else {
                            let receiver = if k == 0 {
                                chain.root_path().and_then(|p| p.last().cloned())
                            } else {
                                None
                            };
                            let callee = Callee::Method {
                                receiver,
                                name: name.clone(),
                            };
                            if let Some(target) = graph.resolve_unique(n, &callee, args.len()) {
                                t.calls
                                    .push((*line, target, args.iter().map(idents_in).collect()));
                            }
                        }
                    }
                    Step::Call { args, line } => {
                        if k != 0 {
                            continue;
                        }
                        let Some(path) = chain.root_path() else {
                            continue;
                        };
                        let last = path.last().map(String::as_str).unwrap_or("");
                        if GUARD_FNS.contains(&last) {
                            for a in args {
                                t.guarded.extend(idents_in(a));
                            }
                        } else if ALLOC_SINKS.contains(&last) {
                            let idents: Vec<String> = args.iter().flat_map(idents_in).collect();
                            t.sinks.push((*line, last.to_owned(), idents));
                        } else if let Some(target) =
                            graph.resolve_unique(n, &Callee::Path(path.to_vec()), args.len())
                        {
                            t.calls
                                .push((*line, target, args.iter().map(idents_in).collect()));
                        }
                    }
                    _ => {}
                }
            }
        }
        Expr::Macro { name, args, line } if name == "vec" && args.len() == 2 => {
            // The parser flattens `vec![elem; count]` and `vec![a, b]` to
            // the same two-arg shape; only the second position can be a
            // repeat count, so only its identifiers are sink inputs. A
            // two-element list whose second element is request-derived is
            // the (accepted) false-positive residue.
            let idents = idents_in(&args[1]);
            if !idents.is_empty() {
                t.sinks.push((*line, "vec![_; n]".to_owned(), idents));
            }
        }
        _ => {}
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::{build, GraphFile};
    use crate::lexer::lex;
    use crate::parser::{parse, Ast};
    use crate::policy::classify;

    fn run_on(files: &[(&str, &str)]) -> Vec<(String, Finding)> {
        let asts: Vec<(String, Ast)> = files
            .iter()
            .map(|(p, s)| ((*p).to_owned(), parse(&lex(s))))
            .collect();
        let ctxs: Vec<crate::policy::FileContext> = asts
            .iter()
            .map(|(p, _)| classify(p).expect("classifiable"))
            .collect();
        let inputs: Vec<GraphFile<'_>> = asts
            .iter()
            .zip(ctxs.iter())
            .map(|((_, ast), ctx)| GraphFile {
                ctx,
                ast,
                test_ranges: &[],
            })
            .collect();
        let graph = build(&inputs);
        let all: Vec<Vec<LintId>> = files
            .iter()
            .map(|_| {
                vec![
                    LintId::PanicReachability,
                    LintId::TransitivePurity,
                    LintId::UntrustedSizeTaint,
                    LintId::LockHeldAcrossCall,
                ]
            })
            .collect();
        let guarded: Vec<Vec<GuardedCall>> = files.iter().map(|_| Vec::new()).collect();
        let out = run(&graph, &all, &guarded);
        out.findings
            .into_iter()
            .map(|(i, f)| (files[i].0.to_owned(), f))
            .collect()
    }

    fn lints(findings: &[(String, Finding)], lint: LintId) -> Vec<(String, u32)> {
        findings
            .iter()
            .filter(|(_, f)| f.lint == lint)
            .map(|(p, f)| (p.clone(), f.line))
            .collect()
    }

    #[test]
    fn panic_three_calls_deep_is_reachable_from_serve() {
        let findings = run_on(&[
            (
                "crates/serve/src/routes.rs",
                "use jouppi_core::enter;\nfn handler() { enter(); }\n",
            ),
            (
                "crates/core/src/lib.rs",
                "pub fn enter() { middle(); }\nfn middle() { deep(); }\n\
                 fn deep() { panic!(\"boom\"); }\n",
            ),
        ]);
        let hits = lints(&findings, LintId::PanicReachability);
        assert_eq!(hits, [("crates/core/src/lib.rs".to_owned(), 3)]);
        let msg = &findings
            .iter()
            .find(|(_, f)| f.lint == LintId::PanicReachability)
            .expect("finding")
            .1
            .message;
        assert!(
            msg.contains("serve::handler"),
            "call path in message: {msg}"
        );
    }

    #[test]
    fn expect_is_a_documented_contract_not_a_panic_site() {
        let findings = run_on(&[
            (
                "crates/serve/src/routes.rs",
                "use jouppi_core::enter;\nfn handler() { enter(); }\n",
            ),
            (
                "crates/core/src/lib.rs",
                "pub fn enter() { let x: Option<u8> = None; \
                 let _y = x.expect(\"validated at construction\"); }\n",
            ),
        ]);
        assert!(lints(&findings, LintId::PanicReachability).is_empty());
    }

    #[test]
    fn unreached_panic_is_not_flagged() {
        let findings = run_on(&[
            ("crates/serve/src/routes.rs", "fn handler() {}\n"),
            (
                "crates/core/src/lib.rs",
                "pub fn island() { let x: Option<u8> = None; let _ = x.unwrap(); }\n",
            ),
        ]);
        assert!(lints(&findings, LintId::PanicReachability).is_empty());
    }

    #[test]
    fn system_time_behind_helper_breaks_purity() {
        let findings = run_on(&[
            (
                "crates/serve/src/sim.rs",
                "use crate::stamp::stamp;\nfn simulate() { let _t = stamp(); }\n",
            ),
            (
                "crates/serve/src/stamp.rs",
                "pub fn stamp() -> u64 { SystemTime::now(); 0 }\n",
            ),
        ]);
        let hits = lints(&findings, LintId::TransitivePurity);
        assert_eq!(hits, [("crates/serve/src/stamp.rs".to_owned(), 1)]);
    }

    #[test]
    fn purity_only_checks_the_simulate_path() {
        // The same helper reached from a non-simulate fn is fine.
        let findings = run_on(&[
            (
                "crates/serve/src/metrics.rs",
                "use crate::stamp::stamp;\nfn render_metrics() { let _t = stamp(); }\n",
            ),
            (
                "crates/serve/src/stamp.rs",
                "pub fn stamp() -> u64 { SystemTime::now(); 0 }\n",
            ),
        ]);
        assert!(lints(&findings, LintId::TransitivePurity).is_empty());
    }

    #[test]
    fn unchecked_request_length_reaching_with_capacity_is_tainted() {
        let findings = run_on(&[(
            "crates/serve/src/sim.rs",
            "fn simulate(obj: &Json) {\n\
                 let depth = get_u64(obj, \"depth\");\n\
                 let v: Vec<u8> = Vec::with_capacity(depth);\n\
             }\n\
             fn get_u64(obj: &Json, key: &str) -> usize { 0 }\n",
        )]);
        let hits = lints(&findings, LintId::UntrustedSizeTaint);
        assert_eq!(hits, [("crates/serve/src/sim.rs".to_owned(), 3)]);
    }

    #[test]
    fn bounds_checked_length_is_clean() {
        for guarded in [
            // .min() cap on the source chain
            "fn simulate(obj: &Json) {\n\
                 let depth = get_u64(obj, \"depth\").min(64);\n\
                 let v: Vec<u8> = Vec::with_capacity(depth);\n\
             }\n\
             fn get_u64(obj: &Json, key: &str) -> usize { 0 }\n",
            // explicit if comparison
            "fn simulate(obj: &Json) {\n\
                 let depth = get_u64(obj, \"depth\");\n\
                 if depth > 64 { return; }\n\
                 let v: Vec<u8> = Vec::with_capacity(depth);\n\
             }\n\
             fn get_u64(obj: &Json, key: &str) -> usize { 0 }\n",
        ] {
            let findings = run_on(&[("crates/serve/src/sim.rs", guarded)]);
            assert!(
                lints(&findings, LintId::UntrustedSizeTaint).is_empty(),
                "guarded variant flagged:\n{guarded}"
            );
        }
    }

    #[test]
    fn taint_flows_through_a_callee_parameter() {
        let findings = run_on(&[
            (
                "crates/serve/src/sim.rs",
                "use jouppi_core::build_table;\n\
                 fn simulate(obj: &Json) {\n\
                     let depth = get_u64(obj, \"depth\");\n\
                     build_table(depth);\n\
                 }\n\
                 fn get_u64(obj: &Json, key: &str) -> usize { 0 }\n",
            ),
            (
                "crates/core/src/lib.rs",
                "pub fn build_table(rows: usize) -> Vec<u64> { Vec::with_capacity(rows) }\n",
            ),
        ]);
        let hits = lints(&findings, LintId::UntrustedSizeTaint);
        assert_eq!(hits, [("crates/serve/src/sim.rs".to_owned(), 4)]);
    }

    #[test]
    fn lock_held_across_transitively_blocking_call() {
        let asts: Vec<(String, Ast)> = [(
            "crates/serve/src/worker.rs",
            "fn tick(q: &Mutex<u8>) { let g = q.lock(); drain_jobs(); }\n\
                 fn drain_jobs() { wait_for_result(); }\n\
                 fn wait_for_result() { let rx: Receiver<u8> = todo_rx(); rx.recv(); }\n",
        )]
        .iter()
        .map(|(p, s)| ((*p).to_owned(), parse(&lex(s))))
        .collect();
        let ctxs: Vec<crate::policy::FileContext> = asts
            .iter()
            .map(|(p, _)| classify(p).expect("classifiable"))
            .collect();
        let inputs: Vec<GraphFile<'_>> = asts
            .iter()
            .zip(ctxs.iter())
            .map(|((_, ast), ctx)| GraphFile {
                ctx,
                ast,
                test_ranges: &[],
            })
            .collect();
        let graph = build(&inputs);
        let active = vec![vec![LintId::LockHeldAcrossCall]];
        // What GuardScan would capture: drain_jobs() called in tick with
        // the q guard live.
        let guarded = vec![vec![GuardedCall {
            in_fn: "tick".to_owned(),
            fn_line: 1,
            callee: Callee::Path(vec!["drain_jobs".to_owned()]),
            arity: 0,
            line: 1,
            held: "q".to_owned(),
        }]];
        let out = run(&graph, &active, &guarded);
        let hits: Vec<&Finding> = out
            .findings
            .iter()
            .filter(|(_, f)| f.lint == LintId::LockHeldAcrossCall)
            .map(|(_, f)| f)
            .collect();
        assert_eq!(hits.len(), 1);
        assert!(hits[0].message.contains("drain_jobs"));
    }
}
