//! Replacement policies for set-associative caches.
//!
//! The `Random` policy draws from [`jouppi_trace::SmallRng`], the
//! workspace-wide deterministic PRNG, so simulations stay reproducible
//! for a given seed without any external dependency.

use std::fmt;

/// Which resident line a set evicts when a new line must be brought in.
///
/// The paper's caches are direct-mapped (where replacement is trivial), and
/// its fully-associative miss/victim caches use LRU; FIFO and a seeded
/// pseudo-random policy are provided for ablation experiments.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum ReplacementPolicy {
    /// Evict the least-recently-used line (exact LRU).
    #[default]
    Lru,
    /// Evict the line that has been resident longest, ignoring use.
    Fifo,
    /// Evict a pseudo-random line (deterministic seeded sequence).
    Random,
}

impl fmt::Display for ReplacementPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ReplacementPolicy::Lru => "LRU",
            ReplacementPolicy::Fifo => "FIFO",
            ReplacementPolicy::Random => "random",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names() {
        assert_eq!(ReplacementPolicy::Lru.to_string(), "LRU");
        assert_eq!(ReplacementPolicy::Fifo.to_string(), "FIFO");
        assert_eq!(ReplacementPolicy::Random.to_string(), "random");
    }

    #[test]
    fn default_is_lru() {
        assert_eq!(ReplacementPolicy::default(), ReplacementPolicy::Lru);
    }
}
