//! Content-addressed result cache with singleflight coalescing.
//!
//! Every simulation this daemon serves is a pure function of its request
//! parameters — the lint suite enforces that purity — so `/v1/simulate`
//! and `/v1/sweep` responses can be memoized and deduplicated. This is
//! the paper's thesis turned on the service layer: a small
//! fully-associative cache in front of an expensive backing store
//! removes most misses, and skewed (Zipf) reuse makes a small cache
//! disproportionately effective.
//!
//! Three pieces:
//!
//! * **Content keys** — request bodies are canonicalized with
//!   [`Json::encode_canonical`] (object keys sorted recursively, so key
//!   order never splits the cache) and hashed into a 128-bit [`Key`] by
//!   two independently-seeded [`FxHasher`] lanes, domain-separated per
//!   endpoint.
//! * **Memoization** — completed result documents live in a bounded
//!   [`LruMap`] (the capacity-switched design of
//!   `crates/cache/src/lru.rs`), shared behind one mutex. Entries are
//!   `Arc<Json>`, so a hit clones a pointer, never the document.
//! * **Singleflight** — the first requester for a missing key becomes
//!   the *leader* and computes; concurrent requesters for the same key
//!   block on a shared [`Flight`] slot (`Mutex` + `Condvar`, std-only)
//!   and receive the leader's document. The handoff is panic-safe: the
//!   leader holds an RAII [`LeaderGuard`] whose `Drop` marks the flight
//!   abandoned and wakes every waiter, and woken waiters loop back into
//!   [`ResultCache::begin`] to re-elect a new leader. A failed or
//!   panicking leader therefore never strands a herd.
//!
//! Lock discipline: the cache-wide mutex and each flight's mutex are
//! never held at the same time — `begin`/`finish` drop the cache lock
//! before touching a flight, so there is no order to get wrong.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use jouppi_cache::{Displaced, FxHashMap, FxHasher, LruMap};

use crate::json::Json;

/// How the server-wide cache behaves (`cache: {mode}` in the config).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CacheMode {
    /// Full caching: lookups, singleflight coalescing, and stores.
    #[default]
    On,
    /// The cache does not exist: no lookups, no stores, no headers.
    Off,
    /// Every request acts as if it carried the per-request bypass knob:
    /// compute fresh, store nothing, report `x-jouppi-cache: bypass`.
    Bypass,
}

impl CacheMode {
    /// Parses the wire/flag spelling (`on`, `off`, `bypass`).
    pub fn parse(text: &str) -> Option<CacheMode> {
        match text {
            "on" => Some(CacheMode::On),
            "off" => Some(CacheMode::Off),
            "bypass" => Some(CacheMode::Bypass),
            _ => None,
        }
    }

    /// The mode's flag spelling.
    pub fn label(self) -> &'static str {
        match self {
            CacheMode::On => "on",
            CacheMode::Off => "off",
            CacheMode::Bypass => "bypass",
        }
    }
}

/// Result-cache configuration (part of the server config).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Whether the cache serves, bypasses, or is disabled.
    pub mode: CacheMode,
    /// Maximum memoized result documents.
    pub capacity: usize,
}

impl Default for CacheConfig {
    /// Caching on, 256 memoized results.
    fn default() -> Self {
        CacheConfig {
            mode: CacheMode::On,
            capacity: 256,
        }
    }
}

/// Domain-separation tags for the two hash lanes; arbitrary distinct
/// odd constants so the lanes never collapse onto each other.
const LANE_LO: u64 = 0x6a6f_7570_7069_3031; // "jouppi01"
const LANE_HI: u64 = 0x6a6f_7570_7069_3032; // "jouppi02"

/// A 128-bit content key: two independent FxHash lanes over the
/// endpoint name and the canonical request text.
#[derive(Clone, Copy, Debug, Hash, PartialEq, Eq)]
pub struct Key(u128);

/// Hashes `(endpoint, body)` into a content key. Bodies that differ
/// only in object key order hash identically; different endpoints are
/// domain-separated so `/v1/simulate` and `/v1/sweep` never collide.
pub fn content_key(endpoint: &str, body: &Json) -> Key {
    use std::hash::Hasher;
    let canon = body.encode_canonical();
    let lane = |tag: u64| {
        let mut h = FxHasher::default();
        h.write_u64(tag);
        h.write(endpoint.as_bytes());
        h.write(canon.as_bytes());
        h.finish()
    };
    Key((u128::from(lane(LANE_LO)) << 64) | u128::from(lane(LANE_HI)))
}

/// One in-flight computation: waiters park on `done` until the leader
/// resolves the slot.
struct Flight {
    state: Mutex<FlightState>,
    done: Condvar,
    /// Job-queue ticket for queued (sweep) leaders, so duplicate async
    /// requests can coalesce onto the same job id. 0 = not published.
    ticket: AtomicU64,
}

enum FlightState {
    /// The leader is computing.
    Running,
    /// The leader stored this document.
    Done(Arc<Json>),
    /// The leader failed, panicked, or declined to cache; waiters must
    /// re-elect.
    Abandoned,
}

impl Flight {
    fn new() -> Flight {
        Flight {
            state: Mutex::new(FlightState::Running),
            done: Condvar::new(),
            ticket: AtomicU64::new(0),
        }
    }

    /// Blocks until the leader resolves; `None` means abandoned.
    fn await_outcome(&self) -> Option<Arc<Json>> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            match &*state {
                FlightState::Running => {
                    state = self.done.wait(state).unwrap_or_else(|e| e.into_inner());
                }
                FlightState::Done(doc) => return Some(Arc::clone(doc)),
                FlightState::Abandoned => return None,
            }
        }
    }

    fn resolve(&self, outcome: Option<Arc<Json>>) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        *state = match outcome {
            Some(doc) => FlightState::Done(doc),
            None => FlightState::Abandoned,
        };
        drop(state);
        self.done.notify_all();
    }
}

/// A memoized result document plus its served-encoding size.
struct Entry {
    doc: Arc<Json>,
    bytes: usize,
}

struct Inner {
    lru: LruMap<Key, Entry>,
    inflight: FxHashMap<Key, Arc<Flight>>,
    bytes_resident: u64,
}

/// Point-in-time counters for `/metrics`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Requests answered from the memo (`jouppi_result_cache_hits_total`).
    pub hits: u64,
    /// Requests that had to compute (`jouppi_result_cache_misses_total`).
    pub misses: u64,
    /// Memo entries displaced by capacity
    /// (`jouppi_result_cache_evictions_total`).
    pub evictions: u64,
    /// Requests that rode another request's computation
    /// (`jouppi_result_cache_coalesced_total`).
    pub coalesced: u64,
    /// Encoded bytes of all memoized documents
    /// (`jouppi_result_cache_bytes_resident`).
    pub bytes_resident: u64,
    /// Memoized documents currently resident.
    pub entries: u64,
}

/// What [`ResultCache::begin`] decided for a request.
pub enum Lookup {
    /// Mode is [`CacheMode::Off`]: compute as if the cache did not exist.
    Disabled,
    /// This request bypasses the cache (knob or [`CacheMode::Bypass`]):
    /// compute fresh, store nothing.
    Bypass,
    /// Memo hit: serve this document.
    Hit(Arc<Json>),
    /// Another request computed this document while we waited.
    Coalesced(Arc<Json>),
    /// This request is the leader: compute, then call
    /// [`LeaderGuard::complete`] (or drop the guard to abandon).
    Miss(LeaderGuard),
}

/// Like [`Lookup`], but never blocks: used by the queued sweep path,
/// where a connection thread must not park on a Condvar.
pub enum TryLookup {
    /// Mode is [`CacheMode::Off`].
    Disabled,
    /// This request bypasses the cache.
    Bypass,
    /// Memo hit: serve this document.
    Hit(Arc<Json>),
    /// A leader is already computing; its job-queue ticket, if it has
    /// published one. `None` only in the brief window between leader
    /// election and ticket publication — callers fall back to an
    /// uncached compute.
    InFlight(Option<u64>),
    /// This request is the leader.
    Miss(LeaderGuard),
}

/// The content-addressed result cache. One per server, shared as an
/// `Arc` so leader guards can ride into queued jobs.
pub struct ResultCache {
    mode: CacheMode,
    inner: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    coalesced: AtomicU64,
}

impl ResultCache {
    /// An empty cache with the given mode and capacity.
    pub fn new(config: CacheConfig) -> Arc<ResultCache> {
        Arc::new(ResultCache {
            mode: config.mode,
            inner: Mutex::new(Inner {
                lru: LruMap::new(config.capacity.max(1)),
                inflight: FxHashMap::default(),
                bytes_resident: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
        })
    }

    /// The server-wide mode.
    pub fn mode(&self) -> CacheMode {
        self.mode
    }

    /// Looks `key` up, *blocking* behind an in-flight leader if one
    /// exists. Used by synchronous endpoints (`/v1/simulate`): a
    /// thundering herd of identical requests costs one simulation.
    ///
    /// Waiters woken by an abandoned flight loop back and re-elect —
    /// one of them becomes the new leader, so a panicking leader never
    /// strands the herd.
    pub fn begin(self: &Arc<Self>, key: Key, bypass: bool) -> Lookup {
        match self.gate(bypass) {
            Some(Gate::Disabled) => return Lookup::Disabled,
            Some(Gate::Bypass) => return Lookup::Bypass,
            None => {}
        }
        loop {
            let flight = match self.lookup_or_lead(key) {
                Ok(lookup) => return lookup,
                Err(flight) => flight,
            };
            // Park outside the cache lock; a Done flight coalesces,
            // an Abandoned one sends us back to re-elect.
            if let Some(doc) = flight.await_outcome() {
                self.coalesced.fetch_add(1, Ordering::SeqCst);
                return Lookup::Coalesced(doc);
            }
        }
    }

    /// Looks `key` up without ever blocking. Used by the queued sweep
    /// path: an in-flight duplicate coalesces onto the leader's job
    /// ticket instead of parking the connection thread.
    pub fn try_begin(self: &Arc<Self>, key: Key, bypass: bool) -> TryLookup {
        match self.gate(bypass) {
            Some(Gate::Disabled) => return TryLookup::Disabled,
            Some(Gate::Bypass) => return TryLookup::Bypass,
            None => {}
        }
        let flight = match self.lookup_or_lead(key) {
            Ok(Lookup::Hit(doc)) => return TryLookup::Hit(doc),
            Ok(Lookup::Miss(leader)) => return TryLookup::Miss(leader),
            Ok(_) => return TryLookup::Bypass, // unreachable: lookup_or_lead yields Hit/Miss only
            Err(flight) => flight,
        };
        self.coalesced.fetch_add(1, Ordering::SeqCst);
        let ticket = flight.ticket.load(Ordering::SeqCst);
        TryLookup::InFlight((ticket != 0).then_some(ticket))
    }

    /// Memo hit, new leadership, or the flight to wait on.
    fn lookup_or_lead(self: &Arc<Self>, key: Key) -> Result<Lookup, Arc<Flight>> {
        let mut inner = self.lock();
        if let Some(entry) = inner.lru.get(&key) {
            let doc = Arc::clone(&entry.doc);
            drop(inner);
            self.hits.fetch_add(1, Ordering::SeqCst);
            return Ok(Lookup::Hit(doc));
        }
        if let Some(flight) = inner.inflight.get(&key) {
            return Err(Arc::clone(flight));
        }
        inner.inflight.insert(key, Arc::new(Flight::new()));
        drop(inner);
        self.misses.fetch_add(1, Ordering::SeqCst);
        Ok(Lookup::Miss(LeaderGuard {
            cache: Arc::clone(self),
            key,
            resolved: false,
        }))
    }

    fn gate(&self, bypass: bool) -> Option<Gate> {
        match self.mode {
            CacheMode::Off => Some(Gate::Disabled),
            CacheMode::Bypass => Some(Gate::Bypass),
            CacheMode::On if bypass => Some(Gate::Bypass),
            CacheMode::On => None,
        }
    }

    /// Point-in-time counters for `/metrics`.
    pub fn counters(&self) -> CacheCounters {
        let (bytes_resident, entries) = {
            let inner = self.lock();
            (inner.bytes_resident, inner.lru.len() as u64)
        };
        CacheCounters {
            hits: self.hits.load(Ordering::SeqCst),
            misses: self.misses.load(Ordering::SeqCst),
            evictions: self.evictions.load(Ordering::SeqCst),
            coalesced: self.coalesced.load(Ordering::SeqCst),
            bytes_resident,
            entries,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Stores (or abandons) the leader's outcome and wakes waiters.
    fn finish(&self, key: Key, outcome: Option<Arc<Json>>) {
        let flight = {
            let mut inner = self.lock();
            if let Some(doc) = &outcome {
                // +1 for the newline `Response::json` appends when
                // serving; the gauge then matches served bytes.
                let bytes = doc.encode().len() + 1;
                inner.bytes_resident += bytes as u64;
                match inner.lru.insert(
                    key,
                    Entry {
                        doc: Arc::clone(doc),
                        bytes,
                    },
                ) {
                    Displaced::None => {}
                    Displaced::Replaced(old) => {
                        inner.bytes_resident -= old.bytes as u64;
                    }
                    Displaced::Evicted(_, old) => {
                        inner.bytes_resident -= old.bytes as u64;
                        self.evictions.fetch_add(1, Ordering::SeqCst);
                    }
                }
            }
            inner.inflight.remove(&key)
        };
        if let Some(flight) = flight {
            flight.resolve(outcome);
        }
    }

    /// Publishes a leader's job-queue ticket by key — the router calls
    /// this after `submit`, when the guard has already moved into the
    /// job closure. No-op if the flight already resolved.
    pub(crate) fn publish_ticket(&self, key: Key, job_id: u64) {
        let inner = self.lock();
        if let Some(flight) = inner.inflight.get(&key) {
            flight.ticket.store(job_id, Ordering::SeqCst);
        }
    }
}

enum Gate {
    Disabled,
    Bypass,
}

/// RAII leadership of one in-flight key. Call
/// [`complete`](LeaderGuard::complete) with the result document, or
/// [`abandon`](LeaderGuard::abandon) on failure; merely dropping the
/// guard (a panic unwinding through the leader) also abandons, waking
/// every waiter so one of them re-elects. Leadership therefore cannot
/// leak no matter how the computation ends.
pub struct LeaderGuard {
    cache: Arc<ResultCache>,
    key: Key,
    resolved: bool,
}

impl LeaderGuard {
    /// Stores `doc` in the memo and hands it to every waiter.
    pub fn complete(mut self, doc: &Arc<Json>) {
        self.resolved = true;
        self.cache.finish(self.key, Some(Arc::clone(doc)));
    }

    /// Declines to cache (failed computation); waiters re-elect.
    pub fn abandon(mut self) {
        self.resolved = true;
        self.cache.finish(self.key, None);
    }

    /// Publishes the leader's job-queue ticket so duplicate async
    /// requests can coalesce onto the same job id.
    pub fn publish_ticket(&self, job_id: u64) {
        self.cache.publish_ticket(self.key, job_id);
    }
}

impl Drop for LeaderGuard {
    fn drop(&mut self) {
        if !self.resolved {
            self.cache.finish(self.key, None);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn cache(capacity: usize) -> Arc<ResultCache> {
        ResultCache::new(CacheConfig {
            mode: CacheMode::On,
            capacity,
        })
    }

    fn doc(n: i64) -> Arc<Json> {
        Arc::new(Json::obj([("value", Json::Int(n))]))
    }

    fn key(n: u64) -> Key {
        content_key("test", &Json::obj([("k", Json::Int(n as i64))]))
    }

    fn lead(c: &Arc<ResultCache>, k: Key) -> LeaderGuard {
        match c.begin(k, false) {
            Lookup::Miss(leader) => leader,
            _ => panic!("expected to lead"),
        }
    }

    #[test]
    fn content_keys_ignore_object_key_order() {
        let a = Json::parse(r#"{"workload":"ccom","scale":5000,"victim":4}"#).unwrap();
        let b = Json::parse(r#"{"victim":4,"workload":"ccom","scale":5000}"#).unwrap();
        assert_eq!(content_key("simulate", &a), content_key("simulate", &b));
        // Different values and different endpoints both split the key.
        let c = Json::parse(r#"{"workload":"ccom","scale":5001,"victim":4}"#).unwrap();
        assert_ne!(content_key("simulate", &a), content_key("simulate", &c));
        assert_ne!(content_key("simulate", &a), content_key("sweep", &a));
    }

    #[test]
    fn miss_store_hit_round_trip() {
        let c = cache(4);
        lead(&c, key(1)).complete(&doc(10));
        match c.begin(key(1), false) {
            Lookup::Hit(d) => assert_eq!(*d, *doc(10)),
            _ => panic!("expected a hit"),
        }
        let counters = c.counters();
        assert_eq!(counters.misses, 1);
        assert_eq!(counters.hits, 1);
        assert_eq!(counters.entries, 1);
        assert!(counters.bytes_resident > 0);
    }

    #[test]
    fn capacity_bounds_and_eviction_order() {
        let c = cache(2);
        lead(&c, key(1)).complete(&doc(1));
        lead(&c, key(2)).complete(&doc(2));
        // Touch key 1 so key 2 is LRU.
        assert!(matches!(c.begin(key(1), false), Lookup::Hit(_)));
        lead(&c, key(3)).complete(&doc(3));
        let counters = c.counters();
        assert_eq!(counters.entries, 2, "capacity must bound the memo");
        assert_eq!(counters.evictions, 1);
        assert!(matches!(c.begin(key(1), false), Lookup::Hit(_)));
        assert!(matches!(c.begin(key(3), false), Lookup::Hit(_)));
        // Key 2 was evicted: looking it up elects a new leader.
        assert!(matches!(c.begin(key(2), false), Lookup::Miss(_)));
    }

    #[test]
    fn bytes_gauge_tracks_insert_and_evict() {
        let c = cache(1);
        lead(&c, key(1)).complete(&doc(1));
        let one = c.counters().bytes_resident;
        assert_eq!(one, doc(1).encode().len() as u64 + 1);
        lead(&c, key(2)).complete(&doc(2));
        assert_eq!(
            c.counters().bytes_resident,
            doc(2).encode().len() as u64 + 1
        );
    }

    #[test]
    fn bypass_and_off_modes() {
        let c = cache(4);
        assert!(matches!(c.begin(key(1), true), Lookup::Bypass));
        assert!(matches!(c.try_begin(key(1), true), TryLookup::Bypass));
        // A bypass never stores and never counts.
        assert_eq!(c.counters().misses, 0);
        // Even a stored entry is invisible to a bypassing request.
        lead(&c, key(1)).complete(&doc(1));
        assert!(matches!(c.begin(key(1), true), Lookup::Bypass));

        let off = ResultCache::new(CacheConfig {
            mode: CacheMode::Off,
            capacity: 4,
        });
        assert!(matches!(off.begin(key(1), false), Lookup::Disabled));
        assert!(matches!(off.try_begin(key(1), false), TryLookup::Disabled));
        let bypass_mode = ResultCache::new(CacheConfig {
            mode: CacheMode::Bypass,
            capacity: 4,
        });
        assert!(matches!(bypass_mode.begin(key(1), false), Lookup::Bypass));
    }

    #[test]
    fn waiters_coalesce_onto_the_leader() {
        let c = cache(4);
        let leader = lead(&c, key(7));
        let herd: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || match c.begin(key(7), false) {
                    Lookup::Coalesced(d) | Lookup::Hit(d) => d,
                    _ => panic!("waiter must not lead while a leader is live"),
                })
            })
            .collect();
        // Give the herd time to park on the flight.
        std::thread::sleep(Duration::from_millis(50));
        leader.complete(&doc(77));
        for h in herd {
            assert_eq!(*h.join().expect("waiter"), *doc(77));
        }
        let counters = c.counters();
        assert_eq!(counters.misses, 1, "one leader, one computation");
        assert_eq!(counters.hits + counters.coalesced, 4);
        assert!(counters.coalesced >= 1, "the parked herd must coalesce");
    }

    #[test]
    fn abandoned_leader_wakes_and_reelects_waiters() {
        let c = cache(4);
        let leader = lead(&c, key(9));
        let waiter = {
            let c = Arc::clone(&c);
            std::thread::spawn(move || match c.begin(key(9), false) {
                // Re-elected: this waiter becomes the new leader and
                // finishes the job.
                Lookup::Miss(new_leader) => {
                    new_leader.complete(&doc(99));
                    true
                }
                Lookup::Coalesced(d) | Lookup::Hit(d) => {
                    assert_eq!(*d, *doc(99));
                    false
                }
                _ => panic!("unexpected lookup"),
            })
        };
        std::thread::sleep(Duration::from_millis(50));
        // The leader "panics": its guard drops without completing.
        drop(leader);
        assert!(
            waiter.join().expect("waiter"),
            "the parked waiter must be re-elected leader"
        );
        assert!(matches!(c.begin(key(9), false), Lookup::Hit(_)));
    }

    #[test]
    fn try_begin_reports_inflight_ticket() {
        let c = cache(4);
        let leader = match c.try_begin(key(3), false) {
            TryLookup::Miss(leader) => leader,
            _ => panic!("expected to lead"),
        };
        assert!(matches!(
            c.try_begin(key(3), false),
            TryLookup::InFlight(None)
        ));
        leader.publish_ticket(42);
        assert!(matches!(
            c.try_begin(key(3), false),
            TryLookup::InFlight(Some(42))
        ));
        leader.complete(&doc(3));
        assert!(matches!(c.try_begin(key(3), false), TryLookup::Hit(_)));
    }
}
