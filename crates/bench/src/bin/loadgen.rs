//! Load generator for the `jouppi-serve` daemon.
//!
//! Boots an in-process server on an ephemeral loopback port, hammers it
//! from several concurrent keep-alive connections with a realistic
//! endpoint mix (`/healthz`, `POST /v1/simulate`, `/metrics`), then
//! deliberately overflows the sweep queue to measure backpressure, and
//! finally drains the daemon gracefully. Writes `BENCH_serve.json`.
//!
//! Usage: `loadgen [REQUESTS] [CONNECTIONS] [OUT_PATH]`
//!
//! * `REQUESTS` — total steady-state requests across all connections
//!   (default 600).
//! * `CONNECTIONS` — concurrent keep-alive client connections
//!   (default 4).
//! * `OUT_PATH` — where to write the JSON report (default
//!   `BENCH_serve.json` in the current directory).

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::time::Instant;

use jouppi_bench::{round3, LatencySummary};
use jouppi_serve::json::Json;
use jouppi_serve::server::ServerConfig;
use jouppi_serve::{Client, Server};

/// Instructions per simulate request: small enough that a request is
/// a few milliseconds, large enough to exercise the full replay path.
const SIMULATE_SCALE: u64 = 20_000;

/// Scale for the queue-overflow sweep jobs: big enough that jobs
/// outlive the burst of submissions that must overflow the queue.
const SWEEP_SCALE: u64 = 30_000;

/// Workloads rotated through the simulate mix.
const WORKLOADS: [&str; 3] = ["ccom", "met", "liver"];

/// One timed request: endpoint label, latency, status.
struct Sample {
    endpoint: &'static str,
    ms: f64,
    status: u16,
}

fn timed(
    client: &mut Client,
    endpoint: &'static str,
    method: &str,
    path: &str,
    body: Option<&Json>,
) -> Sample {
    let start = Instant::now();
    let status = client
        .request(method, path, body)
        .map(|r| r.status)
        .unwrap_or(0);
    Sample {
        endpoint,
        ms: start.elapsed().as_secs_f64() * 1000.0,
        status,
    }
}

/// One connection's worth of the steady-state mix: mostly simulate,
/// with healthz and metrics sprinkled in the way a probe/scraper would.
fn drive_connection(addr: SocketAddr, requests: usize, worker: usize) -> Vec<Sample> {
    let mut client = Client::connect(addr).expect("loadgen connect");
    let mut samples = Vec::with_capacity(requests);
    for i in 0..requests {
        let sample = match i % 10 {
            0 => timed(&mut client, "healthz", "GET", "/healthz", None),
            5 => timed(&mut client, "metrics", "GET", "/metrics", None),
            _ => {
                let body = Json::obj([
                    (
                        "workload",
                        Json::str(WORKLOADS[(worker + i) % WORKLOADS.len()]),
                    ),
                    ("scale", Json::Int(SIMULATE_SCALE as i64)),
                    ("seed", Json::Int((42 + worker) as i64)),
                    ("victim", Json::Int(4)),
                ]);
                timed(&mut client, "simulate", "POST", "/v1/simulate", Some(&body))
            }
        };
        samples.push(sample);
    }
    samples
}

/// Fires async sweep submissions faster than the workers can drain them
/// and counts how many are accepted (202) versus shed (503).
fn overflow_burst(addr: SocketAddr, submissions: usize) -> (u64, u64, bool) {
    let mut client = Client::connect(addr).expect("overflow connect");
    let body = Json::obj([
        ("sweep", Json::str("fig_3_1")),
        ("scale", Json::Int(SWEEP_SCALE as i64)),
    ]);
    let (mut accepted, mut shed, mut retry_after) = (0u64, 0u64, false);
    for _ in 0..submissions {
        let resp = client
            .request("POST", "/v1/sweep", Some(&body))
            .expect("overflow request");
        match resp.status {
            202 => accepted += 1,
            503 => {
                shed += 1;
                retry_after |= resp.header("retry-after").is_some();
            }
            other => panic!("unexpected overflow status {other}"),
        }
    }
    (accepted, shed, retry_after)
}

/// Pulls one counter out of the Prometheus exposition text.
fn scrape_counter(metrics: &str, name: &str) -> u64 {
    metrics
        .lines()
        .find_map(|l| {
            l.strip_prefix(name)
                .and_then(|rest| rest.trim().parse::<f64>().ok())
        })
        .map(|v| v as u64)
        .unwrap_or(0)
}

fn main() {
    let mut args = std::env::args().skip(1);
    let requests: usize = args
        .next()
        .map(|r| r.parse().expect("REQUESTS must be an integer"))
        .unwrap_or(600);
    let connections: usize = args
        .next()
        .map(|r| r.parse().expect("CONNECTIONS must be an integer"))
        .unwrap_or(4)
        .max(1);
    let out = args.next().unwrap_or_else(|| "BENCH_serve.json".to_owned());

    let cfg = ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        queue_depth: 2,
        ..ServerConfig::default()
    };
    let handle = Server::start(cfg.clone()).expect("loadgen server");
    let addr = handle.addr();
    eprintln!(
        "loadgen: {requests} requests over {connections} connection(s) against http://{addr}"
    );

    // Steady-state phase.
    let per_conn = requests.div_ceil(connections);
    let start = Instant::now();
    let samples: Vec<Sample> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..connections)
            .map(|w| scope.spawn(move || drive_connection(addr, per_conn, w)))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    let wall_ms = start.elapsed().as_secs_f64() * 1000.0;

    // Backpressure phase: overfill the 2-deep queue.
    let submissions = 4 * (cfg.workers + cfg.queue_depth);
    let (accepted, shed, retry_after) = overflow_burst(addr, submissions);

    let metrics_text = Client::connect(addr)
        .and_then(|mut c| c.request("GET", "/metrics", None))
        .map(|r| r.text())
        .unwrap_or_default();
    let refs_simulated = scrape_counter(&metrics_text, "jouppi_refs_simulated_total");

    let stats = handle.shutdown();

    // Aggregate.
    let mut statuses: BTreeMap<u16, u64> = BTreeMap::new();
    for s in &samples {
        *statuses.entry(s.status).or_insert(0) += 1;
    }
    let mut latency = Vec::new();
    for endpoint in ["healthz", "simulate", "metrics"] {
        let subset: Vec<f64> = samples
            .iter()
            .filter(|s| s.endpoint == endpoint)
            .map(|s| s.ms)
            .collect();
        if let Some(summary) = LatencySummary::from_samples(endpoint, &subset) {
            eprintln!(
                "{:>9}: {:>5} reqs, p50 {:>7.3} ms, p99 {:>7.3} ms, max {:>7.3} ms",
                summary.endpoint, summary.requests, summary.p50_ms, summary.p99_ms, summary.max_ms
            );
            latency.push(summary);
        }
    }
    let total = samples.len();
    let rps = if wall_ms > 0.0 {
        total as f64 * 1000.0 / wall_ms
    } else {
        0.0
    };
    eprintln!(
        "throughput: {rps:.0} req/s; overflow: {accepted} accepted, {shed} shed (503); \
         {} job(s) drained at shutdown",
        stats.jobs_completed
    );

    let report = Json::obj([
        ("benchmark", Json::str("loadgen")),
        ("connections", Json::Int(connections as i64)),
        ("requests", Json::Int(total as i64)),
        ("wall_ms", Json::Float(round3(wall_ms))),
        ("requests_per_sec", Json::Float(rps.round())),
        (
            "latency",
            Json::Arr(latency.iter().map(LatencySummary::json).collect()),
        ),
        (
            "statuses",
            Json::Obj(
                statuses
                    .iter()
                    .map(|(code, n)| (code.to_string(), Json::Int(*n as i64)))
                    .collect(),
            ),
        ),
        (
            "overflow",
            Json::obj([
                ("submitted", Json::Int(submissions as i64)),
                ("accepted_202", Json::Int(accepted as i64)),
                ("rejected_503", Json::Int(shed as i64)),
                ("retry_after_seen", Json::Bool(retry_after)),
            ]),
        ),
        ("jobs_drained", Json::Int(stats.jobs_completed as i64)),
        ("refs_simulated", Json::Int(refs_simulated as i64)),
    ])
    .encode_pretty();
    std::fs::write(&out, &report).expect("failed to write the loadgen report");
    eprintln!("wrote {out}");
}
