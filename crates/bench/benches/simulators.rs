//! Microbenchmarks of the simulator hot paths: raw cache accesses, LRU
//! structure operations, victim-cache swaps, stream-buffer probes, and
//! miss classification.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use jouppi_bench::MICRO_REFS;
use jouppi_cache::{Cache, CacheGeometry, LruSet, MissClassifier};
use jouppi_core::{
    AugmentedCache, AugmentedConfig, MultiWayStreamBuffer, StreamBufferConfig, VictimCache,
};
use jouppi_trace::LineAddr;

/// A deterministic mixed-locality line stream.
fn stream(len: usize, span: u64) -> Vec<LineAddr> {
    (0..len as u64)
        .map(|i| LineAddr::new((i.wrapping_mul(2654435761) ^ (i >> 3)) % span))
        .collect()
}

fn bench_cache_access(c: &mut Criterion) {
    let refs = stream(MICRO_REFS, 4096);
    let mut g = c.benchmark_group("cache");
    g.throughput(Throughput::Elements(refs.len() as u64));
    g.bench_function("direct_mapped_access", |b| {
        let geom = CacheGeometry::direct_mapped(4096, 16).unwrap();
        b.iter(|| {
            let mut cache = Cache::new(geom);
            for &line in &refs {
                black_box(cache.access_line(line));
            }
        })
    });
    g.bench_function("two_way_lru_access", |b| {
        let geom = CacheGeometry::new(4096, 16, 2).unwrap();
        b.iter(|| {
            let mut cache = Cache::new(geom);
            for &line in &refs {
                black_box(cache.access_line(line));
            }
        })
    });
    g.finish();
}

fn bench_lru_set(c: &mut Criterion) {
    let refs = stream(MICRO_REFS, 512);
    let mut g = c.benchmark_group("lru_set");
    g.throughput(Throughput::Elements(refs.len() as u64));
    g.bench_function("touch_or_insert_256", |b| {
        b.iter(|| {
            let mut lru = LruSet::new(256);
            for &line in &refs {
                black_box(lru.touch_or_insert(line));
            }
        })
    });
    g.finish();
}

fn bench_victim_cache(c: &mut Criterion) {
    let refs = stream(MICRO_REFS, 64);
    let mut g = c.benchmark_group("victim_cache");
    g.throughput(Throughput::Elements(refs.len() as u64));
    g.bench_function("probe_swap_4_entry", |b| {
        b.iter(|| {
            let mut vc = VictimCache::new(4);
            for (i, &line) in refs.iter().enumerate() {
                let victim = LineAddr::new(line.get() + 1000);
                if !vc.probe_swap(line, Some(victim)) && i % 2 == 0 {
                    vc.insert_victim(victim);
                }
            }
            black_box(vc.len())
        })
    });
    g.finish();
}

fn bench_stream_buffer(c: &mut Criterion) {
    let mut g = c.benchmark_group("stream_buffer");
    g.throughput(Throughput::Elements(MICRO_REFS as u64));
    g.bench_function("sequential_probe_consume", |b| {
        b.iter(|| {
            let mut sb = MultiWayStreamBuffer::new(4, StreamBufferConfig::new(4));
            sb.handle_miss(LineAddr::new(0), 0);
            for i in 1..MICRO_REFS as u64 {
                if !sb.probe_consume(LineAddr::new(i), i).is_hit() {
                    sb.handle_miss(LineAddr::new(i), i);
                }
            }
            black_box(sb.num_ways())
        })
    });
    g.finish();
}

fn bench_classifier(c: &mut Criterion) {
    let refs = stream(MICRO_REFS, 2048);
    let mut g = c.benchmark_group("classifier");
    g.throughput(Throughput::Elements(refs.len() as u64));
    g.bench_function("three_c_observe", |b| {
        let geom = CacheGeometry::direct_mapped(4096, 16).unwrap();
        b.iter(|| {
            let mut cache = Cache::new(geom);
            let mut cls = MissClassifier::new(geom);
            for &line in &refs {
                let miss = cache.access_line(line).is_miss();
                black_box(cls.observe(line, miss));
            }
        })
    });
    g.finish();
}

fn bench_augmented(c: &mut Criterion) {
    let refs = stream(MICRO_REFS, 4096);
    let geom = CacheGeometry::direct_mapped(4096, 16).unwrap();
    let mut g = c.benchmark_group("augmented");
    g.throughput(Throughput::Elements(refs.len() as u64));
    g.bench_function("improved_data_cache_access", |b| {
        b.iter(|| {
            let mut cache = AugmentedCache::new(
                AugmentedConfig::new(geom)
                    .victim_cache(4)
                    .multi_way_stream_buffer(4, StreamBufferConfig::new(4)),
            );
            for &line in &refs {
                black_box(cache.access_line(line));
            }
        })
    });
    g.finish();
}

criterion_group! {
    name = simulators;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(3));
    targets = bench_cache_access, bench_lru_set, bench_victim_cache,
              bench_stream_buffer, bench_classifier, bench_augmented
}
criterion_main!(simulators);
