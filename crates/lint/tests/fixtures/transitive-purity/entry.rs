//! Support file: the cache-keyed simulate entrypoint reaching the
//! fixture's helper.

use jouppi_report::stamp;

pub fn simulate() {
    stamp();
}
