//! The generic set-associative cache model.

use jouppi_trace::{Addr, LineAddr, SmallRng};

use crate::{CacheGeometry, CacheStats, ReplacementPolicy};

/// Outcome of a demand access to a [`Cache`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessResult {
    /// The line was resident.
    Hit,
    /// The line was not resident; it has been filled, evicting `victim`
    /// (if the target way held a valid line).
    Miss {
        /// The line displaced by the fill, if any. This is exactly the line
        /// a victim cache would capture.
        victim: Option<LineAddr>,
    },
}

impl AccessResult {
    /// Returns `true` for [`AccessResult::Hit`].
    #[inline]
    pub const fn is_hit(&self) -> bool {
        matches!(self, AccessResult::Hit)
    }

    /// Returns `true` for [`AccessResult::Miss`].
    #[inline]
    pub const fn is_miss(&self) -> bool {
        !self.is_hit()
    }
}

#[derive(Clone, Copy, Debug)]
struct Way {
    line: LineAddr,
    /// Last-use time under LRU; insertion time under FIFO; unused by Random.
    stamp: u64,
}

/// A tag-only set-associative cache (direct-mapped through fully
/// associative) with a configurable replacement policy.
///
/// Lines live in one flat slot arena (`num_sets × associativity`,
/// set-major) rather than per-set `Vec`s, so a set's ways are a
/// contiguous slice and the direct-mapped case — the paper's baseline,
/// and the hot path of every sweep — reduces to a single slot compare
/// with no way scan and no replacement-policy dispatch.
///
/// Two API levels are provided:
///
/// * [`Cache::access`] / [`Cache::access_line`] — a complete demand access:
///   lookup, fill-on-miss, and statistics. This is what plain baseline
///   simulations use.
/// * The primitives [`Cache::lookup`], [`Cache::fill`],
///   [`Cache::invalidate`], and [`Cache::replace_resident`] — used by the
///   augmented organizations in `jouppi-core` (victim caches need to swap
///   lines; stream buffers fill the cache from the buffer). The primitives
///   do **not** update [`Cache::stats`]; composite organizations keep their
///   own counters.
///
/// # Examples
///
/// ```
/// use jouppi_cache::{AccessResult, Cache, CacheGeometry};
/// use jouppi_trace::Addr;
///
/// # fn main() -> Result<(), jouppi_cache::GeometryError> {
/// let mut c = Cache::new(CacheGeometry::direct_mapped(64, 16)?);
/// assert!(c.access(Addr::new(0)).is_miss());
/// assert!(c.access(Addr::new(8)).is_hit());     // same line
/// // 64B direct-mapped cache of 16B lines = 4 sets; 0 and 64 collide:
/// match c.access(Addr::new(64)) {
///     AccessResult::Miss { victim } => assert_eq!(victim, Some(Addr::new(0).line(16))),
///     AccessResult::Hit => unreachable!(),
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct Cache {
    geom: CacheGeometry,
    policy: ReplacementPolicy,
    /// Slot arena, set-major: set `s` owns `slots[s*assoc .. (s+1)*assoc]`.
    slots: Vec<Option<Way>>,
    assoc: usize,
    stats: CacheStats,
    tick: u64,
    rng: SmallRng,
}

impl Cache {
    /// Creates an empty cache with LRU replacement (exact LRU; for a
    /// direct-mapped cache the policy is irrelevant).
    pub fn new(geom: CacheGeometry) -> Self {
        Cache::with_policy(geom, ReplacementPolicy::Lru)
    }

    /// Creates an empty cache with the given replacement policy.
    pub fn with_policy(geom: CacheGeometry, policy: ReplacementPolicy) -> Self {
        let assoc = geom.associativity() as usize;
        Cache {
            geom,
            policy,
            slots: vec![None; geom.num_lines() as usize],
            assoc,
            stats: CacheStats::default(),
            tick: 0,
            rng: SmallRng::seed_from_u64(0x9e37_79b9_7f4a_7c15),
        }
    }

    /// The cache's geometry.
    #[inline]
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geom
    }

    /// The replacement policy in use.
    #[inline]
    pub fn policy(&self) -> ReplacementPolicy {
        self.policy
    }

    /// Demand-access statistics accumulated by [`Cache::access`].
    #[inline]
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets the demand-access statistics (resident lines are kept).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// The slice of slots backing the set `line` maps to.
    #[inline]
    fn set_range(&self, line: LineAddr) -> std::ops::Range<usize> {
        let start = self.geom.set_of(line) * self.assoc;
        start..start + self.assoc
    }

    /// Performs a full demand access for a byte address: lookup, fill on
    /// miss, and statistics update.
    pub fn access(&mut self, addr: Addr) -> AccessResult {
        let line = self.geom.line_of(addr);
        self.access_line(line)
    }

    /// Performs a full demand access for a line address.
    pub fn access_line(&mut self, line: LineAddr) -> AccessResult {
        if self.assoc == 1 {
            self.access_line_direct(line)
        } else {
            self.access_line_generic(line)
        }
    }

    /// The direct-mapped fast path: one slot, one compare, no way scan,
    /// no replacement-policy dispatch. Stamps are irrelevant at
    /// associativity 1 (the sole slot is always the victim), so the tick
    /// counter is not advanced.
    #[inline]
    fn access_line_direct(&mut self, line: LineAddr) -> AccessResult {
        self.stats.accesses += 1;
        let idx = self.geom.set_of(line);
        match &mut self.slots[idx] {
            Some(way) if way.line == line => {
                self.stats.hits += 1;
                AccessResult::Hit
            }
            Some(way) => {
                let victim = way.line;
                way.line = line;
                self.stats.misses += 1;
                self.stats.evictions += 1;
                AccessResult::Miss {
                    victim: Some(victim),
                }
            }
            slot @ None => {
                *slot = Some(Way { line, stamp: 0 });
                self.stats.misses += 1;
                AccessResult::Miss { victim: None }
            }
        }
    }

    /// The generic demand-access path, valid for any associativity.
    ///
    /// Exposed (hidden from docs) so equivalence tests can pit the
    /// direct-mapped fast path against it on the same trace.
    #[doc(hidden)]
    pub fn access_line_generic(&mut self, line: LineAddr) -> AccessResult {
        self.stats.accesses += 1;
        if self.lookup(line) {
            self.stats.hits += 1;
            AccessResult::Hit
        } else {
            self.stats.misses += 1;
            let victim = self.fill(line);
            if victim.is_some() {
                self.stats.evictions += 1;
            }
            AccessResult::Miss { victim }
        }
    }

    /// Checks residency without updating replacement state or statistics.
    pub fn probe(&self, line: LineAddr) -> bool {
        self.slots[self.set_range(line)]
            .iter()
            .any(|w| matches!(w, Some(w) if w.line == line))
    }

    /// Looks up a line: on a hit the line's recency is updated (for LRU) and
    /// `true` is returned; on a miss nothing changes and `false` is
    /// returned. Statistics are *not* updated.
    pub fn lookup(&mut self, line: LineAddr) -> bool {
        self.tick += 1;
        let tick = self.tick;
        let range = self.set_range(line);
        if self.assoc == 1 {
            // Direct-mapped: recency is irrelevant, skip the scan.
            return matches!(&self.slots[range.start], Some(w) if w.line == line);
        }
        let lru = self.policy == ReplacementPolicy::Lru;
        for way in self.slots[range].iter_mut().flatten() {
            if way.line == line {
                if lru {
                    way.stamp = tick;
                }
                return true;
            }
        }
        false
    }

    /// Fills a line into the cache, evicting per the replacement policy if
    /// the set is full. Returns the displaced line, if any. Statistics are
    /// *not* updated.
    ///
    /// If the line is already resident this is a no-op returning `None`
    /// (composites may race a prefetch against a demand fill).
    pub fn fill(&mut self, line: LineAddr) -> Option<LineAddr> {
        self.tick += 1;
        let tick = self.tick;
        let range = self.set_range(line);
        if self.assoc == 1 {
            let slot = &mut self.slots[range.start];
            return match slot {
                Some(way) if way.line == line => None,
                Some(way) => {
                    let victim = way.line;
                    *way = Way { line, stamp: tick };
                    Some(victim)
                }
                None => {
                    *slot = Some(Way { line, stamp: tick });
                    None
                }
            };
        }
        let mut free = None;
        for (i, slot) in self.slots[range.clone()].iter().enumerate() {
            match slot {
                Some(way) if way.line == line => return None,
                None if free.is_none() => free = Some(i),
                _ => {}
            }
        }
        let offset = match free {
            Some(i) => i,
            None => match self.policy {
                ReplacementPolicy::Lru | ReplacementPolicy::Fifo => self.slots[range.clone()]
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, w)| w.expect("full set has no empty slots").stamp)
                    .map(|(i, _)| i)
                    .expect("associativity is nonzero"),
                ReplacementPolicy::Random => self.rng.below(self.assoc),
            },
        };
        let slot = &mut self.slots[range.start + offset];
        let victim = slot.map(|w| w.line);
        *slot = Some(Way { line, stamp: tick });
        victim
    }

    /// Removes a line from the cache. Returns `true` if it was resident.
    pub fn invalidate(&mut self, line: LineAddr) -> bool {
        let range = self.set_range(line);
        for slot in &mut self.slots[range] {
            if matches!(slot, Some(w) if w.line == line) {
                *slot = None;
                return true;
            }
        }
        false
    }

    /// Replaces resident line `old` with `new` in place, marking `new` as
    /// most recently used. Returns `false` (and changes nothing) if `old` is
    /// not resident or `new` maps to a different set.
    ///
    /// This is the cache half of a victim-cache swap: the requested line
    /// moves from the victim cache into the way its conflict partner
    /// occupied.
    pub fn replace_resident(&mut self, old: LineAddr, new: LineAddr) -> bool {
        if self.geom.set_of(old) != self.geom.set_of(new) {
            return false;
        }
        self.tick += 1;
        let tick = self.tick;
        let range = self.set_range(old);
        for way in self.slots[range].iter_mut().flatten() {
            if way.line == old {
                *way = Way {
                    line: new,
                    stamp: tick,
                };
                return true;
            }
        }
        false
    }

    /// Number of currently resident lines.
    pub fn resident_count(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Iterates over all resident lines (set order, then way order).
    pub fn resident_lines(&self) -> impl Iterator<Item = LineAddr> + '_ {
        self.slots.iter().filter_map(|s| s.map(|w| w.line))
    }

    /// Empties the cache (statistics are kept).
    pub fn flush(&mut self) {
        self.slots.fill(None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dm(size: u64, line: u64) -> Cache {
        Cache::new(CacheGeometry::direct_mapped(size, line).unwrap())
    }

    fn l(n: u64) -> LineAddr {
        LineAddr::new(n)
    }

    #[test]
    fn direct_mapped_conflict_eviction() {
        let mut c = dm(64, 16); // 4 sets
        assert_eq!(c.access_line(l(0)), AccessResult::Miss { victim: None });
        assert_eq!(c.access_line(l(0)), AccessResult::Hit);
        // line 4 maps to set 0 as well
        assert_eq!(
            c.access_line(l(4)),
            AccessResult::Miss { victim: Some(l(0)) }
        );
        assert_eq!(
            c.access_line(l(0)),
            AccessResult::Miss { victim: Some(l(4)) }
        );
        assert_eq!(c.stats().accesses, 4);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 3);
        assert_eq!(c.stats().evictions, 2);
    }

    #[test]
    fn two_way_lru_keeps_recently_used() {
        let geom = CacheGeometry::new(64, 16, 2).unwrap(); // 2 sets, 2-way
        let mut c = Cache::new(geom);
        // Set 0 holds lines 0, 2, 4, ... (even lines).
        c.access_line(l(0));
        c.access_line(l(2));
        c.access_line(l(0)); // touch 0: now 2 is LRU
        assert_eq!(
            c.access_line(l(4)),
            AccessResult::Miss { victim: Some(l(2)) }
        );
        assert!(c.probe(l(0)));
        assert!(c.probe(l(4)));
    }

    #[test]
    fn fifo_ignores_touches() {
        let geom = CacheGeometry::new(32, 16, 2).unwrap(); // 1 set, 2-way
        let mut c = Cache::with_policy(geom, ReplacementPolicy::Fifo);
        c.access_line(l(0));
        c.access_line(l(1));
        c.access_line(l(0)); // hit; FIFO order unchanged
        assert_eq!(
            c.access_line(l(2)),
            AccessResult::Miss { victim: Some(l(0)) }
        );
    }

    #[test]
    fn random_policy_evicts_something_from_full_set() {
        let geom = CacheGeometry::new(64, 16, 4).unwrap(); // 1 set, 4-way
        let mut c = Cache::with_policy(geom, ReplacementPolicy::Random);
        for i in 0..4 {
            assert_eq!(c.access_line(l(i)), AccessResult::Miss { victim: None });
        }
        match c.access_line(l(10)) {
            AccessResult::Miss { victim: Some(v) } => assert!(v.get() < 4),
            other => panic!("expected eviction, got {other:?}"),
        }
        assert_eq!(c.resident_count(), 4);
    }

    #[test]
    fn probe_does_not_disturb_lru() {
        let geom = CacheGeometry::new(32, 16, 2).unwrap();
        let mut c = Cache::new(geom);
        c.access_line(l(0));
        c.access_line(l(1));
        assert!(c.probe(l(0))); // must NOT make 0 MRU
        assert_eq!(
            c.access_line(l(2)),
            AccessResult::Miss { victim: Some(l(0)) }
        );
    }

    #[test]
    fn fill_is_idempotent_for_resident_lines() {
        let mut c = dm(64, 16);
        c.fill(l(0));
        assert_eq!(c.fill(l(0)), None);
        assert_eq!(c.resident_count(), 1);
    }

    #[test]
    fn invalidate_removes() {
        let mut c = dm(64, 16);
        c.access_line(l(0));
        assert!(c.invalidate(l(0)));
        assert!(!c.invalidate(l(0)));
        assert!(!c.probe(l(0)));
        assert_eq!(c.access_line(l(0)), AccessResult::Miss { victim: None });
    }

    #[test]
    fn replace_resident_swaps_in_place() {
        let mut c = dm(64, 16);
        c.access_line(l(0));
        // 0 and 4 are conflict partners in a 4-set cache.
        assert!(c.replace_resident(l(0), l(4)));
        assert!(!c.probe(l(0)));
        assert!(c.probe(l(4)));
        // old not resident:
        assert!(!c.replace_resident(l(0), l(4)));
        // different sets:
        assert!(!c.replace_resident(l(4), l(5)));
    }

    #[test]
    fn flush_clears_lines_keeps_stats() {
        let mut c = dm(64, 16);
        c.access_line(l(0));
        c.flush();
        assert_eq!(c.resident_count(), 0);
        assert_eq!(c.stats().accesses, 1);
        c.reset_stats();
        assert_eq!(c.stats().accesses, 0);
    }

    #[test]
    fn byte_address_access_uses_line_size() {
        let mut c = dm(4096, 16);
        c.access(Addr::new(0x100));
        assert!(c.access(Addr::new(0x10f)).is_hit());
        assert!(c.access(Addr::new(0x110)).is_miss());
    }

    #[test]
    fn resident_lines_enumerates_all() {
        let mut c = dm(64, 16);
        c.access_line(l(0));
        c.access_line(l(1));
        let mut lines: Vec<_> = c.resident_lines().collect();
        lines.sort();
        assert_eq!(lines, vec![l(0), l(1)]);
    }

    #[test]
    fn fully_associative_equals_lru_set_behaviour() {
        let geom = CacheGeometry::fully_associative(64, 16).unwrap(); // 4 lines
        let mut c = Cache::new(geom);
        for i in 0..4 {
            c.access_line(l(i * 100)); // arbitrary lines all share set 0
        }
        c.access_line(l(0)); // touch first
        match c.access_line(l(999)) {
            AccessResult::Miss { victim } => assert_eq!(victim, Some(l(100))),
            AccessResult::Hit => panic!("expected miss"),
        }
    }

    #[test]
    fn direct_mapped_fast_path_matches_generic_path() {
        // Same pseudo-random line stream through both entry points: the
        // results and stats must agree step for step.
        let geom = CacheGeometry::direct_mapped(256, 16).unwrap(); // 16 sets
        let mut fast = Cache::new(geom);
        let mut generic = Cache::new(geom);
        let mut x = 0xdead_beefu64;
        for _ in 0..10_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let line = l(x >> 40); // ~24-bit line space, heavy conflicts
            assert_eq!(fast.access_line(line), generic.access_line_generic(line));
        }
        assert_eq!(fast.stats(), generic.stats());
        let mut a: Vec<_> = fast.resident_lines().collect();
        let mut b: Vec<_> = generic.resident_lines().collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }
}
