//! A fast, deterministic hasher for line-address keys.
//!
//! `std`'s default `SipHash` is DoS-resistant but costs tens of cycles per
//! key — far too much for simulation loops that perform a hash-map probe
//! per memory reference (the three-C shadow cache, the large-capacity
//! [`LruSet`](crate::LruSet) backend, stack-distance profiles). Keys here
//! are line addresses produced by our own trace generators, so hash-flood
//! resistance buys nothing; what matters is a single multiply instead of a
//! full SipHash round.
//!
//! [`FxHasher`] is the Fowler-style multiply-xor hash used by rustc
//! (`FxHashMap`): per 8-byte word, `hash = (hash.rotate_left(5) ^ word) *
//! SEED`. It is deterministic across processes, so simulation results stay
//! reproducible run to run.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from rustc's `FxHasher` (derived from the
/// golden ratio; odd, so multiplication is a bijection on `u64`).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc `FxHash` function: fast, deterministic, not DoS-resistant.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`]; plug into `HashMap`/`HashSet` type
/// parameters.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed by the fast line-address hash.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed by the fast line-address hash.
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use jouppi_trace::LineAddr;

    #[test]
    fn is_deterministic() {
        let hash = |n: u64| {
            let mut h = FxHasher::default();
            h.write_u64(n);
            h.finish()
        };
        assert_eq!(hash(42), hash(42));
        assert_ne!(hash(42), hash(43));
    }

    #[test]
    fn nearby_lines_spread() {
        // Sequential line addresses (the common trace pattern) must stay
        // pairwise distinct and spread across the low bits `HashMap` uses
        // for bucket selection.
        let hash = |n: u64| {
            let mut h = FxHasher::default();
            h.write_u64(n);
            h.finish()
        };
        let full: std::collections::HashSet<u64> = (0..128).map(hash).collect();
        assert_eq!(full.len(), 128);
        let low7: std::collections::HashSet<u8> =
            (0..128).map(|n| (hash(n) & 0x7f) as u8).collect();
        assert!(low7.len() == 128, "only {} distinct low bytes", low7.len());
    }

    #[test]
    fn works_as_map_hasher() {
        let mut m: FxHashMap<LineAddr, u32> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(LineAddr::new(i), i as u32);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&LineAddr::new(512)), Some(&512));
        let mut s: FxHashSet<LineAddr> = FxHashSet::default();
        assert!(s.insert(LineAddr::new(7)));
        assert!(!s.insert(LineAddr::new(7)));
    }

    #[test]
    fn byte_stream_write_matches_word_granularity() {
        let mut a = FxHasher::default();
        a.write(&42u64.to_le_bytes());
        let mut b = FxHasher::default();
        b.write_u64(42);
        assert_eq!(a.finish(), b.finish());
    }
}
