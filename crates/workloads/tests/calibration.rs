//! Calibration regression tests: the synthetic traces must stay within
//! bands of the paper's Table 2-2 miss rates and preserve the qualitative
//! orderings every downstream experiment depends on.

use jouppi_cache::{CacheGeometry, ClassifiedCache};
use jouppi_trace::TraceSource;
use jouppi_workloads::{Benchmark, Scale};

fn baseline() -> CacheGeometry {
    CacheGeometry::direct_mapped(4096, 16).unwrap()
}

/// Measures (I-miss, D-miss, I-conflict-fraction, D-conflict-fraction).
fn measure(b: Benchmark, instructions: u64) -> (f64, f64, f64, f64) {
    let src = b.source(Scale::new(instructions), 42);
    let mut icache = ClassifiedCache::new(baseline());
    let mut dcache = ClassifiedCache::new(baseline());
    for r in src.refs() {
        if r.kind.is_instr() {
            icache.access(r.addr);
        } else {
            dcache.access(r.addr);
        }
    }
    (
        icache.stats().miss_rate(),
        dcache.stats().miss_rate(),
        icache.breakdown().conflict_fraction(),
        dcache.breakdown().conflict_fraction(),
    )
}

const SCALE: u64 = 150_000;

#[test]
fn miss_rates_stay_within_bands_of_table_2_2() {
    for b in Benchmark::ALL {
        let paper = b.paper_row();
        let (i_miss, d_miss, _, _) = measure(b, SCALE);
        // Instruction side: within ±50% relative for the non-numeric
        // codes; numeric codes just need to stay near zero.
        if paper.baseline_instr_miss_rate > 0.005 {
            let lo = paper.baseline_instr_miss_rate * 0.5;
            let hi = paper.baseline_instr_miss_rate * 1.6;
            assert!(
                (lo..hi).contains(&i_miss),
                "{b}: I-miss {i_miss:.4} outside [{lo:.4},{hi:.4})"
            );
        } else {
            assert!(i_miss < 0.01, "{b}: I-miss {i_miss:.4} should be ~0");
        }
        // Data side: within ±50% relative.
        let lo = paper.baseline_data_miss_rate * 0.5;
        let hi = paper.baseline_data_miss_rate * 1.6;
        assert!(
            (lo..hi).contains(&d_miss),
            "{b}: D-miss {d_miss:.4} outside [{lo:.4},{hi:.4})"
        );
    }
}

#[test]
fn met_has_by_far_the_highest_data_conflict_fraction() {
    let mut fractions: Vec<(Benchmark, f64)> = Benchmark::ALL
        .into_iter()
        .map(|b| (b, measure(b, SCALE).3))
        .collect();
    fractions.sort_by(|a, b| b.1.total_cmp(&a.1));
    assert_eq!(fractions[0].0, Benchmark::Met, "{fractions:?}");
    assert!(
        fractions[0].1 > fractions[1].1 + 0.1,
        "met should lead clearly: {fractions:?}"
    );
}

#[test]
fn numeric_codes_have_low_conflict_and_high_capacity_misses() {
    let (_, _, _, liver_conf) = measure(Benchmark::Liver, SCALE);
    assert!(liver_conf < 0.3, "liver conflict fraction {liver_conf}");
}

#[test]
fn scaling_up_preserves_the_trace_prefix() {
    // A longer run of the same benchmark/seed must extend — not change —
    // the shorter trace; experiments at different scales stay comparable.
    let short: Vec<_> = Benchmark::Grr.source(Scale::new(2_000), 9).refs().collect();
    let long: Vec<_> = Benchmark::Grr
        .source(Scale::new(4_000), 9)
        .refs()
        .take(short.len())
        .collect();
    assert_eq!(short, long);
}

#[test]
fn miss_rates_are_stable_across_seeds() {
    // Different seeds produce different traces but statistically similar
    // miss rates (the generators are stationary).
    for b in [Benchmark::Met, Benchmark::Liver] {
        let r1 = {
            let src = b.source(Scale::new(SCALE), 1);
            let mut c = ClassifiedCache::new(baseline());
            for r in src.refs().filter(|r| r.kind.is_data()) {
                c.access(r.addr);
            }
            c.stats().miss_rate()
        };
        let r2 = {
            let src = b.source(Scale::new(SCALE), 2);
            let mut c = ClassifiedCache::new(baseline());
            for r in src.refs().filter(|r| r.kind.is_data()) {
                c.access(r.addr);
            }
            c.stats().miss_rate()
        };
        let rel = (r1 - r2).abs() / r1.max(r2);
        assert!(
            rel < 0.25,
            "{b}: seed variance too high ({r1:.4} vs {r2:.4})"
        );
    }
}

#[test]
fn data_working_sets_exceed_the_l1_but_fit_the_l2() {
    // Sanity on footprints: every benchmark must stress a 4KB L1 (data
    // misses exist) while fitting the 1MB L2 after warmup (so the paper's
    // "little L2 activity" claim can hold at scale).
    for b in Benchmark::ALL {
        let src = b.source(Scale::new(100_000), 3);
        let distinct: std::collections::HashSet<u64> = src
            .refs()
            .filter(|r| r.kind.is_data())
            .map(|r| r.addr.get() / 128)
            .collect();
        let footprint_bytes = distinct.len() as u64 * 128;
        assert!(footprint_bytes > 4096, "{b}: working set too small");
        assert!(
            footprint_bytes < (1 << 20),
            "{b}: {footprint_bytes}B exceeds the 1MB L2"
        );
    }
}
