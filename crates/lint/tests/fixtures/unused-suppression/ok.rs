//! Fixture: the fix — the stale directive is gone.

pub fn answer() -> u32 {
    7
}
