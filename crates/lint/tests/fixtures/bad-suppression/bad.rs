//! Fixture: a suppression without the mandatory reason.

// jouppi-lint: allow(ambient-time)
pub fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}
